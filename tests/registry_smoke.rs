//! Smoke test of the experiment registry: every entry must run
//! end-to-end through its dynamic runner with quick options and produce
//! a non-empty report (table rows, text blocks or artifacts).

use btsim::core::experiments::{registry, ExpOptions, Experiment};

#[test]
fn every_registry_entry_runs_and_reports() {
    let entries: Vec<&Experiment> = registry().iter().collect();
    assert_eq!(entries.len(), 25, "registry should list all experiments");
    let opts = ExpOptions::quick();
    for entry in entries {
        let report = entry.run(&opts).unwrap();
        assert!(!report.title.is_empty(), "{}: empty title", entry.name);
        let rows: usize = report.tables.iter().map(|t| t.len()).sum();
        assert!(
            rows > 0 || !report.text.is_empty(),
            "{}: report has neither table rows nor text",
            entry.name
        );
        for table in &report.tables {
            assert!(!table.is_empty(), "{}: empty table in report", entry.name);
            // Every row renders to CSV with as many cells as headers
            // (Table enforces this on construction; the CSV must carry
            // header + rows).
            assert_eq!(table.to_csv().lines().count(), table.len() + 1);
        }
        // The JSON projection must render for --json consumers.
        let json = report.to_json().render();
        assert!(json.starts_with('{'), "{}: bad JSON", entry.name);
    }
}

#[test]
fn waveform_entries_emit_vcd_artifacts() {
    let opts = ExpOptions::quick();
    for name in ["fig5_waveform", "fig9_sniff_waveform"] {
        let entry = btsim::core::experiments::find(name).expect("registered");
        let report = entry.run(&opts).unwrap();
        assert!(
            report
                .artifacts
                .iter()
                .any(|(n, c)| n.ends_with(".vcd") && c.contains("$enddefinitions")),
            "{name}: missing VCD artifact"
        );
    }
}
