//! The fidelity differential harness: the statistical packet-outcome
//! tier (`--fidelity stat`) is only allowed to change *how fast* a
//! result is computed, never *what* the result is — exactly, wherever
//! the stability tracker cannot promote or the BER is zero (a clean
//! closed-form draw is provably identical to a clean bit-level
//! decode), and within statistical tolerance on the saturated
//! single-slot ACL workloads where packet fates really are sampled
//! from the analytic error model instead of decoded.
//!
//! This is the acceptance gate for `btsim-fidelity` (`docs/FIDELITY.md`):
//! any change to the error model, the stability tracker or the batch
//! fast-forward that skews an experiment's distribution fails here,
//! not in a downstream campaign. The demotion tests additionally pin
//! the tracker's safety contract — an AFH switch or co-channel
//! contention appearing mid-window forces the link back to bit-level
//! simulation on the next slot boundary, identically on both engines.

use btsim::baseband::hop::ChannelMap;
use btsim::baseband::{LcCommand, LcEvent};
use btsim::core::experiments::{registry, ExpOptions};
use btsim::core::scenario::{connect_pair, paper_config};
use btsim::core::{Engine, Fidelity, SimBuilder, Simulator};
use btsim::kernel::{SimDuration, SimTime};

/// Everything deterministic about a finished simulation.
fn sim_digest(sim: &Simulator) -> String {
    format!(
        "now={:?} events={:?} lm={:?} tx={:?} ber={} rng={:#x}",
        sim.now(),
        sim.events(),
        sim.lm_events(),
        sim.tx_stats(),
        sim.measured_ber(),
        sim.rng_fingerprint(),
    )
}

/// The chronological promote/demote history logged on `device`.
fn fidelity_flips(sim: &Simulator, device: usize) -> Vec<bool> {
    sim.events()
        .iter()
        .filter(|e| e.device == device)
        .filter_map(|e| match e.event {
            LcEvent::FidelityChanged { promoted } => Some(promoted),
            _ => None,
        })
        .collect()
}

/// A saturated single-slave ACL pair (the workload the statistical
/// tier exists for), run for `slots` slots after the connection.
fn saturated_pair(
    seed: u64,
    ber: f64,
    engine: Engine,
    fidelity: Fidelity,
    slots: u64,
) -> (Simulator, u8) {
    let mut cfg = paper_config();
    cfg.channel.ber = ber;
    cfg.engine = engine;
    cfg.fidelity = fidelity;
    let mut b = SimBuilder::new(seed, cfg);
    let m = b.add_device("master");
    let s = b.add_device("slave1");
    let mut sim = b.build();
    let lt = connect_pair(&mut sim, m, s, SimTime::from_us(60_000_000)).expect("pair connects");
    sim.command(m, LcCommand::SetTpoll(2));
    sim.command(
        m,
        LcCommand::AclData {
            lt_addr: lt,
            data: vec![0x5A; slots as usize * 9],
        },
    );
    sim.run_until(sim.now() + SimDuration::from_slots(slots));
    (sim, lt)
}

/// Wall-clock-timing experiments: their tables *measure* wall time,
/// the one quantity the fidelity tier is supposed to change.
const WALL_CLOCK_ENTRIES: [&str; 2] = ["table1_sim_speed", "scat_speed"];

/// The only registry experiment whose outputs are genuinely *sampled*
/// at the statistical tier: it saturates a single-slave ACL link with
/// 1-slot packets at nonzero BER, so the tracker promotes and packet
/// fates come from the closed-form model instead of the codecs. Every
/// other entry either never satisfies the promotion conditions
/// (procedures, modes, multi-slot types, contending piconets) or runs
/// at BER 0, where a promoted link is bit-exact by construction — so
/// everything else must match *exactly*.
const STAT_SAMPLED_ENTRIES: [&str; 1] = ["ext_packet_throughput"];

/// Numeric closeness for sampled table cells: the analytic model is
/// allowed a few kbit/s of bias plus a modest relative error against
/// the bit-level codecs at the quick campaign's run count.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 6.0 + 0.15 * a.abs().max(b.abs())
}

/// Structural + tolerant-numeric comparison of two reports: identical
/// shape everywhere, identical text cells, numeric cells within
/// [`close`].
fn assert_reports_close(
    name: &str,
    bit: &btsim::core::experiments::ExpReport,
    stat: &btsim::core::experiments::ExpReport,
) {
    assert_eq!(bit.title, stat.title, "{name}: title diverged");
    assert_eq!(bit.notes, stat.notes, "{name}: notes diverged");
    assert_eq!(bit.text, stat.text, "{name}: text blocks diverged");
    assert_eq!(
        bit.tables.len(),
        stat.tables.len(),
        "{name}: table count diverged"
    );
    for (tb, ts) in bit.tables.iter().zip(&stat.tables) {
        assert_eq!(
            tb.rows().len(),
            ts.rows().len(),
            "{name}: row count diverged"
        );
        for (rb, rs) in tb.rows().iter().zip(ts.rows()) {
            for (cb, cs) in rb.iter().zip(rs) {
                match (cb.parse::<f64>(), cs.parse::<f64>()) {
                    (Ok(a), Ok(b)) => assert!(
                        close(a, b),
                        "{name}: sampled cell {a} vs bit-level {b} outside tolerance (row {rb:?} vs {rs:?})"
                    ),
                    _ => assert_eq!(cb, cs, "{name}: non-numeric cell diverged"),
                }
            }
        }
    }
}

/// Every registry experiment, bit tier vs statistical tier — exact
/// equality except where the tier genuinely samples — plus exact
/// lockstep/event-driven agreement *of the statistical tier itself*
/// on every entry, so the bit-vs-stat comparison transfers to both
/// engines.
#[test]
fn all_registry_experiments_match_across_fidelity_tiers() {
    for entry in registry() {
        if WALL_CLOCK_ENTRIES.contains(&entry.name) {
            continue;
        }
        let opts = |engine, fidelity| ExpOptions {
            runs: 2,
            engine,
            fidelity,
            ..ExpOptions::quick()
        };
        let bit = entry.run(&opts(Engine::Lockstep, Fidelity::Bit)).unwrap();
        let stat = entry.run(&opts(Engine::Lockstep, Fidelity::Stat)).unwrap();
        let stat_event = entry
            .run(&opts(Engine::EventDriven, Fidelity::Stat))
            .unwrap();
        assert_eq!(
            stat, stat_event,
            "{}: statistical tier diverged between engines",
            entry.name
        );
        if STAT_SAMPLED_ENTRIES.contains(&entry.name) {
            assert_reports_close(entry.name, &bit, &stat);
        } else {
            assert_eq!(
                bit, stat,
                "{}: must be bit-exact (tracker never promotes, or BER is 0)",
                entry.name
            );
        }
    }
}

/// Where the statistical tier really samples (saturated 1-slot ACL at
/// nonzero BER), its delivered-packet mean must sit within a CI95-wide
/// band of the bit-level mean across independent seeds.
#[test]
fn stat_tier_delivery_mean_is_within_bit_tier_ci95() {
    const SEEDS: u64 = 10;
    const SLOTS: u64 = 1_500;
    let delivered = |fidelity: Fidelity| -> Vec<f64> {
        (0..SEEDS)
            .map(|seed| {
                let (sim, _) = saturated_pair(40 + seed, 0.004, Engine::Lockstep, fidelity, SLOTS);
                sim.events()
                    .iter()
                    .filter(|e| matches!(e.event, LcEvent::AclDelivered { .. }))
                    .count() as f64
            })
            .collect()
    };
    let stats = |xs: &[f64]| -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, 1.96 * (var / n).sqrt())
    };
    let (bit_mean, bit_ci) = stats(&delivered(Fidelity::Bit));
    let (stat_mean, stat_ci) = stats(&delivered(Fidelity::Stat));
    assert!(bit_mean > 0.0, "bit tier delivered nothing");
    // The model is allowed its own CI95 plus a small systematic bias
    // against the codecs (FEC/CRC interactions it approximates).
    let tolerance = bit_ci + stat_ci + 0.05 * bit_mean;
    assert!(
        (bit_mean - stat_mean).abs() <= tolerance,
        "stat mean {stat_mean:.1} vs bit mean {bit_mean:.1} \
         (CI95 {bit_ci:.1}/{stat_ci:.1}, tolerance {tolerance:.1})"
    );
}

/// A link in sniff mode never satisfies the promotion conditions, so
/// the statistical tier must be a spectator: no tier flips in the
/// event log and a digest identical to bit level even at nonzero BER
/// (any stolen promotion would shift the RNG draws and diverge).
#[test]
fn never_promoting_workload_stays_bit_exact() {
    use btsim::baseband::SniffParams;
    let run = |fidelity: Fidelity| {
        let mut cfg = paper_config();
        cfg.channel.ber = 0.005;
        cfg.fidelity = fidelity;
        let mut b = SimBuilder::new(77, cfg);
        let m = b.add_device("master");
        let s = b.add_device("slave1");
        let mut sim = b.build();
        let lt = connect_pair(&mut sim, m, s, SimTime::from_us(60_000_000)).expect("connects");
        let params = SniffParams {
            t_sniff: 80,
            n_attempt: 2,
            d_sniff: 10,
            n_timeout: 2,
        };
        sim.command(
            m,
            LcCommand::Sniff {
                lt_addr: lt,
                params,
            },
        );
        sim.command(
            s,
            LcCommand::Sniff {
                lt_addr: lt,
                params,
            },
        );
        sim.command(
            m,
            LcCommand::AclData {
                lt_addr: lt,
                data: vec![0x11; 400],
            },
        );
        sim.run_until(sim.now() + SimDuration::from_slots(2_000));
        assert!(
            fidelity_flips(&sim, m).is_empty(),
            "sniffing link must never change tier"
        );
        sim_digest(&sim)
    };
    assert_eq!(run(Fidelity::Bit), run(Fidelity::Stat));
}

/// A scheduled AFH map switch demotes a promoted link on the next
/// slot boundary (the tracker refuses to fast-forward across a hop
/// remapping), and re-promotes once both ends hop on the settled new
/// map. Both engines must log the identical promote → demote →
/// re-promote history and stay bit-identical throughout.
#[test]
fn afh_switch_demotes_promoted_link_on_both_engines() {
    let run = |engine: Engine| {
        let (mut sim, lt) = saturated_pair(91, 0.001, engine, Fidelity::Stat, 800);
        assert_eq!(
            fidelity_flips(&sim, 0),
            vec![true],
            "link should be promoted before the switch"
        );
        let map = ChannelMap::blocking(0..20);
        let at_slot = sim.now().slots() + 400;
        sim.command(
            0,
            LcCommand::SetAfhAt {
                map: map.clone(),
                at_slot,
            },
        );
        sim.command(1, LcCommand::SetAfhAt { map, at_slot });
        // Keep the link saturated across the switch so the only thing
        // standing between the tracker and re-promotion is the map.
        sim.command(
            0,
            LcCommand::AclData {
                lt_addr: lt,
                data: vec![0x5A; 1_200 * 9],
            },
        );
        let demote_deadline = sim.now() + SimDuration::from_slots(2);
        sim.run_until(sim.now() + SimDuration::from_slots(1_200));
        let flips: Vec<(bool, SimTime)> = sim
            .events()
            .iter()
            .filter(|e| e.device == 0)
            .filter_map(|e| match e.event {
                LcEvent::FidelityChanged { promoted } => Some((promoted, e.at)),
                _ => None,
            })
            .collect();
        let history: Vec<bool> = flips.iter().map(|&(p, _)| p).collect();
        assert_eq!(
            history,
            vec![true, false, true],
            "expected promote, demote at the switch, re-promote after it"
        );
        assert!(
            flips[1].1 <= demote_deadline,
            "demotion must land on the next slot after the scheduled switch appeared"
        );
        assert!(
            flips[2].1.slots() >= at_slot,
            "re-promotion cannot precede the switch instant"
        );
        sim_digest(&sim)
    };
    assert_eq!(run(Engine::Lockstep), run(Engine::EventDriven));
}

/// A fault landing on a promoted link's endpoint demotes it *at the
/// fault instant*, and the link stays at bit level while the fault
/// holds — the statistical tier's closed-form assumptions are void on
/// a degraded radio. The demotion is pinned through the event log
/// ([`LcEvent::FidelityChanged`] at the fault slot) under both engines.
#[test]
fn fault_demotes_promoted_link_at_the_fault_instant_on_both_engines() {
    const FAULT_SLOT: u64 = 5_000;
    let run = |engine: Engine| {
        let mut cfg = paper_config();
        cfg.channel.ber = 0.001;
        cfg.engine = engine;
        cfg.fidelity = Fidelity::Stat;
        cfg.faults =
            btsim::core::FaultPlan::parse(&format!("degrade@{FAULT_SLOT}:dev=1,ber=0.02,ramp=0"))
                .expect("fault spec parses");
        let mut b = SimBuilder::new(58, cfg);
        let m = b.add_device("master");
        let s = b.add_device("slave1");
        let mut sim = b.build();
        let cap = SimTime::from_us(120_000_000);
        let lt = connect_pair(&mut sim, m, s, cap).expect("connects");
        sim.command(m, LcCommand::SetTpoll(2));
        sim.command(
            m,
            LcCommand::AclData {
                lt_addr: lt,
                data: vec![0x5A; 40_000],
            },
        );
        sim.run_until(sim.now() + SimDuration::from_slots(FAULT_SLOT + 1_000));
        let flips: Vec<(bool, SimTime)> = sim
            .events()
            .iter()
            .filter(|e| e.device == m)
            .filter_map(|e| match e.event {
                LcEvent::FidelityChanged { promoted } => Some((promoted, e.at)),
                _ => None,
            })
            .collect();
        assert!(
            flips.first().is_some_and(|&(p, _)| p),
            "the saturated pair should promote before the fault: {flips:?}"
        );
        let demotion = flips
            .iter()
            .find(|&&(p, _)| !p)
            .unwrap_or_else(|| panic!("the degrade never demoted the pair: {flips:?}"));
        assert_eq!(
            demotion.1.slots(),
            FAULT_SLOT,
            "demotion must be logged at the fault instant"
        );
        assert!(
            !flips.iter().any(|&(p, at)| p && at >= demotion.1),
            "the pair must not re-promote while the degrade holds: {flips:?}"
        );
        sim_digest(&sim)
    };
    assert_eq!(run(Engine::Lockstep), run(Engine::EventDriven));
}

/// Co-channel contention demotes a promoted link: a second piconet
/// sleeping through a hold window lets the first pair promote, and the
/// moment it wakes up saturated, the tracker drops the first pair back
/// to bit-level simulation. Both engines must agree on the whole run.
#[test]
fn co_channel_traffic_demotes_promoted_link_on_both_engines() {
    const HOLD_SLOTS: u64 = 1_500;
    let run = |engine: Engine| {
        let mut cfg = paper_config();
        cfg.channel.ber = 0.001;
        cfg.engine = engine;
        cfg.fidelity = Fidelity::Stat;
        let mut b = SimBuilder::new(55, cfg);
        let am = b.add_device("a-master");
        let asl = b.add_device("a-slave");
        let bm = b.add_device("b-master");
        let bsl = b.add_device("b-slave");
        let mut sim = b.build();
        let cap = SimTime::from_us(120_000_000);
        let a_lt = connect_pair(&mut sim, am, asl, cap).expect("pair A connects");
        let b_lt = connect_pair(&mut sim, bm, bsl, cap).expect("pair B connects");
        // B queues saturating traffic but immediately holds, so it is
        // silent until the hold expires — then floods the medium.
        sim.command(bm, LcCommand::SetTpoll(2));
        sim.command(
            bm,
            LcCommand::AclData {
                lt_addr: b_lt,
                data: vec![0x22; 20_000],
            },
        );
        sim.command(
            bm,
            LcCommand::Hold {
                lt_addr: b_lt,
                hold_slots: HOLD_SLOTS as u32,
            },
        );
        sim.command(
            bsl,
            LcCommand::Hold {
                lt_addr: b_lt,
                hold_slots: HOLD_SLOTS as u32,
            },
        );
        let hold_started = sim.now();
        sim.command(am, LcCommand::SetTpoll(2));
        sim.command(
            am,
            LcCommand::AclData {
                lt_addr: a_lt,
                data: vec![0x5A; 25_000],
            },
        );
        sim.run_until(sim.now() + SimDuration::from_slots(HOLD_SLOTS + 1_000));
        let flips: Vec<(bool, SimTime)> = sim
            .events()
            .iter()
            .filter(|e| e.device == am)
            .filter_map(|e| match e.event {
                LcEvent::FidelityChanged { promoted } => Some((promoted, e.at)),
                _ => None,
            })
            .collect();
        assert!(
            flips.first().is_some_and(|&(p, _)| p),
            "pair A should promote while B sleeps through its hold"
        );
        let demotion = flips
            .iter()
            .find(|&&(p, _)| !p)
            .unwrap_or_else(|| panic!("pair A never demoted after B woke up: {flips:?}"));
        assert!(
            demotion.1 >= hold_started,
            "demotion cannot precede B's wakeup"
        );
        sim_digest(&sim)
    };
    assert_eq!(run(Engine::Lockstep), run(Engine::EventDriven));
}
