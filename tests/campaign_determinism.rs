//! Property tests of the campaign engine: results are bit-identical for
//! a fixed base seed no matter how the work is spread over threads, and
//! sweeps give every point the same seed sequence.

use btsim::core::campaign::Campaign;
use btsim::core::net::{ScatternetConfig, ScatternetScenario};
use btsim::core::scenario::{InquiryConfig, InquiryScenario, PageConfig, PageScenario, Scenario};
use btsim::core::Engine;
use btsim::trace::btsnoop;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn campaign_is_bit_identical_across_thread_counts(
        seed: u64,
        threads in 2usize..5,
        runs in 1usize..5,
    ) {
        let run = |t: usize| {
            Campaign::new(PageScenario::new(PageConfig::default()))
                .runs(runs)
                .threads(t)
                .base_seed(seed)
                .run()
        };
        let sequential = run(1);
        let parallel = run(threads);
        prop_assert_eq!(sequential, parallel);
    }

    #[test]
    fn sweep_points_are_independent_of_sweep_size(seed: u64, runs in 1usize..4) {
        // A point's outcomes must not depend on how many other points
        // the sweep carries (seeding is per point, not per job).
        let single = Campaign::new(InquiryScenario::new(InquiryConfig::default()))
            .runs(runs)
            .base_seed(seed)
            .run();
        let swept = Campaign::sweep([
            ("a".to_string(), InquiryScenario::new(InquiryConfig::default())),
            ("b".to_string(), InquiryScenario::new(InquiryConfig::default())),
        ])
        .runs(runs)
        .base_seed(seed)
        .run();
        prop_assert_eq!(&single.points[0].outcomes, &swept.points[0].outcomes);
        prop_assert_eq!(&single.points[0].outcomes, &swept.points[1].outcomes);
    }
}

// Scatternet campaigns drive many devices, bridge hold schedules and a
// store-and-forward relay — far more machinery than the single-piconet
// scenarios above — yet must give the same guarantee: bit-identical
// results regardless of the thread count, with cross-piconet payload
// actually delivered end to end.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn scatternet_campaign_is_bit_identical_across_thread_counts(
        seed: u64,
        threads in 2usize..5,
    ) {
        let scenario = || ScatternetScenario::new(ScatternetConfig {
            piconets: 3,
            measure_slots: 4_000,
            ..ScatternetConfig::default()
        });
        let run = |t: usize| {
            Campaign::new(scenario())
                .runs(2)
                .threads(t)
                .base_seed(seed)
                .run()
        };
        let sequential = run(1);
        let parallel = run(threads);
        prop_assert_eq!(&sequential, &parallel);
        // The acceptance bar of the scatternet subsystem: a ≥3-piconet
        // chain with bridges relays payload across piconet borders.
        for out in &sequential.single().outcomes {
            prop_assert!(out.connected, "chain must form: {:?}", out);
            prop_assert!(out.delivered > 0, "cross-piconet delivery: {:?}", out);
        }
    }
}

/// One seeded 3-piconet scatternet run with the capture tap on,
/// serialized to btsnoop bytes — the unit the determinism properties
/// below compare across engines and thread placements.
fn scatternet_capture_bytes(seed: u64, engine: Engine) -> Vec<u8> {
    let mut cfg = ScatternetConfig {
        piconets: 3,
        measure_slots: 4_000,
        ..ScatternetConfig::default()
    };
    cfg.sim.engine = engine;
    cfg.sim.capture = true;
    let scenario = ScatternetScenario::new(cfg);
    let mut sim = scenario.build(seed);
    let _ = scenario.drive(&mut sim);
    btsnoop::serialize_sink(sim.capture())
}

// The btsnoop file is part of the determinism contract: for a fixed
// seed the serialized capture of a 3-piconet scatternet run must be
// byte-identical under lockstep vs event dispatch, and whether the
// per-seed runs execute sequentially or spread over three threads.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn scatternet_captures_are_engine_and_thread_independent(seed: u64) {
        let seeds = [seed, seed.wrapping_add(1), seed.wrapping_add(2)];
        let sequential: Vec<Vec<u8>> = seeds
            .iter()
            .map(|&s| scatternet_capture_bytes(s, Engine::Lockstep))
            .collect();
        for (i, bytes) in sequential.iter().enumerate() {
            prop_assert!(bytes.len() > 16, "seed {} captured nothing", seeds[i]);
            let event = scatternet_capture_bytes(seeds[i], Engine::EventDriven);
            prop_assert_eq!(bytes, &event, "engines diverged at seed {}", seeds[i]);
        }
        let parallel: Vec<Vec<u8>> = std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .iter()
                .map(|&s| scope.spawn(move || scatternet_capture_bytes(s, Engine::Lockstep)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("capture thread"))
                .collect()
        });
        prop_assert_eq!(sequential, parallel);
    }
}
