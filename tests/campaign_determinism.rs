//! Property tests of the campaign engine: results are bit-identical for
//! a fixed base seed no matter how the work is spread over threads, and
//! sweeps give every point the same seed sequence.

use btsim::core::campaign::Campaign;
use btsim::core::net::{ScatternetConfig, ScatternetScenario};
use btsim::core::scenario::{InquiryConfig, InquiryScenario, PageConfig, PageScenario};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn campaign_is_bit_identical_across_thread_counts(
        seed: u64,
        threads in 2usize..5,
        runs in 1usize..5,
    ) {
        let run = |t: usize| {
            Campaign::new(PageScenario::new(PageConfig::default()))
                .runs(runs)
                .threads(t)
                .base_seed(seed)
                .run()
        };
        let sequential = run(1);
        let parallel = run(threads);
        prop_assert_eq!(sequential, parallel);
    }

    #[test]
    fn sweep_points_are_independent_of_sweep_size(seed: u64, runs in 1usize..4) {
        // A point's outcomes must not depend on how many other points
        // the sweep carries (seeding is per point, not per job).
        let single = Campaign::new(InquiryScenario::new(InquiryConfig::default()))
            .runs(runs)
            .base_seed(seed)
            .run();
        let swept = Campaign::sweep([
            ("a".to_string(), InquiryScenario::new(InquiryConfig::default())),
            ("b".to_string(), InquiryScenario::new(InquiryConfig::default())),
        ])
        .runs(runs)
        .base_seed(seed)
        .run();
        prop_assert_eq!(&single.points[0].outcomes, &swept.points[0].outcomes);
        prop_assert_eq!(&single.points[0].outcomes, &swept.points[1].outcomes);
    }
}

// Scatternet campaigns drive many devices, bridge hold schedules and a
// store-and-forward relay — far more machinery than the single-piconet
// scenarios above — yet must give the same guarantee: bit-identical
// results regardless of the thread count, with cross-piconet payload
// actually delivered end to end.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn scatternet_campaign_is_bit_identical_across_thread_counts(
        seed: u64,
        threads in 2usize..5,
    ) {
        let scenario = || ScatternetScenario::new(ScatternetConfig {
            piconets: 3,
            measure_slots: 4_000,
            ..ScatternetConfig::default()
        });
        let run = |t: usize| {
            Campaign::new(scenario())
                .runs(2)
                .threads(t)
                .base_seed(seed)
                .run()
        };
        let sequential = run(1);
        let parallel = run(threads);
        prop_assert_eq!(&sequential, &parallel);
        // The acceptance bar of the scatternet subsystem: a ≥3-piconet
        // chain with bridges relays payload across piconet borders.
        for out in &sequential.single().outcomes {
            prop_assert!(out.connected, "chain must form: {:?}", out);
            prop_assert!(out.delivered > 0, "cross-piconet delivery: {:?}", out);
        }
    }
}
