//! End-to-end tests of the AFH loop: channel assessment →
//! `LMP_channel_classification` → `LMP_set_AFH` → synchronized hop
//! remapping, and its interplay with the event-driven engine.

use btsim::baseband::hop::ChannelMap;
use btsim::baseband::{LcCommand, LcEvent, SniffParams};
use btsim::channel::Interferer;
use btsim::core::scenario::{
    connect_pair, paper_config, AfhAdaptConfig, AfhAdaptScenario, Scenario,
};
use btsim::core::{AfhConfig, Engine, SimBuilder, SimConfig, Simulator};
use btsim::kernel::{SimDuration, SimTime};
use btsim::lmp::LmEvent;

const WLAN: Interferer = Interferer {
    first_channel: 29,
    width: 22,
    duty: 1.0,
};

fn wlan_pair(seed: u64, engine: Engine) -> (Simulator, u8) {
    let mut cfg: SimConfig = paper_config();
    cfg.engine = engine;
    cfg.channel.interferers.push(WLAN);
    let mut b = SimBuilder::new(seed, cfg);
    let m = b.add_device("master");
    let s = b.add_device("slave1");
    let mut sim = b.build();
    let lt = connect_pair(&mut sim, m, s, SimTime::from_us(120_000_000))
        .expect("pair connects despite the interferer");
    (sim, lt)
}

/// Runs the full LMP-negotiated map exchange on a saturated link and
/// returns the switch instant.
fn negotiate_afh(sim: &mut Simulator, lt: u8) -> u64 {
    let (master, slave) = (0, 1);
    sim.command(master, LcCommand::SetTpoll(2));
    sim.command(
        master,
        LcCommand::AclData {
            lt_addr: lt,
            data: vec![0xD7; 200_000],
        },
    );
    // Assessment traffic.
    sim.run_until(sim.now() + SimDuration::from_slots(1_200));
    // Slave → master classification report.
    let slave_map = sim.lc(slave).channel_assessment().proposed_map(4, 0.3);
    sim.lm_request(slave, |lm, _slot| {
        lm.send_channel_classification(lt, slave_map)
    });
    let deadline = sim.now() + SimDuration::from_slots(400);
    let mut reported: Option<ChannelMap> = None;
    while reported.is_none() && sim.now() < deadline {
        sim.run_until(sim.now() + SimDuration::from_slots(20));
        reported = sim.lm_events().iter().rev().find_map(|e| match &e.event {
            LmEvent::ChannelClassification { map, .. } if e.device == master => Some(map.clone()),
            _ => None,
        });
    }
    let reported = reported.expect("classification reaches the master");
    // Master combines and announces the switch.
    let own = sim.lc(master).channel_assessment().proposed_map(4, 0.3);
    let combined = own.intersect(&reported).unwrap_or(own);
    sim.lm_request(master, |lm, slot| {
        lm.request_set_afh(lt, combined.clone(), slot)
    });
    let (_, instant) = sim
        .lc(master)
        .afh_pending_switch()
        .expect("master scheduled its switch");
    instant
}

#[test]
fn lmp_negotiated_switch_keeps_master_and_slave_hop_synchronized() {
    let (mut sim, lt) = wlan_pair(21, Engine::Lockstep);
    let (master, slave) = (0, 1);
    let instant = negotiate_afh(&mut sim, lt);
    assert!(instant.is_multiple_of(2), "switch lands on a slot pair");

    // Run through the acceptance and the instant.
    sim.run_until(SimTime::ZERO + SimDuration::from_slots(instant + 8));
    assert!(
        sim.lm_events()
            .iter()
            .any(|e| matches!(e.event, LmEvent::AfhAccepted { .. }) && e.device == master),
        "the slave must accept the map"
    );

    // Both ends agree on the effective map at every slot around the
    // switch instant — the hop sequences are identical before and
    // after it.
    for slot in instant.saturating_sub(30)..instant + 30 {
        assert_eq!(
            sim.lc(master).afh_map_at(slot),
            sim.lc(slave).afh_map_at(slot),
            "maps diverge at slot {slot} (instant {instant})"
        );
    }
    let map = sim
        .lc(slave)
        .afh_map_at(instant)
        .expect("adapted map in use")
        .clone();
    for ch in 0..79u8 {
        if WLAN.covers(ch) {
            assert!(!map.is_used(ch), "jammed channel {ch} still in use");
        }
    }

    // After the switch the hop sequence avoids the band entirely: the
    // medium records zero interferer hits, and acknowledged traffic
    // keeps flowing (which would stall within a few slots if the two
    // ends hopped on different maps).
    let stats_before = sim.tx_stats();
    let quality_before = sim.channel_quality().clone();
    let window_start = sim.now();
    sim.run_until(window_start + SimDuration::from_slots(1_000));
    let delta = sim.tx_stats().since(stats_before);
    assert_eq!(
        delta.jammed, 0,
        "adapted hops must not land in the full-duty band"
    );
    assert_eq!(
        sim.channel_quality().since(&quality_before).total().jammed,
        0
    );
    let delivered: usize = sim
        .events()
        .iter()
        .filter(|e| e.device == slave && e.at > window_start)
        .filter_map(|e| match &e.event {
            LcEvent::AclReceived { data, .. } => Some(data.len()),
            _ => None,
        })
        .sum();
    assert!(
        delivered > 5_000,
        "post-switch goodput collapsed ({delivered} bytes): hops desynchronized?"
    );
}

#[test]
fn afh_switch_survives_low_power_gaps_under_both_engines() {
    // A pending map switch scheduled while the slave then sleeps in
    // sniff exercises the wakeup-hint contract across the switch: the
    // event engine must fast-forward the idle gaps and still hop on
    // the same channels as the lockstep oracle.
    let run = |engine: Engine| {
        let (mut sim, lt) = wlan_pair(33, engine);
        let (master, slave) = (0, 1);
        let instant = negotiate_afh(&mut sim, lt);
        let params = SniffParams {
            t_sniff: 80,
            n_attempt: 1,
            d_sniff: 4,
            n_timeout: 1,
        };
        sim.command(
            master,
            LcCommand::Sniff {
                lt_addr: lt,
                params,
            },
        );
        sim.command(
            slave,
            LcCommand::Sniff {
                lt_addr: lt,
                params,
            },
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_slots(instant + 600));
        format!(
            "now={:?} events={:?} lm={:?} tx={:?} rng={:#x} map={:?}/{:?}",
            sim.now(),
            sim.events(),
            sim.lm_events(),
            sim.tx_stats(),
            sim.rng_fingerprint(),
            sim.lc(master).afh_map_at(sim.now().slots()),
            sim.lc(slave).afh_map_at(sim.now().slots()),
        )
    };
    assert_eq!(run(Engine::Lockstep), run(Engine::EventDriven));
}

#[test]
fn afh_adapt_scenario_recovers_under_both_engines() {
    let make = |engine: Engine| {
        let mut sim = paper_config();
        sim.engine = engine;
        AfhAdaptScenario::new(AfhAdaptConfig {
            wlan: Interferer::wlan(40, 1.0),
            window_slots: 1_200,
            afh: AfhConfig {
                enabled: true,
                assess_slots: 1_200,
                ..AfhConfig::default()
            },
            sim,
            ..AfhAdaptConfig::default()
        })
    };
    let lockstep = make(Engine::Lockstep).run(5);
    let event = make(Engine::EventDriven).run(5);
    assert_eq!(lockstep, event, "outcome diverged between engines");
    assert!(lockstep.switched);
    assert!(
        lockstep.kbps_after > lockstep.kbps_before * 1.2,
        "goodput recovery: before {} after {}",
        lockstep.kbps_before,
        lockstep.kbps_after
    );
    assert_eq!(lockstep.jam_hits_after, 0.0);
}
