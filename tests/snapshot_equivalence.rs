//! The snapshot-equivalence differential harness: restoring a
//! [`SimSnapshot`] — directly or through its wire form — and running to
//! the horizon must be **bit-identical** to the uninterrupted run: same
//! event logs, same LM logs, same clock, same medium statistics, same
//! RNG stream positions. `docs/SNAPSHOT.md` documents the state
//! inventory and the wire format this harness gates.
//!
//! Every check round-trips through `to_bytes`/`from_bytes` (not just
//! `restore`), so the wire codec of every snapped struct is on the
//! hook, and asserts the wire form is byte-stable across a roundtrip.

use btsim::baseband::LcCommand;
use btsim::core::net::{
    DenseFloorConfig, DenseFloorScenario, MultiPiconetConfig, MultiPiconetScenario,
    ScatternetConfig, ScatternetScenario,
};
use btsim::core::scenario::{
    paper_config, AfhAdaptConfig, AfhAdaptScenario, GoodputConfig, GoodputScenario, HoldConfig,
    HoldScenario, InquiryConfig, InquiryScenario, PageConfig, PageScenario, Scenario,
    ScoLinkConfig, ScoLinkScenario, SniffConfig, SniffScenario,
};
use btsim::core::{Engine, Fidelity, SimConfig, SimSnapshot, Simulator, SnapshotError};
use btsim::kernel::SimDuration;
use proptest::prelude::*;

/// Everything observable about a finished simulation, as one string
/// (the same digest the engine-equivalence harness compares).
fn sim_digest(sim: &Simulator) -> String {
    format!(
        "now={:?} events={:?} lm={:?} tx={:?} ber={} rng={:#x}",
        sim.now(),
        sim.events(),
        sim.lm_events(),
        sim.tx_stats(),
        sim.measured_ber(),
        sim.rng_fingerprint(),
    )
}

/// Builds the scenario's simulator, advances it `warmup` slots into the
/// run, snapshots it through the wire form, and drives both the
/// original and the restored copy to completion. Returns the
/// `(outcome, digest)` pair of each.
fn split_and_continue<S: Scenario>(
    scenario: &S,
    seed: u64,
    warmup: u64,
) -> ((String, String), (String, String))
where
    S::Outcome: std::fmt::Debug,
{
    let mut sim = scenario.build(seed);
    sim.run_until(sim.now() + SimDuration::from_slots(warmup));
    let bytes = sim.snapshot().to_bytes();
    let snap = SimSnapshot::from_bytes(&bytes).expect("saved snapshot decodes");
    assert_eq!(bytes, snap.to_bytes(), "wire form must be byte-stable");
    let mut restored = snap.restore();
    let out_orig = scenario.drive(&mut sim);
    let out_rest = scenario.drive(&mut restored);
    (
        (format!("{out_orig:?}"), sim_digest(&sim)),
        (format!("{out_rest:?}"), sim_digest(&restored)),
    )
}

/// Asserts a scenario constructor continues bit-identically from a
/// mid-run snapshot under both engines and all three fidelity tiers.
fn assert_snapshot_transparent<S, F>(name: &str, seeds: &[u64], warmup: u64, make: F)
where
    S: Scenario,
    S::Outcome: std::fmt::Debug,
    F: Fn(SimConfig) -> S,
{
    for engine in [Engine::Lockstep, Engine::EventDriven] {
        for fidelity in [Fidelity::Bit, Fidelity::Stat, Fidelity::Auto] {
            for &seed in seeds {
                let mut cfg = paper_config();
                cfg.engine = engine;
                cfg.fidelity = fidelity;
                let (orig, rest) = split_and_continue(&make(cfg), seed, warmup);
                assert_eq!(
                    orig, rest,
                    "{name}: run diverged after restore \
                     (engine {engine:?}, fidelity {fidelity:?}, seed {seed})"
                );
            }
        }
    }
}

#[test]
fn inquiry_scenario_is_snapshot_transparent() {
    assert_snapshot_transparent("inquiry", &[1], 400, |sim| {
        InquiryScenario::new(InquiryConfig {
            ber: 0.01,
            sim,
            ..InquiryConfig::default()
        })
    });
}

#[test]
fn page_scenario_is_snapshot_transparent() {
    assert_snapshot_transparent("page", &[4], 400, |sim| {
        PageScenario::new(PageConfig {
            ber: 0.005,
            cap_slots: 2048,
            sim,
            ..PageConfig::default()
        })
    });
}

#[test]
fn sniff_scenario_is_snapshot_transparent() {
    assert_snapshot_transparent("sniff", &[7], 900, |sim| {
        SniffScenario::new(SniffConfig {
            t_sniff: 100,
            measure_slots: 6_000,
            sim,
            ..SniffConfig::default()
        })
    });
}

#[test]
fn hold_scenario_is_snapshot_transparent() {
    assert_snapshot_transparent("hold", &[9], 900, |sim| {
        HoldScenario::new(HoldConfig {
            t_hold: 400,
            measure_slots: 6_000,
            sim,
        })
    });
}

#[test]
fn goodput_scenario_is_snapshot_transparent() {
    assert_snapshot_transparent("goodput", &[13], 700, |sim| {
        GoodputScenario::new(GoodputConfig {
            ptype: btsim::baseband::PacketType::Dh3,
            ber: 0.002,
            sim,
            ..GoodputConfig::default()
        })
    });
}

#[test]
fn sco_scenario_is_snapshot_transparent() {
    assert_snapshot_transparent("sco", &[14], 700, |sim| {
        ScoLinkScenario::new(ScoLinkConfig {
            ptype: btsim::baseband::PacketType::Hv3,
            ber: 0.01,
            sim,
            ..ScoLinkConfig::default()
        })
    });
}

#[test]
fn afh_adapt_scenario_is_snapshot_transparent() {
    // The snapshot instant lands inside the AFH assessment window: the
    // classification counters, the pending LMP map exchange and the
    // armed hop switch all have to survive the roundtrip.
    assert_snapshot_transparent("afh_adapt", &[17], 900, |sim| {
        AfhAdaptScenario::new(AfhAdaptConfig {
            wlan: btsim::channel::Interferer::wlan(40, 0.6),
            window_slots: 1_200,
            afh: btsim::core::AfhConfig {
                enabled: true,
                assess_slots: 1_200,
                ..btsim::core::AfhConfig::default()
            },
            sim,
            ..AfhAdaptConfig::default()
        })
    });
}

#[test]
fn scatternet_chain_is_snapshot_transparent() {
    assert_snapshot_transparent("scatternet", &[15], 1_500, |sim| {
        ScatternetScenario::new(ScatternetConfig {
            piconets: 3,
            measure_slots: 3_000,
            sim,
            ..ScatternetConfig::default()
        })
    });
}

#[test]
fn multi_piconet_mesh_is_snapshot_transparent() {
    assert_snapshot_transparent("multi_piconet", &[16], 1_500, |sim| {
        MultiPiconetScenario::new(MultiPiconetConfig {
            piconets: 3,
            measure_slots: 2_000,
            sim,
            ..MultiPiconetConfig::default()
        })
    });
}

/// The split instant lands mid-fault: a device is crashed with its
/// revival still pending, another link is degraded, and a noise burst
/// is active. The crashed/muted/degraded flags, the remaining fault
/// calendar and the interferer state must all survive the roundtrip —
/// under both engines and all three fidelity tiers.
#[test]
fn faulted_scatternet_is_snapshot_transparent() {
    assert_snapshot_transparent("faulted_scatternet", &[21], 3_200, |mut sim| {
        sim.faults = btsim::core::FaultPlan::parse(
            "degrade@2000:dev=3,ber=0.02,ramp=500;noise_on@2200:lo=30,width=10,duty=0.5;\
             crash@2600:dev=2;revive@3800:dev=2;heal@4200:dev=3;noise_off@5000:lo=30,width=10",
        )
        .expect("fault spec parses");
        sim.lc.supervision_timeout_slots = 900;
        ScatternetScenario::new(ScatternetConfig {
            piconets: 2,
            measure_slots: 3_000,
            sim,
            ..ScatternetConfig::default()
        })
    });
}

/// Sharded spatial runs: the per-shard sub-simulators, the shard maps
/// and the merge cursors must all survive the roundtrip, at both one
/// worker and four.
#[test]
fn sharded_dense_floor_is_snapshot_transparent() {
    for shards in [1usize, 4] {
        for engine in [Engine::Lockstep, Engine::EventDriven] {
            let mut cfg = DenseFloorConfig {
                grid: (2, 2),
                measure_slots: 1_500,
                ..DenseFloorConfig::default()
            };
            cfg.sim.engine = engine;
            cfg.sim.shards = shards;
            let scenario = DenseFloorScenario::new(cfg);
            let (orig, rest) = split_and_continue(&scenario, 23, 2_000);
            assert_eq!(
                orig, rest,
                "dense_floor: diverged after restore (shards {shards}, engine {engine:?})"
            );
        }
    }
}

/// [`faulted_scatternet_is_snapshot_transparent`] at scale-out: the
/// split lands mid-outage on a sharded spatial floor, at one worker
/// and four, under both engines.
#[test]
fn sharded_faulted_floor_is_snapshot_transparent() {
    for shards in [1usize, 4] {
        for engine in [Engine::Lockstep, Engine::EventDriven] {
            let mut cfg = DenseFloorConfig {
                grid: (2, 2),
                measure_slots: 1_500,
                ..DenseFloorConfig::default()
            };
            cfg.sim.engine = engine;
            cfg.sim.shards = shards;
            cfg.sim.faults = btsim::core::FaultPlan::parse(
                "noise_on@2100:lo=10,width=8,duty=0.6;crash@2300:dev=1;revive@3600:dev=1",
            )
            .expect("fault spec parses");
            let scenario = DenseFloorScenario::new(cfg);
            let (orig, rest) = split_and_continue(&scenario, 29, 2_500);
            assert_eq!(
                orig, rest,
                "faulted dense_floor: diverged after restore \
                 (shards {shards}, engine {engine:?})"
            );
        }
    }
}

/// The formation split invariant behind campaign forking and
/// `--resume`: `form(seed)` + `drive_formed` (through a snapshot
/// roundtrip) equals the uninterrupted `run(seed)` bit-exactly.
#[test]
fn form_plus_drive_formed_matches_run() {
    let scenario = ScatternetScenario::new(ScatternetConfig {
        piconets: 3,
        measure_slots: 3_000,
        sim: paper_config(),
        ..ScatternetConfig::default()
    });
    for seed in [31u64, 32] {
        let straight = scenario.run(seed);
        let formed = scenario.form(seed).expect("formation succeeds");
        let bytes = formed.snapshot().to_bytes();
        let mut restored = SimSnapshot::from_bytes(&bytes).unwrap().restore();
        let resumed = scenario.drive_formed(&mut restored);
        assert_eq!(straight, resumed, "split invariant broken for seed {seed}");
    }
}

/// Corrupted and truncated wire forms are rejected with typed errors —
/// never a panic, never a silently wrong simulator.
#[test]
fn malformed_wire_forms_are_rejected() {
    let scenario = PageScenario::new(PageConfig {
        sim: paper_config(),
        ..PageConfig::default()
    });
    let sim = scenario.build(40);
    let bytes = sim.snapshot().to_bytes();
    assert!(matches!(
        SimSnapshot::from_bytes(&[]),
        Err(SnapshotError::Truncated { .. } | SnapshotError::BadMagic)
    ));
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] ^= 0xFF;
    assert!(matches!(
        SimSnapshot::from_bytes(&wrong_magic),
        Err(SnapshotError::BadMagic)
    ));
    let mut wrong_version = bytes.clone();
    wrong_version[4] = 0xEE;
    assert!(matches!(
        SimSnapshot::from_bytes(&wrong_version),
        Err(SnapshotError::UnsupportedVersion { .. })
    ));
    for cut in [5, bytes.len() / 3, bytes.len() - 1] {
        assert!(
            SimSnapshot::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} must be rejected"
        );
    }
    let mut trailing = bytes.clone();
    trailing.push(0);
    assert!(matches!(
        SimSnapshot::from_bytes(&trailing),
        Err(SnapshotError::TrailingBytes { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Mid-run snapshots at randomized instants of a directly-driven
    /// ACL transfer, under randomized engine and fidelity: the
    /// continuation must be bit-identical to the uninterrupted run.
    #[test]
    fn randomized_split_instants_are_transparent(
        seed: u64,
        warmup in 0u64..2_000,
        engine in prop::sample::select(vec![Engine::Lockstep, Engine::EventDriven]),
        fidelity in prop::sample::select(vec![Fidelity::Bit, Fidelity::Stat, Fidelity::Auto]),
    ) {
        use btsim::core::SimBuilder;
        use btsim::kernel::SimTime;
        let mut cfg = paper_config();
        cfg.engine = engine;
        cfg.fidelity = fidelity;
        cfg.channel.ber = 0.004;
        let mut b = SimBuilder::new(seed, cfg);
        let m = b.add_device("master");
        let s = b.add_device("slave1");
        let mut sim = b.build();
        let cap = SimTime::from_us(60_000_000);
        let lt = btsim::core::scenario::connect_pair(&mut sim, m, s, cap).expect("connects");
        sim.command(m, LcCommand::SetTpoll(4));
        sim.command(m, LcCommand::AclData { lt_addr: lt, data: vec![0xA5; 6_000] });
        sim.run_until(sim.now() + SimDuration::from_slots(warmup));
        let bytes = sim.snapshot().to_bytes();
        let mut restored = SimSnapshot::from_bytes(&bytes).unwrap().restore();
        let horizon = sim.now() + SimDuration::from_slots(2_000);
        sim.run_until(horizon);
        restored.run_until(horizon);
        prop_assert_eq!(sim_digest(&sim), sim_digest(&restored));
    }

    /// Randomized scatternet topologies snapshotted at randomized
    /// instants (possibly mid-formation): the restored run must track
    /// the original bit-exactly through the rest of formation and the
    /// relay window.
    #[test]
    fn randomized_scatternet_splits_are_transparent(
        seed: u64,
        piconets in 2usize..4,
        warmup in 0u64..4_000,
    ) {
        let scenario = ScatternetScenario::new(ScatternetConfig {
            piconets,
            measure_slots: 2_000,
            sim: paper_config(),
            ..ScatternetConfig::default()
        });
        let (orig, rest) = split_and_continue(&scenario, seed, warmup);
        prop_assert_eq!(orig, rest);
    }
}
