//! Golden-trace regression tests: the fig. 5 and fig. 9 waveforms are
//! pinned at VCD level against checked-in baselines, so *waveform-level*
//! behaviour — every RF enable edge, not just aggregate metrics — is
//! frozen. Any engine or baseband change that moves an edge fails here
//! with a first-difference report.
//!
//! Baselines live in `tests/golden/` (deliberately exempted from the
//! `*.vcd` gitignore). To regenerate after an *intentional* behaviour
//! change, run with `BLESS_GOLDEN=1`:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test --test golden_traces
//! ```
//!
//! Comparison is over normalized documents (metadata header blocks
//! stripped, line endings unified); timestamps and value changes are
//! compared exactly — they are the behaviour being pinned.

use btsim::core::experiments::{fig5_creation_waveforms, fig9_sniff_waveforms};
use btsim::core::Engine;

/// The registry's default base seed — the same realisation the
/// `experiments -- fig5_waveform` artifact is generated from.
const GOLDEN_SEED: u64 = 0x00B1_005E;

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Strips tool metadata (`$date`/`$version`/`$comment` blocks) and
/// normalizes line endings; keeps declarations, timestamps and value
/// changes verbatim. Our renderer emits no metadata today, but external
/// regenerations (GTKWave round-trips, future header stamps) must not
/// break the pin.
fn normalize_vcd(vcd: &str) -> String {
    let mut out = Vec::new();
    let mut skipping = false;
    for line in vcd.lines() {
        let trimmed = line.trim_end();
        let starts_meta = ["$date", "$version", "$comment"]
            .iter()
            .any(|m| trimmed.starts_with(m));
        if starts_meta {
            // Single-line form: `$date ... $end`.
            skipping = !trimmed.ends_with("$end");
            continue;
        }
        if skipping {
            skipping = !trimmed.ends_with("$end");
            continue;
        }
        out.push(trimmed.to_string());
    }
    out.join("\n")
}

/// First differing line, for a readable failure message.
fn first_diff(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("first difference at line {}: {la:?} vs {lb:?}", i + 1);
        }
    }
    format!(
        "one document is a prefix of the other ({} vs {} lines)",
        a.lines().count(),
        b.lines().count()
    )
}

/// Whether a test may rewrite the baseline under `BLESS_GOLDEN=1`.
/// Only the lockstep tests may: lockstep is the behavioural oracle, and
/// tests run concurrently — were the event-engine test allowed to
/// write too, a divergent engine could nondeterministically *become*
/// the blessed baseline (last writer wins).
#[derive(Clone, Copy, PartialEq)]
enum Bless {
    FromOracle,
    Never,
}

fn assert_matches_golden(name: &str, vcd: &str, bless: Bless) {
    let path = golden_path(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        if bless == Bless::FromOracle {
            std::fs::write(&path, vcd).expect("write blessed golden");
        }
        // Never compare mid-bless: the oracle tests may not have
        // rewritten the files yet on their own threads.
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden baseline {}: {e}", path.display()));
    let (got, want) = (normalize_vcd(vcd), normalize_vcd(&golden));
    assert_eq!(
        got,
        want,
        "{name} drifted from its golden baseline — {}\n\
         (intentional change? regenerate with BLESS_GOLDEN=1)",
        first_diff(&got, &want)
    );
}

#[test]
fn fig5_waveform_matches_golden_vcd() {
    let w = fig5_creation_waveforms(GOLDEN_SEED, Engine::Lockstep);
    assert_matches_golden("fig5.vcd", &w.vcd, Bless::FromOracle);
}

#[test]
fn fig9_waveform_matches_golden_vcd() {
    let w = fig9_sniff_waveforms(GOLDEN_SEED, Engine::Lockstep);
    assert_matches_golden("fig9.vcd", &w.vcd, Bless::FromOracle);
}

/// The event-driven engine must reproduce the *same golden waveforms*:
/// trace pinning composes with engine equivalence, so an engine bug
/// that moves an RF edge is caught at the waveform level too.
#[test]
fn event_engine_matches_the_same_goldens() {
    let w5 = fig5_creation_waveforms(GOLDEN_SEED, Engine::EventDriven);
    assert_matches_golden("fig5.vcd", &w5.vcd, Bless::Never);
    let w9 = fig9_sniff_waveforms(GOLDEN_SEED, Engine::EventDriven);
    assert_matches_golden("fig9.vcd", &w9.vcd, Bless::Never);
}

#[test]
fn normalizer_strips_metadata_but_keeps_behaviour() {
    let doc = "$date today $end\n$version tool 1.0 $end\n$comment\nmulti\nline\n$end\n\
               $timescale 1ns $end\n#100\n1!\n";
    let n = normalize_vcd(doc);
    assert!(!n.contains("today"));
    assert!(!n.contains("tool 1.0"));
    assert!(!n.contains("multi"));
    assert!(n.contains("$timescale 1ns $end"));
    assert!(n.contains("#100"));
    assert!(n.contains("1!"));
}
