//! Link Manager Protocol negotiation over the simulated air: the full
//! path from an `lm_request` through LMP PDUs in DM1 payloads to a
//! synchronised mode change on both ends.

use btsim::baseband::{LcEvent, LinkMode, SniffParams};
use btsim::core::scenario::{connect_pair, paper_config};
use btsim::core::{SimBuilder, Simulator};
use btsim::kernel::{SimDuration, SimTime};
use btsim::lmp::{LmEvent, Opcode};

fn connected(seed: u64) -> (Simulator, usize, usize, u8) {
    let mut b = SimBuilder::new(seed, paper_config());
    let m = b.add_device("master");
    let s = b.add_device("slave1");
    let mut sim = b.build();
    let lt = connect_pair(&mut sim, m, s, SimTime::from_us(60_000_000)).expect("connects");
    (sim, m, s, lt)
}

#[test]
fn lmp_connection_setup_completes_over_the_air() {
    let (mut sim, m, s, lt) = connected(1);
    sim.lm_request(m, |lm, slot| lm.start_setup(lt, slot));
    sim.run_until(sim.now() + SimDuration::from_slots(600));
    let m_done = sim
        .lm_events()
        .iter()
        .any(|e| e.device == m && matches!(e.event, LmEvent::SetupComplete { .. }));
    let s_done = sim
        .lm_events()
        .iter()
        .any(|e| e.device == s && matches!(e.event, LmEvent::SetupComplete { .. }));
    assert!(m_done, "master should reach setup-complete");
    assert!(s_done, "slave should reach setup-complete");
}

#[test]
fn lmp_sniff_negotiation_switches_both_sides() {
    let (mut sim, m, s, lt) = connected(2);
    let params = SniffParams {
        t_sniff: 60,
        n_attempt: 1,
        d_sniff: 0,
        n_timeout: 0,
    };
    sim.lm_request(m, |lm, slot| lm.request_sniff(lt, params, slot));
    sim.run_until(sim.now() + SimDuration::from_slots(800));
    let mode_events: Vec<_> = sim
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e.event,
                LcEvent::ModeChanged {
                    mode: LinkMode::Sniff,
                    ..
                }
            )
        })
        .collect();
    assert!(
        mode_events.iter().any(|e| e.device == m),
        "master never switched to sniff"
    );
    assert!(
        mode_events.iter().any(|e| e.device == s),
        "slave never switched to sniff"
    );
    // Both applied close together (same agreed instant, one LM poll apart).
    let tm = mode_events.iter().find(|e| e.device == m).unwrap().at;
    let ts = mode_events.iter().find(|e| e.device == s).unwrap().at;
    let skew = tm.slots().abs_diff(ts.slots());
    assert!(skew <= 2, "mode-change skew {skew} slots");
    // The link still works inside sniff windows.
    let applied = sim.lm_events().iter().any(|e| {
        matches!(
            e.event,
            LmEvent::ModeApplied {
                of: Opcode::SniffReq,
                ..
            }
        )
    });
    assert!(applied);
}

#[test]
fn lmp_hold_negotiation_suspends_both_sides_at_agreed_instant() {
    let (mut sim, m, s, lt) = connected(3);
    sim.lm_request(m, |lm, slot| lm.request_hold(lt, 300, slot));
    let hold_events = |sim: &Simulator, dev: usize| {
        sim.events()
            .iter()
            .filter(|e| {
                e.device == dev
                    && matches!(
                        e.event,
                        LcEvent::ModeChanged {
                            mode: LinkMode::Hold,
                            ..
                        }
                    )
            })
            .map(|e| e.at)
            .collect::<Vec<_>>()
    };
    sim.run_until(sim.now() + SimDuration::from_slots(800));
    let hm = hold_events(&sim, m);
    let hs = hold_events(&sim, s);
    assert!(!hm.is_empty(), "master never held");
    assert!(!hs.is_empty(), "slave never held");
    let skew = hm[0].slots().abs_diff(hs[0].slots());
    assert!(skew <= 2, "hold skew {skew} slots");
    // The slave comes back afterwards.
    let resumed = sim.events().iter().any(|e| {
        e.device == s
            && e.at > hs[0]
            && matches!(
                e.event,
                LcEvent::ModeChanged {
                    mode: LinkMode::Active,
                    ..
                }
            )
    });
    assert!(
        resumed,
        "slave must resynchronise after the negotiated hold"
    );
}

#[test]
fn lmp_detach_tears_down_both_sides() {
    let (mut sim, m, s, lt) = connected(4);
    sim.lm_request(m, |lm, slot| lm.request_detach(lt, slot));
    sim.run_until(sim.now() + SimDuration::from_slots(400));
    assert!(!sim.lc(m).is_master(), "master side must be torn down");
    assert!(!sim.lc(s).is_slave(), "slave side must be torn down");
    let peer_notified = sim
        .lm_events()
        .iter()
        .any(|e| e.device == s && matches!(e.event, LmEvent::PeerDetached { .. }));
    assert!(peer_notified, "slave LM should see the peer detach");
}

#[test]
fn lmp_pdus_survive_a_noisy_channel() {
    // ARQ carries LMP transactions through BER 1/300.
    let mut cfg = paper_config();
    cfg.channel.ber = 1.0 / 300.0;
    let mut b = SimBuilder::new(5, cfg);
    let m = b.add_device("master");
    let s = b.add_device("slave1");
    let mut sim = b.build();
    let lt = connect_pair(&mut sim, m, s, SimTime::from_us(240_000_000)).expect("connects");
    let params = SniffParams {
        t_sniff: 80,
        n_attempt: 1,
        d_sniff: 0,
        n_timeout: 0,
    };
    sim.lm_request(m, |lm, slot| lm.request_sniff(lt, params, slot));
    sim.run_until(sim.now() + SimDuration::from_slots(2000));
    let slave_sniffed = sim.events().iter().any(|e| {
        e.device == s
            && matches!(
                e.event,
                LcEvent::ModeChanged {
                    mode: LinkMode::Sniff,
                    ..
                }
            )
    });
    assert!(slave_sniffed, "negotiation must complete despite noise");
    let _ = m;
}

#[test]
fn lmp_hold_negotiation_reaches_a_scatternet_bridge() {
    use btsim::core::net::{build_scatternet, Topology};

    // Asymmetric member counts give the bridge distinct LT_ADDRs in its
    // two piconets, so the PDU-driven hold (which addresses by LT_ADDR)
    // lands on the right link.
    let mut topo = Topology::new();
    let a = topo.piconet("a", 2);
    let b = topo.piconet("b", 1);
    topo.bridge(a, b);
    let (mut sim, map) = build_scatternet(&topo, 13, paper_config()).unwrap();
    let bridge = topo.bridge_device(0);
    let lt_a = map.link(a, bridge).expect("formed").lt_addr;
    let lt_b = map.link(b, bridge).expect("formed").lt_addr;
    assert_ne!(lt_a, lt_b, "topology chosen for distinct LT_ADDRs");

    // Master B negotiates hold with the bridge over the air.
    sim.lm_request(topo.master_device(b), |lm, slot| {
        lm.request_hold(lt_b, 200, slot)
    });
    let held = sim.run_until_event(sim.now() + SimDuration::from_slots(600), |e| {
        e.device == bridge
            && matches!(
                e.event,
                LcEvent::ModeChanged {
                    lt_addr,
                    mode: LinkMode::Hold,
                } if lt_addr == lt_b
            )
    });
    assert!(held.is_some(), "bridge must hold its link into piconet B");
    // The link into piconet A is untouched and the bridge resumes in B.
    assert_eq!(sim.lc(bridge).slave_masters().len(), 2);
    let resumed = sim.run_until_event(sim.now() + SimDuration::from_slots(600), |e| {
        e.device == bridge
            && matches!(
                e.event,
                LcEvent::ModeChanged {
                    lt_addr,
                    mode: LinkMode::Active,
                } if lt_addr == lt_b
            )
    });
    assert!(resumed.is_some(), "bridge must resynchronise into B");
}

/// A pending LMP request to a peer that crashed before it could answer
/// must resolve to [`LmEvent::RequestTimedOut`] at *exactly* the
/// response deadline — the only way a transaction with a dead device
/// ever terminates — and the two engines must agree on the instant.
#[test]
fn request_to_a_crashed_peer_times_out_at_the_exact_deadline_on_both_engines() {
    const CRASH_SLOT: u64 = 2_000;
    const TIMEOUT_SLOTS: u64 = 400;
    let run = |engine: btsim::core::Engine| {
        let mut cfg = paper_config();
        cfg.engine = engine;
        cfg.faults = btsim::core::FaultPlan::parse(&format!("crash@{CRASH_SLOT}:dev=1"))
            .expect("fault spec parses");
        let mut b = btsim::core::SimBuilder::new(6, cfg);
        let m = b.add_device("master");
        let s = b.add_device("slave1");
        let mut sim = b.build();
        let lt = connect_pair(&mut sim, m, s, SimTime::from_us(60_000_000)).expect("connects");
        let _ = s;
        sim.run_until(SimTime::ZERO + SimDuration::from_slots(CRASH_SLOT + 8));
        let req_slot = sim.now().slots();
        sim.lm_request(m, |lm, slot| {
            lm.set_response_timeout_slots(TIMEOUT_SLOTS);
            lm.request_sniff(lt, SniffParams::default(), slot)
        });
        sim.run_until(sim.now() + SimDuration::from_slots(TIMEOUT_SLOTS + 200));
        let timeout = sim
            .lm_events()
            .iter()
            .find(|e| e.device == m && matches!(e.event, LmEvent::RequestTimedOut { .. }))
            .unwrap_or_else(|| panic!("no timeout logged: {:?}", sim.lm_events()));
        assert!(
            matches!(
                timeout.event,
                LmEvent::RequestTimedOut {
                    of: Opcode::SniffReq,
                    ..
                }
            ),
            "unexpected transaction timed out: {:?}",
            timeout.event
        );
        assert_eq!(
            timeout.at.slots(),
            req_slot + TIMEOUT_SLOTS,
            "the timeout must land exactly at the response deadline"
        );
        (timeout.at, format!("{:?}", timeout.event))
    };
    assert_eq!(
        run(btsim::core::Engine::Lockstep),
        run(btsim::core::Engine::EventDriven)
    );
}
