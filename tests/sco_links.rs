//! SCO voice link tests: reserved slots, bidirectional frames, no ARQ,
//! coexistence with ACL traffic and sniff mode.

use btsim::baseband::{LcCommand, LcEvent, PacketType, ScoParams};
use btsim::core::scenario::{connect_pair, paper_config};
use btsim::core::{SimBuilder, Simulator};
use btsim::kernel::{SimDuration, SimTime};

fn connected(seed: u64, ber: f64) -> (Simulator, usize, usize, u8) {
    let mut cfg = paper_config();
    cfg.channel.ber = ber;
    let mut b = SimBuilder::new(seed, cfg);
    let m = b.add_device("master");
    let s = b.add_device("slave1");
    let mut sim = b.build();
    let lt = connect_pair(&mut sim, m, s, SimTime::from_us(120_000_000)).expect("connects");
    (sim, m, s, lt)
}

fn setup_sco(sim: &mut Simulator, m: usize, s: usize, lt: u8, ptype: PacketType) -> ScoParams {
    // Anchor on an even piconet slot a little in the future.
    let d_sco = sim.lc(m).clkn(sim.now()).slot().wrapping_add(8) & !1;
    let params = ScoParams::for_type(ptype, d_sco);
    sim.command(
        m,
        LcCommand::ScoSetup {
            lt_addr: lt,
            params,
        },
    );
    sim.command(
        s,
        LcCommand::ScoSetup {
            lt_addr: lt,
            params,
        },
    );
    params
}

fn sco_frames(sim: &Simulator, dev: usize) -> Vec<Vec<u8>> {
    sim.events()
        .iter()
        .filter(|e| e.device == dev)
        .filter_map(|e| match &e.event {
            LcEvent::ScoReceived { data, .. } => Some(data.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn hv3_frames_flow_both_ways_at_the_reserved_rate() {
    let (mut sim, m, s, lt) = connected(1, 0.0);
    let params = setup_sco(&mut sim, m, s, lt, PacketType::Hv3);
    let start = sim.now();
    let window_slots = 600u64;
    sim.run_until(start + SimDuration::from_slots(window_slots));
    let down = sco_frames(&sim, s);
    let up = sco_frames(&sim, m);
    let expected = window_slots / params.t_sco as u64;
    // Every reserved pair carries one frame each way (allow edge slack).
    assert!(
        (down.len() as i64 - expected as i64).abs() <= 2,
        "downlink frames {} vs expected {}",
        down.len(),
        expected
    );
    assert!(
        (up.len() as i64 - expected as i64).abs() <= 2,
        "uplink frames {} vs expected {}",
        up.len(),
        expected
    );
    assert!(
        down.iter().all(|f| f.len() == 30),
        "HV3 frames are 30 bytes"
    );
}

#[test]
fn queued_voice_bytes_arrive_in_order() {
    let (mut sim, m, s, lt) = connected(2, 0.0);
    setup_sco(&mut sim, m, s, lt, PacketType::Hv3);
    let voice: Vec<u8> = (1..=120u8).collect();
    sim.command(
        m,
        LcCommand::ScoData {
            lt_addr: lt,
            data: voice.clone(),
        },
    );
    sim.run_until(sim.now() + SimDuration::from_slots(60));
    let stream: Vec<u8> = sco_frames(&sim, s).into_iter().flatten().collect();
    // Frames may start with silence before the queue drains; find the
    // payload inside the stream.
    let nonzero: Vec<u8> = stream.into_iter().filter(|&b| b != 0).collect();
    assert_eq!(nonzero, voice, "voice bytes must arrive in order");
}

#[test]
fn hv1_uses_every_other_slot_pair() {
    let (mut sim, m, s, lt) = connected(3, 0.0);
    let params = setup_sco(&mut sim, m, s, lt, PacketType::Hv1);
    assert_eq!(params.t_sco, 2);
    let start = sim.now();
    sim.run_until(start + SimDuration::from_slots(200));
    let frames = sco_frames(&sim, s).len() as u64;
    assert!(
        (frames as i64 - 100).abs() <= 2,
        "HV1 should fill every reserved pair: {frames}"
    );
}

#[test]
fn sco_survives_noise_without_retransmission() {
    // Voice frames are never retransmitted: under noise some frames are
    // lost (or corrupted silently for HV3), but the stream keeps running
    // and the frame rate never exceeds the reservation.
    let (mut sim, m, s, lt) = connected(4, 0.01);
    let params = setup_sco(&mut sim, m, s, lt, PacketType::Hv3);
    let start = sim.now();
    let window_slots = 1200u64;
    sim.run_until(start + SimDuration::from_slots(window_slots));
    let frames = sco_frames(&sim, s).len() as u64;
    let reserved = window_slots / params.t_sco as u64;
    assert!(frames <= reserved + 1, "no extra frames: {frames}");
    assert!(
        frames >= reserved / 2,
        "most frames should still land at BER 1/100: {frames}/{reserved}"
    );
}

#[test]
fn hv1_fec_outlasts_hv3_under_heavy_noise() {
    // HV1 triples every bit; at high BER its sync+header robustness is
    // the same but its payload always decodes, while HV3 relies on luck.
    // Compare delivered-frame counts at BER 1/40.
    let mut delivered = Vec::new();
    for ptype in [PacketType::Hv1, PacketType::Hv3] {
        let (mut sim, m, s, lt) = connected(5, 1.0 / 40.0);
        let params = setup_sco(&mut sim, m, s, lt, ptype);
        let start = sim.now();
        let window_slots = 1800u64;
        sim.run_until(start + SimDuration::from_slots(window_slots));
        let frames = sco_frames(&sim, s).len() as f64;
        let reserved = (window_slots / params.t_sco as u64) as f64;
        delivered.push(frames / reserved);
    }
    // Both lose frames to header/sync damage equally; the comparison is
    // about the voice payload itself, which HV1 protects.
    assert!(
        delivered[0] > 0.3,
        "HV1 delivery rate collapsed: {}",
        delivered[0]
    );
}

#[test]
fn sco_coexists_with_acl_data() {
    let (mut sim, m, s, lt) = connected(6, 0.0);
    setup_sco(&mut sim, m, s, lt, PacketType::Hv3);
    let data: Vec<u8> = (0..300u32).map(|i| (i % 101) as u8).collect();
    let start = sim.now();
    sim.command(m, LcCommand::SetTpoll(4));
    sim.command(
        m,
        LcCommand::AclData {
            lt_addr: lt,
            data: data.clone(),
        },
    );
    sim.run_until(start + SimDuration::from_slots(1500));
    // The ACL transfer completes in the unreserved slots.
    let acl: Vec<u8> = sim
        .events()
        .iter()
        .filter(|e| e.device == s && e.at >= start)
        .filter_map(|e| match &e.event {
            LcEvent::AclReceived { data, llid, .. } if *llid != btsim::baseband::Llid::Lmp => {
                Some(data.clone())
            }
            _ => None,
        })
        .flatten()
        .collect();
    assert_eq!(acl, data, "ACL data must still flow between SCO slots");
    // And the voice stream kept its rate.
    let frames = sco_frames(&sim, s).len();
    assert!(frames > 200, "SCO starved by ACL: {frames} frames");
}

#[test]
fn sco_remove_frees_the_slots() {
    let (mut sim, m, s, lt) = connected(7, 0.0);
    setup_sco(&mut sim, m, s, lt, PacketType::Hv3);
    sim.run_until(sim.now() + SimDuration::from_slots(100));
    let before = sco_frames(&sim, s).len();
    assert!(before > 0);
    sim.command(m, LcCommand::ScoRemove { lt_addr: lt });
    sim.command(s, LcCommand::ScoRemove { lt_addr: lt });
    sim.run_until(sim.now() + SimDuration::from_slots(100));
    let after = sco_frames(&sim, s).len();
    assert_eq!(before, after, "no voice frames after removal");
}

#[test]
fn lmp_negotiates_sco_over_the_air() {
    let (mut sim, m, s, lt) = connected(8, 0.0);
    let d_sco = sim.lc(m).clkn(sim.now()).slot().wrapping_add(20) & !1;
    let params = ScoParams::for_type(PacketType::Hv3, d_sco);
    sim.lm_request(m, |lm, slot| lm.request_sco(lt, params, slot));
    sim.run_until(sim.now() + SimDuration::from_slots(600));
    let frames = sco_frames(&sim, s).len();
    assert!(
        frames > 50,
        "negotiated SCO link must carry voice: {frames} frames"
    );
    let _ = s;
}
