//! Differential tests for the spatial medium and intra-run sharding
//! (`docs/SPATIAL.md`).
//!
//! The sharding determinism contract: for a fixed shard layout (device
//! positions + cell size), a sharded run is **bit-identical** to the
//! unsharded run — same per-device event streams, same clocks, same TX
//! stats, same power ledgers, same RNG fingerprints — for any worker
//! cap, any campaign thread count and both engines. The one permitted
//! presentation difference is the merged log's ordering of *different
//! devices'* events at the *same instant* (the shell normalizes it to
//! device order), so full-state comparisons here project the log per
//! device.

use btsim::baseband::LcCommand;
use btsim::channel::Position;
use btsim::core::campaign::Campaign;
use btsim::core::net::{DenseFloorConfig, DenseFloorScenario};
use btsim::core::scenario::{connect_pair, Scenario};
use btsim::core::{Engine, Fidelity, SimBuilder, Simulator};
use btsim::kernel::{SimDuration, SimTime};

/// Everything deterministic about a finished simulation, with the event
/// and LM logs projected per device (cross-device same-instant ordering
/// is presentation, not state).
///
/// `with_power` includes each device's power ledger. Shard invariance
/// covers it; cross-engine comparisons leave it out, matching the
/// engine-equivalence contract (`tests/engine_equivalence.rs`), because
/// the engines account idle slave listen windows slightly differently.
fn per_device_digest(sim: &Simulator, with_power: bool) -> String {
    use std::fmt::Write;
    let mut out = format!(
        "now={:?} tx={:?} ber={} rng={:#x} steps>0={}\n",
        sim.now(),
        sim.tx_stats(),
        sim.measured_ber(),
        sim.rng_fingerprint(),
        sim.steps_total() > 0,
    );
    for d in 0..sim.device_count() {
        let events: Vec<_> = sim.events().iter().filter(|e| e.device == d).collect();
        let lm: Vec<_> = sim.lm_events().iter().filter(|e| e.device == d).collect();
        write!(out, "dev{d}: events={events:?} lm={lm:?}").expect("string write");
        if with_power {
            write!(out, " power={:?}", sim.power_report(d)).expect("string write");
        }
        out.push('\n');
    }
    out
}

/// Two saturated master+slave clusters 100 m apart (two interference
/// components), driven through connect + saturate + run.
fn two_cluster_run(engine: Engine, fidelity: Fidelity, shards: usize, seed: u64) -> String {
    let mut cfg = DenseFloorConfig::default().sim;
    cfg.engine = engine;
    cfg.fidelity = fidelity;
    cfg.shards = shards;
    let mut b = SimBuilder::new(seed, cfg);
    let m0 = b.add_device_at("m0", Position::ORIGIN);
    let s0 = b.add_device_at("s0", Position::ORIGIN);
    let m1 = b.add_device_at("m1", Position::new(100.0, 0.0));
    let s1 = b.add_device_at("s1", Position::new(100.0, 0.0));
    let mut sim = b.build();
    let cap = SimTime::from_us(60_000_000);
    let lt0 = connect_pair(&mut sim, m0, s0, cap).expect("cluster 0 connects");
    let lt1 = connect_pair(&mut sim, m1, s1, cap).expect("cluster 1 connects");
    for (m, lt) in [(m0, lt0), (m1, lt1)] {
        sim.command(m, LcCommand::SetTpoll(2));
        sim.command(
            m,
            LcCommand::AclData {
                lt_addr: lt,
                data: vec![0x5A; 2_000 * 9],
            },
        );
    }
    sim.run_until(sim.now() + SimDuration::from_slots(2_000));
    per_device_digest(&sim, true)
}

#[test]
fn sharded_two_cluster_run_is_bit_identical_to_mono() {
    for engine in [Engine::Lockstep, Engine::EventDriven] {
        for fidelity in [Fidelity::Bit, Fidelity::Auto] {
            let mono = two_cluster_run(engine, fidelity, 1, 0xD1FF);
            for shards in [2, 8] {
                assert_eq!(
                    mono,
                    two_cluster_run(engine, fidelity, shards, 0xD1FF),
                    "{engine:?}/{fidelity:?}: {shards} shards diverged from mono"
                );
            }
        }
    }
}

/// The dense-floor scenario end to end (formation through the measured
/// window).
fn floor_digest(engine: Engine, shards: usize, seed: u64, with_power: bool) -> String {
    let scenario = DenseFloorScenario::new(DenseFloorConfig {
        grid: (2, 2),
        measure_slots: 1_000,
        sim: {
            let mut sim = DenseFloorConfig::default().sim;
            sim.engine = engine;
            sim.shards = shards;
            sim
        },
        ..DenseFloorConfig::default()
    });
    let mut sim = scenario.build(seed);
    let out = scenario.drive(&mut sim);
    format!("{out:?}\n{}", per_device_digest(&sim, with_power))
}

#[test]
fn dense_floor_scenario_is_shard_and_engine_invariant() {
    // Worker-cap invariance holds for the full state, power included.
    for engine in [Engine::Lockstep, Engine::EventDriven] {
        let mono = floor_digest(engine, 1, 42, true);
        for shards in [2, 8] {
            assert_eq!(
                mono,
                floor_digest(engine, shards, 42, true),
                "{engine:?} at {shards} shards diverged"
            );
        }
    }
    // Engine agreement covers the engine-equivalence digest surface
    // (logs, clock, TX stats, BER, RNG) — see `per_device_digest`.
    assert_eq!(
        floor_digest(Engine::Lockstep, 1, 42, false),
        floor_digest(Engine::EventDriven, 1, 42, false),
        "engines diverged on the dense floor"
    );
}

/// A whole Monte-Carlo campaign over the dense floor: the rendered JSON
/// (aggregates + every per-run record) must be identical across worker
/// shard caps, campaign thread counts and engines.
fn floor_campaign_json(engine: Engine, shards: usize, threads: usize) -> String {
    let scenario = DenseFloorScenario::new(DenseFloorConfig {
        grid: (2, 1),
        measure_slots: 1_000,
        sim: {
            let mut sim = DenseFloorConfig::default().sim;
            sim.engine = engine;
            sim.shards = shards;
            sim
        },
        ..DenseFloorConfig::default()
    });
    Campaign::new(scenario)
        .runs(2)
        .threads(threads)
        .base_seed(0xF100B)
        .run()
        .to_json()
        .render()
}

#[test]
fn dense_floor_campaign_is_shard_thread_and_engine_invariant() {
    let baseline = floor_campaign_json(Engine::Lockstep, 1, 1);
    for (engine, shards, threads) in [
        (Engine::Lockstep, 2, 1),
        (Engine::Lockstep, 8, 4),
        (Engine::Lockstep, 1, 4),
        (Engine::EventDriven, 1, 1),
        (Engine::EventDriven, 8, 2),
    ] {
        assert_eq!(
            baseline,
            floor_campaign_json(engine, shards, threads),
            "{engine:?} shards={shards} threads={threads} diverged"
        );
    }
}

/// Auto-fidelity run of one cell-interior pair next to a formed far
/// out-of-range cluster that is either silent or saturated. Both runs
/// share the exact same topology and formation timeline, so the only
/// difference is the boundary cluster's traffic. Returns the interior
/// pair's per-device projection plus its promotion gauge.
fn interior_pair_run(far_cluster_busy: bool, seed: u64) -> (String, bool) {
    let mut cfg = DenseFloorConfig::default().sim;
    cfg.fidelity = Fidelity::Auto;
    let mut b = SimBuilder::new(seed, cfg);
    let m0 = b.add_device_at("m0", Position::ORIGIN);
    let s0 = b.add_device_at("s0", Position::ORIGIN);
    let m1 = b.add_device_at("m1", Position::new(200.0, 0.0));
    let s1 = b.add_device_at("s1", Position::new(200.0, 0.0));
    let mut sim = b.build();
    let cap = SimTime::from_us(60_000_000);
    let lt0 = connect_pair(&mut sim, m0, s0, cap).expect("interior pair connects");
    let lt1 = connect_pair(&mut sim, m1, s1, cap).expect("far pair connects");
    if far_cluster_busy {
        // The boundary cluster's traffic is in full swing around every
        // stat-batch decision the interior pair makes.
        sim.command(m1, LcCommand::SetTpoll(2));
        sim.command(
            m1,
            LcCommand::AclData {
                lt_addr: lt1,
                data: vec![0xA5; 4_000 * 9],
            },
        );
    }
    sim.command(m0, LcCommand::SetTpoll(2));
    sim.command(
        m0,
        LcCommand::AclData {
            lt_addr: lt0,
            data: vec![0x5A; 4_000 * 9],
        },
    );
    sim.run_until(sim.now() + SimDuration::from_slots(4_000));
    use std::fmt::Write;
    let mut digest = String::new();
    for d in [0usize, 1] {
        let events: Vec<_> = sim.events().iter().filter(|e| e.device == d).collect();
        let lm: Vec<_> = sim.lm_events().iter().filter(|e| e.device == d).collect();
        writeln!(
            digest,
            "dev{d}: events={events:?} lm={lm:?} power={:?}",
            sim.power_report(d)
        )
        .expect("string write");
    }
    let promoted = sim
        .metrics_snapshot()
        .gauges()
        .iter()
        .any(|(name, value)| name == "dev0.fidelity.promoted" && *value > 0.0);
    (digest, promoted)
}

/// Promoting a cell-interior link to the statistical tier must neither
/// be blocked by a busy out-of-range cluster nor observe it mid-batch:
/// the interior pair's entire evolution — every event, power ledger and
/// RNG draw — is identical whether the boundary cluster is silent or
/// saturated.
#[test]
fn stat_promotion_of_interior_link_ignores_out_of_range_cluster() {
    let (quiet, promoted_quiet) = interior_pair_run(false, 0x5EED);
    let (busy, promoted_busy) = interior_pair_run(true, 0x5EED);
    assert!(
        promoted_quiet,
        "saturated clean pair must promote to the stat tier"
    );
    assert!(
        promoted_busy,
        "interior link must still promote with far traffic present"
    );
    assert_eq!(
        quiet, busy,
        "an out-of-range cluster's traffic leaked into the interior pair's evolution"
    );
}
