//! Low-power mode invariants: sniff, hold and park timing and their RF
//! activity ordering (the paper's §3.2) — checked under **both**
//! engines, with the fast-forward cases additionally pinned to the
//! negotiated anchors: a skipped slot must accrue zero active-power and
//! every wakeup must land exactly where lockstep puts it.

use btsim::baseband::{LcCommand, LcEvent, LifePhase, LinkMode, SniffParams};
use btsim::core::scenario::{
    connect_pair, paper_config, HoldConfig, HoldScenario, Scenario, SniffConfig, SniffScenario,
};
use btsim::core::{Engine, SimBuilder, Simulator};
use btsim::kernel::{SimDuration, SimTime, TraceValue};

#[test]
fn sniff_crossover_matches_paper() {
    // Below ~30 slots sniffing costs more than active mode; above, less.
    let active = SniffScenario::new(SniffConfig {
        t_sniff: 0,
        measure_slots: 60_000,
        ..SniffConfig::default()
    })
    .run(3);
    let short = SniffScenario::new(SniffConfig {
        t_sniff: 20,
        measure_slots: 60_000,
        ..SniffConfig::default()
    })
    .run(3);
    let long = SniffScenario::new(SniffConfig {
        t_sniff: 100,
        measure_slots: 60_000,
        ..SniffConfig::default()
    })
    .run(3);
    assert!(
        short.activity > active.activity,
        "Tsniff=20 should cost more than active: {} vs {}",
        short.activity,
        active.activity
    );
    assert!(
        long.activity < active.activity,
        "Tsniff=100 should save power: {} vs {}",
        long.activity,
        active.activity
    );
    // Paper: ≈30% reduction at Tsniff=100.
    let reduction = 1.0 - long.activity / active.activity;
    assert!(
        (0.15..0.45).contains(&reduction),
        "reduction at Tsniff=100 was {reduction:.2}, paper reports ≈0.30"
    );
}

#[test]
fn sniffing_slave_still_receives_the_periodic_data() {
    // With anchors aligned to the data period, no packet is lost.
    let mut cfg = paper_config();
    cfg.channel.ber = 0.0;
    let mut b = SimBuilder::new(8, cfg);
    let m = b.add_device("master");
    let s = b.add_device("slave1");
    let mut sim = b.build();
    let lt = connect_pair(&mut sim, m, s, SimTime::from_us(60_000_000)).expect("connects");
    // Align sniff anchors with the data schedule.
    let t0 = {
        let mut t = sim.now() + SimDuration::from_slots(8);
        let half = SimDuration::HALF_SLOT.ns();
        t = SimTime::from_ns(t.ns().div_ceil(half) * half);
        while !(sim.lc(m).clkn(t).is_master_tx_slot() && sim.lc(m).clkn(t).is_slot_start()) {
            t += SimDuration::HALF_SLOT;
        }
        t
    };
    let params = SniffParams {
        t_sniff: 50,
        n_attempt: 1,
        d_sniff: sim.lc(m).clkn(t0).slot() % 50,
        n_timeout: 0,
    };
    sim.command(
        m,
        LcCommand::Sniff {
            lt_addr: lt,
            params,
        },
    );
    sim.command(
        s,
        LcCommand::Sniff {
            lt_addr: lt,
            params,
        },
    );
    let n_packets = 20u64;
    for k in 0..n_packets {
        sim.command_at(
            m,
            LcCommand::AclData {
                lt_addr: lt,
                data: vec![k as u8; 10],
            },
            t0 + SimDuration::from_slots(k * 50) - SimDuration::HALF_SLOT,
        );
    }
    sim.run_until(t0 + SimDuration::from_slots(n_packets * 50 + 100));
    let received = sim
        .events()
        .iter()
        .filter(|e| e.device == s && matches!(e.event, LcEvent::AclReceived { .. }))
        .count() as u64;
    assert_eq!(received, n_packets, "sniffing slave missed packets");
}

#[test]
fn hold_crossover_matches_paper() {
    // Paper Fig. 12: hold beats active only above ≈120 slots.
    let active = HoldScenario::new(HoldConfig {
        t_hold: 0,
        measure_slots: 60_000,
        ..HoldConfig::default()
    })
    .run(4);
    let short = HoldScenario::new(HoldConfig {
        t_hold: 40,
        measure_slots: 60_000,
        ..HoldConfig::default()
    })
    .run(4);
    let long = HoldScenario::new(HoldConfig {
        t_hold: 400,
        measure_slots: 60_000,
        ..HoldConfig::default()
    })
    .run(4);
    assert!(short.activity > active.activity, "Thold=40 must cost more");
    assert!(long.activity < active.activity, "Thold=400 must save");
    // The paper's active floor: ≈2.6%.
    assert!(
        (0.015..0.040).contains(&active.activity),
        "idle active floor {} should be ≈2.6%",
        active.activity
    );
}

#[test]
fn hold_suspends_and_resumes_the_link() {
    let mut b = SimBuilder::new(5, paper_config());
    let m = b.add_device("master");
    let s = b.add_device("slave1");
    let mut sim = b.build();
    let lt = connect_pair(&mut sim, m, s, SimTime::from_us(60_000_000)).expect("connects");
    sim.command(
        m,
        LcCommand::Hold {
            lt_addr: lt,
            hold_slots: 200,
        },
    );
    sim.command(
        s,
        LcCommand::Hold {
            lt_addr: lt,
            hold_slots: 200,
        },
    );
    let hold_start = sim.now();
    // The slave resumes after the hold expires and the master polls it.
    let resumed = sim.run_until_event(hold_start + SimDuration::from_slots(400), |e| {
        e.device == 1
            && matches!(
                e.event,
                LcEvent::ModeChanged {
                    mode: LinkMode::Active,
                    ..
                }
            )
    });
    let resumed = resumed.expect("slave must resynchronise after hold");
    let held_slots = resumed.at.slots() - hold_start.slots();
    assert!(
        (200..230).contains(&held_slots),
        "resume took {held_slots} slots for a 200-slot hold"
    );
    // During the hold the slave's RF was essentially silent.
    let rep = sim.power_report(1);
    let hold_phase = rep.phase(LifePhase::Hold);
    assert!(
        hold_phase.activity() < 0.05,
        "hold-phase activity {}",
        hold_phase.activity()
    );
    // Data flows again after resume.
    sim.command(
        m,
        LcCommand::AclData {
            lt_addr: lt,
            data: vec![9; 5],
        },
    );
    let got = sim.run_until_event(sim.now() + SimDuration::from_slots(300), |e| {
        e.device == 1 && matches!(e.event, LcEvent::AclReceived { .. })
    });
    assert!(got.is_some(), "link must carry data after hold");
}

#[test]
fn parked_slave_wakes_only_for_beacons() {
    let mut b = SimBuilder::new(6, paper_config());
    let m = b.add_device("master");
    let s = b.add_device("slave1");
    let mut sim = b.build();
    let lt = connect_pair(&mut sim, m, s, SimTime::from_us(60_000_000)).expect("connects");
    sim.command(
        m,
        LcCommand::Park {
            lt_addr: lt,
            beacon_interval: 200,
        },
    );
    sim.command(
        s,
        LcCommand::Park {
            lt_addr: lt,
            beacon_interval: 200,
        },
    );
    let start = sim.now();
    sim.run_until(start + SimDuration::from_slots(20_000));
    let rep = sim.power_report(1);
    let park = rep.phase(LifePhase::Park);
    assert!(park.phase_ns > 0, "slave should have spent time parked");
    assert!(
        park.activity() < 0.002,
        "parked activity {} should be far below the active floor",
        park.activity()
    );
    // Unpark restores the link.
    sim.command(m, LcCommand::Unpark { lt_addr: lt });
    sim.command(s, LcCommand::Unpark { lt_addr: lt });
    sim.command(
        m,
        LcCommand::AclData {
            lt_addr: lt,
            data: vec![7; 3],
        },
    );
    let got = sim.run_until_event(sim.now() + SimDuration::from_slots(400), |e| {
        e.device == 1 && matches!(e.event, LcEvent::AclReceived { .. })
    });
    assert!(got.is_some(), "link must carry data after unpark");
}

/// Rising `enable_rx_RF` edges of `scope` strictly after `after`.
fn rx_rising_edges(sim: &Simulator, scope: &str, after: SimTime) -> Vec<SimTime> {
    let rec = sim.recorder();
    let idx = rec
        .signals()
        .iter()
        .position(|s| s.scope == scope && s.name == "enable_rx_RF")
        .expect("signal declared");
    rec.sorted_records()
        .iter()
        .filter(|r| rec.index_of(r.signal) == idx && r.at > after)
        .filter(|r| matches!(r.value, TraceValue::Bit(true)))
        .map(|r| r.at)
        .collect()
}

/// Connected traced pair under `engine`.
fn traced_pair(seed: u64, engine: Engine) -> (Simulator, u8) {
    let mut cfg = paper_config();
    cfg.trace = true;
    cfg.engine = engine;
    let mut b = SimBuilder::new(seed, cfg);
    let m = b.add_device("master");
    let s = b.add_device("slave1");
    let mut sim = b.build();
    let lt = connect_pair(&mut sim, m, s, SimTime::from_us(60_000_000)).expect("connects");
    let _ = (m, s);
    (sim, lt)
}

#[test]
fn sniff_wakeups_land_exactly_on_negotiated_anchors_under_both_engines() {
    for engine in [Engine::Lockstep, Engine::EventDriven] {
        let (mut sim, lt) = traced_pair(41, engine);
        let t_sniff = 50u32;
        let d_sniff = sim.lc(0).clkn(sim.now()).slot() % t_sniff;
        let params = SniffParams {
            t_sniff,
            n_attempt: 1,
            d_sniff,
            n_timeout: 0,
        };
        sim.command(
            0,
            LcCommand::Sniff {
                lt_addr: lt,
                params,
            },
        );
        sim.command(
            1,
            LcCommand::Sniff {
                lt_addr: lt,
                params,
            },
        );
        // Let the mode settle, then watch a long idle stretch.
        let settle = sim.now() + SimDuration::from_slots(2 * t_sniff as u64);
        sim.run_until(settle + SimDuration::from_slots(5_000));
        let edges = rx_rising_edges(&sim, "slave1", settle);
        assert!(
            edges.len() >= 90,
            "{engine:?}: expected ~100 anchor wakeups, saw {}",
            edges.len()
        );
        for at in &edges {
            // Master CLK == piconet CLK: every wakeup sits on an anchor.
            let slot = sim.lc(0).clkn(*at).slot();
            assert_eq!(
                slot % t_sniff,
                d_sniff,
                "{engine:?}: rx wakeup at {at} (slot {slot}) off the anchor grid"
            );
        }
        // Skipped slots accrue zero active-power: total sniff-phase RX
        // equals the per-anchor listen windows, far below one slot each.
        let rep = sim.power_report(1);
        let sniff = rep.phase(LifePhase::Sniff);
        let per_anchor_ns = sniff.rx_ns / edges.len() as u64;
        assert!(
            per_anchor_ns < SimDuration::SLOT.ns() * 2,
            "{engine:?}: {per_anchor_ns} ns RX per anchor — idle slots leaked power"
        );
        assert!(
            sniff.activity() < 0.05,
            "{engine:?}: sniff activity {}",
            sniff.activity()
        );
    }
}

#[test]
fn hold_wakeup_honours_the_resync_guard_under_both_engines() {
    let guard = paper_config().lc.resync_guard_slots as u64;
    for engine in [Engine::Lockstep, Engine::EventDriven] {
        let (mut sim, lt) = traced_pair(42, engine);
        let hold_slots = 600u32;
        let issued_at = sim.now();
        sim.command(
            0,
            LcCommand::Hold {
                lt_addr: lt,
                hold_slots,
            },
        );
        sim.command(
            1,
            LcCommand::Hold {
                lt_addr: lt,
                hold_slots,
            },
        );
        sim.run_until(issued_at + SimDuration::from_slots(hold_slots as u64 + 100));
        // The hold starts at the next slot; the slave's first RX edge
        // after entering hold is the resync wakeup, `guard` slots early.
        let mode_change = sim
            .events()
            .iter()
            .find(|e| {
                e.device == 1
                    && matches!(
                        e.event,
                        LcEvent::ModeChanged {
                            mode: LinkMode::Hold,
                            ..
                        }
                    )
            })
            .expect("slave holds")
            .at;
        let edges = rx_rising_edges(&sim, "slave1", mode_change);
        let first = edges.first().expect("slave resynchronises");
        let hold_until = issued_at.slots() + 1 + hold_slots as u64;
        let wake_slot = first.slots();
        assert!(
            (hold_until - guard..=hold_until).contains(&wake_slot),
            "{engine:?}: first wakeup at slot {wake_slot}, expected within the \
             {guard}-slot guard before {hold_until}"
        );
        // The held stretch itself is RF-silent.
        let rep = sim.power_report(1);
        let hold = rep.phase(LifePhase::Hold);
        assert!(
            hold.activity() < 0.02,
            "{engine:?}: hold-phase activity {}",
            hold.activity()
        );
    }
}

#[test]
fn park_wakeups_land_exactly_on_beacon_slots_under_both_engines() {
    for engine in [Engine::Lockstep, Engine::EventDriven] {
        let (mut sim, lt) = traced_pair(43, engine);
        let beacon = 200u32;
        sim.command(
            0,
            LcCommand::Park {
                lt_addr: lt,
                beacon_interval: beacon,
            },
        );
        sim.command(
            1,
            LcCommand::Park {
                lt_addr: lt,
                beacon_interval: beacon,
            },
        );
        let settle = sim.now() + SimDuration::from_slots(2 * beacon as u64);
        sim.run_until(settle + SimDuration::from_slots(10_000));
        let edges = rx_rising_edges(&sim, "slave1", settle);
        assert!(
            edges.len() >= 40,
            "{engine:?}: expected ~50 beacon wakeups, saw {}",
            edges.len()
        );
        for at in &edges {
            let slot = sim.lc(0).clkn(*at).slot();
            assert_eq!(
                slot % beacon,
                0,
                "{engine:?}: beacon wakeup at {at} (slot {slot}) off the beacon grid"
            );
        }
        let rep = sim.power_report(1);
        let park = rep.phase(LifePhase::Park);
        assert!(
            park.activity() < 0.002,
            "{engine:?}: park activity {} — skipped slots leaked power",
            park.activity()
        );
    }
}

#[test]
fn activity_ordering_park_hold_sniff_active() {
    // Steady-state RF cost: park < hold(1000) < sniff(100) < active.
    let sniff = SniffScenario::new(SniffConfig {
        t_sniff: 100,
        measure_slots: 40_000,
        ..SniffConfig::default()
    })
    .run(9);
    let active = SniffScenario::new(SniffConfig {
        t_sniff: 0,
        measure_slots: 40_000,
        ..SniffConfig::default()
    })
    .run(9);
    let hold = HoldScenario::new(HoldConfig {
        t_hold: 1000,
        measure_slots: 40_000,
        ..HoldConfig::default()
    })
    .run(9);
    assert!(hold.activity < sniff.activity);
    assert!(sniff.activity < active.activity);
}
