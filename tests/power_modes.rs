//! Low-power mode invariants: sniff, hold and park timing and their RF
//! activity ordering (the paper's §3.2).

use btsim::baseband::{LcCommand, LcEvent, LifePhase, LinkMode, SniffParams};
use btsim::core::scenario::{
    connect_pair, paper_config, HoldConfig, HoldScenario, Scenario, SniffConfig, SniffScenario,
};
use btsim::core::SimBuilder;
use btsim::kernel::{SimDuration, SimTime};

#[test]
fn sniff_crossover_matches_paper() {
    // Below ~30 slots sniffing costs more than active mode; above, less.
    let active = SniffScenario::new(SniffConfig {
        t_sniff: 0,
        measure_slots: 60_000,
        ..SniffConfig::default()
    })
    .run(3);
    let short = SniffScenario::new(SniffConfig {
        t_sniff: 20,
        measure_slots: 60_000,
        ..SniffConfig::default()
    })
    .run(3);
    let long = SniffScenario::new(SniffConfig {
        t_sniff: 100,
        measure_slots: 60_000,
        ..SniffConfig::default()
    })
    .run(3);
    assert!(
        short.activity > active.activity,
        "Tsniff=20 should cost more than active: {} vs {}",
        short.activity,
        active.activity
    );
    assert!(
        long.activity < active.activity,
        "Tsniff=100 should save power: {} vs {}",
        long.activity,
        active.activity
    );
    // Paper: ≈30% reduction at Tsniff=100.
    let reduction = 1.0 - long.activity / active.activity;
    assert!(
        (0.15..0.45).contains(&reduction),
        "reduction at Tsniff=100 was {reduction:.2}, paper reports ≈0.30"
    );
}

#[test]
fn sniffing_slave_still_receives_the_periodic_data() {
    // With anchors aligned to the data period, no packet is lost.
    let mut cfg = paper_config();
    cfg.channel.ber = 0.0;
    let mut b = SimBuilder::new(8, cfg);
    let m = b.add_device("master");
    let s = b.add_device("slave1");
    let mut sim = b.build();
    let lt = connect_pair(&mut sim, m, s, SimTime::from_us(60_000_000)).expect("connects");
    // Align sniff anchors with the data schedule.
    let t0 = {
        let mut t = sim.now() + SimDuration::from_slots(8);
        let half = SimDuration::HALF_SLOT.ns();
        t = SimTime::from_ns(t.ns().div_ceil(half) * half);
        while !(sim.lc(m).clkn(t).is_master_tx_slot() && sim.lc(m).clkn(t).is_slot_start()) {
            t += SimDuration::HALF_SLOT;
        }
        t
    };
    let params = SniffParams {
        t_sniff: 50,
        n_attempt: 1,
        d_sniff: sim.lc(m).clkn(t0).slot() % 50,
        n_timeout: 0,
    };
    sim.command(
        m,
        LcCommand::Sniff {
            lt_addr: lt,
            params,
        },
    );
    sim.command(
        s,
        LcCommand::Sniff {
            lt_addr: lt,
            params,
        },
    );
    let n_packets = 20u64;
    for k in 0..n_packets {
        sim.command_at(
            m,
            LcCommand::AclData {
                lt_addr: lt,
                data: vec![k as u8; 10],
            },
            t0 + SimDuration::from_slots(k * 50) - SimDuration::HALF_SLOT,
        );
    }
    sim.run_until(t0 + SimDuration::from_slots(n_packets * 50 + 100));
    let received = sim
        .events()
        .iter()
        .filter(|e| e.device == s && matches!(e.event, LcEvent::AclReceived { .. }))
        .count() as u64;
    assert_eq!(received, n_packets, "sniffing slave missed packets");
}

#[test]
fn hold_crossover_matches_paper() {
    // Paper Fig. 12: hold beats active only above ≈120 slots.
    let active = HoldScenario::new(HoldConfig {
        t_hold: 0,
        measure_slots: 60_000,
        ..HoldConfig::default()
    })
    .run(4);
    let short = HoldScenario::new(HoldConfig {
        t_hold: 40,
        measure_slots: 60_000,
        ..HoldConfig::default()
    })
    .run(4);
    let long = HoldScenario::new(HoldConfig {
        t_hold: 400,
        measure_slots: 60_000,
        ..HoldConfig::default()
    })
    .run(4);
    assert!(short.activity > active.activity, "Thold=40 must cost more");
    assert!(long.activity < active.activity, "Thold=400 must save");
    // The paper's active floor: ≈2.6%.
    assert!(
        (0.015..0.040).contains(&active.activity),
        "idle active floor {} should be ≈2.6%",
        active.activity
    );
}

#[test]
fn hold_suspends_and_resumes_the_link() {
    let mut b = SimBuilder::new(5, paper_config());
    let m = b.add_device("master");
    let s = b.add_device("slave1");
    let mut sim = b.build();
    let lt = connect_pair(&mut sim, m, s, SimTime::from_us(60_000_000)).expect("connects");
    sim.command(
        m,
        LcCommand::Hold {
            lt_addr: lt,
            hold_slots: 200,
        },
    );
    sim.command(
        s,
        LcCommand::Hold {
            lt_addr: lt,
            hold_slots: 200,
        },
    );
    let hold_start = sim.now();
    // The slave resumes after the hold expires and the master polls it.
    let resumed = sim.run_until_event(hold_start + SimDuration::from_slots(400), |e| {
        e.device == 1
            && matches!(
                e.event,
                LcEvent::ModeChanged {
                    mode: LinkMode::Active,
                    ..
                }
            )
    });
    let resumed = resumed.expect("slave must resynchronise after hold");
    let held_slots = resumed.at.slots() - hold_start.slots();
    assert!(
        (200..230).contains(&held_slots),
        "resume took {held_slots} slots for a 200-slot hold"
    );
    // During the hold the slave's RF was essentially silent.
    let rep = sim.power_report(1);
    let hold_phase = rep.phase(LifePhase::Hold);
    assert!(
        hold_phase.activity() < 0.05,
        "hold-phase activity {}",
        hold_phase.activity()
    );
    // Data flows again after resume.
    sim.command(
        m,
        LcCommand::AclData {
            lt_addr: lt,
            data: vec![9; 5],
        },
    );
    let got = sim.run_until_event(sim.now() + SimDuration::from_slots(300), |e| {
        e.device == 1 && matches!(e.event, LcEvent::AclReceived { .. })
    });
    assert!(got.is_some(), "link must carry data after hold");
}

#[test]
fn parked_slave_wakes_only_for_beacons() {
    let mut b = SimBuilder::new(6, paper_config());
    let m = b.add_device("master");
    let s = b.add_device("slave1");
    let mut sim = b.build();
    let lt = connect_pair(&mut sim, m, s, SimTime::from_us(60_000_000)).expect("connects");
    sim.command(
        m,
        LcCommand::Park {
            lt_addr: lt,
            beacon_interval: 200,
        },
    );
    sim.command(
        s,
        LcCommand::Park {
            lt_addr: lt,
            beacon_interval: 200,
        },
    );
    let start = sim.now();
    sim.run_until(start + SimDuration::from_slots(20_000));
    let rep = sim.power_report(1);
    let park = rep.phase(LifePhase::Park);
    assert!(park.phase_ns > 0, "slave should have spent time parked");
    assert!(
        park.activity() < 0.002,
        "parked activity {} should be far below the active floor",
        park.activity()
    );
    // Unpark restores the link.
    sim.command(m, LcCommand::Unpark { lt_addr: lt });
    sim.command(s, LcCommand::Unpark { lt_addr: lt });
    sim.command(
        m,
        LcCommand::AclData {
            lt_addr: lt,
            data: vec![7; 3],
        },
    );
    let got = sim.run_until_event(sim.now() + SimDuration::from_slots(400), |e| {
        e.device == 1 && matches!(e.event, LcEvent::AclReceived { .. })
    });
    assert!(got.is_some(), "link must carry data after unpark");
}

#[test]
fn activity_ordering_park_hold_sniff_active() {
    // Steady-state RF cost: park < hold(1000) < sniff(100) < active.
    let sniff = SniffScenario::new(SniffConfig {
        t_sniff: 100,
        measure_slots: 40_000,
        ..SniffConfig::default()
    })
    .run(9);
    let active = SniffScenario::new(SniffConfig {
        t_sniff: 0,
        measure_slots: 40_000,
        ..SniffConfig::default()
    })
    .run(9);
    let hold = HoldScenario::new(HoldConfig {
        t_hold: 1000,
        measure_slots: 40_000,
        ..HoldConfig::default()
    })
    .run(9);
    assert!(hold.activity < sniff.activity);
    assert!(sniff.activity < active.activity);
}
