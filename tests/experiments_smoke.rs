//! Smoke tests of every paper experiment at reduced sample counts: each
//! must run end-to-end and satisfy its qualitative (shape) assertions.

use btsim::core::experiments::*;
use btsim::core::Engine;

fn quick(runs: usize) -> ExpOptions {
    ExpOptions {
        runs,
        threads: 0,
        base_seed: 0x00B1_005E,
        ..ExpOptions::default()
    }
}

#[test]
fn fig6_inquiry_sweep_shape() {
    let f = fig6_inquiry_vs_ber(&quick(10));
    assert_eq!(f.rows.len(), 9);
    // Noiseless anchor near the paper's 1556 slots.
    assert!(
        (1100.0..2100.0).contains(&f.rows[0].mean_slots),
        "no-noise inquiry mean {}",
        f.rows[0].mean_slots
    );
    // All runs complete (no timeout in Fig. 6).
    assert!(f.rows.iter().all(|r| r.completed > 0.99));
    // The BER 1/30 point is the worst.
    let worst = f.rows.last().unwrap().mean_slots;
    assert!(
        worst >= f.rows[0].mean_slots,
        "mean should not improve with noise"
    );
}

#[test]
fn fig7_page_sweep_shape() {
    let f = fig7_page_vs_ber(&quick(12));
    // Paper: ≈17 slots with no noise, all runs complete.
    assert!(
        (8.0..30.0).contains(&f.rows[0].mean_slots),
        "no-noise page mean {}",
        f.rows[0].mean_slots
    );
    assert!(f.rows[0].completed > 0.99);
    // Success collapses with noise; BER 1/30 is essentially impossible.
    let last = f.rows.last().unwrap();
    assert!(
        last.completed < 0.25,
        "page at BER 1/30 should almost never complete, got {}",
        last.completed
    );
}

#[test]
fn fig8_page_is_the_bottleneck() {
    let f = fig8_creation_failure(&quick(12));
    let last = f.rows.last().unwrap();
    assert!(
        last.page_failure > 0.8,
        "page failure {}",
        last.page_failure
    );
    assert!(
        last.page_failure > last.inquiry_failure,
        "page must fail more than inquiry at BER 1/30"
    );
    // Failure grows with BER for the page phase.
    let first = &f.rows[0];
    assert!(first.page_failure < last.page_failure);
}

#[test]
fn fig10_linear_tx_above_rx() {
    let f = fig10_master_activity(&quick(1));
    assert_eq!(f.rows.len(), 8);
    for r in &f.rows {
        assert!(r.tx > r.rx, "TX above RX at duty {}", r.duty);
    }
    // Roughly linear: activity at 2% ≈ 4× activity at 0.5%.
    let low = f
        .rows
        .iter()
        .find(|r| (r.duty - 0.005).abs() < 1e-9)
        .unwrap();
    let high = f
        .rows
        .iter()
        .find(|r| (r.duty - 0.02).abs() < 1e-9)
        .unwrap();
    let ratio = high.tx / low.tx;
    assert!(
        (3.0..5.0).contains(&ratio),
        "TX should scale ≈linearly with duty, ratio {ratio}"
    );
}

#[test]
fn fig11_break_even_and_reduction() {
    let f = fig11_sniff_activity(&quick(1));
    // Paper: break-even ≈ 30 slots.
    let be = f.break_even().expect("sniff must win somewhere");
    assert!(
        (20..=50).contains(&be),
        "sniff break-even {be}, paper reports ≈30"
    );
    // Paper: ≈30% reduction at Tsniff = 100.
    let at100 = f.rows.iter().find(|r| r.interval == 100).unwrap();
    let reduction = 1.0 - at100.mode_activity / f.active_activity;
    assert!(
        (0.2..0.45).contains(&reduction),
        "reduction at Tsniff=100 is {reduction:.2}, paper ≈0.30"
    );
    // Monotone decreasing activity with Tsniff.
    for w in f.rows.windows(2) {
        assert!(w[0].mode_activity >= w[1].mode_activity);
    }
}

#[test]
fn fig12_break_even_and_floor() {
    let f = fig12_hold_activity(&quick(1));
    // Paper: the active floor is ≈2.6%.
    assert!(
        (0.018..0.034).contains(&f.active_activity),
        "active floor {}",
        f.active_activity
    );
    // Paper: hold wins only above ≈120 slots.
    let be = f.break_even().expect("hold must win somewhere");
    assert!(
        (80..=160).contains(&be),
        "hold break-even {be}, paper reports ≈120"
    );
    // Hold activity decays towards zero.
    let last = f.rows.last().unwrap();
    assert!(last.mode_activity < 0.01);
}

#[test]
fn fig5_and_fig9_waveforms() {
    let w5 = fig5_creation_waveforms(1, Engine::Lockstep);
    assert!(w5.ascii.contains("slave3.enable_rx_RF"));
    assert!(w5.vcd.contains("$var wire 1"));
    assert!(w5.notes.contains("piconet formed: true"));
    let w9 = fig9_sniff_waveforms(1, Engine::Lockstep);
    assert!(w9.ascii.contains("slave2.enable_rx_RF"));
    // Sniffing slaves are mostly silent: their waveform rows contain long
    // low stretches.
    let sniff_row = w9
        .ascii
        .lines()
        .find(|l| l.contains("slave3.enable_rx_RF"))
        .expect("slave3 row");
    let lows = sniff_row.chars().filter(|&c| c == '_').count();
    let highs = sniff_row.chars().filter(|&c| c == '#').count();
    assert!(
        lows > highs,
        "a sniffing slave should be mostly RF-idle: {sniff_row}"
    );
}

#[test]
fn table1_speed_is_faster_than_2005() {
    let s = table1_sim_speed(3, Engine::Lockstep);
    assert!(s.speedup_vs_paper > 10.0, "speedup {}", s.speedup_vs_paper);
}

#[test]
fn ext_throughput_dm_beats_dh_under_noise() {
    let f = ext_packet_throughput(&quick(1));
    let get = |t: btsim::baseband::PacketType, ber: &str| {
        f.rows
            .iter()
            .find(|r| r.ptype == t && r.ber_label == ber)
            .map(|r| r.kbps)
            .unwrap()
    };
    use btsim::baseband::PacketType::{Dh5, Dm5};
    // Clean channel: DH5 ahead (no FEC overhead).
    assert!(get(Dh5, "0") > get(Dm5, "0"));
    // Both degrade with noise.
    assert!(get(Dh5, "1/100") < get(Dh5, "0"));
}
