//! Integration tests of the packet-capture observability layer: a
//! capture roundtrips through the in-repo btsnoop reader with every
//! flag and pseudo-header field agreeing with the sink's records, the
//! serialized file is byte-identical across the two engines, and
//! requesting capture pins the PHY at bit level so air images exist.

use btsim::baseband::LcCommand;
use btsim::core::scenario::{connect_pair, paper_config};
use btsim::core::{Engine, Fidelity, SimBuilder, SimConfig, Simulator};
use btsim::kernel::{CaptureDir, CaptureKind, SimDuration, SimTime};
use btsim::trace::btsnoop;

/// A connected pair with the capture tap on, driven through an LMP
/// setup exchange and an ACL transfer — air and LMP records both ways.
fn captured_run_with(seed: u64, cfg: SimConfig) -> Simulator {
    let mut b = SimBuilder::new(seed, cfg);
    let m = b.add_device("master");
    let s = b.add_device("slave1");
    let mut sim = b.build();
    let lt = connect_pair(&mut sim, m, s, SimTime::from_us(60_000_000)).expect("pair connects");
    sim.lm_request(m, |lm, slot| lm.start_setup(lt, slot));
    sim.command(
        m,
        LcCommand::AclData {
            lt_addr: lt,
            data: vec![0xC3; 600],
        },
    );
    sim.run_until(sim.now() + SimDuration::from_slots(1_200));
    sim
}

fn captured_run(seed: u64, engine: Engine) -> Simulator {
    let mut cfg = paper_config();
    cfg.engine = engine;
    cfg.capture = true;
    captured_run_with(seed, cfg)
}

#[test]
fn capture_roundtrips_through_the_reader() {
    let sim = captured_run(7, Engine::Lockstep);
    let sink = sim.capture();
    assert!(!sink.is_empty(), "workload produced no capture records");
    let bytes = btsnoop::serialize_sink(sink);
    let file = btsnoop::parse(&bytes).expect("serializer output parses");
    assert_eq!(file.version, btsnoop::VERSION);
    assert_eq!(file.datalink, btsnoop::DATALINK);
    assert_eq!(file.records.len(), sink.len());
    assert_eq!(file.dropped(), 0, "uncapped capture reports drops");
    let mut last_ts = 0u64;
    for (parsed, rec) in file.records.iter().zip(sink.records()) {
        assert_eq!(parsed.received(), rec.dir == CaptureDir::Received);
        assert_eq!(parsed.is_lmp(), rec.kind == CaptureKind::Lmp);
        assert_eq!(parsed.collided(), rec.collided);
        assert_eq!(parsed.jammed(), rec.jammed);
        assert_eq!(parsed.sim_time_us(), rec.at.us());
        assert_eq!(parsed.device(), Some(rec.device as u16));
        assert_eq!(parsed.channel(), Some(rec.channel));
        assert_eq!(parsed.orig_bits(), Some(rec.orig_bits as u16));
        assert_eq!(parsed.packet(), &rec.data[..]);
        assert!(parsed.incl_len <= parsed.orig_len);
        assert!(parsed.timestamp_us >= last_ts, "timestamps go backwards");
        last_ts = parsed.timestamp_us;
    }
}

#[test]
fn capture_contains_air_and_lmp_records_both_ways() {
    let sim = captured_run(7, Engine::Lockstep);
    let bytes = btsnoop::serialize_sink(sim.capture());
    let file = btsnoop::parse(&bytes).expect("valid file");
    let count = |lmp: bool, rx: bool| {
        file.records
            .iter()
            .filter(|r| r.is_lmp() == lmp && r.received() == rx)
            .count()
    };
    assert!(count(false, false) > 0, "no air TX records");
    assert!(count(false, true) > 0, "no air RX records");
    assert!(count(true, false) > 0, "no LMP TX records");
    assert!(count(true, true) > 0, "no LMP RX records");
}

#[test]
fn capture_bytes_are_identical_across_engines() {
    for seed in [3u64, 11, 42] {
        let lockstep = btsnoop::serialize_sink(captured_run(seed, Engine::Lockstep).capture());
        let event = btsnoop::serialize_sink(captured_run(seed, Engine::EventDriven).capture());
        assert_eq!(lockstep, event, "capture diverged at seed {seed}");
        assert!(
            lockstep.len() > 16 + 24,
            "capture at seed {seed} is trivially empty"
        );
    }
}

#[test]
fn capture_pins_the_phy_at_bit_level() {
    // The statistical tier carries no air-bit images, so a capture under
    // `Fidelity::Stat` is only possible because requesting capture pins
    // the PHY at bit level — air records must exist and carry bytes.
    let mut cfg = paper_config();
    cfg.fidelity = Fidelity::Stat;
    cfg.capture = true;
    let sim = captured_run_with(9, cfg);
    let air: Vec<_> = sim
        .capture()
        .records()
        .iter()
        .filter(|r| r.kind == CaptureKind::Air)
        .collect();
    assert!(!air.is_empty(), "no air records under a pinned stat tier");
    assert!(air.iter().all(|r| !r.data.is_empty() && r.orig_bits > 0));
}
