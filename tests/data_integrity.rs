//! ARQ data-integrity tests: every queued byte is delivered exactly
//! once, in order, even over a noisy channel.

use btsim::baseband::{LcCommand, LcEvent, PacketType};
use btsim::core::scenario::{connect_pair, paper_config};
use btsim::core::{SimBuilder, Simulator};
use btsim::kernel::{SimDuration, SimTime};

fn connected_pair(seed: u64, ber: f64) -> (Simulator, usize, usize, u8) {
    let mut cfg = paper_config();
    cfg.channel.ber = ber;
    let mut b = SimBuilder::new(seed, cfg);
    let m = b.add_device("master");
    let s = b.add_device("slave1");
    let mut sim = b.build();
    let lt =
        connect_pair(&mut sim, m, s, SimTime::from_us(120_000_000)).expect("pair must connect");
    (sim, m, s, lt)
}

fn received_stream(sim: &Simulator, dev: usize, after: SimTime) -> Vec<u8> {
    sim.events()
        .iter()
        .filter(|e| e.device == dev && e.at >= after)
        .filter_map(|e| match &e.event {
            LcEvent::AclReceived { data, llid, .. } if *llid != btsim::baseband::Llid::Lmp => {
                Some(data.clone())
            }
            _ => None,
        })
        .flatten()
        .collect()
}

#[test]
fn master_to_slave_transfer_is_exact_on_clean_channel() {
    let (mut sim, m, s, lt) = connected_pair(1, 0.0);
    let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
    let start = sim.now();
    sim.command(m, LcCommand::SetTpoll(2));
    sim.command(
        m,
        LcCommand::AclData {
            lt_addr: lt,
            data: data.clone(),
        },
    );
    sim.run_until(start + SimDuration::from_slots(2000));
    assert_eq!(received_stream(&sim, s, start), data);
}

#[test]
fn slave_to_master_transfer_works() {
    let (mut sim, m, s, lt) = connected_pair(2, 0.0);
    let data: Vec<u8> = (0..400u32).map(|i| (i * 7 % 256) as u8).collect();
    let start = sim.now();
    // The slave can only send when polled: keep the poll rate high.
    sim.command(m, LcCommand::SetTpoll(2));
    sim.command(
        s,
        LcCommand::AclData {
            lt_addr: lt,
            data: data.clone(),
        },
    );
    sim.run_until(start + SimDuration::from_slots(2000));
    assert_eq!(received_stream(&sim, m, start), data);
}

#[test]
fn transfer_survives_noise_via_arq() {
    // BER 1/200 corrupts many packets; ARQ must still deliver every byte
    // exactly once and in order.
    let (mut sim, m, s, lt) = connected_pair(3, 0.005);
    let data: Vec<u8> = (0..600u32).map(|i| (i % 253) as u8).collect();
    let start = sim.now();
    sim.command(m, LcCommand::SetTpoll(2));
    sim.command(
        m,
        LcCommand::AclData {
            lt_addr: lt,
            data: data.clone(),
        },
    );
    sim.run_until(start + SimDuration::from_slots(8000));
    assert_eq!(received_stream(&sim, s, start), data);
}

#[test]
fn multi_slot_packets_round_trip() {
    for ptype in [
        PacketType::Dm3,
        PacketType::Dh3,
        PacketType::Dm5,
        PacketType::Dh5,
    ] {
        let (mut sim, m, s, lt) = connected_pair(4, 0.0);
        sim.command(m, LcCommand::SetAclType(ptype));
        sim.command(m, LcCommand::SetTpoll(2));
        let data: Vec<u8> = (0..2000u32).map(|i| (i % 247) as u8).collect();
        let start = sim.now();
        sim.command(
            m,
            LcCommand::AclData {
                lt_addr: lt,
                data: data.clone(),
            },
        );
        sim.run_until(start + SimDuration::from_slots(3000));
        assert_eq!(received_stream(&sim, s, start), data, "{ptype:?}");
    }
}

#[test]
fn bidirectional_transfers_do_not_interfere() {
    let (mut sim, m, s, lt) = connected_pair(5, 0.0);
    let down: Vec<u8> = (0..500).map(|i| (i % 101) as u8).collect();
    let up: Vec<u8> = (0..500).map(|i| (i % 103) as u8).collect();
    let start = sim.now();
    sim.command(m, LcCommand::SetTpoll(2));
    sim.command(
        m,
        LcCommand::AclData {
            lt_addr: lt,
            data: down.clone(),
        },
    );
    sim.command(
        s,
        LcCommand::AclData {
            lt_addr: lt,
            data: up.clone(),
        },
    );
    sim.run_until(start + SimDuration::from_slots(4000));
    assert_eq!(received_stream(&sim, s, start), down, "downlink");
    assert_eq!(received_stream(&sim, m, start), up, "uplink");
}

#[test]
fn acknowledgements_are_reported() {
    let (mut sim, m, s, lt) = connected_pair(6, 0.0);
    let start = sim.now();
    sim.command(m, LcCommand::SetTpoll(2));
    sim.command(
        m,
        LcCommand::AclData {
            lt_addr: lt,
            data: vec![1, 2, 3],
        },
    );
    sim.run_until(start + SimDuration::from_slots(200));
    let acked = sim
        .events()
        .iter()
        .any(|e| e.device == m && matches!(e.event, LcEvent::AclDelivered { .. }));
    assert!(acked, "master should see the delivery acknowledgement");
    let _ = s;
}

#[test]
fn throughput_ordering_matches_packet_capacity_on_clean_channel() {
    // DH5 ≥ DH3 ≥ DH1 goodput on a clean channel.
    let mut rates = Vec::new();
    for ptype in [PacketType::Dh1, PacketType::Dh3, PacketType::Dh5] {
        let (mut sim, m, s, lt) = connected_pair(7, 0.0);
        sim.command(m, LcCommand::SetAclType(ptype));
        sim.command(m, LcCommand::SetTpoll(2));
        let start = sim.now();
        sim.command(
            m,
            LcCommand::AclData {
                lt_addr: lt,
                // Large enough that no packet type drains the queue
                // within the window (DH5 moves ≈90 kB/s here).
                data: vec![0xAA; 200_000],
            },
        );
        let window = SimDuration::from_slots(1600);
        sim.run_until(start + window);
        let bytes = received_stream(&sim, s, start).len();
        rates.push((ptype, bytes));
    }
    assert!(
        rates[0].1 < rates[1].1 && rates[1].1 < rates[2].1,
        "goodput should grow with packet size: {rates:?}"
    );
}

#[test]
fn afh_avoids_a_jammed_band() {
    // A fully busy 22-channel WLAN wipes ≈28% of packets; installing a
    // channel map that excludes the band restores the clean goodput.
    use btsim::baseband::hop::ChannelMap;
    use btsim::channel::Interferer;
    let run = |afh: bool| -> usize {
        let mut cfg = paper_config();
        cfg.channel.interferers = vec![Interferer::wlan(40, 1.0)];
        let mut b = SimBuilder::new(8, cfg);
        let m = b.add_device("master");
        let s = b.add_device("slave1");
        let mut sim = b.build();
        let lt = connect_pair(&mut sim, m, s, SimTime::from_us(120_000_000))
            .expect("connects (control channels mostly out of band)");
        if afh {
            let map = ChannelMap::blocking(29..=50);
            sim.command(m, LcCommand::SetAfh(map.clone()));
            sim.command(s, LcCommand::SetAfh(map));
        }
        sim.command(m, LcCommand::SetTpoll(2));
        let start = sim.now();
        sim.command(
            m,
            LcCommand::AclData {
                lt_addr: lt,
                data: vec![0x44; 100_000],
            },
        );
        sim.run_until(start + SimDuration::from_slots(2000));
        received_stream(&sim, s, start).len()
    };
    let plain = run(false);
    let afh = run(true);
    assert!(
        afh as f64 > plain as f64 * 1.2,
        "AFH should clearly beat plain hopping under a full-duty WLAN: {afh} vs {plain}"
    );
}
