//! The engine-equivalence differential harness: the event-driven engine
//! must be **bit-identical** to the lockstep oracle — same event logs,
//! same LM logs, same clock, same RNG draws, same campaign metrics —
//! across every workload the repository knows how to run.
//!
//! This harness is the gate for any future engine change: a fast path
//! that diverges from lockstep on any registry experiment or on a
//! randomized scatternet topology fails here, not in a downstream
//! experiment. `docs/ENGINE.md` documents the wakeup-hint contract this
//! enforces.

use btsim::baseband::{LcCommand, PacketType, SniffParams};
use btsim::core::experiments::{registry, ExpOptions};
use btsim::core::net::{
    BridgePlan, MultiPiconetConfig, MultiPiconetScenario, ScatternetConfig, ScatternetScenario,
};
use btsim::core::scenario::{
    paper_config, AfhAdaptConfig, AfhAdaptScenario, GoodputConfig, GoodputScenario, HoldConfig,
    HoldScenario, InquiryConfig, InquiryScenario, PageConfig, PageScenario, ParkConfig,
    ParkScenario, Scenario, ScoLinkConfig, ScoLinkScenario, SniffConfig, SniffScenario,
};
use btsim::core::{AfhConfig, Engine, SimConfig, Simulator};
use proptest::prelude::*;

/// Everything observable about a finished simulation, as one string:
/// the full event log, the LM log, the clock, the medium statistics and
/// the position of every random stream.
fn sim_digest(sim: &Simulator) -> String {
    format!(
        "now={:?} events={:?} lm={:?} tx={:?} ber={} rng={:#x}",
        sim.now(),
        sim.events(),
        sim.lm_events(),
        sim.tx_stats(),
        sim.measured_ber(),
        sim.rng_fingerprint(),
    )
}

/// Runs `scenario` (build + drive) under one engine; returns the
/// outcome digest and the simulator digest.
fn run_under<S: Scenario>(scenario: &S, seed: u64) -> (String, String)
where
    S::Outcome: std::fmt::Debug,
{
    let mut sim = scenario.build(seed);
    let out = scenario.drive(&mut sim);
    (format!("{out:?}"), sim_digest(&sim))
}

/// Asserts a scenario constructor produces bit-identical runs under
/// both engines for each seed.
fn assert_scenario_equivalent<S, F>(name: &str, seeds: &[u64], make: F)
where
    S: Scenario,
    S::Outcome: std::fmt::Debug,
    F: Fn(SimConfig) -> S,
{
    for &seed in seeds {
        let mut lockstep_cfg = paper_config();
        lockstep_cfg.engine = Engine::Lockstep;
        let mut event_cfg = paper_config();
        event_cfg.engine = Engine::EventDriven;
        let (out_l, sim_l) = run_under(&make(lockstep_cfg), seed);
        let (out_e, sim_e) = run_under(&make(event_cfg), seed);
        assert_eq!(out_l, out_e, "{name}: outcome diverged for seed {seed}");
        assert_eq!(sim_l, sim_e, "{name}: simulation diverged for seed {seed}");
    }
}

#[test]
fn inquiry_scenario_is_engine_equivalent() {
    assert_scenario_equivalent("inquiry", &[1, 2, 3], |sim| {
        InquiryScenario::new(InquiryConfig {
            ber: 0.01,
            sim,
            ..InquiryConfig::default()
        })
    });
}

#[test]
fn page_scenario_is_engine_equivalent() {
    // The R1 page-scan window is the procedure-side fast-forward case.
    assert_scenario_equivalent("page", &[4, 5, 6], |sim| {
        PageScenario::new(PageConfig {
            ber: 0.005,
            cap_slots: 2048,
            sim,
            ..PageConfig::default()
        })
    });
}

#[test]
fn sniff_scenario_is_engine_equivalent() {
    assert_scenario_equivalent("sniff", &[7, 8], |sim| {
        SniffScenario::new(SniffConfig {
            t_sniff: 100,
            measure_slots: 12_000,
            sim,
            ..SniffConfig::default()
        })
    });
}

#[test]
fn hold_scenario_is_engine_equivalent() {
    assert_scenario_equivalent("hold", &[9, 10], |sim| {
        HoldScenario::new(HoldConfig {
            t_hold: 400,
            measure_slots: 12_000,
            sim,
        })
    });
}

#[test]
fn park_scenario_is_engine_equivalent() {
    assert_scenario_equivalent("park", &[11, 12], |sim| {
        ParkScenario::new(ParkConfig {
            beacon_interval: 200,
            measure_slots: 12_000,
            sim,
        })
    });
}

#[test]
fn goodput_scenario_is_engine_equivalent() {
    assert_scenario_equivalent("goodput", &[13], |sim| {
        GoodputScenario::new(GoodputConfig {
            ptype: PacketType::Dh3,
            ber: 0.002,
            sim,
            ..GoodputConfig::default()
        })
    });
}

#[test]
fn sco_scenario_is_engine_equivalent() {
    assert_scenario_equivalent("sco", &[14], |sim| {
        ScoLinkScenario::new(ScoLinkConfig {
            ptype: PacketType::Hv3,
            ber: 0.01,
            sim,
            ..ScoLinkConfig::default()
        })
    });
}

#[test]
fn afh_adapt_scenario_is_engine_equivalent() {
    // The full AFH loop — assessment traffic, the LMP map exchange
    // riding the prioritized control queue, and the synchronized hop
    // switch — must replay bit-identically: the switch instant and
    // every post-switch hop channel depend on both engines agreeing on
    // the exact interleaving of ticks, deliveries and LM polls.
    assert_scenario_equivalent("afh_adapt", &[17, 18], |sim| {
        AfhAdaptScenario::new(AfhAdaptConfig {
            wlan: btsim::channel::Interferer::wlan(40, 0.6),
            window_slots: 1_200,
            afh: AfhConfig {
                enabled: true,
                assess_slots: 1_200,
                ..AfhConfig::default()
            },
            sim,
            ..AfhAdaptConfig::default()
        })
    });
}

#[test]
fn scatternet_chain_is_engine_equivalent() {
    // Bridges held away from their piconets are exactly the idle time
    // the event engine skips; the relay payload must still arrive
    // bit-identically.
    assert_scenario_equivalent("scatternet", &[15, 16], |sim| {
        ScatternetScenario::new(ScatternetConfig {
            piconets: 3,
            measure_slots: 4_000,
            sim,
            ..ScatternetConfig::default()
        })
    });
}

/// Direct driving (commands + run_until interleaved) must agree too —
/// the scenario layer is not the only way the simulator is used.
#[test]
fn interleaved_driving_is_engine_equivalent() {
    use btsim::core::SimBuilder;
    use btsim::kernel::{SimDuration, SimTime};
    let run = |engine: Engine| {
        let mut cfg = paper_config();
        cfg.engine = engine;
        let mut b = SimBuilder::new(99, cfg);
        let m = b.add_device("master");
        let s1 = b.add_device("slave1");
        let s2 = b.add_device("slave2");
        let mut sim = b.build();
        let cap = SimTime::from_us(60_000_000);
        let lt1 = btsim::core::scenario::connect_pair(&mut sim, m, s1, cap).expect("s1");
        let lt2 = btsim::core::scenario::connect_pair(&mut sim, m, s2, cap).expect("s2");
        // Mix modes: one slave sniffs, the other holds, then both carry
        // data again.
        let params = SniffParams {
            t_sniff: 60,
            n_attempt: 1,
            d_sniff: 12,
            n_timeout: 2,
        };
        sim.command(
            m,
            LcCommand::Sniff {
                lt_addr: lt1,
                params,
            },
        );
        sim.command(
            s1,
            LcCommand::Sniff {
                lt_addr: lt1,
                params,
            },
        );
        sim.command(
            m,
            LcCommand::Hold {
                lt_addr: lt2,
                hold_slots: 500,
            },
        );
        sim.command(
            s2,
            LcCommand::Hold {
                lt_addr: lt2,
                hold_slots: 500,
            },
        );
        sim.run_until(sim.now() + SimDuration::from_slots(700));
        sim.command(
            m,
            LcCommand::AclData {
                lt_addr: lt2,
                data: (0..40u8).collect(),
            },
        );
        sim.run_until(sim.now() + SimDuration::from_slots(300));
        sim_digest(&sim)
    };
    assert_eq!(run(Engine::Lockstep), run(Engine::EventDriven));
}

/// ACL-saturated traffic under a BER high enough that the channel's
/// noise stream fires several flips on *every* packet (BER 0.01 over a
/// ~2.9 kbit DH5 image ≈ 29 draws per packet, and ARQ retransmissions
/// keep the slots full). The word-parallel hot path (`docs/PERF.md`)
/// must preserve the noise-draw order of `Medium::begin_tx` exactly —
/// this pins that claim with a test instead of review: the digest
/// compares the RNG fingerprint, the full event log and the measured
/// BER across engines.
#[test]
fn acl_saturated_high_ber_is_engine_equivalent() {
    use btsim::core::SimBuilder;
    use btsim::kernel::{SimDuration, SimTime};
    let run = |engine: Engine| {
        let mut cfg = paper_config();
        cfg.engine = engine;
        cfg.channel.ber = 0.01;
        let mut b = SimBuilder::new(0x5A7_BEEF, cfg);
        let m = b.add_device("master");
        let s = b.add_device("slave1");
        let mut sim = b.build();
        let cap = SimTime::from_us(120_000_000);
        let lt = btsim::core::scenario::connect_pair(&mut sim, m, s, cap).expect("connects");
        sim.command(m, LcCommand::SetTpoll(2));
        sim.command(
            m,
            LcCommand::AclData {
                lt_addr: lt,
                data: vec![0x5A; 40_000],
            },
        );
        sim.run_until(sim.now() + SimDuration::from_slots(4_000));
        let digest = sim_digest(&sim);
        assert!(
            sim.measured_ber() > 0.005,
            "BER {} too low: the noise stream must fire on every packet",
            sim.measured_ber()
        );
        digest
    };
    assert_eq!(run(Engine::Lockstep), run(Engine::EventDriven));
}

/// Every registry experiment produces the same report under both
/// engines. The two wall-clock-timing entries (`table1_sim_speed`,
/// `scat_speed`) are excluded: their tables *measure* wall time, the
/// one quantity the engines are supposed to change.
#[test]
fn all_registry_experiments_are_engine_equivalent() {
    let wall_clock_entries = ["table1_sim_speed", "scat_speed"];
    for entry in registry() {
        let opts = |engine| ExpOptions {
            runs: 2,
            engine,
            ..ExpOptions::quick()
        };
        if wall_clock_entries.contains(&entry.name) {
            // Still must run under the event engine without diverging in
            // anything but timing.
            let report = entry.run(&opts(Engine::EventDriven)).unwrap();
            assert!(!report.tables.is_empty(), "{}: no output", entry.name);
            continue;
        }
        let lockstep = entry.run(&opts(Engine::Lockstep)).unwrap();
        let event = entry.run(&opts(Engine::EventDriven)).unwrap();
        assert_eq!(
            lockstep, event,
            "{}: report diverged between engines",
            entry.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized scatternet topologies: piconet count, fan-out, bridge
    /// duty and seed are all drawn by proptest; the relayed chain must
    /// behave bit-identically under both engines.
    #[test]
    fn randomized_scatternets_are_engine_equivalent(
        seed: u64,
        piconets in 2usize..4,
        slaves in 1usize..3,
        duty in prop::sample::select(vec![0.3f64, 0.5, 0.7]),
    ) {
        let run = |engine: Engine| {
            let mut sim = paper_config();
            sim.engine = engine;
            let scenario = ScatternetScenario::new(ScatternetConfig {
                piconets,
                slaves_per_piconet: slaves,
                plan: BridgePlan { duty, ..BridgePlan::default() },
                measure_slots: 3_000,
                sim,
                ..ScatternetConfig::default()
            });
            run_under(&scenario, seed)
        };
        prop_assert_eq!(run(Engine::Lockstep), run(Engine::EventDriven));
    }

    /// Randomized saturated multi-piconet meshes (no bridges): the
    /// inter-piconet collision accounting and goodput must match.
    #[test]
    fn randomized_multi_piconets_are_engine_equivalent(
        seed: u64,
        piconets in 1usize..4,
    ) {
        let run = |engine: Engine| {
            let mut sim = paper_config();
            sim.engine = engine;
            let scenario = MultiPiconetScenario::new(MultiPiconetConfig {
                piconets,
                measure_slots: 2_000,
                sim,
                ..MultiPiconetConfig::default()
            });
            run_under(&scenario, seed)
        };
        prop_assert_eq!(run(Engine::Lockstep), run(Engine::EventDriven));
    }
}
