//! End-to-end piconet creation across crate boundaries.

use btsim::baseband::{LcCommand, LcEvent};
use btsim::core::scenario::{
    paper_config, CreationConfig, CreationScenario, InquiryConfig, InquiryScenario, PageConfig,
    PageScenario, Scenario,
};
use btsim::core::{SimBuilder, SimConfig};
use btsim::kernel::{SimDuration, SimTime};

#[test]
fn creation_succeeds_for_every_piconet_size() {
    for n_slaves in 1..=3 {
        let scenario = CreationScenario::new(CreationConfig {
            n_slaves,
            ber: 0.0,
            inquiry_timeout_slots: 16 * 2048,
            page_timeout_slots: 2048,
            sim: paper_config(),
        });
        let mut sim = scenario.build(1000 + n_slaves as u64);
        let out = scenario.drive(&mut sim);
        assert!(
            out.piconet_complete(),
            "{n_slaves}-slave piconet failed: inquiry_ok={} pages={:?}",
            out.inquiry_ok,
            out.pages
        );
        assert_eq!(sim.lc(0).connected_slaves().len(), n_slaves);
        for s in 1..=n_slaves {
            assert!(sim.lc(s).is_slave(), "device {s} should be a slave");
        }
    }
}

#[test]
fn seven_slave_piconet_forms() {
    // The maximum piconet the standard allows.
    let scenario = CreationScenario::new(CreationConfig {
        n_slaves: 7,
        ber: 0.0,
        inquiry_timeout_slots: 48 * 2048,
        page_timeout_slots: 4096,
        sim: paper_config(),
    });
    let mut sim = scenario.build(77);
    let out = scenario.drive(&mut sim);
    assert!(
        out.piconet_complete(),
        "7-slave piconet failed: discovered={} pages={:?}",
        out.discovered.len(),
        out.pages
    );
    // All LT_ADDRs distinct and in 1..=7.
    let mut lts: Vec<u8> = sim
        .lc(0)
        .connected_slaves()
        .iter()
        .map(|(lt, _)| *lt)
        .collect();
    lts.sort_unstable();
    lts.dedup();
    assert_eq!(lts.len(), 7);
    assert!(lts.iter().all(|&lt| (1..=7).contains(&lt)));
}

#[test]
fn creation_is_bit_reproducible() {
    let run = |seed: u64| {
        let scenario = CreationScenario::new(CreationConfig::default());
        let mut sim = scenario.build(seed);
        let out = scenario.drive(&mut sim);
        (
            out.inquiry_slots,
            out.pages.clone(),
            sim.events().len(),
            sim.measured_ber().to_bits(),
        )
    };
    assert_eq!(run(31), run(31));
    assert_ne!(run(31).0, run(32).0);
}

#[test]
fn inquiry_mean_matches_paper_anchor() {
    // Paper §3.1: 1556 slots on average without noise. Allow ±20% for a
    // small sample.
    let scenario = InquiryScenario::new(InquiryConfig::default());
    let mut total = 0u64;
    let runs = 30;
    for seed in 0..runs {
        let out = scenario.run(seed);
        assert!(out.completed, "seed {seed} did not complete");
        total += out.slots;
    }
    let mean = total as f64 / runs as f64;
    assert!(
        (1200.0..2000.0).contains(&mean),
        "inquiry mean {mean} too far from the paper's 1556 slots"
    );
}

#[test]
fn page_mean_matches_paper_anchor() {
    // Paper §3.1: ≈17 slots when the devices are already synchronised.
    let scenario = PageScenario::new(PageConfig::default());
    let mut total = 0u64;
    let runs = 30;
    for seed in 0..runs {
        let out = scenario.run(seed);
        assert!(out.completed, "seed {seed} did not complete");
        total += out.slots;
    }
    let mean = total as f64 / runs as f64;
    assert!(
        (8.0..30.0).contains(&mean),
        "page mean {mean} too far from the paper's 17 slots"
    );
}

#[test]
fn page_needs_a_reasonable_clock_estimate() {
    // A wildly wrong CLKE estimate pushes the catch beyond the A-train.
    let good = PageScenario::new(PageConfig {
        clke_error_ticks: 0,
        ..PageConfig::default()
    })
    .run(5);
    let bad = PageScenario::new(PageConfig {
        // 16 CLKE16-12 positions of error: outside the A-train's ±8
        // tolerance, so the pager only connects once the B train (or a
        // clock epoch change) covers the scan channel.
        clke_error_ticks: 16 << 12,
        cap_slots: 8192,
        ..PageConfig::default()
    })
    .run(5);
    assert!(good.completed);
    assert!(
        !bad.completed || bad.slots > 4 * good.slots,
        "bad estimate should slow or break paging: good {} bad {:?}",
        good.slots,
        (bad.completed, bad.slots)
    );
}

#[test]
fn scanning_devices_keep_rx_always_on() {
    // Paper Fig. 5's caption: slaves not yet in the piconet have the RF
    // receiver always active.
    let mut cfg = SimConfig::default();
    cfg.lc.inquiry_scan_continuous = true;
    let mut b = SimBuilder::new(3, cfg);
    let _m = b.add_device("master");
    let s = b.add_device("slave1");
    let mut sim = b.build();
    sim.command(s, LcCommand::InquiryScan);
    sim.run_until(SimTime::from_us(2_000_000));
    let rep = sim.power_report(s);
    assert!(
        rep.rx_activity() > 0.95,
        "rx activity {}",
        rep.rx_activity()
    );
}

#[test]
fn connected_slave_listens_only_at_slot_starts() {
    // After joining, the slave's RF activity drops to the peek floor.
    let mut b = SimBuilder::new(9, paper_config());
    let m = b.add_device("master");
    let s = b.add_device("slave1");
    let mut sim = b.build();
    let lt = btsim::core::scenario::connect_pair(&mut sim, m, s, SimTime::from_us(30_000_000));
    assert!(lt.is_some());
    let start = sim.now();
    sim.run_until(start + SimDuration::from_slots(4000));
    let rep = sim.power_report(s);
    let active = rep.phase(btsim::baseband::LifePhase::Active);
    assert!(
        active.activity() < 0.06,
        "connected slave activity {} should be a few percent",
        active.activity()
    );
    assert!(active.activity() > 0.005);
}

#[test]
fn detach_dissolves_the_link() {
    let mut b = SimBuilder::new(21, paper_config());
    let m = b.add_device("master");
    let s = b.add_device("slave1");
    let mut sim = b.build();
    let lt = btsim::core::scenario::connect_pair(&mut sim, m, s, SimTime::from_us(30_000_000))
        .expect("connects");
    sim.command(m, LcCommand::Detach { lt_addr: lt });
    sim.command(s, LcCommand::Detach { lt_addr: lt });
    sim.run_until(sim.now() + SimDuration::from_slots(8));
    assert!(!sim.lc(m).is_master());
    assert!(!sim.lc(s).is_slave());
    let detaches = sim
        .events()
        .iter()
        .filter(|e| matches!(e.event, LcEvent::Detached { .. }))
        .count();
    assert_eq!(detaches, 2);
}
