//! Validate and summarise a btsnoop capture produced by `--capture`:
//! parses the file with the in-repo reader (which checks the exact
//! framing of every record) and prints per-layer, per-direction and
//! per-verdict counts. Exits nonzero on a malformed or empty capture —
//! CI runs it over the files the experiment binaries export.
//!
//! ```text
//! cargo run --release --example btsnoop_info -- out.btsnoop
//! ```

use std::process::ExitCode;

use btsim::trace::btsnoop;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: btsnoop_info <capture.btsnoop>");
        return ExitCode::from(2);
    };
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let file = match btsnoop::parse(&bytes) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {path} is not a valid btsnoop file: {e}");
            return ExitCode::FAILURE;
        }
    };
    let n = file.records.len();
    let count = |pred: fn(&btsnoop::ParsedRecord) -> bool| -> usize {
        file.records.iter().filter(|r| pred(r)).count()
    };
    let air = count(|r| !r.is_lmp());
    let lmp = count(|r| r.is_lmp());
    let rx = count(|r| r.received());
    let collided = count(|r| r.collided());
    let jammed = count(|r| r.jammed());
    let span_us = match (file.records.first(), file.records.last()) {
        (Some(first), Some(last)) => last.sim_time_us() - first.sim_time_us(),
        _ => 0,
    };
    println!(
        "{path}: btsnoop v{} datalink {}",
        file.version, file.datalink
    );
    println!(
        "  {n} records ({air} air, {lmp} LMP; {rx} received, {} sent)",
        n - rx
    );
    println!(
        "  verdicts: {collided} collided, {jammed} jammed; {} dropped",
        file.dropped()
    );
    println!("  spans {span_us} us of simulated time");
    if n == 0 {
        eprintln!("error: capture is empty");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
