//! Quickstart: form a one-slave piconet and exchange data.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This walks the whole stack once: inquiry discovers the slave, page
//! connects it, and an ACL transfer runs over the polled TDD channel.

use btsim::baseband::{LcCommand, LcEvent};
use btsim::core::{SimBuilder, SimConfig};
use btsim::kernel::{SimDuration, SimTime};

fn main() {
    // A clean channel and the spec-faithful defaults.
    let cfg = SimConfig::default();
    let mut builder = SimBuilder::new(0xC0FFEE, cfg);
    let master = builder.add_device("master");
    let slave = builder.add_device("slave1");
    let mut sim = builder.build();

    // Both devices start their procedures at t = 0.
    sim.command(slave, LcCommand::InquiryScan);
    sim.command(
        master,
        LcCommand::Inquiry {
            num_responses: 1,
            timeout_slots: 0,
        },
    );
    let found = sim
        .run_until_event(SimTime::from_us(20_000_000), |e| {
            matches!(e.event, LcEvent::InquiryResult { .. })
        })
        .expect("the scanner is discovered");
    let LcEvent::InquiryResult { addr, clk_offset } = found.event else {
        unreachable!();
    };
    println!(
        "discovered {addr} after {} slots (clock offset {clk_offset})",
        found.at.slots()
    );

    // Page the discovered device with the learned clock estimate.
    sim.command(slave, LcCommand::PageScan);
    sim.command(
        master,
        LcCommand::Page {
            target: addr,
            clke_offset: clk_offset,
            timeout_slots: 2048,
        },
    );
    let connected = sim
        .run_until_event(sim.now() + SimDuration::from_slots(4096), |e| {
            matches!(e.event, LcEvent::Connected { .. })
        })
        .expect("page succeeds on a clean channel");
    println!("connected as piconet at t = {}", connected.at);

    // Send a message from master to slave over the ACL link.
    let lt = sim.lc(master).connected_slaves()[0].0;
    let message = b"hello from the master".to_vec();
    sim.command(
        master,
        LcCommand::AclData {
            lt_addr: lt,
            data: message.clone(),
        },
    );
    sim.run_until(sim.now() + SimDuration::from_slots(400));

    let received: Vec<u8> = sim
        .events()
        .iter()
        .filter_map(|e| match &e.event {
            LcEvent::AclReceived { data, .. } if e.device == slave => Some(data.clone()),
            _ => None,
        })
        .flatten()
        .collect();
    assert_eq!(received, message);
    println!(
        "slave received {:?}",
        String::from_utf8_lossy(&received)
    );

    // RF budget of the whole exercise.
    for (dev, name) in [(master, "master"), (slave, "slave")] {
        let report = sim.power_report(dev);
        println!(
            "{name}: TX on {:.1} ms, RX on {:.1} ms, RF activity {:.2}%",
            report.tx.ns() as f64 / 1e6,
            report.rx.ns() as f64 / 1e6,
            report.rf_activity() * 100.0
        );
    }
}
