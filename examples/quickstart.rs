//! Quickstart: scenarios, campaigns, and the simulator underneath.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Three steps up the API:
//! 1. run one seeded `Scenario` (piconet creation) and keep the
//!    simulator for inspection;
//! 2. run a `Campaign` over many seeds and read summary statistics;
//! 3. drop to the raw simulator to exchange ACL data by hand.

use btsim::baseband::{LcCommand, LcEvent};
use btsim::core::campaign::Campaign;
use btsim::core::scenario::{
    connect_pair, paper_config, CreationConfig, CreationScenario, PageConfig, PageScenario,
    Scenario,
};
use btsim::core::SimBuilder;
use btsim::kernel::{SimDuration, SimTime};

fn main() {
    // --- 1. One seeded scenario run -----------------------------------
    //
    // A scenario is a deterministic function of a seed. `build` composes
    // the simulator, `drive` runs the procedure; keeping the simulator
    // lets us inspect power reports and event logs afterwards.
    let scenario = CreationScenario::new(CreationConfig {
        n_slaves: 1,
        // A generous inquiry timeout: the paper's mean is ≈1556 slots,
        // but the tail of the backoff distribution reaches further.
        inquiry_timeout_slots: 16 * 2048,
        ..CreationConfig::default()
    });
    let mut sim = scenario.build(0xC0FFEE);
    let outcome = scenario.drive(&mut sim);
    assert!(outcome.piconet_complete());
    println!(
        "piconet formed: {} (inquiry {} slots, page {} slots)",
        outcome.piconet_complete(),
        outcome.inquiry_slots,
        outcome.page_slots(),
    );
    for (dev, name) in [(0, "master"), (1, "slave")] {
        let report = sim.power_report(dev);
        println!(
            "  {name}: TX on {:.1} ms, RX on {:.1} ms, RF activity {:.2}%",
            report.tx.ns() as f64 / 1e6,
            report.rx.ns() as f64 / 1e6,
            report.rf_activity() * 100.0
        );
    }

    // --- 2. A Monte-Carlo campaign ------------------------------------
    //
    // Campaigns own seeding, parallelism and aggregation: ask for N runs
    // and read means, confidence intervals and completion rates.
    let result = Campaign::new(PageScenario::new(PageConfig::default()))
        .runs(32)
        .base_seed(7)
        .run();
    let point = result.single();
    let slots = point.metric("slots");
    println!(
        "page phase over {} seeds: {:.1} ± {:.1} slots, {:.0}% complete",
        point.outcomes.len(),
        slots.mean(),
        slots.ci95(),
        point.completion_rate() * 100.0
    );

    // --- 3. The raw simulator -----------------------------------------
    //
    // Underneath, everything is commands and events on the simulator.
    let mut b = SimBuilder::new(0xB10, paper_config());
    let master = b.add_device("master");
    let slave = b.add_device("slave1");
    let mut sim = b.build();
    let lt = connect_pair(&mut sim, master, slave, SimTime::from_us(30_000_000))
        .expect("clean-channel page succeeds");
    let message = b"hello from the master".to_vec();
    sim.command(
        master,
        LcCommand::AclData {
            lt_addr: lt,
            data: message.clone(),
        },
    );
    sim.run_until(sim.now() + SimDuration::from_slots(400));
    let received: Vec<u8> = sim
        .events()
        .iter()
        .filter_map(|e| match &e.event {
            LcEvent::AclReceived { data, .. } if e.device == slave => Some(data.clone()),
            _ => None,
        })
        .flatten()
        .collect();
    assert_eq!(received, message);
    println!("slave received {:?}", String::from_utf8_lossy(&received));
}
