//! Power planning for a periodic-data device (the paper's §3.2 use case):
//! how much RF energy do sniff and hold save for, say, a wireless sensor
//! that receives a reading every 100 slots?
//!
//! ```text
//! cargo run --release --example sniff_power
//! ```

use btsim::core::scenario::{HoldConfig, HoldScenario, Scenario, SniffConfig, SniffScenario};
use btsim::power::PowerProfile;

fn main() {
    let profile = PowerProfile::default();
    let measure = 60_000;

    // Active baseline: listen at every master slot start.
    let active = SniffScenario::new(SniffConfig {
        t_sniff: 0,
        measure_slots: measure,
        ..SniffConfig::default()
    })
    .run(1);
    println!(
        "active slave:              RF activity {:.2}%",
        active.activity * 100.0
    );

    // Sniff mode at different intervals.
    println!("\nsniff mode (data every 100 slots):");
    for t_sniff in [20u32, 50, 100] {
        let sniff = SniffScenario::new(SniffConfig {
            t_sniff,
            measure_slots: measure,
            ..SniffConfig::default()
        })
        .run(1);
        let saving = 100.0 * (1.0 - sniff.activity / active.activity);
        println!(
            "  Tsniff = {t_sniff:>3}: activity {:.2}%  ({saving:+.0}% vs active)",
            sniff.activity * 100.0,
        );
    }

    // Hold mode on an idle link.
    let idle_active = HoldScenario::new(HoldConfig {
        t_hold: 0,
        measure_slots: measure,
        ..HoldConfig::default()
    })
    .run(1);
    println!(
        "\nidle active slave:         RF activity {:.2}%",
        idle_active.activity * 100.0
    );
    println!("hold mode (idle link):");
    for t_hold in [80u32, 120, 400, 1000] {
        let hold = HoldScenario::new(HoldConfig {
            t_hold,
            measure_slots: measure,
            ..HoldConfig::default()
        })
        .run(1);
        let saving = 100.0 * (1.0 - hold.activity / idle_active.activity);
        println!(
            "  Thold  = {t_hold:>4}: activity {:.2}%  ({saving:+.0}% vs active)",
            hold.activity * 100.0,
        );
    }

    // Translate the best case into battery life with the default radio
    // profile (TX 45 mW / RX 40 mW / idle 1 mW).
    let best = HoldScenario::new(HoldConfig {
        t_hold: 1000,
        measure_slots: measure,
        ..HoldConfig::default()
    })
    .run(1);
    let active_mw =
        idle_active.rx * profile.rx_mw + idle_active.tx * profile.tx_mw + profile.idle_mw;
    let hold_mw = best.rx * profile.rx_mw + best.tx * profile.tx_mw + profile.idle_mw;
    println!(
        "\nmean radio power: active ≈ {active_mw:.2} mW, hold(1000) ≈ {hold_mw:.2} mW \
         → {:.1}× battery life",
        active_mw / hold_mw
    );
}
