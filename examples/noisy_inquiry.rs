//! Device discovery in a noisy environment: how long does an inquiry
//! take, and when does piconet creation start failing? A miniature of the
//! paper's Figs. 6-8.
//!
//! ```text
//! cargo run --release --example noisy_inquiry
//! ```

use btsim::core::scenario::{InquiryConfig, InquiryScenario, PageConfig, PageScenario, Scenario};
use btsim::stats::{run_campaign, Summary, Table};

fn main() {
    let runs = 24;
    let mut table = Table::new(["BER", "inquiry mean TS", "page success"]);
    for (label, ber) in [
        ("0", 0.0),
        ("1/200", 0.005),
        ("1/100", 0.01),
        ("1/50", 0.02),
        ("1/30", 1.0 / 30.0),
    ] {
        let inquiry: Summary = run_campaign(runs, 0, 7, |seed| {
            InquiryScenario::new(InquiryConfig {
                ber,
                ..InquiryConfig::default()
            })
            .run(seed)
            .slots as f64
        })
        .into_iter()
        .collect();
        let pages = run_campaign(runs, 0, 7, |seed| {
            PageScenario::new(PageConfig {
                ber,
                cap_slots: 2048,
                ..PageConfig::default()
            })
            .run(seed)
            .completed
        });
        let ok = pages.iter().filter(|&&b| b).count();
        table.row([
            label.to_string(),
            format!("{:.0}", inquiry.mean()),
            format!("{}/{}", ok, runs),
        ]);
    }
    println!("device discovery under channel noise ({runs} runs per point):\n");
    println!("{table}");
    println!("the page phase, not inquiry, is what breaks first — the paper's Fig. 8 result.");
}
