//! A headset-style SCO voice link: the second link type of the standard
//! (paper §1). Voice frames travel in reserved slot pairs with no
//! retransmission; the example shows the rate/robustness trade of the
//! three HV packet types.
//!
//! ```text
//! cargo run --release --example voice_link
//! ```

use btsim::baseband::{LcCommand, LcEvent, PacketType, ScoParams};
use btsim::core::scenario::{connect_pair, paper_config};
use btsim::core::SimBuilder;
use btsim::kernel::{SimDuration, SimTime};

fn main() {
    println!("SCO voice over one simulated second, clean channel vs BER 1/60:\n");
    println!(
        "{:>5} {:>7} {:>16} {:>16} {:>15}",
        "type", "Tsco", "frames (clean)", "frames (noisy)", "slave RF act."
    );
    for ptype in [PacketType::Hv1, PacketType::Hv2, PacketType::Hv3] {
        let mut row = Vec::new();
        let mut activity = 0.0;
        for ber in [0.0, 1.0 / 60.0] {
            let mut cfg = paper_config();
            cfg.channel.ber = ber;
            let mut b = SimBuilder::new(7, cfg);
            let master = b.add_device("master");
            let slave = b.add_device("slave1");
            let mut sim = b.build();
            let lt = connect_pair(&mut sim, master, slave, SimTime::from_us(60_000_000))
                .expect("connects");
            let d_sco = sim.lc(master).clkn(sim.now()).slot().wrapping_add(8) & !1;
            let params = ScoParams::for_type(ptype, d_sco);
            sim.command(
                master,
                LcCommand::ScoSetup {
                    lt_addr: lt,
                    params,
                },
            );
            sim.command(
                slave,
                LcCommand::ScoSetup {
                    lt_addr: lt,
                    params,
                },
            );
            // Stream one second of "voice": a ramp pattern.
            sim.command(
                master,
                LcCommand::ScoData {
                    lt_addr: lt,
                    data: (0..8000u32).map(|i| i as u8).collect(),
                },
            );
            let start = sim.now();
            sim.run_until(start + SimDuration::from_slots(1600)); // 1 s
            let frames = sim
                .events()
                .iter()
                .filter(|e| e.device == slave && matches!(e.event, LcEvent::ScoReceived { .. }))
                .count();
            row.push(frames);
            if ber == 0.0 {
                let rep = sim.power_report(slave);
                activity = rep.phase(btsim::baseband::LifePhase::Active).activity();
            }
        }
        println!(
            "{ptype:>5?} {:>7} {:>16} {:>16} {:>14.1}%",
            ScoParams::for_type(ptype, 0).t_sco,
            row[0],
            row[1],
            activity * 100.0
        );
    }
    println!("\nHV1 burns the whole channel but its FEC keeps frames decodable;");
    println!("HV3 leaves room for ACL data but loses frames outright under noise.");
}
