//! Piconet formation with four devices, traced as waveforms — the
//! situation of the paper's Fig. 5.
//!
//! ```text
//! cargo run --example piconet_formation
//! ```
//!
//! A master discovers and connects three slaves that all switch on at the
//! same time. The example prints the RF-enable waveforms: scanning slaves
//! show a continuously asserted `enable_rx_RF`; once joined, they listen
//! only at slot starts.

use btsim::core::scenario::{paper_config, CreationConfig, CreationScenario, Scenario};
use btsim::kernel::SimTime;
use btsim::trace::{render_ascii, AsciiOptions};

fn main() {
    let mut cfg = paper_config();
    cfg.trace = true;
    // Compact backoffs keep the figure readable, as in the paper.
    cfg.lc.inquiry_backoff_max = 96;

    let scenario = CreationScenario::new(CreationConfig {
        n_slaves: 3,
        ber: 0.0,
        inquiry_timeout_slots: 8 * 2048,
        page_timeout_slots: 2048,
        sim: cfg,
    });
    // Build and drive separately so the simulator (and its waveform
    // recorder) stays around after the outcome is extracted.
    let mut sim = scenario.build(2026);
    let outcome = scenario.drive(&mut sim);

    println!("inquiry finished after {} slots", outcome.inquiry_slots);
    for (addr, ok, slots) in &outcome.pages {
        println!(
            "  page {addr}: {} in {slots} slots",
            if *ok { "connected" } else { "FAILED" }
        );
    }
    assert!(
        outcome.piconet_complete(),
        "creation should succeed at BER 0"
    );

    let end = sim.now();
    println!();
    println!(
        "RF-enable waveforms, 0 .. {end} (one column ≈ {} slots):",
        end.slots() / 150
    );
    println!(
        "{}",
        render_ascii(
            sim.recorder(),
            &AsciiOptions {
                from: SimTime::ZERO,
                to: end,
                columns: 150,
            },
        )
    );
    println!("legend: '#' RF on, '_' RF off — compare with the paper's Fig. 5");
}
