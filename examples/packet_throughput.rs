//! Choosing an ACL packet type for a file transfer: the DM types carry
//! FEC and survive noise; the DH types carry more payload on a clean
//! channel. This is the trade-off the paper lists among its analysis
//! goals (§2).
//!
//! ```text
//! cargo run --release --example packet_throughput
//! ```

use btsim::baseband::{LcCommand, LcEvent, PacketType};
use btsim::core::scenario::{connect_pair, paper_config};
use btsim::core::SimBuilder;
use btsim::kernel::{SimDuration, SimTime};

fn goodput_kbps(ptype: PacketType, ber: f64, seed: u64) -> f64 {
    let mut cfg = paper_config();
    cfg.channel.ber = ber;
    let mut builder = SimBuilder::new(seed, cfg);
    let master = builder.add_device("master");
    let slave = builder.add_device("slave1");
    let mut sim = builder.build();
    let lt =
        connect_pair(&mut sim, master, slave, SimTime::from_us(60_000_000)).expect("connection");
    sim.command(master, LcCommand::SetAclType(ptype));
    sim.command(master, LcCommand::SetTpoll(2));
    sim.command(
        master,
        LcCommand::AclData {
            lt_addr: lt,
            // More than any type can move in the window: measures rate.
            data: vec![0x3C; 300_000],
        },
    );
    let start = sim.now();
    let window = SimDuration::from_slots(3000);
    sim.run_until(start + window);
    let bytes: usize = sim
        .events()
        .iter()
        .filter(|e| e.device == slave && e.at > start)
        .filter_map(|e| match &e.event {
            LcEvent::AclReceived { data, .. } => Some(data.len()),
            _ => None,
        })
        .sum();
    bytes as f64 * 8.0 / window.secs_f64() / 1000.0
}

fn main() {
    let types = [
        PacketType::Dm1,
        PacketType::Dh1,
        PacketType::Dm3,
        PacketType::Dh3,
        PacketType::Dm5,
        PacketType::Dh5,
    ];
    println!("ACL goodput in kbit/s (saturated 1.9 s transfer each):\n");
    println!(
        "{:>6}  {:>10}  {:>10}  {:>10}",
        "type", "BER 0", "BER 1/500", "BER 1/100"
    );
    for t in types {
        let clean = goodput_kbps(t, 0.0, 11);
        let mild = goodput_kbps(t, 0.002, 11);
        let noisy = goodput_kbps(t, 0.01, 11);
        println!("{t:>6?}  {clean:>10.1}  {mild:>10.1}  {noisy:>10.1}");
    }
    println!("\nDH5 wins on a clean channel; FEC-protected DM types degrade more slowly.");
}
