//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the API subset the workspace benches use —
//! [`Criterion`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple wall-clock timer. Results are printed as `name … ns/iter`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped (accepted for API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Applies CLI configuration (no-op in the stand-in).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_owned(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{name}", self.prefix), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Calibration pass: find an iteration count that takes ≥ ~10 ms.
    loop {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        if b.elapsed >= Duration::from_millis(10) || b.iters >= 1 << 20 {
            break;
        }
        b.iters *= 4;
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples.min(10) {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        best = best.min(b.elapsed.as_nanos() as f64 / b.iters as f64);
    }
    println!("{name:<40} {best:>14.1} ns/iter");
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called back-to-back.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` on fresh inputs produced by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("tiny", |b| b.iter(|| black_box(1u64) + 1));
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        tiny(&mut c);
        let mut g = c.benchmark_group("g");
        g.sample_size(2).bench_function("batched", |b| {
            b.iter_batched(|| 3u64, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
