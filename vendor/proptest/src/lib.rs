//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate reimplements the (small) API subset the workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! `any::<T>()`, integer/float range strategies, tuple strategies,
//! `prop::collection::vec`, `prop::sample::select` and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test name and case index), so failures are reproducible. There is no
//! shrinking: a failing case panics with the standard assertion message.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step (also used by the workspace kernel RNG).
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic generator driving one test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for case `case` of the test named `name`.
    pub fn deterministic(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform draw in `0..bound` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-`proptest!` configuration (API subset: only `cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy generating any value of `T` (see [`any`]).
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);

/// The `prop::…` helper modules.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec`s of `elem` values with a length in `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        /// Strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max - self.size.min + 1) as u64;
                let len = self.size.min + rng.below(span) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Strategy drawing one of the given values.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }

        /// Strategy returned by [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// The usual wildcard import surface.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests.
///
/// Each function takes arguments of the form `pattern in strategy` or
/// `name: Type` (the latter uses the type's [`Arbitrary`] strategy) and
/// runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$attr:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::TestRng::deterministic(stringify!($name), __case as u64);
                $crate::__proptest_bind! { __rng ($($args)*) $body }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident () $body:block) => { $body };
    ($rng:ident ($pat:pat_param in $strat:expr $(, $($rest:tt)*)?) $body:block) => {{
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng ($($($rest)*)?) $body }
    }};
    ($rng:ident ($id:ident : $ty:ty $(, $($rest:tt)*)?) $body:block) => {{
        let $id: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind! { $rng ($($($rest)*)?) $body }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::deterministic("t", 3);
        let mut b = crate::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, y in 0u8..=3, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn mixed_args_bind(seed: u64, flag: bool, v in prop::collection::vec(any::<u8>(), 1..4)) {
            let _ = (seed, flag);
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }

        #[test]
        fn map_and_select_compose(
            k in (0u32..4, any::<bool>()).prop_map(|(a, b)| a * 2 + b as u32),
            w in prop::sample::select(vec![1u8, 2, 3]),
        ) {
            prop_assert!(k < 9);
            prop_assert!((1..=3).contains(&w));
        }
    }
}
