//! # btsim — System-Level Simulation of the Bluetooth Standard
//!
//! Facade crate for the `btsim` workspace, a Rust reproduction of
//! Conti & Moretti, *System Level Analysis of the Bluetooth Standard*
//! (DATE 2005). The paper models the Bluetooth Link Manager and Baseband
//! layers in SystemC to study piconet-creation behaviour under channel
//! noise and the RF-power savings of the sniff/hold/park low-power modes;
//! this workspace rebuilds that model — including its SystemC-like
//! discrete-event substrate — as a set of Rust crates.
//!
//! Each sub-crate is re-exported as a module:
//!
//! * [`kernel`] — discrete-event simulation kernel (ns time base, event
//!   calendar, 4-valued wires, traced signals, seeded RNG);
//! * [`coding`] — bit-level codes: access-code sync words, HEC, CRC-16,
//!   FEC 1/3 and 2/3, whitening;
//! * [`channel`] — the noisy RF medium with collisions and modem delay;
//! * [`baseband`] — packets, hop selection, Bluetooth clock and the
//!   link-controller state machine;
//! * [`lmp`] — the Link Manager Protocol subset (mode negotiation);
//! * [`power`] — RF-activity and energy accounting;
//! * [`stats`] — Monte-Carlo campaign statistics, the `Record` trait and
//!   table/CSV/JSON output;
//! * [`trace`] — VCD/ASCII waveform output;
//! * [`core`] — device composition, simulator, the `Scenario` layer, the
//!   generic `Campaign` engine, the scatternet subsystem (`core::net`)
//!   and the paper's experiment registry.
//!
//! # Quickstart
//!
//! Every workload is a [`core::scenario::Scenario`]: a deterministic
//! function of a seed that builds a simulator and drives it to a
//! structured outcome. Run one directly, or hand it to a
//! [`core::campaign::Campaign`] for a seeded, parallel Monte-Carlo
//! sweep with summary statistics:
//!
//! ```
//! use btsim::core::campaign::Campaign;
//! use btsim::core::scenario::{CreationConfig, CreationScenario, Scenario};
//!
//! // One seeded run: a master discovers and connects one slave (a
//! // generous inquiry timeout keeps every seed comfortably inside it).
//! let scenario = CreationScenario::new(CreationConfig {
//!     n_slaves: 1,
//!     inquiry_timeout_slots: 16 * 2048,
//!     ..CreationConfig::default()
//! });
//! let outcome = scenario.run(42);
//! assert!(outcome.piconet_complete());
//!
//! // A campaign over many seeds: statistics come out, not loops.
//! let result = Campaign::new(scenario).runs(8).base_seed(42).run();
//! let point = result.single();
//! assert!(point.completion_rate() > 0.9);
//! assert!(point.metric("inquiry_slots").mean() > 0.0);
//! ```
//!
//! Beyond a single piconet, the scatternet subsystem wires several
//! piconets into one simulator sharing the medium — bridges are slaves
//! in two piconets and time-multiplex between them via hold (see
//! `docs/SCATTERNET.md`):
//!
//! ```
//! use btsim::core::net::{build_scatternet, Topology};
//! use btsim::core::scenario::paper_config;
//!
//! // Two piconets with one plain slave each, joined by one bridge.
//! let topo = Topology::chain(2, 1);
//! let (sim, map) = build_scatternet(&topo, 7, paper_config()).unwrap();
//! assert_eq!(map.links.len(), 4); // 2 plain slaves + the bridge twice
//! let bridge = topo.bridge_device(0);
//! assert_eq!(sim.lc(bridge).slave_masters().len(), 2);
//! ```
//!
//! The v1.2 adaptive-frequency-hopping loop is closed end to end (see
//! `docs/AFH.md`): both ends of a link assess their reception outcomes
//! per RF channel, the slave reports its classification over
//! `LMP_channel_classification`, the master announces the combined map
//! with `LMP_set_AFH`, and both basebands remap their hop sequences at
//! the same announced instant — restoring goodput against a fixed-band
//! 802.11 interferer:
//!
//! ```
//! use btsim::channel::Interferer;
//! use btsim::core::scenario::{AfhAdaptConfig, AfhAdaptScenario, Scenario};
//! use btsim::core::AfhConfig;
//!
//! let out = AfhAdaptScenario::new(AfhAdaptConfig {
//!     wlan: Interferer::wlan(40, 1.0), // 22 channels, always busy
//!     afh: AfhConfig { enabled: true, assess_slots: 1_200, ..AfhConfig::default() },
//!     window_slots: 1_200,
//!     ..AfhAdaptConfig::default()
//! })
//! .run(11);
//! assert!(out.switched, "map exchange completed");
//! assert!(out.kbps_after > out.kbps_before, "goodput recovered");
//! assert_eq!(out.jam_hits_after, 0.0, "adapted hops avoid the band");
//! ```
//!
//! The paper's figures (and the extension experiments, including the
//! `scat_*` scatternet ones and the `afh_adapt` coexistence-mitigation
//! one) are registry entries — list them, run them by name, or add
//! your own (see `docs/SCENARIOS.md`):
//!
//! ```
//! use btsim::core::experiments::{registry, ExpOptions};
//!
//! let fig6 = registry().iter().find(|e| e.name == "fig6_inquiry_vs_ber").unwrap();
//! let report = fig6.run(&ExpOptions { runs: 2, ..ExpOptions::quick() }).unwrap();
//! assert!(!report.tables[0].is_empty());
//! ```
//!
//! Two interchangeable engines drive every simulation (see
//! `docs/ENGINE.md`): the paper's lockstep half-slot loop (the default
//! and behavioural oracle) and an event-driven fast-forward engine that
//! skips provably idle ticks — bit-identical by construction (the
//! differential harness in `tests/engine_equivalence.rs` enforces it)
//! and far faster on hold/sniff/park-heavy workloads:
//!
//! ```
//! use btsim::core::{Engine, SimConfig};
//!
//! let mut cfg = SimConfig::default();
//! cfg.engine = Engine::EventDriven; // or `--engine event` on any binary
//! assert_eq!(cfg.engine.name(), "event");
//! ```
//!
//! Saturated traffic — where the event engine has nothing to skip — runs
//! on a word-parallel coding hot path and a per-RF-channel-indexed
//! medium (see `docs/PERF.md` for the hot-path inventory, the
//! `bench_hotpath` benchmark methodology and the bit-exactness gate
//! every hot-path change must pass).
//!
//! Devices can be placed on a floor plan (see `docs/SPATIAL.md`): a
//! hard interaction radius culls interference to the 3×3-cell
//! neighbourhood around each radio, and `--shards N` splits a single
//! run over the connected components of the in-range graph on scoped
//! worker threads — bit-identical to the unsharded run (enforced by
//! `tests/spatial_sharding.rs`), so sharding is pure wall-clock:
//!
//! ```
//! use btsim::channel::{Position, SpatialConfig};
//! use btsim::core::scenario::paper_config;
//! use btsim::core::SimBuilder;
//!
//! let mut cfg = paper_config();
//! cfg.channel.spatial = Some(SpatialConfig::with_radius(10.0));
//! cfg.shards = 4; // or `--shards 4` on any binary
//! let mut b = SimBuilder::new(7, cfg);
//! let m = b.add_device_at("master", Position::ORIGIN);
//! let s = b.add_device_at("slave", Position::new(3.0, 4.0)); // 5 m apart
//! let sim = b.build();
//! assert!(sim.device_count() == 2);
//! ```
//!
//! On top of both engines sit three PHY **fidelity tiers** (see
//! `docs/FIDELITY.md`): `bit` simulates every packet through the full
//! coding pipeline; `stat` promotes settled single-slave ACL links to a
//! statistical tier that draws each packet's four-way outcome from a
//! closed-form error model — 20×+ faster on saturated traffic, demoting
//! back to bit level the instant an AFH switch, LMP exchange or
//! co-channel contention appears; `auto` is `stat` gated on a converged
//! channel estimate. At BER 0 a promoted link is provably bit-exact;
//! elsewhere `tests/fidelity_equivalence.rs` pins the distributions:
//!
//! ```
//! use btsim::core::scenario::{GoodputConfig, GoodputScenario, Scenario};
//! use btsim::core::Fidelity;
//!
//! let mut cfg = GoodputConfig::default();
//! cfg.ptype = btsim::baseband::PacketType::Dh1; // 1-slot frames batch
//! cfg.window_slots = 2_000;
//! cfg.sim.fidelity = Fidelity::Stat; // or `--fidelity stat` on any binary
//! let out = GoodputScenario::new(cfg).run(9);
//! assert!(out.kbps > 0.0);
//! ```
//!
//! Failures are scripted, not sampled (see `docs/FAULTS.md`): a
//! `FaultPlan` — crashes, radio mutes, BER-ramped degrades, clock
//! drift, band noise — rides the event calendar, so faulted runs stay
//! bit-identical across engines, fidelity tiers, shard counts and
//! snapshot splits (`--faults SPEC` on any binary). Baseband link
//! supervision detects the death; the `core::net::Recovery` supervisor
//! re-pages lost members with bounded backoff and re-forms scatternets
//! around dead bridges:
//!
//! ```
//! use btsim::core::net::{build_scatternet, Recovery, RecoveryConfig, Router, Topology};
//! use btsim::core::scenario::paper_config;
//! use btsim::core::FaultPlan;
//! use btsim::kernel::{SimDuration, SimTime};
//!
//! let topo = Topology::chain(2, 1);
//! let mut cfg = paper_config();
//! cfg.lc.supervision_timeout_slots = 800; // detect fast (spec default: 20 s)
//! cfg.faults = FaultPlan::parse("crash@12000:dev=2;revive@14000:dev=2").unwrap();
//!
//! let (mut sim, mut map) = build_scatternet(&topo, 7, cfg).unwrap();
//! let mut router = Router::new(&topo, &map);
//! let mut recovery = Recovery::new(RecoveryConfig::default());
//!
//! let end = SimTime::ZERO + SimDuration::from_slots(20_000);
//! while sim.now() < end {
//!     sim.run_until(sim.now() + SimDuration::from_slots(64));
//!     router.pump(&mut sim);
//!     recovery.pump(&mut sim, &mut map, &mut router);
//! }
//! assert_eq!(recovery.losses.len(), 1); // supervision saw the crash...
//! assert!(recovery.recovered >= 1);     // ...and the re-page brought it back
//! ```
//!
//! Any run can be watched without perturbing it (see
//! `docs/OBSERVABILITY.md`): packet capture records every air packet
//! and LMP PDU for btsnoop export, the merged event stream delivers
//! both layers' logs in one instant-ordered feed, and the metrics hub
//! aggregates named counters and gauges from every subsystem — all
//! read-only taps that cost nothing until switched on, and leave every
//! output bit-identical when off:
//!
//! ```
//! use btsim::core::scenario::{connect_pair, paper_config};
//! use btsim::core::{ObsCursor, SimBuilder};
//! use btsim::kernel::{SimDuration, SimTime};
//! use btsim::trace::btsnoop;
//!
//! let mut cfg = paper_config();
//! cfg.capture = true;            // tap every air packet and LMP PDU
//! cfg.metrics_every = Some(500); // stream a snapshot every 500 slots
//! let mut b = SimBuilder::new(7, cfg);
//! let m = b.add_device("master");
//! let s = b.add_device("slave1");
//! let mut sim = b.build();
//! connect_pair(&mut sim, m, s, SimTime::from_us(60_000_000)).unwrap();
//! sim.run_until(sim.now() + SimDuration::from_slots(1_000));
//!
//! // The capture roundtrips through the in-repo btsnoop reader (the
//! // same bytes `--capture PATH` writes, byte-identical across engines).
//! let file = btsnoop::parse(&btsnoop::serialize_sink(sim.capture())).unwrap();
//! assert!(!file.records.is_empty());
//!
//! // The merged event stream, and metrics as snapshot + JSON lines.
//! let mut cursor = ObsCursor::default();
//! assert!(!sim.events_merged_since(&mut cursor).is_empty());
//! let snap = sim.metrics_snapshot();
//! assert!(snap.counter("medium.transmissions").unwrap() > 0);
//! assert!(!sim.metrics_lines().is_empty());
//! ```

#![forbid(unsafe_code)]

pub use btsim_baseband as baseband;
pub use btsim_channel as channel;
pub use btsim_coding as coding;
pub use btsim_core as core;
pub use btsim_kernel as kernel;
pub use btsim_lmp as lmp;
pub use btsim_power as power;
pub use btsim_stats as stats;
pub use btsim_trace as trace;
