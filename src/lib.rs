//! # btsim — System-Level Simulation of the Bluetooth Standard
//!
//! Facade crate for the `btsim` workspace, a Rust reproduction of
//! Conti & Moretti, *System Level Analysis of the Bluetooth Standard*
//! (DATE 2005). The paper models the Bluetooth Link Manager and Baseband
//! layers in SystemC to study piconet-creation behaviour under channel
//! noise and the RF-power savings of the sniff/hold/park low-power modes;
//! this workspace rebuilds that model — including its SystemC-like
//! discrete-event substrate — as a set of Rust crates.
//!
//! Each sub-crate is re-exported as a module:
//!
//! * [`kernel`] — discrete-event simulation kernel (ns time base, event
//!   calendar, 4-valued wires, traced signals, seeded RNG);
//! * [`coding`] — bit-level codes: access-code sync words, HEC, CRC-16,
//!   FEC 1/3 and 2/3, whitening;
//! * [`channel`] — the noisy RF medium with collisions and modem delay;
//! * [`baseband`] — packets, hop selection, Bluetooth clock and the
//!   link-controller state machine;
//! * [`lmp`] — the Link Manager Protocol subset (mode negotiation);
//! * [`power`] — RF-activity and energy accounting;
//! * [`stats`] — Monte-Carlo campaign statistics;
//! * [`trace`] — VCD/ASCII waveform output;
//! * [`core`] — device composition, simulator, scenarios and the paper's
//!   experiments.
//!
//! # Quickstart
//!
//! Create a piconet of one master and one slave over a noiseless channel
//! and let it form (inquiry + page), then inspect the outcome:
//!
//! ```
//! use btsim::core::scenario::{CreationConfig, CreationScenario};
//!
//! let outcome = CreationScenario::new(CreationConfig {
//!     n_slaves: 1,
//!     ..CreationConfig::default()
//! })
//! .run(0xB1005E, 42);
//! assert!(outcome.piconet_complete());
//! ```

#![forbid(unsafe_code)]

pub use btsim_baseband as baseband;
pub use btsim_channel as channel;
pub use btsim_coding as coding;
pub use btsim_core as core;
pub use btsim_kernel as kernel;
pub use btsim_lmp as lmp;
pub use btsim_power as power;
pub use btsim_stats as stats;
pub use btsim_trace as trace;
