//! # btsim-channel
//!
//! The shared radio medium of the simulation, modelled exactly as in the
//! DATE'05 paper (Fig. 2): a digital multi-input/single-output module that
//!
//! * inverts bits with a configurable probability (the **BER**), driven by
//!   the run's random stream — the same corrupted image is seen by every
//!   receiver, as in the paper's single-output channel;
//! * delays every packet by a fixed **modem delay** standing in for the
//!   RF modulator/demodulator chain;
//! * resolves **collisions**: whenever two or more devices drive the same
//!   RF hop channel at the same time, the overlapping bits are forced to
//!   the undefined value `X` and receivers count them as errors.
//!
//! Transmissions are registered with [`Medium::begin_tx`]; the simulator
//! delivers them to listening devices by calling [`Medium::receive`],
//! which materialises the noisy bits and the collision mask.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod snap_impls;

use std::collections::BTreeMap;

use btsim_coding::BitVec;
use btsim_kernel::{
    CaptureDir, CaptureKind, CaptureRecord, CaptureSink, SimDuration, SimRng, SimTime, Wire,
};

/// Number of RF hop channels in the 2.4 GHz band.
pub const RF_CHANNELS: u8 = 79;

/// A device position on the floor plan, in metres.
///
/// Positions exist only when the medium is built with a
/// [`SpatialConfig`]; without one every device shares the same point and
/// the medium behaves exactly as the paper's single shared channel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// East-west coordinate in metres.
    pub x: f64,
    /// North-south coordinate in metres.
    pub y: f64,
}

impl Position {
    /// The origin of the floor plan.
    pub const ORIGIN: Position = Position { x: 0.0, y: 0.0 };

    /// Creates a position.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance(self, other: Position) -> f64 {
        self.dist2(other).sqrt()
    }

    fn dist2(self, other: Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// Deterministic path-loss policy: a hard interaction radius.
///
/// Two radios interact — collide, read each other's carrier, deliver
/// packets — exactly when their distance is `<= radius`; beyond it the
/// path loss is treated as total. A hard disc keeps the model
/// deterministic and lets the spatial grid bound every interference
/// scan to the 3×3 cell neighbourhood around a source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathLoss {
    radius: f64,
}

impl PathLoss {
    /// A hard-disc policy with the given interaction radius in metres.
    ///
    /// # Panics
    ///
    /// Panics unless `radius` is finite and positive.
    pub fn range(radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "interaction radius must be finite and positive, got {radius}"
        );
        Self { radius }
    }

    /// The interaction radius in metres.
    pub fn radius(self) -> f64 {
        self.radius
    }

    /// Whether two positions are within interaction range (inclusive).
    pub fn in_range(self, a: Position, b: Position) -> bool {
        a.dist2(b) <= self.radius * self.radius
    }
}

/// Grid cell coordinates (floor-divided position).
pub type Cell = (i32, i32);

/// Spatial model of the medium: a [`PathLoss`] range policy plus the
/// coarse grid that indexes radios and transmissions by cell.
///
/// The cell size must be at least the interaction radius so that any
/// in-range pair of radios is always within the 3×3 block of cells
/// around either one — the invariant every range-culled scan (and the
/// simulator's cell sharding) relies on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialConfig {
    path_loss: PathLoss,
    cell_size: f64,
}

impl SpatialConfig {
    /// A spatial model with an explicit cell size.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is smaller than the interaction radius.
    pub fn new(path_loss: PathLoss, cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size >= path_loss.radius(),
            "cell size {cell_size} must be >= the interaction radius {}",
            path_loss.radius()
        );
        Self {
            path_loss,
            cell_size,
        }
    }

    /// A spatial model whose cells are exactly one interaction radius
    /// wide (the tightest legal grid).
    pub fn with_radius(radius: f64) -> Self {
        Self::new(PathLoss::range(radius), radius)
    }

    /// The path-loss policy.
    pub fn path_loss(&self) -> PathLoss {
        self.path_loss
    }

    /// The grid cell size in metres.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// The grid cell containing `p`.
    pub fn cell_of(&self, p: Position) -> Cell {
        (
            (p.x / self.cell_size).floor() as i32,
            (p.y / self.cell_size).floor() as i32,
        )
    }
}

/// The 3×3 block of cells around `cell`, in row-major order.
fn neighbor_cells(cell: Cell) -> impl Iterator<Item = Cell> {
    (-1..=1).flat_map(move |dy| (-1..=1).map(move |dx| (cell.0 + dx, cell.1 + dy)))
}

/// Identifies a registered transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId(u64);

/// A fixed-band interferer, e.g. an 802.11 network occupying ~22 MHz of
/// the ISM band (the coexistence situation of the paper's refs [4-5]).
///
/// A Bluetooth packet whose hop channel falls inside the band is wiped
/// (treated as fully collided) with probability `duty` — the fraction of
/// time the interferer's bursts occupy the band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interferer {
    /// First RF channel of the occupied band.
    pub first_channel: u8,
    /// Band width in channels (802.11b ≈ 22).
    pub width: u8,
    /// Probability a packet in the band is hit.
    pub duty: f64,
}

impl Interferer {
    /// An 802.11b-like interferer centred at `center`: the band covers
    /// `center ± 11` channels, clamped to the ISM band edges. A centre
    /// near the band edge occupies *fewer* channels — a 22 MHz burst
    /// centred at channel 5 cannot reach channel 16, so the upper edge
    /// is clamped to `center + 11` rather than shifting the whole band
    /// upward.
    pub fn wlan(center: u8, duty: f64) -> Self {
        let first_channel = center.saturating_sub(11).min(RF_CHANNELS);
        let upper = (center as u16 + 11).min(RF_CHANNELS as u16);
        Self {
            first_channel,
            // Saturating: a centre above the ISM band yields an empty
            // band rather than underflowing.
            width: upper.saturating_sub(first_channel as u16) as u8,
            duty,
        }
    }

    /// Whether `channel` falls inside the occupied band.
    pub fn covers(&self, channel: u8) -> bool {
        channel >= self.first_channel
            && (channel as u16) < self.first_channel as u16 + self.width as u16
    }
}

/// Static configuration of the medium.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelConfig {
    /// Bit error rate applied independently to every transmitted bit.
    pub ber: f64,
    /// Fixed modulator + demodulator latency added before delivery.
    pub modem_delay: SimDuration,
    /// Fixed-band interferers sharing the ISM band.
    pub interferers: Vec<Interferer>,
    /// Spatial model: positions, hard interaction radius and the grid
    /// cell size. `None` (the default) keeps the paper's single shared
    /// channel where every device interferes with every other.
    pub spatial: Option<SpatialConfig>,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        Self {
            ber: 0.0,
            modem_delay: SimDuration::from_us(5),
            interferers: Vec::new(),
            spatial: None,
        }
    }
}

/// A transmission in flight (or recently completed).
#[derive(Debug, Clone)]
struct Transmission {
    id: TxId,
    source: usize,
    rf_channel: u8,
    start: SimTime,
    /// Bit image after noise was applied (what the air carries).
    noisy_bits: BitVec,
    /// Wiped by a fixed-band interferer burst.
    jammed: bool,
    /// Already counted as collided in the medium's [`TxStats`].
    counted_collided: bool,
    /// Materialised at least once by [`Medium::receive`]. Garbage
    /// collection grants undelivered transmissions one extra retention
    /// window so a delayed `receive` cannot race the collector.
    delivered: bool,
}

impl Transmission {
    fn end(&self) -> SimTime {
        self.start + SimDuration::from_bits(self.noisy_bits.len())
    }
}

/// Cumulative transmission statistics of a [`Medium`].
///
/// A transmission counts as *collided* when another transmission
/// overlapped it in both time and RF channel (each transmission is
/// counted at most once, on both sides of the overlap). Interferer
/// jamming is counted separately in `jammed` — it is an external burst,
/// not a device-vs-device collision — so coexistence experiments can
/// report interferer hits apart from inter-piconet collisions. The
/// scatternet experiments measure the inter-piconet collision rate as
/// `collided / transmissions` deltas over a window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Transmissions registered since construction.
    pub transmissions: u64,
    /// Transmissions that overlapped another one on the same channel.
    pub collided: u64,
    /// Transmissions wiped by a fixed-band interferer burst.
    pub jammed: u64,
}

impl TxStats {
    /// Collided fraction (`0` when nothing was transmitted).
    pub fn collision_rate(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            self.collided as f64 / self.transmissions as f64
        }
    }

    /// Jammed fraction (`0` when nothing was transmitted).
    pub fn jam_rate(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            self.jammed as f64 / self.transmissions as f64
        }
    }

    /// Statistics accumulated since an earlier `snapshot`.
    pub fn since(&self, snapshot: TxStats) -> TxStats {
        TxStats {
            transmissions: self.transmissions - snapshot.transmissions,
            collided: self.collided - snapshot.collided,
            jammed: self.jammed - snapshot.jammed,
        }
    }
}

/// Counters of one RF channel inside a [`ChannelQuality`] view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelCounters {
    /// Transmissions registered on this channel.
    pub transmissions: u64,
    /// Transmissions that overlapped another one on this channel.
    pub collided: u64,
    /// Transmissions wiped by a fixed-band interferer burst.
    pub jammed: u64,
}

impl ChannelCounters {
    /// Fraction of transmissions that were collided or jammed.
    pub fn bad_rate(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            (self.collided + self.jammed) as f64 / self.transmissions as f64
        }
    }
}

/// Per-RF-channel quality accounting of a [`Medium`]: how many
/// transmissions each of the 79 hop channels carried and how many of
/// them were collided or jammed. Windowed like [`TxStats`]: take a
/// snapshot, run a workload, and diff with [`ChannelQuality::since`].
///
/// This is the medium's god's-eye view (the AFH experiments use it to
/// verify that an adapted hop sequence stops landing in an interferer's
/// band); devices build their own per-channel picture from reception
/// outcomes via `btsim_baseband::ChannelAssessment`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelQuality {
    counters: [ChannelCounters; RF_CHANNELS as usize],
}

impl Default for ChannelQuality {
    fn default() -> Self {
        Self {
            counters: [ChannelCounters::default(); RF_CHANNELS as usize],
        }
    }
}

impl ChannelQuality {
    /// Counters of one channel (all-zero for out-of-band indices).
    pub fn channel(&self, rf_channel: u8) -> ChannelCounters {
        self.counters
            .get(rf_channel as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Sum over all 79 channels.
    pub fn total(&self) -> ChannelCounters {
        self.counters
            .iter()
            .fold(ChannelCounters::default(), |acc, c| ChannelCounters {
                transmissions: acc.transmissions + c.transmissions,
                collided: acc.collided + c.collided,
                jammed: acc.jammed + c.jammed,
            })
    }

    /// Per-channel counters accumulated since an earlier `snapshot`.
    pub fn since(&self, snapshot: &ChannelQuality) -> ChannelQuality {
        let mut out = ChannelQuality::default();
        for (ch, slot) in out.counters.iter_mut().enumerate() {
            let (now, then) = (self.counters[ch], snapshot.counters[ch]);
            *slot = ChannelCounters {
                transmissions: now.transmissions - then.transmissions,
                collided: now.collided - then.collided,
                jammed: now.jammed - then.jammed,
            };
        }
        out
    }
}

/// What a receiver gets when a transmission is delivered to it.
#[derive(Debug, Clone)]
pub struct Reception {
    /// The transmission this reception came from.
    pub tx_id: TxId,
    /// Index of the transmitting device.
    pub source: usize,
    /// RF hop channel the packet was sent on.
    pub rf_channel: u8,
    /// First bit's air time (without modem delay).
    pub start: SimTime,
    /// Last bit's air time (without modem delay).
    pub end: SimTime,
    /// Time the demodulated bits become available to the baseband.
    pub available_at: SimTime,
    /// The (noise-corrupted) bit image.
    pub bits: BitVec,
    /// Mask of bits that collided with another transmission (`X` values);
    /// `None` when the packet was collision-free.
    pub collision_mask: Option<BitVec>,
}

impl Reception {
    /// True when any bit was hit by a collision.
    pub fn collided(&self) -> bool {
        self.collision_mask.is_some()
    }
}

/// The shared RF medium.
///
/// # Examples
///
/// ```
/// use btsim_channel::{ChannelConfig, Medium};
/// use btsim_coding::BitVec;
/// use btsim_kernel::{SimRng, SimTime};
///
/// let mut medium = Medium::new(ChannelConfig::default(), SimRng::new(1));
/// let bits = BitVec::from_bytes_lsb(&[0xA5; 8]);
/// let tx = medium.begin_tx(0, 40, SimTime::ZERO, bits.clone());
/// let rx = medium.receive(tx).expect("still retained");
/// assert_eq!(rx.bits, bits); // BER = 0: unchanged
/// assert!(!rx.collided());
/// ```
#[derive(Debug, Clone)]
pub struct Medium {
    cfg: ChannelConfig,
    rng: SimRng,
    /// Retained transmissions, bucketed by RF channel (non-spatial
    /// mode). Collisions, carrier sensing and wire probes only ever
    /// look at co-channel traffic, so each query scans one bucket
    /// instead of everything on the air. Within a bucket ids are
    /// monotone (appended in registration order), so lookups
    /// binary-search. Unused (empty) when a spatial model is
    /// configured — see `cell_buckets`.
    channels: Vec<Vec<Transmission>>,
    /// Spatial-mode storage: per grid cell, the same 79 per-RF-channel
    /// buckets, keyed by the *source's* cell. Interference scans walk
    /// the 3×3 cell neighbourhood of a source and filter by range, so
    /// dense far-apart traffic never meets in one bucket. BTreeMap so
    /// iteration order is deterministic.
    cell_buckets: BTreeMap<Cell, Vec<Vec<Transmission>>>,
    /// Spatial-mode radio registry, indexed by source id: position,
    /// home cell, a private noise stream and the radio's latest
    /// air-time end (for the range-scoped quiescence probe).
    radios: Vec<Option<Radio>>,
    /// Spatial-mode cell membership (registration-ordered source ids).
    cells: BTreeMap<Cell, Vec<usize>>,
    /// Registration-ordered directory of every retained transmission,
    /// for O(log n) [`Medium::find`] by id. Rebuilt from the buckets by
    /// [`Medium::gc`], so the two can never disagree on liveness.
    directory: Vec<DirEntry>,
    /// Base stream for the counter-based interferer burst schedule:
    /// never drawn from directly, only forked per `(slot, channel)`.
    /// Forks are pure functions of the medium seed, so every observer —
    /// `begin_tx`, `busy`, `wire_at`, and sharded sibling media built
    /// from the same run seed — sees the same burst timeline.
    jam_base: SimRng,
    next_id: u64,
    total_flipped: u64,
    total_bits: u64,
    tx_stats: TxStats,
    quality: ChannelQuality,
    /// Latest air-time end over every *bit-level* transmission ever
    /// registered (monotone; never reduced by [`Medium::gc`]). The
    /// statistical tier uses it to prove the medium is quiescent
    /// without scanning the buckets.
    last_end: SimTime,
    /// Packet-capture sink (disabled by default): air records are pushed
    /// at [`Medium::begin_tx`] and [`Medium::receive`], and the simulator
    /// interleaves LMP records through [`Medium::capture_mut`], so one
    /// dispatch-ordered stream serializes to btsnoop.
    capture: CaptureSink,
    /// Fault-layer per-source transmit degrades, indexed by source id
    /// (`None` = healthy). Consulted by [`Medium::begin_tx`] when
    /// picking the effective BER for a packet.
    degrade: Vec<Option<Degrade>>,
}

/// A fault-injected transmit degrade: extra BER ramping linearly from
/// zero at `from` to `target` at `from + ramp`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Degrade {
    pub(crate) target: f64,
    pub(crate) from: SimTime,
    pub(crate) ramp: SimDuration,
}

/// A registered radio of a spatial medium.
#[derive(Debug, Clone)]
struct Radio {
    pos: Position,
    cell: Cell,
    /// Private noise stream: bit flips of this radio's transmissions
    /// come from here, so one radio's draw count never depends on
    /// traffic elsewhere on the floor (the property cell sharding needs).
    noise: SimRng,
    /// The stream key `register_radio` derived `noise` from, kept so
    /// [`Medium::reseed`] can re-derive the same stream under a new
    /// base RNG (the campaign-fork reseeding contract).
    stream: u64,
    /// Latest air-time end of this radio's transmissions.
    last_end: SimTime,
}

/// One row of the transmission directory.
#[derive(Debug, Clone, Copy)]
struct DirEntry {
    id: TxId,
    rf_channel: u8,
    /// Source cell in spatial mode; `(0, 0)` otherwise (unused).
    cell: Cell,
}

/// Occupancy class of an RF channel with respect to fixed-band
/// interferers, shared by carrier sensing ([`Medium::busy`]), wire
/// probing ([`Medium::wire_at`]) and the jam verdict in
/// [`Medium::begin_tx`] so the three paths cannot disagree on the edge
/// cases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DutyClass {
    /// No interferer covers the channel; never jams, never reads busy.
    Clear,
    /// A fractional-duty interferer covers the channel: each 625 µs
    /// slot is a burst slot with the given probability, decided by a
    /// counter-based draw on the slot index (see
    /// [`Medium::interferer_active`]) so transmissions, carrier sensing
    /// and wire probes all see the same burst timeline.
    Burst(f64),
    /// A full-duty interferer occupies the band continuously: every
    /// transmission is wiped and the channel always reads busy/`X`.
    Continuous,
}

impl DutyClass {
    /// Whether the interferer occupies the band continuously.
    pub fn is_continuous(self) -> bool {
        self == DutyClass::Continuous
    }
}

impl Medium {
    /// Creates a medium with the given configuration and noise stream.
    ///
    /// With [`ChannelConfig::spatial`] set, every transmitting device
    /// must first be placed with [`Medium::register_radio`].
    pub fn new(cfg: ChannelConfig, rng: SimRng) -> Self {
        let jam_base = rng.fork(0x4A4D_5107);
        Self {
            cfg,
            rng,
            channels: (0..RF_CHANNELS).map(|_| Vec::new()).collect(),
            cell_buckets: BTreeMap::new(),
            radios: Vec::new(),
            cells: BTreeMap::new(),
            directory: Vec::new(),
            jam_base,
            next_id: 0,
            total_flipped: 0,
            total_bits: 0,
            tx_stats: TxStats::default(),
            quality: ChannelQuality::default(),
            last_end: SimTime::ZERO,
            capture: CaptureSink::disabled(),
            degrade: Vec::new(),
        }
    }

    /// Places radio `source` on the floor plan.
    ///
    /// `stream` selects the radio's private noise sub-stream; callers
    /// that shard a run across several sibling media must pass a
    /// stable (global) identifier so a device draws identical noise
    /// regardless of which shard it lands in.
    ///
    /// # Panics
    ///
    /// Panics without a [`ChannelConfig::spatial`] model, or if
    /// `source` is already registered.
    pub fn register_radio(&mut self, source: usize, pos: Position, stream: u64) {
        let spatial = self
            .cfg
            .spatial
            .expect("register_radio requires ChannelConfig::spatial");
        if self.radios.len() <= source {
            self.radios.resize_with(source + 1, || None);
        }
        assert!(
            self.radios[source].is_none(),
            "radio {source} is already registered"
        );
        let cell = spatial.cell_of(pos);
        self.radios[source] = Some(Radio {
            pos,
            cell,
            noise: self.rng.fork(0x5EED_0000 + stream),
            stream,
            last_end: SimTime::ZERO,
        });
        self.cells.entry(cell).or_default().push(source);
    }

    /// The spatial model, when configured.
    pub fn spatial(&self) -> Option<&SpatialConfig> {
        self.cfg.spatial.as_ref()
    }

    /// The position of a registered radio (`None` without a spatial
    /// model or for an unregistered source).
    pub fn position_of(&self, source: usize) -> Option<Position> {
        self.radios.get(source)?.as_ref().map(|r| r.pos)
    }

    /// Whether radios `a` and `b` are within interaction range.
    /// Always true without a spatial model (everything shares one
    /// point); `a == b` is always in range.
    ///
    /// # Panics
    ///
    /// Panics in spatial mode if either source is unregistered.
    pub fn in_range(&self, a: usize, b: usize) -> bool {
        let Some(spatial) = &self.cfg.spatial else {
            return true;
        };
        if a == b {
            return true;
        }
        spatial
            .path_loss()
            .in_range(self.radio(a).pos, self.radio(b).pos)
    }

    /// The registered radios within interaction range of `source`
    /// (excluding `source` itself), in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics without a spatial model or if `source` is unregistered.
    pub fn neighbors_of(&self, source: usize) -> Vec<usize> {
        let spatial = self
            .cfg
            .spatial
            .expect("neighbors_of requires ChannelConfig::spatial");
        let me = self.radio(source);
        let mut out = Vec::new();
        for cell in neighbor_cells(me.cell) {
            let Some(members) = self.cells.get(&cell) else {
                continue;
            };
            for &m in members {
                if m != source && spatial.path_loss().in_range(me.pos, self.radio(m).pos) {
                    out.push(m);
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn radio(&self, source: usize) -> &Radio {
        self.radios
            .get(source)
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("spatial medium: radio {source} is not registered"))
    }

    /// Latest air-time end of a registered radio's own transmissions
    /// (`SimTime::ZERO` before it ever transmits). Component-scoped
    /// quiescence checks fold this over a device set, which gives the
    /// same verdict whether the medium holds the whole floor or just
    /// that component.
    ///
    /// # Panics
    ///
    /// Panics without a spatial model or if `source` is unregistered.
    pub fn last_end_of(&self, source: usize) -> SimTime {
        assert!(
            self.cfg.spatial.is_some(),
            "last_end_of requires ChannelConfig::spatial"
        );
        self.radio(source).last_end
    }

    /// Fingerprint of the medium's base RNG stream alone (without the
    /// per-radio noise streams [`Medium::rng_fingerprint`] folds in). A
    /// spatial medium never draws from the base stream after
    /// construction, so sibling shard media built from the same run
    /// seed report the same value — which lets a sharded simulator
    /// reconstruct the exact monolithic fingerprint fold.
    pub fn base_rng_fingerprint(&self) -> u64 {
        self.rng.fingerprint()
    }

    /// Fingerprint of one registered radio's private noise stream.
    ///
    /// # Panics
    ///
    /// Panics without a spatial model or if `source` is unregistered.
    pub fn noise_fingerprint_of(&self, source: usize) -> u64 {
        assert!(
            self.cfg.spatial.is_some(),
            "noise_fingerprint_of requires ChannelConfig::spatial"
        );
        self.radio(source).noise.fingerprint()
    }

    /// Raw (flipped, total) bit counters behind [`Medium::measured_ber`],
    /// so an aggregator over several media can combine them exactly.
    pub fn bit_error_totals(&self) -> (u64, u64) {
        (self.total_flipped, self.total_bits)
    }

    /// The packet-capture sink (disabled unless enabled via
    /// [`Medium::capture_mut`]).
    pub fn capture(&self) -> &CaptureSink {
        &self.capture
    }

    /// Mutable access to the capture sink, for enabling capture and for
    /// the simulator's LMP-dispatch taps (which interleave with the air
    /// records in dispatch order).
    pub fn capture_mut(&mut self) -> &mut CaptureSink {
        &mut self.capture
    }

    /// Replaces the capture sink, returning the old one (used to enable
    /// capture at build time without re-plumbing constructors).
    pub fn set_capture(&mut self, sink: CaptureSink) -> CaptureSink {
        std::mem::replace(&mut self.capture, sink)
    }

    /// The medium's configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Replaces every random stream of the medium with streams derived
    /// from `rng`, using the same keying as construction: the jam base
    /// is `rng.fork(0x4A4D_5107)` and each registered radio's noise
    /// stream is `rng.fork(0x5EED_0000 + stream)` for the stream key it
    /// was registered with.
    ///
    /// This is the campaign-fork reseeding hook (`docs/SNAPSHOT.md`): a
    /// medium restored from a formed-topology snapshot and reseeded with
    /// a fresh per-run stream behaves exactly like a medium built from
    /// that run seed that happened to reach the same formed state.
    pub fn reseed(&mut self, rng: SimRng) {
        self.jam_base = rng.fork(0x4A4D_5107);
        for radio in self.radios.iter_mut().flatten() {
            radio.noise = rng.fork(0x5EED_0000 + radio.stream);
        }
        self.rng = rng;
    }

    /// Applies a fault-layer transmit degrade to `source`: everything
    /// it transmits suffers an extra BER ramping linearly from zero at
    /// `from` to `target_ber` at `from + ramp`, combined independently
    /// with the configured channel BER. Replaces any earlier degrade.
    pub fn set_degrade(
        &mut self,
        source: usize,
        target_ber: f64,
        from: SimTime,
        ramp: SimDuration,
    ) {
        if self.degrade.len() <= source {
            self.degrade.resize(source + 1, None);
        }
        self.degrade[source] = Some(Degrade {
            target: target_ber,
            from,
            ramp,
        });
    }

    /// Clears a fault-layer degrade (no-op when none is set).
    pub fn clear_degrade(&mut self, source: usize) {
        if let Some(d) = self.degrade.get_mut(source) {
            *d = None;
        }
    }

    /// Whether `source` currently has a fault-layer degrade applied.
    pub fn degraded(&self, source: usize) -> bool {
        self.degrade.get(source).is_some_and(Option::is_some)
    }

    /// The extra fault BER `source` suffers at `at`, ramp-interpolated.
    fn degrade_ber_at(&self, source: usize, at: SimTime) -> f64 {
        let Some(Some(d)) = self.degrade.get(source) else {
            return 0.0;
        };
        let elapsed = at.ns().saturating_sub(d.from.ns());
        if d.ramp.ns() == 0 || elapsed >= d.ramp.ns() {
            d.target
        } else {
            d.target * (elapsed as f64 / d.ramp.ns() as f64)
        }
    }

    /// Injects an interferer mid-run (the fault layer's noise burst):
    /// it covers the band for every transmission, carrier-sense and
    /// wire probe from this call on. The burst timeline stays a pure
    /// counter-based function of the medium seed and slot index, so
    /// two engines applying the same fault at the same instant see
    /// identical jam verdicts.
    pub fn add_interferer(&mut self, i: Interferer) {
        self.cfg.interferers.push(i);
    }

    /// Removes every interferer covering exactly `first_channel ..
    /// first_channel + width`, returning how many were removed.
    pub fn remove_interferer(&mut self, first_channel: u8, width: u8) -> usize {
        let before = self.cfg.interferers.len();
        self.cfg
            .interferers
            .retain(|i| !(i.first_channel == first_channel && i.width == width));
        before - self.cfg.interferers.len()
    }

    /// Registers a transmission starting at `start` on `rf_channel`.
    ///
    /// Noise is applied immediately (single shared corrupted image, as in
    /// the paper's channel module). Returns the transmission id used for
    /// later delivery.
    ///
    /// Without a spatial model the bit flips come from the medium's
    /// shared noise stream; with one they come from the source radio's
    /// private stream, and the collision scan covers only co-channel
    /// traffic whose source is within interaction range (located via
    /// the 3×3 cell neighbourhood).
    ///
    /// # Panics
    ///
    /// Panics if `rf_channel >= 79`, `bits` is empty, or (in spatial
    /// mode) `source` was never registered.
    pub fn begin_tx(
        &mut self,
        source: usize,
        rf_channel: u8,
        start: SimTime,
        bits: BitVec,
    ) -> TxId {
        assert!(rf_channel < RF_CHANNELS, "invalid RF channel {rf_channel}");
        assert!(!bits.is_empty(), "cannot transmit an empty packet");
        let mut noisy = bits;
        let spatial = self.cfg.spatial.is_some();
        // A fault-layer degrade combines independently with the channel
        // BER: a bit survives only if both processes leave it alone.
        let base = self.cfg.ber;
        let extra = self.degrade_ber_at(source, start);
        let ber = base + extra - base * extra;
        let rng = if spatial {
            &mut self
                .radios
                .get_mut(source)
                .and_then(Option::as_mut)
                .unwrap_or_else(|| panic!("spatial medium: radio {source} is not registered"))
                .noise
        } else {
            &mut self.rng
        };
        let mut flipped = 0usize;
        let mut pos = 0u64;
        let len = noisy.len() as u64;
        loop {
            let gap = rng.next_flip_gap(ber);
            if pos.saturating_add(gap) >= len {
                break;
            }
            pos += gap;
            noisy.toggle(pos as usize);
            flipped += 1;
            pos += 1;
        }
        self.total_flipped += flipped as u64;
        self.total_bits += len;
        // Fixed-band interferers wipe in-band packets when the slot the
        // packet starts in is a burst slot — the same counter-based
        // verdict `busy` and `wire_at` report, so observers and receive
        // outcomes cannot disagree.
        let jammed = self.interferer_active(rf_channel, start);
        // Collision accounting: overlap in both time and channel with a
        // still-live transmission marks both sides, once each. The
        // retention window far exceeds a packet's air time, so the
        // earlier partner of every overlap is always still registered.
        let end = start + SimDuration::from_bits(noisy.len());
        let mut collided = false;
        let mut newly_collided = 0u64;
        let cell = if spatial {
            let me = self.radio(source);
            let (my_cell, my_pos) = (me.cell, me.pos);
            let range = self.cfg.spatial.expect("checked above").path_loss();
            // Positions are immutable after registration, so the radio
            // registry can be read while the buckets are walked mutably.
            let radios = &self.radios;
            for c in neighbor_cells(my_cell) {
                let Some(buckets) = self.cell_buckets.get_mut(&c) else {
                    continue;
                };
                for other in &mut buckets[rf_channel as usize] {
                    if other.start < end && other.end() > start {
                        let other_pos = radios[other.source]
                            .as_ref()
                            .expect("retained tx has a registered source")
                            .pos;
                        if !range.in_range(my_pos, other_pos) {
                            continue;
                        }
                        collided = true;
                        if !other.counted_collided {
                            other.counted_collided = true;
                            newly_collided += 1;
                        }
                    }
                }
            }
            my_cell
        } else {
            for other in &mut self.channels[rf_channel as usize] {
                if other.start < end && other.end() > start {
                    collided = true;
                    if !other.counted_collided {
                        other.counted_collided = true;
                        newly_collided += 1;
                    }
                }
            }
            (0, 0)
        };
        let q = &mut self.quality.counters[rf_channel as usize];
        self.tx_stats.collided += newly_collided;
        q.collided += newly_collided;
        self.tx_stats.transmissions += 1;
        q.transmissions += 1;
        if collided {
            self.tx_stats.collided += 1;
            q.collided += 1;
        }
        if jammed {
            self.tx_stats.jammed += 1;
            q.jammed += 1;
        }
        if self.capture.is_enabled() {
            // The TX record carries the verdict known at registration:
            // `collided` covers overlaps with *earlier* traffic only —
            // the RX record carries the final decode verdict.
            self.capture.push(CaptureRecord {
                at: start,
                dir: CaptureDir::Sent,
                kind: CaptureKind::Air,
                device: source,
                channel: rf_channel,
                collided,
                jammed,
                orig_bits: noisy.len(),
                data: noisy.to_bytes_lsb(),
            });
        }
        let id = TxId(self.next_id);
        self.next_id += 1;
        self.last_end = self.last_end.max(end);
        self.directory.push(DirEntry {
            id,
            rf_channel,
            cell,
        });
        let tx = Transmission {
            id,
            source,
            rf_channel,
            start,
            noisy_bits: noisy,
            jammed,
            counted_collided: collided,
            delivered: false,
        };
        if spatial {
            let radio = self.radios[source].as_mut().expect("registered above");
            radio.last_end = radio.last_end.max(end);
            let buckets = self
                .cell_buckets
                .entry(cell)
                .or_insert_with(|| (0..RF_CHANNELS).map(|_| Vec::new()).collect());
            buckets[rf_channel as usize].push(tx);
        } else {
            self.channels[rf_channel as usize].push(tx);
        }
        id
    }

    /// Cumulative transmission/collision statistics since construction.
    pub fn tx_stats(&self) -> TxStats {
        self.tx_stats
    }

    /// Per-RF-channel quality counters since construction. Snapshot and
    /// diff with [`ChannelQuality::since`] to window a workload.
    pub fn channel_quality(&self) -> &ChannelQuality {
        &self.quality
    }

    /// The probability a transmission on `rf_channel` is wiped by a
    /// fixed-band interferer burst (the highest duty among the
    /// interferers covering the channel; `0.0` outside every band).
    pub fn jam_duty(&self, rf_channel: u8) -> f64 {
        self.cfg
            .interferers
            .iter()
            .filter(|i| i.covers(rf_channel))
            .map(|i| i.duty)
            .fold(0.0f64, f64::max)
    }

    /// Interferer occupancy class of `rf_channel` (see [`DutyClass`]).
    pub fn duty_class(&self, rf_channel: u8) -> DutyClass {
        let duty = self.jam_duty(rf_channel);
        if duty <= 0.0 {
            DutyClass::Clear
        } else if duty >= 1.0 {
            DutyClass::Continuous
        } else {
            DutyClass::Burst(duty)
        }
    }

    /// Records a transmission simulated on the statistical tier.
    ///
    /// Bumps the aggregate and per-channel transmission counters so
    /// [`Medium::tx_stats`] and [`Medium::channel_quality`] stay
    /// shape-identical with bit-level runs, but touches neither the
    /// noise RNG (fingerprints keep proving draw parity of the bit
    /// path) nor the flip accounting ([`Medium::measured_ber`] remains
    /// a bit-level diagnostic) nor the retention buckets (nothing can
    /// be received or collided with — the tier only runs while it has
    /// the medium to itself).
    pub fn record_stat_tx(&mut self, rf_channel: u8) {
        assert!(rf_channel < RF_CHANNELS, "invalid RF channel {rf_channel}");
        self.tx_stats.transmissions += 1;
        self.quality.counters[rf_channel as usize].transmissions += 1;
    }

    /// Whether every registered bit-level transmission has left the air
    /// by `at` — the medium-quiescence precondition of the statistical
    /// tier, in O(1).
    pub fn quiet_at(&self, at: SimTime) -> bool {
        self.last_end <= at
    }

    /// Range-scoped quiescence: whether every radio within interaction
    /// range of `observer` (including the observer itself) has finished
    /// its bit-level transmissions by `at`. Falls back to the global
    /// [`Medium::quiet_at`] without a spatial model — and, crucially
    /// for cell sharding, gives the *same* verdict whether the medium
    /// holds the whole floor or just the observer's component, because
    /// out-of-range radios never contribute.
    pub fn quiet_near(&self, observer: usize, at: SimTime) -> bool {
        let Some(spatial) = &self.cfg.spatial else {
            return self.quiet_at(at);
        };
        let me = self.radio(observer);
        for cell in neighbor_cells(me.cell) {
            let Some(members) = self.cells.get(&cell) else {
                continue;
            };
            for &m in members {
                let r = self.radio(m);
                if r.last_end > at && spatial.path_loss().in_range(me.pos, r.pos) {
                    return false;
                }
            }
        }
        true
    }

    /// End of air time of a transmission (for scheduling its delivery).
    pub fn tx_end(&self, id: TxId) -> Option<SimTime> {
        self.find(id).map(Transmission::end)
    }

    /// Time at which the demodulated bits of `id` become available.
    pub fn delivery_time(&self, id: TxId) -> Option<SimTime> {
        self.find(id).map(|t| t.end() + self.cfg.modem_delay)
    }

    /// Materialises the reception of transmission `id`.
    ///
    /// Must be called at or after the transmission's end so that every
    /// colliding transmission is already registered. Returns `None` if the
    /// id was already garbage collected.
    ///
    /// The transmission stays registered (later `begin_tx` calls within
    /// the retention window still collide against it), so its bit image
    /// is cloned exactly once into the returned [`Reception`]; masks are
    /// built with ranged word fills over the co-channel traffic only —
    /// in spatial mode, further culled to sources within interaction
    /// range of the transmitter (interference is source-pairwise; every
    /// in-range listener sees the same corrupted image, the paper's
    /// single-output channel localised to one neighbourhood).
    pub fn receive(&mut self, id: TxId) -> Option<Reception> {
        let tx = self.find(id)?;
        let len = tx.noisy_bits.len();
        let (tx_start, tx_end) = (tx.start, tx.end());
        let (tx_source, tx_channel) = (tx.source, tx.rf_channel);
        let jammed = tx.jammed;
        let mut overlapped = false;
        let mut mask: Option<BitVec> = if jammed {
            // The interferer burst covers the whole packet.
            Some(BitVec::ones(len))
        } else {
            None
        };
        let mark = |o_start: SimTime, o_end: SimTime, mask: &mut Option<BitVec>| {
            let mask = mask.get_or_insert_with(|| BitVec::zeros(len));
            // Mark the overlapped bit span [lo, hi).
            let lo = o_start.since(tx_start).ns() / SimDuration::SYMBOL.ns();
            let hi = o_end
                .since(tx_start)
                .ns()
                .div_ceil(SimDuration::SYMBOL.ns());
            mask.fill_range(lo as usize, hi.min(len as u64) as usize);
        };
        if let Some(spatial) = self.cfg.spatial {
            let me = self.radio(tx_source);
            let (my_cell, my_pos) = (me.cell, me.pos);
            for c in neighbor_cells(my_cell) {
                let Some(buckets) = self.cell_buckets.get(&c) else {
                    continue;
                };
                for other in &buckets[tx_channel as usize] {
                    if other.id == id {
                        continue;
                    }
                    let (o_start, o_end) = (other.start, other.end());
                    if o_end <= tx_start || o_start >= tx_end {
                        continue;
                    }
                    let other_pos = self.radio(other.source).pos;
                    if !spatial.path_loss().in_range(my_pos, other_pos) {
                        continue;
                    }
                    overlapped = true;
                    mark(o_start, o_end, &mut mask);
                }
            }
        } else {
            for other in &self.channels[tx_channel as usize] {
                if other.id == id {
                    continue;
                }
                let (o_start, o_end) = (other.start, other.end());
                if o_end <= tx_start || o_start >= tx_end {
                    continue;
                }
                overlapped = true;
                mark(o_start, o_end, &mut mask);
            }
        }
        let tx = self.find(id).expect("located above");
        let rec = Reception {
            tx_id: tx.id,
            source: tx.source,
            rf_channel: tx.rf_channel,
            start: tx_start,
            end: tx_end,
            available_at: tx_end + self.cfg.modem_delay,
            bits: tx.noisy_bits.clone(),
            collision_mask: mask,
        };
        self.mark_delivered(id);
        if self.capture.is_enabled() {
            // The RX record mirrors the transmission with the *final*
            // decode verdict: `collided` now covers overlaps from both
            // sides of the packet, and a clean record (neither flag) is
            // one whose air image reached the demodulator undisturbed.
            self.capture.push(CaptureRecord {
                at: rec.available_at,
                dir: CaptureDir::Received,
                kind: CaptureKind::Air,
                device: rec.source,
                channel: rec.rf_channel,
                collided: overlapped,
                jammed,
                orig_bits: rec.bits.len(),
                data: rec.bits.to_bytes_lsb(),
            });
        }
        Some(rec)
    }

    /// Whether the interferer occupying `rf_channel` is bursting at
    /// `at`: always for a full-duty band, never outside every band,
    /// and per 625 µs slot for a fractional-duty band.
    ///
    /// The fractional verdict is a counter-based draw on the slot
    /// index, forked from the medium's seed — no stream state is
    /// consumed, so carrier sensing ([`Medium::busy`]), wire probing
    /// ([`Medium::wire_at`]) and the jam verdict of
    /// [`Medium::begin_tx`] all see one burst timeline, and sibling
    /// media built from the same run seed (cell shards) agree on it.
    pub fn interferer_active(&self, rf_channel: u8, at: SimTime) -> bool {
        match self.duty_class(rf_channel) {
            DutyClass::Clear => false,
            DutyClass::Continuous => true,
            DutyClass::Burst(duty) => self.burst_slot_hit(rf_channel, at.slots(), duty),
        }
    }

    /// The counter-based burst draw for one `(slot, channel)` pair.
    fn burst_slot_hit(&self, rf_channel: u8, slot: u64, duty: f64) -> bool {
        self.jam_base
            .fork(
                slot.wrapping_mul(RF_CHANNELS as u64)
                    .wrapping_add(rf_channel as u64),
            )
            .chance(duty)
    }

    /// Whether a fractional-duty burst covers any slot overlapping
    /// `[from, to)`.
    fn burst_busy(&self, rf_channel: u8, from: SimTime, to: SimTime) -> bool {
        match self.duty_class(rf_channel) {
            DutyClass::Clear => false,
            DutyClass::Continuous => true,
            DutyClass::Burst(duty) => {
                if to <= from {
                    return false;
                }
                let last = (to - SimDuration::from_ns(1)).slots();
                (from.slots()..=last).any(|s| self.burst_slot_hit(rf_channel, s, duty))
            }
        }
    }

    /// Whether any transmission overlapping `[from, to)` on `rf_channel`
    /// is registered, or an interferer burst covers a slot of the window
    /// (carrier sensing for tests and diagnostics).
    ///
    /// Fractional-duty bursts sit on a per-slot timeline shared with
    /// [`Medium::begin_tx`]'s jam verdict (see
    /// [`Medium::interferer_active`]), so the probe agrees with the fate
    /// of a packet sent in the same slot. This scans *all* registered
    /// traffic; in spatial mode use [`Medium::busy_for`] for the view
    /// from one radio.
    pub fn busy(&self, rf_channel: u8, from: SimTime, to: SimTime) -> bool {
        self.burst_busy(rf_channel, from, to)
            || self.co_channel(rf_channel, |t| t.start < to && t.end() > from)
    }

    /// [`Medium::busy`] as seen by `observer`: in spatial mode only
    /// transmissions whose source is within interaction range of the
    /// observer count (scanned via the observer's 3×3 cell
    /// neighbourhood); without a spatial model identical to `busy`.
    pub fn busy_for(&self, observer: usize, rf_channel: u8, from: SimTime, to: SimTime) -> bool {
        if self.cfg.spatial.is_none() {
            return self.busy(rf_channel, from, to);
        }
        self.burst_busy(rf_channel, from, to)
            || self.co_channel_near(observer, rf_channel, |t| t.start < to && t.end() > from)
    }

    /// The resolved four-valued value of the medium at `at` on `rf_channel`.
    ///
    /// A channel occupied by a full-duty interferer reads `X`, as do the
    /// bits of a jammed transmission and any slot a fractional-duty
    /// burst covers — consistent with [`Medium::receive`], which
    /// delivers jammed packets under a full collision mask, and with
    /// [`Medium::busy`]. This resolves *all* registered traffic; in
    /// spatial mode use [`Medium::wire_at_for`] for one radio's view.
    pub fn wire_at(&self, rf_channel: u8, at: SimTime) -> Wire {
        if self.interferer_active(rf_channel, at) {
            return Wire::X;
        }
        let mut levels = Vec::new();
        self.co_channel(rf_channel, |t| {
            if let Some(w) = Self::tx_wire_at(t, at) {
                levels.push(w);
            }
            false
        });
        Wire::resolve(levels)
    }

    /// [`Medium::wire_at`] as seen by `observer`: in spatial mode only
    /// in-range sources drive the observed wire; without a spatial
    /// model identical to `wire_at`.
    pub fn wire_at_for(&self, observer: usize, rf_channel: u8, at: SimTime) -> Wire {
        if self.cfg.spatial.is_none() {
            return self.wire_at(rf_channel, at);
        }
        if self.interferer_active(rf_channel, at) {
            return Wire::X;
        }
        let mut levels = Vec::new();
        self.co_channel_near(observer, rf_channel, |t| {
            if let Some(w) = Self::tx_wire_at(t, at) {
                levels.push(w);
            }
            false
        });
        Wire::resolve(levels)
    }

    /// The wire level transmission `t` drives at `at`, if on air.
    fn tx_wire_at(t: &Transmission, at: SimTime) -> Option<Wire> {
        if at < t.start || at >= t.end() {
            return None;
        }
        if t.jammed {
            return Some(Wire::X);
        }
        let bit_idx = (at.since(t.start).ns() / SimDuration::SYMBOL.ns()) as usize;
        t.noisy_bits.get(bit_idx).map(Wire::from_bit)
    }

    /// Walks every retained co-channel transmission (all cells in
    /// spatial mode); returns whether `pred` matched any.
    fn co_channel(&self, rf_channel: u8, mut pred: impl FnMut(&Transmission) -> bool) -> bool {
        if self.cfg.spatial.is_some() {
            self.cell_buckets
                .values()
                .any(|b| b[rf_channel as usize].iter().any(&mut pred))
        } else {
            self.channels
                .get(rf_channel as usize)
                .is_some_and(|b| b.iter().any(&mut pred))
        }
    }

    /// Walks retained co-channel transmissions whose source is within
    /// interaction range of `observer` (spatial mode only).
    fn co_channel_near(
        &self,
        observer: usize,
        rf_channel: u8,
        mut pred: impl FnMut(&Transmission) -> bool,
    ) -> bool {
        let spatial = self.cfg.spatial.expect("spatial mode only");
        let me = self.radio(observer);
        let (my_cell, my_pos) = (me.cell, me.pos);
        for c in neighbor_cells(my_cell) {
            let Some(buckets) = self.cell_buckets.get(&c) else {
                continue;
            };
            for t in &buckets[rf_channel as usize] {
                if spatial
                    .path_loss()
                    .in_range(my_pos, self.radio(t.source).pos)
                    && pred(t)
                {
                    return true;
                }
            }
        }
        false
    }

    /// Drops transmissions that ended before `now - retention` — except
    /// that a transmission never materialised by [`Medium::receive`] is
    /// granted one extra retention window, so a delayed `receive`
    /// scheduled behind a burst of other work cannot race the
    /// collector. (Undelivered transmissions with no listeners are
    /// still reclaimed, one window late — the bound is `2 × retention`.)
    ///
    /// The directory is rebuilt from the retained buckets afterwards,
    /// so [`Medium::find`]'s binary-search invariant — every directory
    /// row has its bucket entry and vice versa — holds by construction
    /// under any retention predicate.
    ///
    /// Call periodically; `retention` must exceed the modem delay plus the
    /// longest listener window so receptions are still materialisable.
    pub fn gc(&mut self, now: SimTime, retention: SimDuration) {
        let cutoff = now - retention;
        let keep =
            |t: &Transmission| t.end() >= cutoff || (!t.delivered && t.end() + retention >= cutoff);
        for bucket in &mut self.channels {
            bucket.retain(keep);
        }
        for buckets in self.cell_buckets.values_mut() {
            for bucket in buckets.iter_mut() {
                bucket.retain(keep);
            }
        }
        self.cell_buckets
            .retain(|_, buckets| buckets.iter().any(|b| !b.is_empty()));
        let mut dir = Vec::with_capacity(self.directory.len());
        for bucket in &self.channels {
            for t in bucket {
                dir.push(DirEntry {
                    id: t.id,
                    rf_channel: t.rf_channel,
                    cell: (0, 0),
                });
            }
        }
        for (&cell, buckets) in &self.cell_buckets {
            for bucket in buckets {
                for t in bucket {
                    dir.push(DirEntry {
                        id: t.id,
                        rf_channel: t.rf_channel,
                        cell,
                    });
                }
            }
        }
        dir.sort_unstable_by_key(|e| e.id);
        self.directory = dir;
    }

    /// Digest of the noise streams' RNG positions (see
    /// [`btsim_kernel::SimRng::fingerprint`]); used by the
    /// engine-equivalence harness to prove identical draw counts. In
    /// spatial mode the per-radio streams are folded in id order.
    pub fn rng_fingerprint(&self) -> u64 {
        let mut acc = self.rng.fingerprint();
        for r in self.radios.iter().flatten() {
            acc = acc.rotate_left(9) ^ r.noise.fingerprint();
        }
        acc
    }

    /// Observed bit-flip fraction since construction (for diagnostics).
    pub fn measured_ber(&self) -> f64 {
        if self.total_bits == 0 {
            0.0
        } else {
            self.total_flipped as f64 / self.total_bits as f64
        }
    }

    /// Number of retained transmissions.
    pub fn live_count(&self) -> usize {
        self.directory.len()
    }

    /// Looks a retained transmission up by id: a binary search over the
    /// monotone directory for its channel (and cell, in spatial mode),
    /// then one over the bucket.
    fn find(&self, id: TxId) -> Option<&Transmission> {
        let dir = &self.directory;
        let e = dir[dir.binary_search_by_key(&id, |e| e.id).ok()?];
        let bucket = self.bucket(e.cell, e.rf_channel)?;
        Some(&bucket[bucket.binary_search_by_key(&id, |t| t.id).ok()?])
    }

    /// The bucket a directory row points into.
    fn bucket(&self, cell: Cell, rf_channel: u8) -> Option<&Vec<Transmission>> {
        if self.cfg.spatial.is_some() {
            Some(&self.cell_buckets.get(&cell)?[rf_channel as usize])
        } else {
            self.channels.get(rf_channel as usize)
        }
    }

    /// Marks a retained transmission as materialised (see
    /// [`Medium::gc`]'s retention rule for undelivered transmissions).
    fn mark_delivered(&mut self, id: TxId) {
        let dir = &self.directory;
        let Ok(i) = dir.binary_search_by_key(&id, |e| e.id) else {
            return;
        };
        let e = dir[i];
        let bucket = if self.cfg.spatial.is_some() {
            &mut self
                .cell_buckets
                .get_mut(&e.cell)
                .expect("directory row has a bucket")[e.rf_channel as usize]
        } else {
            &mut self.channels[e.rf_channel as usize]
        };
        if let Ok(j) = bucket.binary_search_by_key(&id, |t| t.id) {
            bucket[j].delivered = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medium(ber: f64, seed: u64) -> Medium {
        Medium::new(
            ChannelConfig {
                ber,
                ..ChannelConfig::default()
            },
            SimRng::new(seed),
        )
    }

    fn bits(n: usize) -> BitVec {
        BitVec::from_fn(n, |i| i % 2 == 0)
    }

    #[test]
    fn clean_channel_delivers_bits_unchanged() {
        let mut m = medium(0.0, 1);
        let b = bits(400);
        let tx = m.begin_tx(0, 10, SimTime::ZERO, b.clone());
        let rx = m.receive(tx).unwrap();
        assert_eq!(rx.bits, b);
        assert!(!rx.collided());
        assert_eq!(rx.end, SimTime::from_us(400));
        assert_eq!(rx.available_at, SimTime::from_us(405));
        assert_eq!(m.measured_ber(), 0.0);
    }

    #[test]
    fn noise_flips_roughly_ber_fraction() {
        let mut m = medium(0.02, 42);
        let b = BitVec::zeros(100_000);
        let tx = m.begin_tx(0, 0, SimTime::ZERO, b);
        let rx = m.receive(tx).unwrap();
        let flips = rx.bits.count_ones();
        assert!((1500..2500).contains(&flips), "flips {flips}");
        let measured = m.measured_ber();
        assert!((0.015..0.025).contains(&measured), "ber {measured}");
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let run = |seed| {
            let mut m = medium(0.05, seed);
            let tx = m.begin_tx(0, 3, SimTime::ZERO, BitVec::zeros(1000));
            m.receive(tx).unwrap().bits
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn overlapping_same_channel_transmissions_collide() {
        let mut m = medium(0.0, 1);
        let a = m.begin_tx(0, 20, SimTime::ZERO, bits(300));
        let _b = m.begin_tx(1, 20, SimTime::from_us(100), bits(100));
        let rx = m.receive(a).unwrap();
        assert!(rx.collided());
        let mask = rx.collision_mask.unwrap();
        // Bits 100..200 overlap.
        assert_eq!(mask.count_ones(), 100);
        assert_eq!(mask.get(99), Some(false));
        assert_eq!(mask.get(100), Some(true));
        assert_eq!(mask.get(199), Some(true));
        assert_eq!(mask.get(200), Some(false));
    }

    #[test]
    fn collision_is_symmetric() {
        let mut m = medium(0.0, 1);
        let a = m.begin_tx(0, 20, SimTime::ZERO, bits(300));
        let b = m.begin_tx(1, 20, SimTime::from_us(100), bits(100));
        assert!(m.receive(a).unwrap().collided());
        // The shorter packet is fully covered by the longer one.
        let rx_b = m.receive(b).unwrap();
        assert_eq!(rx_b.collision_mask.unwrap().count_ones(), 100);
    }

    #[test]
    fn different_rf_channels_do_not_collide() {
        let mut m = medium(0.0, 1);
        let a = m.begin_tx(0, 20, SimTime::ZERO, bits(300));
        let _b = m.begin_tx(1, 21, SimTime::from_us(100), bits(100));
        assert!(!m.receive(a).unwrap().collided());
    }

    #[test]
    fn back_to_back_transmissions_do_not_collide() {
        let mut m = medium(0.0, 1);
        let a = m.begin_tx(0, 5, SimTime::ZERO, bits(100));
        let _b = m.begin_tx(1, 5, SimTime::from_us(100), bits(100));
        assert!(!m.receive(a).unwrap().collided());
    }

    #[test]
    fn three_way_collision_masks_union() {
        let mut m = medium(0.0, 1);
        let a = m.begin_tx(0, 7, SimTime::ZERO, bits(300));
        let _b = m.begin_tx(1, 7, SimTime::from_us(10), bits(50));
        let _c = m.begin_tx(2, 7, SimTime::from_us(200), bits(50));
        let rx = m.receive(a).unwrap();
        assert_eq!(rx.collision_mask.unwrap().count_ones(), 100);
    }

    #[test]
    fn busy_and_wire_probe() {
        let mut m = medium(0.0, 1);
        let mut b = BitVec::zeros(10);
        b.set(1, true);
        m.begin_tx(0, 33, SimTime::from_us(100), b);
        assert!(m.busy(33, SimTime::from_us(105), SimTime::from_us(106)));
        assert!(!m.busy(34, SimTime::from_us(105), SimTime::from_us(106)));
        assert!(!m.busy(33, SimTime::from_us(110), SimTime::from_us(120)));
        assert_eq!(m.wire_at(33, SimTime::from_us(100)), Wire::L0);
        assert_eq!(m.wire_at(33, SimTime::from_us(101)), Wire::L1);
        assert_eq!(m.wire_at(33, SimTime::from_us(110)), Wire::Z);
        assert_eq!(m.wire_at(34, SimTime::from_us(101)), Wire::Z);
    }

    #[test]
    fn wire_probe_shows_collision_as_x() {
        let mut m = medium(0.0, 1);
        m.begin_tx(0, 33, SimTime::ZERO, bits(100));
        m.begin_tx(1, 33, SimTime::ZERO, bits(100));
        assert_eq!(m.wire_at(33, SimTime::from_us(5)), Wire::X);
    }

    #[test]
    fn gc_reclaims_old_transmissions() {
        let mut m = medium(0.0, 1);
        let a = m.begin_tx(0, 1, SimTime::ZERO, bits(100));
        m.gc(SimTime::from_us(10_000), SimDuration::from_us(1_000));
        assert_eq!(m.live_count(), 0);
        assert!(m.receive(a).is_none());
    }

    #[test]
    fn gc_retains_recent_transmissions() {
        let mut m = medium(0.0, 1);
        let a = m.begin_tx(0, 1, SimTime::from_us(9_500), bits(100));
        m.gc(SimTime::from_us(10_000), SimDuration::from_us(1_000));
        assert!(m.receive(a).is_some());
    }

    #[test]
    fn gc_before_retention_elapsed_saturates_and_keeps_everything() {
        // `now - retention` saturates to SimTime::ZERO when the
        // simulation is younger than the retention window; an early gc
        // must not drop anything (and must not panic).
        let mut m = medium(0.0, 1);
        let a = m.begin_tx(0, 1, SimTime::ZERO, bits(100));
        let b = m.begin_tx(1, 2, SimTime::from_us(200), bits(100));
        m.gc(SimTime::from_us(500), SimDuration::from_us(50_000));
        assert_eq!(m.live_count(), 2);
        assert!(m.receive(a).is_some());
        assert!(m.receive(b).is_some());
        // Even gc at t = 0 is safe.
        m.gc(SimTime::ZERO, SimDuration::from_us(50_000));
        assert_eq!(m.live_count(), 2);
    }

    #[test]
    fn interferer_band_coverage() {
        let w = Interferer::wlan(11, 1.0);
        assert!(w.covers(0));
        assert!(w.covers(21));
        assert!(!w.covers(22));
        let hi = Interferer::wlan(70, 1.0);
        assert!(hi.covers(59));
        assert!(hi.covers(78));
        assert!(!hi.covers(58));
    }

    #[test]
    fn low_centre_interferer_clamps_to_reachable_channels() {
        // A 22 MHz burst centred at channel 5 reaches 0..16 only; the
        // band must not silently shift upward to keep its width.
        let w = Interferer::wlan(5, 1.0);
        assert!(w.covers(0));
        assert!(w.covers(15));
        assert!(!w.covers(16), "channel 16 is 11 MHz above the centre");
        assert!(!w.covers(21));
        let lo = Interferer::wlan(0, 1.0);
        assert!(lo.covers(0));
        assert!(lo.covers(10));
        assert!(!lo.covers(11));
        // Mid-band centres keep the full 22-channel width.
        assert_eq!(Interferer::wlan(40, 1.0).width, 22);
        // A centre just past the band edge still reaches down into it…
        let edge = Interferer::wlan(79, 1.0);
        assert!(edge.covers(68));
        assert!(edge.covers(78));
        assert!(!edge.covers(67));
        // …while a centre more than 11 channels above it covers nothing
        // (and must not underflow the width computation).
        for center in [90u8, 100, 255] {
            let oob = Interferer::wlan(center, 1.0);
            assert!(
                (0..RF_CHANNELS).all(|ch| !oob.covers(ch)),
                "wlan({center}) must cover no in-band channel"
            );
        }
    }

    #[test]
    fn full_duty_interferer_wipes_in_band_packets() {
        let mut m = Medium::new(
            ChannelConfig {
                interferers: vec![Interferer::wlan(40, 1.0)],
                ..ChannelConfig::default()
            },
            SimRng::new(5),
        );
        let in_band = m.begin_tx(0, 40, SimTime::ZERO, bits(100));
        let rx = m.receive(in_band).unwrap();
        assert!(rx.collided(), "in-band packet must be wiped");
        assert_eq!(rx.collision_mask.unwrap().count_ones(), 100);
        let out_band = m.begin_tx(0, 10, SimTime::from_us(200), bits(100));
        assert!(!m.receive(out_band).unwrap().collided());
    }

    #[test]
    fn partial_duty_interferer_hits_roughly_duty_fraction() {
        let mut m = Medium::new(
            ChannelConfig {
                interferers: vec![Interferer::wlan(40, 0.5)],
                ..ChannelConfig::default()
            },
            SimRng::new(9),
        );
        // Burst verdicts are counter-based draws on the slot index: no
        // stream state is consumed, so the noise fingerprint never
        // moves (at BER 0 the flip-gap loop is draw-free too).
        let fp = m.rng_fingerprint();
        let mut hit = 0;
        for k in 0..400u64 {
            let at = SimTime::ZERO + SimDuration::from_slots(2 * k);
            let tx = m.begin_tx(0, 40, at, bits(50));
            if m.receive(tx).unwrap().collided() {
                hit += 1;
            }
            assert_eq!(m.rng_fingerprint(), fp, "tx {k}: jamming is draw-free");
            m.gc(at, SimDuration::from_us(100));
        }
        assert!((140..260).contains(&hit), "hits {hit}/400 at duty 0.5");
    }

    #[test]
    fn partial_duty_jam_verdict_is_per_slot_and_visible_to_probes() {
        let mut m = Medium::new(
            ChannelConfig {
                interferers: vec![Interferer::wlan(40, 0.5)],
                ..ChannelConfig::default()
            },
            SimRng::new(11),
        );
        let mut bursts = 0;
        for k in 0..200u64 {
            let at = SimTime::ZERO + SimDuration::from_slots(3 * k);
            let expected = m.interferer_active(40, at);
            // Observer view before any transmission: the probe reports
            // the burst itself.
            assert_eq!(m.busy(40, at, at + SimDuration::from_us(1)), expected);
            assert_eq!(
                m.wire_at(40, at) == Wire::X,
                expected,
                "slot {k}: wire probe agrees with the burst timeline"
            );
            // Two packets in the same slot share the burst's fate, and
            // it matches what the probes predicted.
            let jammed0 = m.tx_stats().jammed;
            m.begin_tx(0, 40, at, bits(20));
            m.begin_tx(1, 40, at + SimDuration::from_us(40), bits(20));
            let newly = m.tx_stats().jammed - jammed0;
            assert_eq!(newly, if expected { 2 } else { 0 });
            if expected {
                bursts += 1;
            }
            m.gc(at, SimDuration::from_us(100));
        }
        assert!(
            (60..140).contains(&bursts),
            "bursts {bursts}/200 at duty 0.5"
        );
        // The verdict is stable: re-probing any slot gives the same
        // answer (a pure function of seed, slot and channel).
        let at = SimTime::ZERO + SimDuration::from_slots(17);
        assert_eq!(m.interferer_active(40, at), m.interferer_active(40, at));
    }

    #[test]
    fn gc_grants_undelivered_transmissions_one_extra_window() {
        let mut m = medium(0.0, 1);
        // `a` is registered but its receive is delayed past the normal
        // retention horizon; `b` is materialised immediately.
        let a = m.begin_tx(0, 1, SimTime::ZERO, bits(100));
        let b = m.begin_tx(1, 2, SimTime::ZERO, bits(100));
        assert!(m.receive(b).is_some());
        // gc between begin_tx and the delayed receive: cutoff (150 µs)
        // is past both ends (100 µs), but the undelivered `a` survives
        // its grace window while the delivered `b` is reclaimed.
        m.gc(SimTime::from_us(1_150), SimDuration::from_us(1_000));
        assert_eq!(m.live_count(), 1);
        assert!(m.tx_end(b).is_none(), "delivered tx is reclaimed normally");
        let rx = m.receive(a).expect("delayed receive still materialises");
        assert!(!rx.collided());
        // Once delivered (or once the grace window passes), a later gc
        // reclaims it and `find`'s directory/bucket invariant holds.
        m.gc(SimTime::from_us(2_200), SimDuration::from_us(1_000));
        assert_eq!(m.live_count(), 0);
        assert!(m.receive(a).is_none());
        // An undelivered transmission with no listener is still bounded:
        // reclaimed after 2 × retention.
        let c = m.begin_tx(0, 3, SimTime::from_us(3_000), bits(100));
        m.gc(SimTime::from_us(6_000), SimDuration::from_us(1_000));
        assert!(m.receive(c).is_none(), "2x retention bounds the leak");
        assert_eq!(m.live_count(), 0);
    }

    #[test]
    fn tx_stats_count_overlaps_once_per_side() {
        let mut m = medium(0.0, 1);
        assert_eq!(m.tx_stats(), TxStats::default());
        let _a = m.begin_tx(0, 20, SimTime::ZERO, bits(300));
        let snapshot = m.tx_stats();
        assert_eq!(snapshot.transmissions, 1);
        assert_eq!(snapshot.collided, 0);
        // B overlaps A; C overlaps both; D is on another channel.
        let _b = m.begin_tx(1, 20, SimTime::from_us(100), bits(100));
        let _c = m.begin_tx(2, 20, SimTime::from_us(150), bits(100));
        let _d = m.begin_tx(3, 21, SimTime::from_us(150), bits(100));
        let s = m.tx_stats();
        assert_eq!(s.transmissions, 4);
        assert_eq!(s.collided, 3, "A, B and C collided; D did not");
        assert!((s.collision_rate() - 0.75).abs() < 1e-12);
        let delta = s.since(snapshot);
        assert_eq!(delta.transmissions, 3);
        assert_eq!(delta.collided, 3);
    }

    #[test]
    fn tx_stats_ignore_disjoint_and_cross_channel_traffic() {
        let mut m = medium(0.0, 1);
        for k in 0..10u64 {
            m.begin_tx(0, (k % 5) as u8, SimTime::from_us(k * 1000), bits(100));
        }
        let s = m.tx_stats();
        assert_eq!(s.transmissions, 10);
        assert_eq!(s.collided, 0);
        assert_eq!(s.collision_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid RF channel")]
    fn rejects_out_of_band_channel() {
        let mut m = medium(0.0, 1);
        m.begin_tx(0, 79, SimTime::ZERO, bits(8));
    }

    #[test]
    fn tx_stats_count_jammed_separately_from_collisions() {
        let mut m = Medium::new(
            ChannelConfig {
                interferers: vec![Interferer::wlan(40, 1.0)],
                ..ChannelConfig::default()
            },
            SimRng::new(3),
        );
        let snapshot = m.tx_stats();
        m.begin_tx(0, 40, SimTime::ZERO, bits(100)); // jammed, no overlap
        m.begin_tx(0, 10, SimTime::from_us(200), bits(100)); // clean
        m.begin_tx(1, 10, SimTime::from_us(250), bits(100)); // collides
        let s = m.tx_stats().since(snapshot);
        assert_eq!(s.transmissions, 3);
        assert_eq!(s.jammed, 1, "only the in-band packet is jammed");
        assert_eq!(s.collided, 2, "the two out-of-band packets collided");
        assert!((s.jam_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn channel_quality_tracks_per_channel_counters() {
        let mut m = Medium::new(
            ChannelConfig {
                interferers: vec![Interferer::wlan(40, 1.0)],
                ..ChannelConfig::default()
            },
            SimRng::new(3),
        );
        let snapshot = m.channel_quality().clone();
        m.begin_tx(0, 40, SimTime::ZERO, bits(100)); // jammed
        m.begin_tx(0, 10, SimTime::from_us(200), bits(100));
        m.begin_tx(1, 10, SimTime::from_us(250), bits(100)); // collides with previous
        m.begin_tx(0, 11, SimTime::from_us(500), bits(100)); // clean
        let q = m.channel_quality().since(&snapshot);
        assert_eq!(
            q.channel(40),
            ChannelCounters {
                transmissions: 1,
                collided: 0,
                jammed: 1
            }
        );
        assert_eq!(
            q.channel(10),
            ChannelCounters {
                transmissions: 2,
                collided: 2,
                jammed: 0
            }
        );
        assert_eq!(q.channel(11).transmissions, 1);
        assert_eq!(q.channel(11).bad_rate(), 0.0);
        assert_eq!(q.channel(40).bad_rate(), 1.0);
        let total = q.total();
        assert_eq!(total.transmissions, 4);
        assert_eq!(total.collided, 2);
        assert_eq!(total.jammed, 1);
        // Out-of-band probe reads zero.
        assert_eq!(q.channel(200), ChannelCounters::default());
    }

    #[test]
    fn carrier_sense_sees_full_duty_interferers() {
        let m = Medium::new(
            ChannelConfig {
                interferers: vec![Interferer::wlan(40, 1.0), Interferer::wlan(70, 0.5)],
                ..ChannelConfig::default()
            },
            SimRng::new(1),
        );
        // Full-duty band: busy and X with no transmission registered.
        assert!(m.busy(40, SimTime::ZERO, SimTime::from_us(1)));
        assert_eq!(m.wire_at(40, SimTime::ZERO), Wire::X);
        // Fractional-duty band: the probes report the per-slot burst
        // timeline — busy/X exactly on burst slots, clean between them
        // (the pre-PR-8 asymmetry where only receive outcomes saw the
        // bursts is gone).
        let burst_now = m.interferer_active(70, SimTime::ZERO);
        assert_eq!(m.busy(70, SimTime::ZERO, SimTime::from_us(1)), burst_now);
        assert_eq!(m.wire_at(70, SimTime::ZERO) == Wire::X, burst_now);
        let mut seen = [false, false];
        for s in 0..64 {
            let at = SimTime::ZERO + SimDuration::from_slots(s);
            seen[usize::from(m.interferer_active(70, at))] = true;
        }
        assert_eq!(
            seen,
            [true, true],
            "duty 0.5 has both burst and clean slots"
        );
        // Out of every band: clean.
        assert!(!m.busy(10, SimTime::ZERO, SimTime::from_us(1)));
        assert!(!m.interferer_active(10, SimTime::ZERO));
        assert_eq!(m.jam_duty(40), 1.0);
        assert_eq!(m.jam_duty(70), 0.5);
        assert_eq!(m.jam_duty(10), 0.0);
        assert_eq!(m.duty_class(40), DutyClass::Continuous);
        assert_eq!(m.duty_class(70), DutyClass::Burst(0.5));
        assert_eq!(m.duty_class(10), DutyClass::Clear);
        // Every probe above and every jam verdict is draw-free: at
        // BER 0 nothing in this test consumes the noise stream.
        let mut m = m;
        let shadow = SimRng::new(1);
        assert_eq!(m.rng_fingerprint(), shadow.fingerprint());
        m.begin_tx(0, 40, SimTime::ZERO, bits(20)); // continuous: no draw
        m.begin_tx(0, 10, SimTime::ZERO, bits(20)); // clear: no draw
        m.begin_tx(0, 70, SimTime::ZERO, bits(20)); // burst: counter-based, no draw
        assert_eq!(m.rng_fingerprint(), shadow.fingerprint());
    }

    #[test]
    fn stat_tx_records_counters_without_touching_rng_or_ber() {
        let mut m = Medium::new(
            ChannelConfig {
                interferers: vec![Interferer::wlan(40, 0.5)],
                ..ChannelConfig::default()
            },
            SimRng::new(4),
        );
        let fp = m.rng_fingerprint();
        m.record_stat_tx(3);
        m.record_stat_tx(3);
        m.record_stat_tx(40);
        assert_eq!(m.rng_fingerprint(), fp, "no draws, even in a jammed band");
        assert_eq!(m.tx_stats().transmissions, 3);
        assert_eq!(m.tx_stats().collided, 0);
        assert_eq!(m.tx_stats().jammed, 0);
        assert_eq!(m.channel_quality().channel(3).transmissions, 2);
        assert_eq!(m.channel_quality().channel(40).transmissions, 1);
        assert_eq!(m.measured_ber(), 0.0, "stat transmissions carry no bits");
        assert_eq!(m.live_count(), 0, "nothing is retained on the air");
        assert!(m.quiet_at(SimTime::ZERO));
    }

    #[test]
    fn quiet_at_tracks_last_bit_level_air_time() {
        let mut m = medium(0.0, 1);
        assert!(m.quiet_at(SimTime::ZERO));
        m.begin_tx(0, 5, SimTime::from_us(100), bits(300));
        let end = SimTime::from_us(100) + SimDuration::from_bits(300);
        assert!(!m.quiet_at(SimTime::from_us(100)));
        assert!(!m.quiet_at(end - SimDuration::from_ns(1)));
        assert!(m.quiet_at(end));
        // Garbage collection must not make the medium look quiet early.
        m.begin_tx(0, 6, SimTime::from_us(10_000), bits(300));
        m.gc(SimTime::from_us(300_000), SimDuration::from_us(1));
        assert_eq!(m.live_count(), 0);
        assert!(!m.quiet_at(SimTime::from_us(10_000)));
        assert!(m.quiet_at(SimTime::from_us(10_400)));
    }

    #[test]
    fn wire_probe_shows_jammed_transmission_as_x() {
        let mut m = Medium::new(
            ChannelConfig {
                interferers: vec![Interferer::wlan(10, 0.5)],
                ..ChannelConfig::default()
            },
            SimRng::new(9),
        );
        // Find a seeded transmission that gets jammed (duty 0.5).
        let mut jam_seen = false;
        for k in 0..20u64 {
            let at = SimTime::from_us(k * 1000);
            let tx = m.begin_tx(0, 10, at, bits(100));
            if m.receive(tx).unwrap().collided() {
                // The jammed packet's bits read X while it is on air,
                // matching the full collision mask `receive` reports.
                assert_eq!(m.wire_at(10, at + SimDuration::from_us(5)), Wire::X);
                jam_seen = true;
                break;
            }
            m.gc(at, SimDuration::from_us(100));
        }
        assert!(jam_seen, "duty 0.5 must jam within 20 tries");
    }

    // -- spatial model ---------------------------------------------------

    fn spatial_medium(ber: f64, seed: u64, radius: f64) -> Medium {
        Medium::new(
            ChannelConfig {
                ber,
                spatial: Some(SpatialConfig::with_radius(radius)),
                ..ChannelConfig::default()
            },
            SimRng::new(seed),
        )
    }

    #[test]
    fn out_of_range_sources_do_not_interact() {
        let mut m = spatial_medium(0.0, 1, 10.0);
        m.register_radio(0, Position::new(0.0, 0.0), 0);
        m.register_radio(1, Position::new(50.0, 0.0), 1);
        m.register_radio(2, Position::new(5.0, 0.0), 2);
        assert!(m.in_range(0, 2) && !m.in_range(0, 1) && !m.in_range(1, 2));
        assert_eq!(m.neighbors_of(0), vec![2]);
        assert_eq!(m.neighbors_of(1), Vec::<usize>::new());
        assert_eq!(m.position_of(1), Some(Position::new(50.0, 0.0)));
        // Same channel, same instant: the far radio does not collide
        // with radio 0, the near one does.
        let a = m.begin_tx(0, 20, SimTime::ZERO, bits(300));
        let _far = m.begin_tx(1, 20, SimTime::ZERO, bits(300));
        assert!(
            !m.receive(a).unwrap().collided(),
            "out of range: no collision"
        );
        let near = m.begin_tx(2, 20, SimTime::from_us(100), bits(100));
        let rx = m.receive(a).unwrap();
        assert!(rx.collided(), "in range: collides");
        assert_eq!(rx.collision_mask.unwrap().count_ones(), 100);
        assert!(m.receive(near).unwrap().collided());
        let s = m.tx_stats();
        assert_eq!(s.transmissions, 3);
        assert_eq!(s.collided, 2, "only the in-range pair collided");
    }

    #[test]
    fn spatial_probes_cull_by_observer_range() {
        let mut m = spatial_medium(0.0, 1, 10.0);
        m.register_radio(0, Position::new(0.0, 0.0), 0);
        m.register_radio(1, Position::new(100.0, 0.0), 1);
        m.register_radio(2, Position::new(3.0, 0.0), 2);
        m.begin_tx(0, 33, SimTime::from_us(100), bits(100));
        let (f, t) = (SimTime::from_us(120), SimTime::from_us(130));
        // God's-eye probes see everything; the far observer's view is
        // clean, the near observer's is busy.
        assert!(m.busy(33, f, t));
        assert!(!m.busy_for(1, 33, f, t), "far observer: channel clear");
        assert!(m.busy_for(2, 33, f, t), "near observer: channel busy");
        assert_ne!(m.wire_at(33, f), Wire::Z);
        assert_eq!(m.wire_at_for(1, 33, f), Wire::Z);
        assert_ne!(m.wire_at_for(2, 33, f), Wire::Z);
    }

    #[test]
    fn spatial_noise_is_independent_of_out_of_component_traffic() {
        // The property cell sharding rests on: a radio's noise draws
        // come from its private stream, so the image of its packets is
        // identical whether or not unrelated radios transmitted first.
        let image = |other_first: bool| {
            let mut m = spatial_medium(0.05, 7, 10.0);
            m.register_radio(4, Position::new(0.0, 0.0), 4);
            m.register_radio(9, Position::new(500.0, 0.0), 9);
            if other_first {
                for k in 0..5u64 {
                    let tx = m.begin_tx(9, 3, SimTime::from_us(k * 1_000), bits(200));
                    m.receive(tx).unwrap();
                }
            }
            let tx = m.begin_tx(4, 40, SimTime::from_us(50_000), bits(1_000));
            m.receive(tx).unwrap().bits
        };
        assert_eq!(image(false), image(true));
    }

    #[test]
    fn spatial_gc_and_find_agree_across_cells() {
        let mut m = spatial_medium(0.0, 3, 10.0);
        for i in 0..6 {
            m.register_radio(i, Position::new(30.0 * i as f64, 0.0), i as u64);
        }
        let ids: Vec<TxId> = (0..6)
            .map(|i| m.begin_tx(i, (i % 3) as u8, SimTime::from_us(i as u64 * 50), bits(100)))
            .collect();
        assert_eq!(m.live_count(), 6);
        for &id in &ids {
            assert!(m.receive(id).is_some());
            assert!(m.tx_end(id).is_some());
        }
        m.gc(SimTime::from_us(20_000), SimDuration::from_us(1_000));
        assert_eq!(m.live_count(), 0);
        for &id in &ids {
            assert!(m.receive(id).is_none());
        }
    }

    #[test]
    fn quiet_near_scopes_quiescence_to_range() {
        let mut m = spatial_medium(0.0, 1, 10.0);
        m.register_radio(0, Position::new(0.0, 0.0), 0);
        m.register_radio(1, Position::new(50.0, 0.0), 1);
        m.register_radio(2, Position::new(5.0, 0.0), 2);
        m.begin_tx(1, 5, SimTime::from_us(100), bits(300)); // ends at 400 µs
        let during = SimTime::from_us(200);
        assert!(!m.quiet_at(during), "god's-eye view sees the far tx");
        assert!(m.quiet_near(0, during), "far traffic does not disturb 0");
        assert!(!m.quiet_near(1, during), "own traffic counts");
        m.begin_tx(2, 6, SimTime::from_us(100), bits(300));
        assert!(!m.quiet_near(0, during), "in-range neighbour is on air");
        assert!(m.quiet_near(0, SimTime::from_us(400)));
    }

    #[test]
    fn spatial_fingerprint_folds_radio_streams() {
        let build = || {
            let mut m = spatial_medium(0.05, 5, 10.0);
            m.register_radio(0, Position::ORIGIN, 0);
            m.register_radio(1, Position::new(100.0, 0.0), 1);
            m
        };
        let (mut a, b) = (build(), build());
        assert_eq!(a.rng_fingerprint(), b.rng_fingerprint());
        a.begin_tx(0, 7, SimTime::ZERO, bits(500));
        assert_ne!(
            a.rng_fingerprint(),
            b.rng_fingerprint(),
            "radio 0's draws move the folded fingerprint"
        );
    }

    #[test]
    fn grid_cells_and_range_edges() {
        let s = SpatialConfig::with_radius(10.0);
        assert_eq!(s.cell_size(), 10.0);
        assert_eq!(s.cell_of(Position::new(0.0, 0.0)), (0, 0));
        assert_eq!(s.cell_of(Position::new(9.9, 19.9)), (0, 1));
        assert_eq!(s.cell_of(Position::new(-0.1, -10.1)), (-1, -2));
        let p = PathLoss::range(10.0);
        assert!(
            p.in_range(Position::ORIGIN, Position::new(10.0, 0.0)),
            "inclusive edge"
        );
        assert!(!p.in_range(Position::ORIGIN, Position::new(10.001, 0.0)));
        assert_eq!(Position::new(3.0, 4.0).distance(Position::ORIGIN), 5.0);
    }

    #[test]
    #[should_panic(expected = "must be >= the interaction radius")]
    fn cell_size_below_radius_is_rejected() {
        SpatialConfig::new(PathLoss::range(10.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "requires ChannelConfig::spatial")]
    fn register_radio_requires_spatial_config() {
        let mut m = medium(0.0, 1);
        m.register_radio(0, Position::ORIGIN, 0);
    }

    #[test]
    #[should_panic(expected = "is not registered")]
    fn spatial_tx_requires_registered_radio() {
        let mut m = spatial_medium(0.0, 1, 10.0);
        m.begin_tx(0, 10, SimTime::ZERO, bits(8));
    }
}
