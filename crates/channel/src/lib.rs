//! # btsim-channel
//!
//! The shared radio medium of the simulation, modelled exactly as in the
//! DATE'05 paper (Fig. 2): a digital multi-input/single-output module that
//!
//! * inverts bits with a configurable probability (the **BER**), driven by
//!   the run's random stream — the same corrupted image is seen by every
//!   receiver, as in the paper's single-output channel;
//! * delays every packet by a fixed **modem delay** standing in for the
//!   RF modulator/demodulator chain;
//! * resolves **collisions**: whenever two or more devices drive the same
//!   RF hop channel at the same time, the overlapping bits are forced to
//!   the undefined value `X` and receivers count them as errors.
//!
//! Transmissions are registered with [`Medium::begin_tx`]; the simulator
//! delivers them to listening devices by calling [`Medium::receive`],
//! which materialises the noisy bits and the collision mask.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use btsim_coding::BitVec;
use btsim_kernel::{
    CaptureDir, CaptureKind, CaptureRecord, CaptureSink, SimDuration, SimRng, SimTime, Wire,
};

/// Number of RF hop channels in the 2.4 GHz band.
pub const RF_CHANNELS: u8 = 79;

/// Identifies a registered transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId(u64);

/// A fixed-band interferer, e.g. an 802.11 network occupying ~22 MHz of
/// the ISM band (the coexistence situation of the paper's refs [4-5]).
///
/// A Bluetooth packet whose hop channel falls inside the band is wiped
/// (treated as fully collided) with probability `duty` — the fraction of
/// time the interferer's bursts occupy the band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interferer {
    /// First RF channel of the occupied band.
    pub first_channel: u8,
    /// Band width in channels (802.11b ≈ 22).
    pub width: u8,
    /// Probability a packet in the band is hit.
    pub duty: f64,
}

impl Interferer {
    /// An 802.11b-like interferer centred at `center`: the band covers
    /// `center ± 11` channels, clamped to the ISM band edges. A centre
    /// near the band edge occupies *fewer* channels — a 22 MHz burst
    /// centred at channel 5 cannot reach channel 16, so the upper edge
    /// is clamped to `center + 11` rather than shifting the whole band
    /// upward.
    pub fn wlan(center: u8, duty: f64) -> Self {
        let first_channel = center.saturating_sub(11).min(RF_CHANNELS);
        let upper = (center as u16 + 11).min(RF_CHANNELS as u16);
        Self {
            first_channel,
            // Saturating: a centre above the ISM band yields an empty
            // band rather than underflowing.
            width: upper.saturating_sub(first_channel as u16) as u8,
            duty,
        }
    }

    /// Whether `channel` falls inside the occupied band.
    pub fn covers(&self, channel: u8) -> bool {
        channel >= self.first_channel
            && (channel as u16) < self.first_channel as u16 + self.width as u16
    }
}

/// Static configuration of the medium.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelConfig {
    /// Bit error rate applied independently to every transmitted bit.
    pub ber: f64,
    /// Fixed modulator + demodulator latency added before delivery.
    pub modem_delay: SimDuration,
    /// Fixed-band interferers sharing the ISM band.
    pub interferers: Vec<Interferer>,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        Self {
            ber: 0.0,
            modem_delay: SimDuration::from_us(5),
            interferers: Vec::new(),
        }
    }
}

/// A transmission in flight (or recently completed).
#[derive(Debug, Clone)]
struct Transmission {
    id: TxId,
    source: usize,
    rf_channel: u8,
    start: SimTime,
    /// Bit image after noise was applied (what the air carries).
    noisy_bits: BitVec,
    /// Wiped by a fixed-band interferer burst.
    jammed: bool,
    /// Already counted as collided in the medium's [`TxStats`].
    counted_collided: bool,
}

impl Transmission {
    fn end(&self) -> SimTime {
        self.start + SimDuration::from_bits(self.noisy_bits.len())
    }
}

/// Cumulative transmission statistics of a [`Medium`].
///
/// A transmission counts as *collided* when another transmission
/// overlapped it in both time and RF channel (each transmission is
/// counted at most once, on both sides of the overlap). Interferer
/// jamming is counted separately in `jammed` — it is an external burst,
/// not a device-vs-device collision — so coexistence experiments can
/// report interferer hits apart from inter-piconet collisions. The
/// scatternet experiments measure the inter-piconet collision rate as
/// `collided / transmissions` deltas over a window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Transmissions registered since construction.
    pub transmissions: u64,
    /// Transmissions that overlapped another one on the same channel.
    pub collided: u64,
    /// Transmissions wiped by a fixed-band interferer burst.
    pub jammed: u64,
}

impl TxStats {
    /// Collided fraction (`0` when nothing was transmitted).
    pub fn collision_rate(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            self.collided as f64 / self.transmissions as f64
        }
    }

    /// Jammed fraction (`0` when nothing was transmitted).
    pub fn jam_rate(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            self.jammed as f64 / self.transmissions as f64
        }
    }

    /// Statistics accumulated since an earlier `snapshot`.
    pub fn since(&self, snapshot: TxStats) -> TxStats {
        TxStats {
            transmissions: self.transmissions - snapshot.transmissions,
            collided: self.collided - snapshot.collided,
            jammed: self.jammed - snapshot.jammed,
        }
    }
}

/// Counters of one RF channel inside a [`ChannelQuality`] view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelCounters {
    /// Transmissions registered on this channel.
    pub transmissions: u64,
    /// Transmissions that overlapped another one on this channel.
    pub collided: u64,
    /// Transmissions wiped by a fixed-band interferer burst.
    pub jammed: u64,
}

impl ChannelCounters {
    /// Fraction of transmissions that were collided or jammed.
    pub fn bad_rate(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            (self.collided + self.jammed) as f64 / self.transmissions as f64
        }
    }
}

/// Per-RF-channel quality accounting of a [`Medium`]: how many
/// transmissions each of the 79 hop channels carried and how many of
/// them were collided or jammed. Windowed like [`TxStats`]: take a
/// snapshot, run a workload, and diff with [`ChannelQuality::since`].
///
/// This is the medium's god's-eye view (the AFH experiments use it to
/// verify that an adapted hop sequence stops landing in an interferer's
/// band); devices build their own per-channel picture from reception
/// outcomes via `btsim_baseband::ChannelAssessment`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelQuality {
    counters: [ChannelCounters; RF_CHANNELS as usize],
}

impl Default for ChannelQuality {
    fn default() -> Self {
        Self {
            counters: [ChannelCounters::default(); RF_CHANNELS as usize],
        }
    }
}

impl ChannelQuality {
    /// Counters of one channel (all-zero for out-of-band indices).
    pub fn channel(&self, rf_channel: u8) -> ChannelCounters {
        self.counters
            .get(rf_channel as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Sum over all 79 channels.
    pub fn total(&self) -> ChannelCounters {
        self.counters
            .iter()
            .fold(ChannelCounters::default(), |acc, c| ChannelCounters {
                transmissions: acc.transmissions + c.transmissions,
                collided: acc.collided + c.collided,
                jammed: acc.jammed + c.jammed,
            })
    }

    /// Per-channel counters accumulated since an earlier `snapshot`.
    pub fn since(&self, snapshot: &ChannelQuality) -> ChannelQuality {
        let mut out = ChannelQuality::default();
        for (ch, slot) in out.counters.iter_mut().enumerate() {
            let (now, then) = (self.counters[ch], snapshot.counters[ch]);
            *slot = ChannelCounters {
                transmissions: now.transmissions - then.transmissions,
                collided: now.collided - then.collided,
                jammed: now.jammed - then.jammed,
            };
        }
        out
    }
}

/// What a receiver gets when a transmission is delivered to it.
#[derive(Debug, Clone)]
pub struct Reception {
    /// The transmission this reception came from.
    pub tx_id: TxId,
    /// Index of the transmitting device.
    pub source: usize,
    /// RF hop channel the packet was sent on.
    pub rf_channel: u8,
    /// First bit's air time (without modem delay).
    pub start: SimTime,
    /// Last bit's air time (without modem delay).
    pub end: SimTime,
    /// Time the demodulated bits become available to the baseband.
    pub available_at: SimTime,
    /// The (noise-corrupted) bit image.
    pub bits: BitVec,
    /// Mask of bits that collided with another transmission (`X` values);
    /// `None` when the packet was collision-free.
    pub collision_mask: Option<BitVec>,
}

impl Reception {
    /// True when any bit was hit by a collision.
    pub fn collided(&self) -> bool {
        self.collision_mask.is_some()
    }
}

/// The shared RF medium.
///
/// # Examples
///
/// ```
/// use btsim_channel::{ChannelConfig, Medium};
/// use btsim_coding::BitVec;
/// use btsim_kernel::{SimRng, SimTime};
///
/// let mut medium = Medium::new(ChannelConfig::default(), SimRng::new(1));
/// let bits = BitVec::from_bytes_lsb(&[0xA5; 8]);
/// let tx = medium.begin_tx(0, 40, SimTime::ZERO, bits.clone());
/// let rx = medium.receive(tx).expect("still retained");
/// assert_eq!(rx.bits, bits); // BER = 0: unchanged
/// assert!(!rx.collided());
/// ```
#[derive(Debug)]
pub struct Medium {
    cfg: ChannelConfig,
    rng: SimRng,
    /// Retained transmissions, bucketed by RF channel. Collisions,
    /// carrier sensing and wire probes only ever look at co-channel
    /// traffic, so each query scans one bucket instead of everything
    /// on the air. Within a bucket ids are monotone (appended in
    /// registration order), so lookups binary-search.
    channels: Vec<Vec<Transmission>>,
    /// Registration-ordered directory `(id, rf_channel, end)` of every
    /// retained transmission, for O(log n) [`Medium::find`] by id. The
    /// `end` copy lets [`Medium::gc`] retain the directory with the
    /// same predicate as the buckets.
    directory: Vec<(TxId, u8, SimTime)>,
    next_id: u64,
    total_flipped: u64,
    total_bits: u64,
    tx_stats: TxStats,
    quality: ChannelQuality,
    /// Latest air-time end over every *bit-level* transmission ever
    /// registered (monotone; never reduced by [`Medium::gc`]). The
    /// statistical tier uses it to prove the medium is quiescent
    /// without scanning the buckets.
    last_end: SimTime,
    /// Packet-capture sink (disabled by default): air records are pushed
    /// at [`Medium::begin_tx`] and [`Medium::receive`], and the simulator
    /// interleaves LMP records through [`Medium::capture_mut`], so one
    /// dispatch-ordered stream serializes to btsnoop.
    capture: CaptureSink,
}

/// Occupancy class of an RF channel with respect to fixed-band
/// interferers, shared by carrier sensing ([`Medium::busy`]), wire
/// probing ([`Medium::wire_at`]) and the per-transmission jam draw in
/// [`Medium::begin_tx`] so the three paths cannot disagree on the edge
/// cases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DutyClass {
    /// No interferer covers the channel; never jams, never reads busy.
    Clear,
    /// A fractional-duty interferer covers the channel: each
    /// transmission is wiped with the given probability (one RNG draw),
    /// but between bursts the channel reads clean.
    Burst(f64),
    /// A full-duty interferer occupies the band continuously: every
    /// transmission is wiped (no draw) and the channel always reads
    /// busy/`X`.
    Continuous,
}

impl DutyClass {
    /// Samples whether one transmission is wiped by the interferer.
    ///
    /// Draw contract (pinned by the interferer edge tests): exactly one
    /// draw for [`DutyClass::Burst`], none for `Clear` or `Continuous` —
    /// matching [`btsim_kernel::SimRng::chance`]'s extreme-probability
    /// short-circuits, which the jam path historically relied on.
    pub fn sample(self, rng: &mut SimRng) -> bool {
        match self {
            DutyClass::Clear => false,
            DutyClass::Burst(duty) => rng.chance(duty),
            DutyClass::Continuous => true,
        }
    }

    /// Whether the interferer occupies the band continuously.
    pub fn is_continuous(self) -> bool {
        self == DutyClass::Continuous
    }
}

impl Medium {
    /// Creates a medium with the given configuration and noise stream.
    pub fn new(cfg: ChannelConfig, rng: SimRng) -> Self {
        Self {
            cfg,
            rng,
            channels: (0..RF_CHANNELS).map(|_| Vec::new()).collect(),
            directory: Vec::new(),
            next_id: 0,
            total_flipped: 0,
            total_bits: 0,
            tx_stats: TxStats::default(),
            quality: ChannelQuality::default(),
            last_end: SimTime::ZERO,
            capture: CaptureSink::disabled(),
        }
    }

    /// The packet-capture sink (disabled unless enabled via
    /// [`Medium::capture_mut`]).
    pub fn capture(&self) -> &CaptureSink {
        &self.capture
    }

    /// Mutable access to the capture sink, for enabling capture and for
    /// the simulator's LMP-dispatch taps (which interleave with the air
    /// records in dispatch order).
    pub fn capture_mut(&mut self) -> &mut CaptureSink {
        &mut self.capture
    }

    /// Replaces the capture sink, returning the old one (used to enable
    /// capture at build time without re-plumbing constructors).
    pub fn set_capture(&mut self, sink: CaptureSink) -> CaptureSink {
        std::mem::replace(&mut self.capture, sink)
    }

    /// The medium's configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Registers a transmission starting at `start` on `rf_channel`.
    ///
    /// Noise is applied immediately (single shared corrupted image, as in
    /// the paper's channel module). Returns the transmission id used for
    /// later delivery.
    ///
    /// # Panics
    ///
    /// Panics if `rf_channel >= 79` or `bits` is empty.
    pub fn begin_tx(
        &mut self,
        source: usize,
        rf_channel: u8,
        start: SimTime,
        bits: BitVec,
    ) -> TxId {
        assert!(rf_channel < RF_CHANNELS, "invalid RF channel {rf_channel}");
        assert!(!bits.is_empty(), "cannot transmit an empty packet");
        let mut noisy = bits;
        let mut flipped = 0usize;
        let mut pos = 0u64;
        let len = noisy.len() as u64;
        loop {
            let gap = self.rng.next_flip_gap(self.cfg.ber);
            if pos.saturating_add(gap) >= len {
                break;
            }
            pos += gap;
            noisy.toggle(pos as usize);
            flipped += 1;
            pos += 1;
        }
        self.total_flipped += flipped as u64;
        self.total_bits += len;
        // Fixed-band interferers wipe in-band packets with their duty
        // probability (one draw per transmission: a burst either overlaps
        // the short Bluetooth packet or it does not).
        let jammed = self.duty_class(rf_channel).sample(&mut self.rng);
        // Collision accounting: overlap in both time and channel with a
        // still-live transmission marks both sides, once each. The
        // retention window far exceeds a packet's air time, so the
        // earlier partner of every overlap is always still registered.
        // Only the co-channel bucket is scanned.
        let end = start + SimDuration::from_bits(noisy.len());
        let mut collided = false;
        let q = &mut self.quality.counters[rf_channel as usize];
        for other in &mut self.channels[rf_channel as usize] {
            if other.start < end && other.end() > start {
                collided = true;
                if !other.counted_collided {
                    other.counted_collided = true;
                    self.tx_stats.collided += 1;
                    q.collided += 1;
                }
            }
        }
        self.tx_stats.transmissions += 1;
        q.transmissions += 1;
        if collided {
            self.tx_stats.collided += 1;
            q.collided += 1;
        }
        if jammed {
            self.tx_stats.jammed += 1;
            q.jammed += 1;
        }
        if self.capture.is_enabled() {
            // The TX record carries the verdict known at registration:
            // `collided` covers overlaps with *earlier* traffic only —
            // the RX record carries the final decode verdict.
            self.capture.push(CaptureRecord {
                at: start,
                dir: CaptureDir::Sent,
                kind: CaptureKind::Air,
                device: source,
                channel: rf_channel,
                collided,
                jammed,
                orig_bits: noisy.len(),
                data: noisy.to_bytes_lsb(),
            });
        }
        let id = TxId(self.next_id);
        self.next_id += 1;
        self.last_end = self.last_end.max(end);
        self.directory.push((id, rf_channel, end));
        self.channels[rf_channel as usize].push(Transmission {
            id,
            source,
            rf_channel,
            start,
            noisy_bits: noisy,
            jammed,
            counted_collided: collided,
        });
        id
    }

    /// Cumulative transmission/collision statistics since construction.
    pub fn tx_stats(&self) -> TxStats {
        self.tx_stats
    }

    /// Per-RF-channel quality counters since construction. Snapshot and
    /// diff with [`ChannelQuality::since`] to window a workload.
    pub fn channel_quality(&self) -> &ChannelQuality {
        &self.quality
    }

    /// The probability a transmission on `rf_channel` is wiped by a
    /// fixed-band interferer burst (the highest duty among the
    /// interferers covering the channel; `0.0` outside every band).
    pub fn jam_duty(&self, rf_channel: u8) -> f64 {
        self.cfg
            .interferers
            .iter()
            .filter(|i| i.covers(rf_channel))
            .map(|i| i.duty)
            .fold(0.0f64, f64::max)
    }

    /// Interferer occupancy class of `rf_channel` (see [`DutyClass`]).
    pub fn duty_class(&self, rf_channel: u8) -> DutyClass {
        let duty = self.jam_duty(rf_channel);
        if duty <= 0.0 {
            DutyClass::Clear
        } else if duty >= 1.0 {
            DutyClass::Continuous
        } else {
            DutyClass::Burst(duty)
        }
    }

    /// Records a transmission simulated on the statistical tier.
    ///
    /// Bumps the aggregate and per-channel transmission counters so
    /// [`Medium::tx_stats`] and [`Medium::channel_quality`] stay
    /// shape-identical with bit-level runs, but touches neither the
    /// noise RNG (fingerprints keep proving draw parity of the bit
    /// path) nor the flip accounting ([`Medium::measured_ber`] remains
    /// a bit-level diagnostic) nor the retention buckets (nothing can
    /// be received or collided with — the tier only runs while it has
    /// the medium to itself).
    pub fn record_stat_tx(&mut self, rf_channel: u8) {
        assert!(rf_channel < RF_CHANNELS, "invalid RF channel {rf_channel}");
        self.tx_stats.transmissions += 1;
        self.quality.counters[rf_channel as usize].transmissions += 1;
    }

    /// Whether every registered bit-level transmission has left the air
    /// by `at` — the medium-quiescence precondition of the statistical
    /// tier, in O(1).
    pub fn quiet_at(&self, at: SimTime) -> bool {
        self.last_end <= at
    }

    /// End of air time of a transmission (for scheduling its delivery).
    pub fn tx_end(&self, id: TxId) -> Option<SimTime> {
        self.find(id).map(Transmission::end)
    }

    /// Time at which the demodulated bits of `id` become available.
    pub fn delivery_time(&self, id: TxId) -> Option<SimTime> {
        self.find(id).map(|t| t.end() + self.cfg.modem_delay)
    }

    /// Materialises the reception of transmission `id`.
    ///
    /// Must be called at or after the transmission's end so that every
    /// colliding transmission is already registered. Returns `None` if the
    /// id was already garbage collected.
    ///
    /// The transmission stays registered (later `begin_tx` calls within
    /// the retention window still collide against it), so its bit image
    /// is cloned exactly once into the returned [`Reception`]; masks are
    /// built with ranged word fills over the co-channel bucket only.
    pub fn receive(&mut self, id: TxId) -> Option<Reception> {
        let tx = self.find(id)?;
        let len = tx.noisy_bits.len();
        let (tx_start, tx_end) = (tx.start, tx.end());
        let jammed = tx.jammed;
        let mut overlapped = false;
        let mut mask: Option<BitVec> = if jammed {
            // The interferer burst covers the whole packet.
            Some(BitVec::ones(len))
        } else {
            None
        };
        for other in &self.channels[tx.rf_channel as usize] {
            if other.id == id {
                continue;
            }
            let o_start = other.start;
            let o_end = other.end();
            if o_end <= tx_start || o_start >= tx_end {
                continue;
            }
            overlapped = true;
            let mask = mask.get_or_insert_with(|| BitVec::zeros(len));
            // Mark the overlapped bit span [lo, hi).
            let lo = o_start.since(tx_start).ns() / SimDuration::SYMBOL.ns();
            let hi = o_end
                .since(tx_start)
                .ns()
                .div_ceil(SimDuration::SYMBOL.ns());
            mask.fill_range(lo as usize, hi.min(len as u64) as usize);
        }
        let rec = Reception {
            tx_id: tx.id,
            source: tx.source,
            rf_channel: tx.rf_channel,
            start: tx_start,
            end: tx_end,
            available_at: tx_end + self.cfg.modem_delay,
            bits: tx.noisy_bits.clone(),
            collision_mask: mask,
        };
        if self.capture.is_enabled() {
            // The RX record mirrors the transmission with the *final*
            // decode verdict: `collided` now covers overlaps from both
            // sides of the packet, and a clean record (neither flag) is
            // one whose air image reached the demodulator undisturbed.
            self.capture.push(CaptureRecord {
                at: rec.available_at,
                dir: CaptureDir::Received,
                kind: CaptureKind::Air,
                device: rec.source,
                channel: rec.rf_channel,
                collided: overlapped,
                jammed,
                orig_bits: rec.bits.len(),
                data: rec.bits.to_bytes_lsb(),
            });
        }
        Some(rec)
    }

    /// Whether any transmission overlapping `[from, to)` on `rf_channel`
    /// is registered, or a full-duty interferer occupies the channel
    /// (carrier sensing for tests and diagnostics).
    ///
    /// Interferer bursts are drawn *per transmission* ([`Medium::begin_tx`]),
    /// not modelled on a timeline, so a fractional-duty interferer is
    /// invisible to this probe between bursts: the channel reads clean
    /// even though a packet sent there may be wiped. Only a `duty = 1.0`
    /// interferer — whose bursts occupy the band continuously — makes
    /// the probe report busy on its own. This asymmetry is deliberate
    /// and tested (`carrier_sense_sees_full_duty_interferers`).
    pub fn busy(&self, rf_channel: u8, from: SimTime, to: SimTime) -> bool {
        self.duty_class(rf_channel).is_continuous()
            || self
                .channels
                .get(rf_channel as usize)
                .is_some_and(|b| b.iter().any(|t| t.start < to && t.end() > from))
    }

    /// The resolved four-valued value of the medium at `at` on `rf_channel`.
    ///
    /// A channel occupied by a full-duty interferer reads `X`, as do the
    /// bits of a jammed transmission — consistent with
    /// [`Medium::receive`], which delivers jammed packets under a full
    /// collision mask. Fractional-duty bursts are not on the timeline
    /// (see [`Medium::busy`]); between transmissions such a channel
    /// reads `Z`.
    pub fn wire_at(&self, rf_channel: u8, at: SimTime) -> Wire {
        if self.duty_class(rf_channel).is_continuous() {
            return Wire::X;
        }
        let Some(bucket) = self.channels.get(rf_channel as usize) else {
            return Wire::Z;
        };
        Wire::resolve(bucket.iter().filter_map(|t| {
            if at < t.start || at >= t.end() {
                return None;
            }
            if t.jammed {
                return Some(Wire::X);
            }
            let bit_idx = (at.since(t.start).ns() / SimDuration::SYMBOL.ns()) as usize;
            t.noisy_bits.get(bit_idx).map(Wire::from_bit)
        }))
    }

    /// Drops transmissions that ended before `now - retention`.
    ///
    /// Call periodically; `retention` must exceed the modem delay plus the
    /// longest listener window so receptions are still materialisable.
    pub fn gc(&mut self, now: SimTime, retention: SimDuration) {
        let cutoff = now - retention;
        for bucket in &mut self.channels {
            bucket.retain(|t| t.end() >= cutoff);
        }
        self.directory.retain(|(_, _, end)| *end >= cutoff);
    }

    /// Digest of the noise stream's RNG position (see
    /// [`btsim_kernel::SimRng::fingerprint`]); used by the
    /// engine-equivalence harness to prove identical draw counts.
    pub fn rng_fingerprint(&self) -> u64 {
        self.rng.fingerprint()
    }

    /// Observed bit-flip fraction since construction (for diagnostics).
    pub fn measured_ber(&self) -> f64 {
        if self.total_bits == 0 {
            0.0
        } else {
            self.total_flipped as f64 / self.total_bits as f64
        }
    }

    /// Number of retained transmissions.
    pub fn live_count(&self) -> usize {
        self.directory.len()
    }

    /// Looks a retained transmission up by id: a binary search over the
    /// monotone directory for its channel, then one over the bucket.
    fn find(&self, id: TxId) -> Option<&Transmission> {
        let dir = &self.directory;
        let ch = dir[dir.binary_search_by_key(&id, |e| e.0).ok()?].1;
        let bucket = &self.channels[ch as usize];
        Some(&bucket[bucket.binary_search_by_key(&id, |t| t.id).ok()?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medium(ber: f64, seed: u64) -> Medium {
        Medium::new(
            ChannelConfig {
                ber,
                ..ChannelConfig::default()
            },
            SimRng::new(seed),
        )
    }

    fn bits(n: usize) -> BitVec {
        BitVec::from_fn(n, |i| i % 2 == 0)
    }

    #[test]
    fn clean_channel_delivers_bits_unchanged() {
        let mut m = medium(0.0, 1);
        let b = bits(400);
        let tx = m.begin_tx(0, 10, SimTime::ZERO, b.clone());
        let rx = m.receive(tx).unwrap();
        assert_eq!(rx.bits, b);
        assert!(!rx.collided());
        assert_eq!(rx.end, SimTime::from_us(400));
        assert_eq!(rx.available_at, SimTime::from_us(405));
        assert_eq!(m.measured_ber(), 0.0);
    }

    #[test]
    fn noise_flips_roughly_ber_fraction() {
        let mut m = medium(0.02, 42);
        let b = BitVec::zeros(100_000);
        let tx = m.begin_tx(0, 0, SimTime::ZERO, b);
        let rx = m.receive(tx).unwrap();
        let flips = rx.bits.count_ones();
        assert!((1500..2500).contains(&flips), "flips {flips}");
        let measured = m.measured_ber();
        assert!((0.015..0.025).contains(&measured), "ber {measured}");
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let run = |seed| {
            let mut m = medium(0.05, seed);
            let tx = m.begin_tx(0, 3, SimTime::ZERO, BitVec::zeros(1000));
            m.receive(tx).unwrap().bits
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn overlapping_same_channel_transmissions_collide() {
        let mut m = medium(0.0, 1);
        let a = m.begin_tx(0, 20, SimTime::ZERO, bits(300));
        let _b = m.begin_tx(1, 20, SimTime::from_us(100), bits(100));
        let rx = m.receive(a).unwrap();
        assert!(rx.collided());
        let mask = rx.collision_mask.unwrap();
        // Bits 100..200 overlap.
        assert_eq!(mask.count_ones(), 100);
        assert_eq!(mask.get(99), Some(false));
        assert_eq!(mask.get(100), Some(true));
        assert_eq!(mask.get(199), Some(true));
        assert_eq!(mask.get(200), Some(false));
    }

    #[test]
    fn collision_is_symmetric() {
        let mut m = medium(0.0, 1);
        let a = m.begin_tx(0, 20, SimTime::ZERO, bits(300));
        let b = m.begin_tx(1, 20, SimTime::from_us(100), bits(100));
        assert!(m.receive(a).unwrap().collided());
        // The shorter packet is fully covered by the longer one.
        let rx_b = m.receive(b).unwrap();
        assert_eq!(rx_b.collision_mask.unwrap().count_ones(), 100);
    }

    #[test]
    fn different_rf_channels_do_not_collide() {
        let mut m = medium(0.0, 1);
        let a = m.begin_tx(0, 20, SimTime::ZERO, bits(300));
        let _b = m.begin_tx(1, 21, SimTime::from_us(100), bits(100));
        assert!(!m.receive(a).unwrap().collided());
    }

    #[test]
    fn back_to_back_transmissions_do_not_collide() {
        let mut m = medium(0.0, 1);
        let a = m.begin_tx(0, 5, SimTime::ZERO, bits(100));
        let _b = m.begin_tx(1, 5, SimTime::from_us(100), bits(100));
        assert!(!m.receive(a).unwrap().collided());
    }

    #[test]
    fn three_way_collision_masks_union() {
        let mut m = medium(0.0, 1);
        let a = m.begin_tx(0, 7, SimTime::ZERO, bits(300));
        let _b = m.begin_tx(1, 7, SimTime::from_us(10), bits(50));
        let _c = m.begin_tx(2, 7, SimTime::from_us(200), bits(50));
        let rx = m.receive(a).unwrap();
        assert_eq!(rx.collision_mask.unwrap().count_ones(), 100);
    }

    #[test]
    fn busy_and_wire_probe() {
        let mut m = medium(0.0, 1);
        let mut b = BitVec::zeros(10);
        b.set(1, true);
        m.begin_tx(0, 33, SimTime::from_us(100), b);
        assert!(m.busy(33, SimTime::from_us(105), SimTime::from_us(106)));
        assert!(!m.busy(34, SimTime::from_us(105), SimTime::from_us(106)));
        assert!(!m.busy(33, SimTime::from_us(110), SimTime::from_us(120)));
        assert_eq!(m.wire_at(33, SimTime::from_us(100)), Wire::L0);
        assert_eq!(m.wire_at(33, SimTime::from_us(101)), Wire::L1);
        assert_eq!(m.wire_at(33, SimTime::from_us(110)), Wire::Z);
        assert_eq!(m.wire_at(34, SimTime::from_us(101)), Wire::Z);
    }

    #[test]
    fn wire_probe_shows_collision_as_x() {
        let mut m = medium(0.0, 1);
        m.begin_tx(0, 33, SimTime::ZERO, bits(100));
        m.begin_tx(1, 33, SimTime::ZERO, bits(100));
        assert_eq!(m.wire_at(33, SimTime::from_us(5)), Wire::X);
    }

    #[test]
    fn gc_reclaims_old_transmissions() {
        let mut m = medium(0.0, 1);
        let a = m.begin_tx(0, 1, SimTime::ZERO, bits(100));
        m.gc(SimTime::from_us(10_000), SimDuration::from_us(1_000));
        assert_eq!(m.live_count(), 0);
        assert!(m.receive(a).is_none());
    }

    #[test]
    fn gc_retains_recent_transmissions() {
        let mut m = medium(0.0, 1);
        let a = m.begin_tx(0, 1, SimTime::from_us(9_500), bits(100));
        m.gc(SimTime::from_us(10_000), SimDuration::from_us(1_000));
        assert!(m.receive(a).is_some());
    }

    #[test]
    fn gc_before_retention_elapsed_saturates_and_keeps_everything() {
        // `now - retention` saturates to SimTime::ZERO when the
        // simulation is younger than the retention window; an early gc
        // must not drop anything (and must not panic).
        let mut m = medium(0.0, 1);
        let a = m.begin_tx(0, 1, SimTime::ZERO, bits(100));
        let b = m.begin_tx(1, 2, SimTime::from_us(200), bits(100));
        m.gc(SimTime::from_us(500), SimDuration::from_us(50_000));
        assert_eq!(m.live_count(), 2);
        assert!(m.receive(a).is_some());
        assert!(m.receive(b).is_some());
        // Even gc at t = 0 is safe.
        m.gc(SimTime::ZERO, SimDuration::from_us(50_000));
        assert_eq!(m.live_count(), 2);
    }

    #[test]
    fn interferer_band_coverage() {
        let w = Interferer::wlan(11, 1.0);
        assert!(w.covers(0));
        assert!(w.covers(21));
        assert!(!w.covers(22));
        let hi = Interferer::wlan(70, 1.0);
        assert!(hi.covers(59));
        assert!(hi.covers(78));
        assert!(!hi.covers(58));
    }

    #[test]
    fn low_centre_interferer_clamps_to_reachable_channels() {
        // A 22 MHz burst centred at channel 5 reaches 0..16 only; the
        // band must not silently shift upward to keep its width.
        let w = Interferer::wlan(5, 1.0);
        assert!(w.covers(0));
        assert!(w.covers(15));
        assert!(!w.covers(16), "channel 16 is 11 MHz above the centre");
        assert!(!w.covers(21));
        let lo = Interferer::wlan(0, 1.0);
        assert!(lo.covers(0));
        assert!(lo.covers(10));
        assert!(!lo.covers(11));
        // Mid-band centres keep the full 22-channel width.
        assert_eq!(Interferer::wlan(40, 1.0).width, 22);
        // A centre just past the band edge still reaches down into it…
        let edge = Interferer::wlan(79, 1.0);
        assert!(edge.covers(68));
        assert!(edge.covers(78));
        assert!(!edge.covers(67));
        // …while a centre more than 11 channels above it covers nothing
        // (and must not underflow the width computation).
        for center in [90u8, 100, 255] {
            let oob = Interferer::wlan(center, 1.0);
            assert!(
                (0..RF_CHANNELS).all(|ch| !oob.covers(ch)),
                "wlan({center}) must cover no in-band channel"
            );
        }
    }

    #[test]
    fn full_duty_interferer_wipes_in_band_packets() {
        let mut m = Medium::new(
            ChannelConfig {
                interferers: vec![Interferer::wlan(40, 1.0)],
                ..ChannelConfig::default()
            },
            SimRng::new(5),
        );
        let in_band = m.begin_tx(0, 40, SimTime::ZERO, bits(100));
        let rx = m.receive(in_band).unwrap();
        assert!(rx.collided(), "in-band packet must be wiped");
        assert_eq!(rx.collision_mask.unwrap().count_ones(), 100);
        let out_band = m.begin_tx(0, 10, SimTime::from_us(200), bits(100));
        assert!(!m.receive(out_band).unwrap().collided());
    }

    #[test]
    fn partial_duty_interferer_hits_roughly_duty_fraction() {
        let mut m = Medium::new(
            ChannelConfig {
                interferers: vec![Interferer::wlan(40, 0.5)],
                ..ChannelConfig::default()
            },
            SimRng::new(9),
        );
        // Shadow the draw order: at BER 0 the flip-gap loop consumes no
        // draws, so each in-band transmission makes exactly one jam
        // draw, in registration order.
        let mut shadow = SimRng::new(9);
        let mut hit = 0;
        let mut shadow_hit = 0;
        for k in 0..400u64 {
            let tx = m.begin_tx(0, 40, SimTime::from_us(k * 1000), bits(50));
            if m.receive(tx).unwrap().collided() {
                hit += 1;
            }
            if shadow.chance(0.5) {
                shadow_hit += 1;
            }
            assert_eq!(
                m.rng_fingerprint(),
                shadow.fingerprint(),
                "tx {k}: exactly one jam draw per fractional-duty transmission"
            );
            m.gc(SimTime::from_us(k * 1000), SimDuration::from_us(100));
        }
        assert_eq!(hit, shadow_hit, "jam draws happen in registration order");
        assert!((140..260).contains(&hit), "hits {hit}/400 at duty 0.5");
    }

    #[test]
    fn tx_stats_count_overlaps_once_per_side() {
        let mut m = medium(0.0, 1);
        assert_eq!(m.tx_stats(), TxStats::default());
        let _a = m.begin_tx(0, 20, SimTime::ZERO, bits(300));
        let snapshot = m.tx_stats();
        assert_eq!(snapshot.transmissions, 1);
        assert_eq!(snapshot.collided, 0);
        // B overlaps A; C overlaps both; D is on another channel.
        let _b = m.begin_tx(1, 20, SimTime::from_us(100), bits(100));
        let _c = m.begin_tx(2, 20, SimTime::from_us(150), bits(100));
        let _d = m.begin_tx(3, 21, SimTime::from_us(150), bits(100));
        let s = m.tx_stats();
        assert_eq!(s.transmissions, 4);
        assert_eq!(s.collided, 3, "A, B and C collided; D did not");
        assert!((s.collision_rate() - 0.75).abs() < 1e-12);
        let delta = s.since(snapshot);
        assert_eq!(delta.transmissions, 3);
        assert_eq!(delta.collided, 3);
    }

    #[test]
    fn tx_stats_ignore_disjoint_and_cross_channel_traffic() {
        let mut m = medium(0.0, 1);
        for k in 0..10u64 {
            m.begin_tx(0, (k % 5) as u8, SimTime::from_us(k * 1000), bits(100));
        }
        let s = m.tx_stats();
        assert_eq!(s.transmissions, 10);
        assert_eq!(s.collided, 0);
        assert_eq!(s.collision_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid RF channel")]
    fn rejects_out_of_band_channel() {
        let mut m = medium(0.0, 1);
        m.begin_tx(0, 79, SimTime::ZERO, bits(8));
    }

    #[test]
    fn tx_stats_count_jammed_separately_from_collisions() {
        let mut m = Medium::new(
            ChannelConfig {
                interferers: vec![Interferer::wlan(40, 1.0)],
                ..ChannelConfig::default()
            },
            SimRng::new(3),
        );
        let snapshot = m.tx_stats();
        m.begin_tx(0, 40, SimTime::ZERO, bits(100)); // jammed, no overlap
        m.begin_tx(0, 10, SimTime::from_us(200), bits(100)); // clean
        m.begin_tx(1, 10, SimTime::from_us(250), bits(100)); // collides
        let s = m.tx_stats().since(snapshot);
        assert_eq!(s.transmissions, 3);
        assert_eq!(s.jammed, 1, "only the in-band packet is jammed");
        assert_eq!(s.collided, 2, "the two out-of-band packets collided");
        assert!((s.jam_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn channel_quality_tracks_per_channel_counters() {
        let mut m = Medium::new(
            ChannelConfig {
                interferers: vec![Interferer::wlan(40, 1.0)],
                ..ChannelConfig::default()
            },
            SimRng::new(3),
        );
        let snapshot = m.channel_quality().clone();
        m.begin_tx(0, 40, SimTime::ZERO, bits(100)); // jammed
        m.begin_tx(0, 10, SimTime::from_us(200), bits(100));
        m.begin_tx(1, 10, SimTime::from_us(250), bits(100)); // collides with previous
        m.begin_tx(0, 11, SimTime::from_us(500), bits(100)); // clean
        let q = m.channel_quality().since(&snapshot);
        assert_eq!(
            q.channel(40),
            ChannelCounters {
                transmissions: 1,
                collided: 0,
                jammed: 1
            }
        );
        assert_eq!(
            q.channel(10),
            ChannelCounters {
                transmissions: 2,
                collided: 2,
                jammed: 0
            }
        );
        assert_eq!(q.channel(11).transmissions, 1);
        assert_eq!(q.channel(11).bad_rate(), 0.0);
        assert_eq!(q.channel(40).bad_rate(), 1.0);
        let total = q.total();
        assert_eq!(total.transmissions, 4);
        assert_eq!(total.collided, 2);
        assert_eq!(total.jammed, 1);
        // Out-of-band probe reads zero.
        assert_eq!(q.channel(200), ChannelCounters::default());
    }

    #[test]
    fn carrier_sense_sees_full_duty_interferers() {
        let m = Medium::new(
            ChannelConfig {
                interferers: vec![Interferer::wlan(40, 1.0), Interferer::wlan(70, 0.5)],
                ..ChannelConfig::default()
            },
            SimRng::new(1),
        );
        // Full-duty band: busy and X with no transmission registered.
        assert!(m.busy(40, SimTime::ZERO, SimTime::from_us(1)));
        assert_eq!(m.wire_at(40, SimTime::ZERO), Wire::X);
        // Fractional-duty band: bursts are drawn per transmission, so
        // between transmissions the probe reads clean even though a
        // packet sent here may be wiped (the documented asymmetry).
        assert!(!m.busy(70, SimTime::ZERO, SimTime::from_us(1)));
        assert_eq!(m.wire_at(70, SimTime::ZERO), Wire::Z);
        // Out of every band: clean.
        assert!(!m.busy(10, SimTime::ZERO, SimTime::from_us(1)));
        assert_eq!(m.jam_duty(40), 1.0);
        assert_eq!(m.jam_duty(70), 0.5);
        assert_eq!(m.jam_duty(10), 0.0);
        assert_eq!(m.duty_class(40), DutyClass::Continuous);
        assert_eq!(m.duty_class(70), DutyClass::Burst(0.5));
        assert_eq!(m.duty_class(10), DutyClass::Clear);
        // All of the probes above are draw-free, and so are full-duty
        // and out-of-band transmissions at BER 0: only the fractional
        // band consumes randomness (pinned draw order).
        let mut m = m;
        let shadow = SimRng::new(1);
        assert_eq!(m.rng_fingerprint(), shadow.fingerprint());
        m.begin_tx(0, 40, SimTime::ZERO, bits(20)); // continuous: no draw
        m.begin_tx(0, 10, SimTime::ZERO, bits(20)); // clear: no draw
        assert_eq!(m.rng_fingerprint(), shadow.fingerprint());
        let mut shadow = shadow;
        m.begin_tx(0, 70, SimTime::ZERO, bits(20)); // burst: one draw
        shadow.chance(0.5);
        assert_eq!(m.rng_fingerprint(), shadow.fingerprint());
    }

    #[test]
    fn stat_tx_records_counters_without_touching_rng_or_ber() {
        let mut m = Medium::new(
            ChannelConfig {
                interferers: vec![Interferer::wlan(40, 0.5)],
                ..ChannelConfig::default()
            },
            SimRng::new(4),
        );
        let fp = m.rng_fingerprint();
        m.record_stat_tx(3);
        m.record_stat_tx(3);
        m.record_stat_tx(40);
        assert_eq!(m.rng_fingerprint(), fp, "no draws, even in a jammed band");
        assert_eq!(m.tx_stats().transmissions, 3);
        assert_eq!(m.tx_stats().collided, 0);
        assert_eq!(m.tx_stats().jammed, 0);
        assert_eq!(m.channel_quality().channel(3).transmissions, 2);
        assert_eq!(m.channel_quality().channel(40).transmissions, 1);
        assert_eq!(m.measured_ber(), 0.0, "stat transmissions carry no bits");
        assert_eq!(m.live_count(), 0, "nothing is retained on the air");
        assert!(m.quiet_at(SimTime::ZERO));
    }

    #[test]
    fn quiet_at_tracks_last_bit_level_air_time() {
        let mut m = medium(0.0, 1);
        assert!(m.quiet_at(SimTime::ZERO));
        m.begin_tx(0, 5, SimTime::from_us(100), bits(300));
        let end = SimTime::from_us(100) + SimDuration::from_bits(300);
        assert!(!m.quiet_at(SimTime::from_us(100)));
        assert!(!m.quiet_at(end - SimDuration::from_ns(1)));
        assert!(m.quiet_at(end));
        // Garbage collection must not make the medium look quiet early.
        m.begin_tx(0, 6, SimTime::from_us(10_000), bits(300));
        m.gc(SimTime::from_us(300_000), SimDuration::from_us(1));
        assert_eq!(m.live_count(), 0);
        assert!(!m.quiet_at(SimTime::from_us(10_000)));
        assert!(m.quiet_at(SimTime::from_us(10_400)));
    }

    #[test]
    fn wire_probe_shows_jammed_transmission_as_x() {
        let mut m = Medium::new(
            ChannelConfig {
                interferers: vec![Interferer::wlan(10, 0.5)],
                ..ChannelConfig::default()
            },
            SimRng::new(9),
        );
        // Find a seeded transmission that gets jammed (duty 0.5).
        let mut jam_seen = false;
        for k in 0..20u64 {
            let at = SimTime::from_us(k * 1000);
            let tx = m.begin_tx(0, 10, at, bits(100));
            if m.receive(tx).unwrap().collided() {
                // The jammed packet's bits read X while it is on air,
                // matching the full collision mask `receive` reports.
                assert_eq!(m.wire_at(10, at + SimDuration::from_us(5)), Wire::X);
                jam_seen = true;
                break;
            }
            m.gc(at, SimDuration::from_us(100));
        }
        assert!(jam_seen, "duty 0.5 must jam within 20 tries");
    }
}
