//! [`Snap`] implementations for the medium's state tree.
//!
//! The wire form serializes every field that affects future behaviour —
//! live transmissions, per-channel buckets, quality counters, the
//! spatial registry and all noise-stream positions. The transmission
//! *directory* is not serialized: it is an index over the buckets and is
//! rebuilt on decode exactly as [`Medium::gc`] rebuilds it, so the two
//! structures cannot disagree after a restore.

use btsim_kernel::{Snap, SnapReader, SnapWriter, SnapshotError};

use super::*;

impl Snap for TxId {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TxId(r.take_u64()?))
    }
}

impl Snap for Position {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_f64(self.x);
        w.put_f64(self.y);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Position {
            x: r.take_f64()?,
            y: r.take_f64()?,
        })
    }
}

impl Snap for SpatialConfig {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_f64(self.path_loss.radius());
        w.put_f64(self.cell_size);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let radius = r.take_f64()?;
        let cell_size = r.take_f64()?;
        if !(radius.is_finite() && radius > 0.0) {
            return Err(r.malformed("spatial radius must be finite and positive"));
        }
        if !(cell_size.is_finite() && cell_size >= radius) {
            return Err(r.malformed("spatial cell size must be >= the radius"));
        }
        Ok(SpatialConfig::new(PathLoss::range(radius), cell_size))
    }
}

impl Snap for Interferer {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(self.first_channel);
        w.put_u8(self.width);
        w.put_f64(self.duty);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Interferer {
            first_channel: r.take_u8()?,
            width: r.take_u8()?,
            duty: r.take_f64()?,
        })
    }
}

impl Snap for ChannelConfig {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_f64(self.ber);
        self.modem_delay.snap(w);
        self.interferers.snap(w);
        self.spatial.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(ChannelConfig {
            ber: r.take_f64()?,
            modem_delay: Snap::unsnap(r)?,
            interferers: Snap::unsnap(r)?,
            spatial: Snap::unsnap(r)?,
        })
    }
}

impl Snap for TxStats {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.transmissions);
        w.put_u64(self.collided);
        w.put_u64(self.jammed);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TxStats {
            transmissions: r.take_u64()?,
            collided: r.take_u64()?,
            jammed: r.take_u64()?,
        })
    }
}

impl Snap for ChannelCounters {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.transmissions);
        w.put_u64(self.collided);
        w.put_u64(self.jammed);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(ChannelCounters {
            transmissions: r.take_u64()?,
            collided: r.take_u64()?,
            jammed: r.take_u64()?,
        })
    }
}

impl Snap for ChannelQuality {
    fn snap(&self, w: &mut SnapWriter) {
        self.counters.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(ChannelQuality {
            counters: Snap::unsnap(r)?,
        })
    }
}

impl Snap for Transmission {
    fn snap(&self, w: &mut SnapWriter) {
        self.id.snap(w);
        w.put_usize(self.source);
        w.put_u8(self.rf_channel);
        self.start.snap(w);
        self.noisy_bits.snap(w);
        w.put_bool(self.jammed);
        w.put_bool(self.counted_collided);
        w.put_bool(self.delivered);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let id = TxId::unsnap(r)?;
        let source = r.take_usize()?;
        let rf_channel = r.take_u8()?;
        if rf_channel >= RF_CHANNELS {
            return Err(r.malformed("transmission RF channel out of range"));
        }
        let start = SimTime::unsnap(r)?;
        let noisy_bits = BitVec::unsnap(r)?;
        if noisy_bits.is_empty() {
            return Err(r.malformed("transmission has no bits"));
        }
        Ok(Transmission {
            id,
            source,
            rf_channel,
            start,
            noisy_bits,
            jammed: r.take_bool()?,
            counted_collided: r.take_bool()?,
            delivered: r.take_bool()?,
        })
    }
}

impl Snap for Degrade {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_f64(self.target);
        self.from.snap(w);
        self.ramp.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let d = Degrade {
            target: r.take_f64()?,
            from: Snap::unsnap(r)?,
            ramp: Snap::unsnap(r)?,
        };
        if !(d.target.is_finite() && (0.0..=1.0).contains(&d.target)) {
            return Err(r.malformed("degrade target BER out of range"));
        }
        Ok(d)
    }
}

impl Snap for Radio {
    fn snap(&self, w: &mut SnapWriter) {
        self.pos.snap(w);
        (self.cell.0, self.cell.1).snap(w);
        self.noise.snap(w);
        w.put_u64(self.stream);
        self.last_end.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Radio {
            pos: Snap::unsnap(r)?,
            cell: Snap::unsnap(r)?,
            noise: Snap::unsnap(r)?,
            stream: r.take_u64()?,
            last_end: Snap::unsnap(r)?,
        })
    }
}

/// Reads a 79-bucket array (one `Vec<Transmission>` per RF channel).
fn unsnap_channel_buckets(r: &mut SnapReader<'_>) -> Result<Vec<Vec<Transmission>>, SnapshotError> {
    let buckets: Vec<Vec<Transmission>> = Snap::unsnap(r)?;
    if buckets.len() != RF_CHANNELS as usize {
        return Err(r.malformed("channel bucket count is not 79"));
    }
    Ok(buckets)
}

impl Snap for Medium {
    fn snap(&self, w: &mut SnapWriter) {
        self.cfg.snap(w);
        self.rng.snap(w);
        self.channels.snap(w);
        w.put_usize(self.cell_buckets.len());
        for (cell, buckets) in &self.cell_buckets {
            (cell.0, cell.1).snap(w);
            buckets.snap(w);
        }
        self.radios.snap(w);
        w.put_usize(self.cells.len());
        for (cell, members) in &self.cells {
            (cell.0, cell.1).snap(w);
            members.snap(w);
        }
        self.jam_base.snap(w);
        w.put_u64(self.next_id);
        w.put_u64(self.total_flipped);
        w.put_u64(self.total_bits);
        self.tx_stats.snap(w);
        self.quality.snap(w);
        self.last_end.snap(w);
        self.capture.snap(w);
        self.degrade.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let cfg = ChannelConfig::unsnap(r)?;
        let rng = SimRng::unsnap(r)?;
        let channels = unsnap_channel_buckets(r)?;
        let n_cells = r.take_len()?;
        let mut cell_buckets = BTreeMap::new();
        for _ in 0..n_cells {
            let cell: Cell = Snap::unsnap(r)?;
            cell_buckets.insert(cell, unsnap_channel_buckets(r)?);
        }
        let radios: Vec<Option<Radio>> = Snap::unsnap(r)?;
        let n_member_cells = r.take_len()?;
        let mut cells = BTreeMap::new();
        for _ in 0..n_member_cells {
            let cell: Cell = Snap::unsnap(r)?;
            let members: Vec<usize> = Snap::unsnap(r)?;
            if members
                .iter()
                .any(|&m| radios.get(m).is_none_or(Option::is_none))
            {
                return Err(r.malformed("cell membership references unregistered radio"));
            }
            cells.insert(cell, members);
        }
        if cfg.spatial.is_none() && (!cell_buckets.is_empty() || !cells.is_empty()) {
            return Err(r.malformed("spatial state present without a spatial config"));
        }
        // The directory is an index over the buckets; rebuild it the way
        // `gc` does so the pair is consistent by construction.
        let mut directory = Vec::new();
        for (ch, bucket) in channels.iter().enumerate() {
            for t in bucket {
                directory.push(DirEntry {
                    id: t.id,
                    rf_channel: ch as u8,
                    cell: (0, 0),
                });
            }
        }
        for (&cell, buckets) in &cell_buckets {
            for (ch, bucket) in buckets.iter().enumerate() {
                for t in bucket {
                    directory.push(DirEntry {
                        id: t.id,
                        rf_channel: ch as u8,
                        cell,
                    });
                }
            }
        }
        directory.sort_unstable_by_key(|e| e.id);
        if directory.windows(2).any(|w| w[0].id == w[1].id) {
            return Err(r.malformed("duplicate transmission id in buckets"));
        }
        let medium = Medium {
            cfg,
            rng,
            channels,
            cell_buckets,
            radios,
            cells,
            directory,
            jam_base: SimRng::unsnap(r)?,
            next_id: r.take_u64()?,
            total_flipped: r.take_u64()?,
            total_bits: r.take_u64()?,
            tx_stats: Snap::unsnap(r)?,
            quality: Snap::unsnap(r)?,
            last_end: Snap::unsnap(r)?,
            capture: Snap::unsnap(r)?,
            degrade: Snap::unsnap(r)?,
        };
        if medium
            .directory
            .last()
            .is_some_and(|e| e.id.0 >= medium.next_id)
        {
            return Err(r.malformed("transmission id at or beyond next_id"));
        }
        Ok(medium)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: &Medium) -> Medium {
        let mut w = SnapWriter::new();
        m.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = Medium::unsnap(&mut r).expect("decode");
        r.finish().expect("fully consumed");
        back
    }

    fn digest(m: &mut Medium, tx: TxId) -> (u64, Option<usize>, TxStats) {
        (
            m.rng_fingerprint(),
            m.receive(tx).map(|rx| rx.bits.len()),
            m.tx_stats(),
        )
    }

    #[test]
    fn medium_roundtrips_with_live_traffic() {
        let mut m = Medium::new(
            ChannelConfig {
                ber: 0.01,
                interferers: vec![Interferer::wlan(40, 0.5)],
                ..ChannelConfig::default()
            },
            SimRng::new(77),
        );
        m.capture_mut();
        let a = m.begin_tx(0, 20, SimTime::ZERO, BitVec::ones(300));
        let _b = m.begin_tx(1, 20, SimTime::from_us(100), BitVec::ones(100));
        let mut back = roundtrip(&m);
        assert_eq!(digest(&mut back, a), digest(&mut m, a));
        // Later draws continue from the same stream position.
        let c1 = m.begin_tx(2, 5, SimTime::from_us(500), BitVec::ones(200));
        let c2 = back.begin_tx(2, 5, SimTime::from_us(500), BitVec::ones(200));
        assert_eq!(m.receive(c1).unwrap().bits, back.receive(c2).unwrap().bits);
        assert_eq!(m.rng_fingerprint(), back.rng_fingerprint());
    }

    #[test]
    fn spatial_medium_roundtrips() {
        let mut m = Medium::new(
            ChannelConfig {
                ber: 0.02,
                spatial: Some(SpatialConfig::with_radius(10.0)),
                ..ChannelConfig::default()
            },
            SimRng::new(3),
        );
        m.register_radio(0, Position::new(0.0, 0.0), 0);
        m.register_radio(1, Position::new(3.0, 0.0), 1);
        m.register_radio(2, Position::new(100.0, 100.0), 2);
        let a = m.begin_tx(0, 7, SimTime::ZERO, BitVec::ones(120));
        let _far = m.begin_tx(2, 7, SimTime::ZERO, BitVec::ones(120));
        let mut back = roundtrip(&m);
        assert_eq!(back.neighbors_of(0), m.neighbors_of(0));
        assert_eq!(back.last_end_of(2), m.last_end_of(2));
        assert_eq!(digest(&mut back, a), digest(&mut m, a));
    }

    #[test]
    fn reseed_rederives_all_streams() {
        let mk = |seed: u64| {
            let mut m = Medium::new(
                ChannelConfig {
                    ber: 0.02,
                    spatial: Some(SpatialConfig::with_radius(10.0)),
                    ..ChannelConfig::default()
                },
                SimRng::new(seed),
            );
            m.register_radio(0, Position::ORIGIN, 4);
            m
        };
        // Reseeding a used medium to stream X makes its future draws
        // equal a fresh medium built on stream X.
        let mut used = mk(1);
        let tx = used.begin_tx(0, 0, SimTime::ZERO, BitVec::ones(500));
        used.receive(tx).unwrap();
        used.reseed(SimRng::new(2));
        let mut fresh = mk(2);
        let t1 = used.begin_tx(0, 0, SimTime::from_us(5_000), BitVec::ones(500));
        let t2 = fresh.begin_tx(0, 0, SimTime::from_us(5_000), BitVec::ones(500));
        assert_eq!(
            used.receive(t1).unwrap().bits,
            fresh.receive(t2).unwrap().bits
        );
        assert_eq!(used.rng_fingerprint(), fresh.rng_fingerprint());
        assert_eq!(
            used.interferer_active(40, SimTime::from_us(625)),
            fresh.interferer_active(40, SimTime::from_us(625))
        );
    }

    #[test]
    fn malformed_medium_bytes_are_rejected() {
        let m = Medium::new(ChannelConfig::default(), SimRng::new(1));
        let mut w = SnapWriter::new();
        m.snap(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert!(Medium::unsnap(&mut r).is_err(), "cut at {cut}");
        }
    }
}
