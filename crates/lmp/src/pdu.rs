//! LMP PDU encoding.
//!
//! The subset of Link Manager Protocol messages the paper's model needs:
//! connection setup, detach, the low-power mode requests and the v1.2
//! adaptive-frequency-hopping exchange (`LMP_set_AFH` /
//! `LMP_channel_classification`). PDUs travel in DM1 payloads with
//! LLID = 11 (LMP); the first byte carries the 7-bit opcode and the
//! transaction-initiator bit (spec v1.2 Part C). The channel
//! classification PDU is carried as a direct opcode with a one-bit
//! per-channel map — the spec routes it through the extended-opcode
//! escape with two bits per channel; the model flattens both
//! simplifications without losing the behaviour under study.

/// Opcode values (spec v1.2 Part C, Table 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Accept a previously received request.
    Accepted = 3,
    /// Reject a previously received request.
    NotAccepted = 4,
    /// Tear the link down.
    Detach = 7,
    /// Enter hold mode (negotiated).
    HoldReq = 21,
    /// Enter sniff mode.
    SniffReq = 23,
    /// Leave sniff mode.
    UnsniffReq = 24,
    /// Enter park mode.
    ParkReq = 25,
    /// Establish an SCO link.
    ScoLinkReq = 45,
    /// Host requests a connection.
    HostConnectionReq = 51,
    /// Link setup finished.
    SetupComplete = 49,
    /// Negotiate the link supervision timeout.
    SupervisionTimeout = 55,
    /// Switch the piconet's AFH channel map at an announced instant.
    SetAfh = 60,
    /// A slave reports its channel classification to the master.
    ChannelClassification = 63,
}

impl Opcode {
    /// Decodes a 7-bit opcode.
    pub fn from_u8(v: u8) -> Option<Opcode> {
        Some(match v {
            3 => Opcode::Accepted,
            4 => Opcode::NotAccepted,
            7 => Opcode::Detach,
            21 => Opcode::HoldReq,
            23 => Opcode::SniffReq,
            24 => Opcode::UnsniffReq,
            25 => Opcode::ParkReq,
            45 => Opcode::ScoLinkReq,
            51 => Opcode::HostConnectionReq,
            49 => Opcode::SetupComplete,
            55 => Opcode::SupervisionTimeout,
            60 => Opcode::SetAfh,
            63 => Opcode::ChannelClassification,
            _ => return None,
        })
    }
}

use btsim_baseband::hop::{ChannelMap, CHANNEL_MAP_BYTES};

/// A decoded LMP PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pdu {
    /// `LMP_accepted(opcode)` — the peer accepted `of`.
    Accepted {
        /// The request being accepted.
        of: Opcode,
    },
    /// `LMP_not_accepted(opcode, reason)`.
    NotAccepted {
        /// The request being rejected.
        of: Opcode,
        /// Error code.
        reason: u8,
    },
    /// `LMP_detach(reason)`.
    Detach {
        /// Error code (0x13 = user ended).
        reason: u8,
    },
    /// `LMP_hold_req(hold_time, hold_instant)`.
    HoldReq {
        /// Hold duration in slots.
        hold_time: u16,
        /// Piconet slot (CLK₂₇₋₁ truncated to 32 bits) at which the hold
        /// starts on both sides.
        hold_instant: u32,
    },
    /// `LMP_sniff_req(d_sniff, t_sniff, attempt, timeout)`.
    SniffReq {
        /// Anchor offset in slots.
        d_sniff: u16,
        /// Sniff interval in slots.
        t_sniff: u16,
        /// Listen attempts per anchor.
        attempt: u16,
        /// Extension after traffic.
        timeout: u16,
    },
    /// `LMP_unsniff_req`.
    UnsniffReq,
    /// `LMP_park_req(beacon_interval)` (simplified parameter set).
    ParkReq {
        /// Beacon interval in slots.
        beacon_interval: u16,
    },
    /// `LMP_SCO_link_req(t_sco, d_sco, hv_type)` (simplified parameters).
    ScoLinkReq {
        /// Reserved-pair interval in slots.
        t_sco: u16,
        /// Anchor offset in slots.
        d_sco: u16,
        /// HV packet type code (1, 2 or 3).
        hv_type: u8,
    },
    /// `LMP_host_connection_req`.
    HostConnectionReq,
    /// `LMP_setup_complete`.
    SetupComplete,
    /// `LMP_supervision_timeout(timeout)` — the master tells the slave
    /// the `supervisionTO` both ends enforce (0 disables supervision).
    SupervisionTimeout {
        /// Timeout in slots (spec default 0x7D00 = 32000 = 20 s).
        timeout_slots: u16,
    },
    /// `LMP_set_AFH(instant, mode, map)` — the master announces the AFH
    /// channel map the piconet hops on from `instant` onward.
    SetAfh {
        /// Piconet slot at which both ends switch to the new map.
        instant: u32,
        /// AFH mode: `true` = enabled with `map`; `false` = disabled
        /// (hop over all 79 channels again from `instant`).
        enabled: bool,
        /// The channel map (ignored, all-channels, when disabled).
        map: ChannelMap,
    },
    /// `LMP_channel_classification(map)` — a slave reports which
    /// channels it assesses as usable.
    ChannelClassification {
        /// Channels the slave considers good (`used`) vs bad.
        map: ChannelMap,
    },
}

impl Pdu {
    /// The PDU's opcode.
    pub fn opcode(&self) -> Opcode {
        match self {
            Pdu::Accepted { .. } => Opcode::Accepted,
            Pdu::NotAccepted { .. } => Opcode::NotAccepted,
            Pdu::Detach { .. } => Opcode::Detach,
            Pdu::HoldReq { .. } => Opcode::HoldReq,
            Pdu::SniffReq { .. } => Opcode::SniffReq,
            Pdu::UnsniffReq => Opcode::UnsniffReq,
            Pdu::ParkReq { .. } => Opcode::ParkReq,
            Pdu::ScoLinkReq { .. } => Opcode::ScoLinkReq,
            Pdu::HostConnectionReq => Opcode::HostConnectionReq,
            Pdu::SetupComplete => Opcode::SetupComplete,
            Pdu::SupervisionTimeout { .. } => Opcode::SupervisionTimeout,
            Pdu::SetAfh { .. } => Opcode::SetAfh,
            Pdu::ChannelClassification { .. } => Opcode::ChannelClassification,
        }
    }

    /// Serialises the PDU; `tid` is the transaction-initiator bit.
    pub fn encode(&self, tid: bool) -> Vec<u8> {
        let mut out = vec![((self.opcode() as u8) << 1) | tid as u8];
        match self {
            Pdu::Accepted { of } => out.push(*of as u8),
            Pdu::NotAccepted { of, reason } => {
                out.push(*of as u8);
                out.push(*reason);
            }
            Pdu::Detach { reason } => out.push(*reason),
            Pdu::HoldReq {
                hold_time,
                hold_instant,
            } => {
                out.extend_from_slice(&hold_time.to_le_bytes());
                out.extend_from_slice(&hold_instant.to_le_bytes());
            }
            Pdu::SniffReq {
                d_sniff,
                t_sniff,
                attempt,
                timeout,
            } => {
                for v in [d_sniff, t_sniff, attempt, timeout] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Pdu::ParkReq { beacon_interval } => {
                out.extend_from_slice(&beacon_interval.to_le_bytes());
            }
            Pdu::ScoLinkReq {
                t_sco,
                d_sco,
                hv_type,
            } => {
                out.extend_from_slice(&t_sco.to_le_bytes());
                out.extend_from_slice(&d_sco.to_le_bytes());
                out.push(*hv_type);
            }
            Pdu::SetAfh {
                instant,
                enabled,
                map,
            } => {
                out.extend_from_slice(&instant.to_le_bytes());
                out.push(*enabled as u8);
                out.extend_from_slice(&map.to_bytes());
            }
            Pdu::ChannelClassification { map } => {
                out.extend_from_slice(&map.to_bytes());
            }
            Pdu::SupervisionTimeout { timeout_slots } => {
                out.extend_from_slice(&timeout_slots.to_le_bytes());
            }
            Pdu::UnsniffReq | Pdu::HostConnectionReq | Pdu::SetupComplete => {}
        }
        out
    }

    /// Parses a PDU; returns the message and the transaction bit.
    ///
    /// Returns `None` for unknown opcodes or truncated parameters.
    pub fn decode(bytes: &[u8]) -> Option<(Pdu, bool)> {
        let first = *bytes.first()?;
        let tid = first & 1 == 1;
        let opcode = Opcode::from_u8(first >> 1)?;
        let rest = &bytes[1..];
        let le16 = |i: usize| -> Option<u16> {
            Some(u16::from_le_bytes([*rest.get(i)?, *rest.get(i + 1)?]))
        };
        let pdu = match opcode {
            Opcode::Accepted => Pdu::Accepted {
                of: Opcode::from_u8(*rest.first()?)?,
            },
            Opcode::NotAccepted => Pdu::NotAccepted {
                of: Opcode::from_u8(*rest.first()?)?,
                reason: *rest.get(1)?,
            },
            Opcode::Detach => Pdu::Detach {
                reason: *rest.first()?,
            },
            Opcode::HoldReq => Pdu::HoldReq {
                hold_time: le16(0)?,
                hold_instant: u32::from_le_bytes([
                    *rest.get(2)?,
                    *rest.get(3)?,
                    *rest.get(4)?,
                    *rest.get(5)?,
                ]),
            },
            Opcode::SniffReq => Pdu::SniffReq {
                d_sniff: le16(0)?,
                t_sniff: le16(2)?,
                attempt: le16(4)?,
                timeout: le16(6)?,
            },
            Opcode::UnsniffReq => Pdu::UnsniffReq,
            Opcode::ParkReq => Pdu::ParkReq {
                beacon_interval: le16(0)?,
            },
            Opcode::ScoLinkReq => Pdu::ScoLinkReq {
                t_sco: le16(0)?,
                d_sco: le16(2)?,
                hv_type: *rest.get(4)?,
            },
            Opcode::HostConnectionReq => Pdu::HostConnectionReq,
            Opcode::SetupComplete => Pdu::SetupComplete,
            Opcode::SupervisionTimeout => Pdu::SupervisionTimeout {
                timeout_slots: le16(0)?,
            },
            Opcode::SetAfh => {
                let instant = u32::from_le_bytes([
                    *rest.first()?,
                    *rest.get(1)?,
                    *rest.get(2)?,
                    *rest.get(3)?,
                ]);
                let enabled = *rest.get(4)? != 0;
                let mut bytes = [0u8; CHANNEL_MAP_BYTES];
                for (k, b) in bytes.iter_mut().enumerate() {
                    *b = *rest.get(5 + k)?;
                }
                // Wire-level guard: a map below the spec's Nmin = 20
                // floor never reaches the hop kernel. A disable PDU
                // carries the map field too but hops over all channels.
                let map = if enabled {
                    ChannelMap::from_bytes(&bytes).ok()?
                } else {
                    ChannelMap::all()
                };
                Pdu::SetAfh {
                    instant,
                    enabled,
                    map,
                }
            }
            Opcode::ChannelClassification => {
                let mut bytes = [0u8; CHANNEL_MAP_BYTES];
                for (k, b) in bytes.iter_mut().enumerate() {
                    *b = *rest.get(k)?;
                }
                Pdu::ChannelClassification {
                    map: ChannelMap::from_bytes(&bytes).ok()?,
                }
            }
        };
        Some((pdu, tid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(pdu: Pdu) {
        for tid in [false, true] {
            let bytes = pdu.encode(tid);
            let (decoded, got_tid) = Pdu::decode(&bytes).expect("decodes");
            assert_eq!(decoded, pdu);
            assert_eq!(got_tid, tid);
        }
    }

    #[test]
    fn all_pdus_roundtrip() {
        roundtrip(Pdu::Accepted {
            of: Opcode::SniffReq,
        });
        roundtrip(Pdu::NotAccepted {
            of: Opcode::HoldReq,
            reason: 0x0C,
        });
        roundtrip(Pdu::Detach { reason: 0x13 });
        roundtrip(Pdu::HoldReq {
            hold_time: 500,
            hold_instant: 0x0012_3456,
        });
        roundtrip(Pdu::SniffReq {
            d_sniff: 4,
            t_sniff: 100,
            attempt: 1,
            timeout: 0,
        });
        roundtrip(Pdu::UnsniffReq);
        roundtrip(Pdu::ParkReq {
            beacon_interval: 400,
        });
        roundtrip(Pdu::ScoLinkReq {
            t_sco: 6,
            d_sco: 2,
            hv_type: 3,
        });
        roundtrip(Pdu::HostConnectionReq);
        roundtrip(Pdu::SetupComplete);
        roundtrip(Pdu::SupervisionTimeout {
            timeout_slots: 0x7D00,
        });
        roundtrip(Pdu::SetAfh {
            instant: 0x00C0_FFEE,
            enabled: true,
            map: ChannelMap::blocking(29..=50),
        });
        roundtrip(Pdu::ChannelClassification {
            map: ChannelMap::blocking([0, 3, 7, 78]),
        });
    }

    #[test]
    fn set_afh_disable_carries_the_full_map() {
        // A disable PDU hops over all 79 channels regardless of the map
        // bytes on the wire.
        let pdu = Pdu::SetAfh {
            instant: 40,
            enabled: false,
            map: ChannelMap::all(),
        };
        let bytes = pdu.encode(false);
        let (decoded, _) = Pdu::decode(&bytes).expect("decodes");
        assert_eq!(decoded, pdu);
    }

    #[test]
    fn afh_pdus_reject_thin_maps_at_the_wire() {
        // Craft a set_AFH whose map keeps only 10 channels: the decoder
        // must refuse it so the hop kernel never sees a sub-floor map.
        let good = Pdu::SetAfh {
            instant: 7,
            enabled: true,
            map: ChannelMap::blocking(29..=50),
        }
        .encode(false);
        let mut thin = good.clone();
        for b in &mut thin[6..16] {
            *b = 0;
        }
        thin[6] = 0xFF;
        thin[7] = 0x03; // 10 used channels
        assert!(Pdu::decode(&thin).is_none(), "thin map must be rejected");
        assert!(Pdu::decode(&good).is_some());
        // Same guard on the classification report.
        let report = Pdu::ChannelClassification {
            map: ChannelMap::all(),
        }
        .encode(true);
        let mut thin_report = report.clone();
        for b in &mut thin_report[1..11] {
            *b = 0;
        }
        assert!(Pdu::decode(&thin_report).is_none());
        assert!(Pdu::decode(&report).is_some());
    }

    #[test]
    fn pdus_fit_a_dm1() {
        // DM1 carries 17 user bytes; every LMP PDU must fit unfragmented.
        for pdu in [
            Pdu::Accepted {
                of: Opcode::SniffReq,
            },
            Pdu::HoldReq {
                hold_time: u16::MAX,
                hold_instant: u32::MAX,
            },
            Pdu::SniffReq {
                d_sniff: u16::MAX,
                t_sniff: u16::MAX,
                attempt: u16::MAX,
                timeout: u16::MAX,
            },
            Pdu::SetAfh {
                instant: u32::MAX,
                enabled: true,
                map: ChannelMap::all(),
            },
            Pdu::ChannelClassification {
                map: ChannelMap::all(),
            },
        ] {
            assert!(pdu.encode(true).len() <= 17, "{pdu:?}");
        }
    }

    #[test]
    fn rejects_unknown_opcode() {
        assert!(Pdu::decode(&[0xFF]).is_none());
        assert!(Pdu::decode(&[]).is_none());
    }

    #[test]
    fn rejects_truncated_params() {
        let full = Pdu::SniffReq {
            d_sniff: 1,
            t_sniff: 2,
            attempt: 3,
            timeout: 4,
        }
        .encode(false);
        for cut in 1..full.len() {
            assert!(Pdu::decode(&full[..cut]).is_none(), "cut at {cut}");
        }
    }
}
