//! # btsim-lmp
//!
//! The Link Manager Protocol layer of the DATE'05 Bluetooth model: PDU
//! encoding ([`Pdu`], [`Opcode`]) and the per-device [`LinkManager`]
//! state machine that negotiates connection setup, sniff, hold, park and
//! detach over LMP transactions carried in DM1 payloads (LLID = LMP).
//!
//! The manager coordinates *when* both ends of a link switch modes: a
//! negotiated change carries an agreed piconet slot, and both sides issue
//! the baseband command when their slot counter reaches it.
//!
//! # Examples
//!
//! ```
//! use btsim_baseband::SniffParams;
//! use btsim_lmp::{LinkManager, LmOutput, LmRole};
//!
//! let mut lm = LinkManager::new(LmRole::Master);
//! let outputs = lm.request_sniff(1, SniffParams::default(), 0);
//! // The first output is the LMP_sniff_req PDU queued to the baseband.
//! assert!(matches!(outputs[0], LmOutput::Command(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod manager;
mod pdu;

pub use manager::{LinkManager, LmEvent, LmOutput, LmRole};
pub use pdu::{Opcode, Pdu};
