//! The Link Manager state machine (the paper's Link Manager Layer).
//!
//! One [`LinkManager`] sits above each link controller. It translates
//! host requests into LMP transactions (request → accepted/not-accepted),
//! coordinates mode changes so both ends switch at the same piconet slot,
//! and reports results upward as [`LmEvent`]s.

use std::collections::VecDeque;

use btsim_baseband::hop::ChannelMap;
use btsim_baseband::{LcCommand, LcEvent, Llid, PacketType, ScoParams, SniffParams};

use crate::pdu::{Opcode, Pdu};

/// Where the manager sits on a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LmRole {
    /// The piconet master side.
    Master,
    /// A slave side.
    Slave,
}

/// Indications to the host / scenario layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LmEvent {
    /// LMP connection setup finished on this link.
    SetupComplete {
        /// Link the setup completed on.
        lt_addr: u8,
    },
    /// The peer rejected a request.
    Rejected {
        /// Which request was rejected.
        of: Opcode,
        /// Error code.
        reason: u8,
    },
    /// A negotiated mode change was issued to the baseband.
    ModeApplied {
        /// Link affected.
        lt_addr: u8,
        /// The request that triggered it.
        of: Opcode,
    },
    /// The peer asked to detach.
    PeerDetached {
        /// Link affected.
        lt_addr: u8,
        /// Error code carried by `LMP_detach` (e.g. 0x13 user-requested,
        /// 0x08 supervision timeout).
        reason: u8,
    },
    /// The peer accepted our `LMP_set_AFH`; both ends switch at the
    /// announced instant.
    AfhAccepted {
        /// Link the map exchange ran on.
        lt_addr: u8,
    },
    /// A slave reported its channel classification (`LMP_channel_classification`).
    /// The master-side host combines this with its own assessment and
    /// decides whether to issue a new `LMP_set_AFH`.
    ChannelClassification {
        /// Link the report arrived on.
        lt_addr: u8,
        /// Channels the slave considers usable.
        map: ChannelMap,
    },
    /// A request with a response deadline got no answer in time. For
    /// `LMP_set_AFH` the local switch is *kept*: the slave schedules its
    /// switch on reception, so by the deadline (the switch instant) it
    /// has either switched — cancelling locally would desynchronise the
    /// hop sequences — or never heard the request, in which case the
    /// link is failing anyway and the host should re-negotiate or
    /// detach.
    RequestTimedOut {
        /// Link the request was sent on.
        lt_addr: u8,
        /// The unanswered request.
        of: Opcode,
    },
}

/// Outputs of the manager: baseband commands and host events.
#[derive(Debug, Clone, PartialEq)]
pub enum LmOutput {
    /// A command for the link controller.
    Command(LcCommand),
    /// An indication for the host.
    Event(LmEvent),
}

/// A mode change agreed via LMP, applied when the slot counter reaches
/// `at_slot` (both sides compute the same instant).
#[derive(Debug, Clone, PartialEq)]
struct PendingMode {
    at_slot: u64,
    command: LcCommand,
    of: Opcode,
    lt_addr: u8,
}

/// A request we sent and await a response for, with an optional
/// response deadline (slot) after which [`LinkManager::poll`] reports
/// [`LmEvent::RequestTimedOut`].
#[derive(Debug, Clone)]
struct Outstanding {
    lt_addr: u8,
    pdu: Pdu,
    deadline_slot: Option<u64>,
}

/// The link manager of one device.
///
/// # Examples
///
/// Driving a sniff negotiation between two managers directly:
///
/// ```
/// use btsim_baseband::SniffParams;
/// use btsim_lmp::{LinkManager, LmRole};
///
/// let mut master = LinkManager::new(LmRole::Master);
/// let mut slave = LinkManager::new(LmRole::Slave);
/// let outs = master.request_sniff(1, SniffParams::default(), 100);
/// assert!(!outs.is_empty()); // carries the LMP_sniff_req PDU
/// let _ = slave; // delivery is exercised in the crate tests
/// ```
#[derive(Debug, Clone)]
pub struct LinkManager {
    role: LmRole,
    pending: Vec<PendingMode>,
    /// Requests we sent and await a response for.
    outstanding: VecDeque<Outstanding>,
    setup_done: Vec<u8>,
    /// Response deadline for request/response transactions, in slots.
    /// A request unanswered this long after it was sent resolves to
    /// [`LmEvent::RequestTimedOut`] — the only way a transaction with a
    /// crashed peer ever terminates. `LMP_set_AFH` keeps its tighter
    /// deadline (the switch instant).
    response_timeout_slots: u64,
}

/// Slots between the agreed instant and "now" when scheduling a mode
/// change, giving the acceptance PDU time to be delivered and ACKed.
const MODE_CHANGE_LEAD_SLOTS: u64 = 12;

/// Default LMP response timeout: the spec's 30 s LMP response timer,
/// expressed in 625 µs slots.
const RESPONSE_TIMEOUT_SLOTS: u64 = 48_000;

impl LinkManager {
    /// Creates a manager for one side of a piconet.
    pub fn new(role: LmRole) -> Self {
        Self {
            role,
            pending: Vec::new(),
            outstanding: VecDeque::new(),
            setup_done: Vec::new(),
            response_timeout_slots: RESPONSE_TIMEOUT_SLOTS,
        }
    }

    /// The configured role.
    pub fn role(&self) -> LmRole {
        self.role
    }

    /// Overrides the LMP response timeout (slots). `0` keeps requests
    /// pending forever — only useful in tests.
    pub fn set_response_timeout_slots(&mut self, slots: u64) {
        self.response_timeout_slots = slots;
    }

    fn response_deadline(&self, now_slot: u64) -> Option<u64> {
        (self.response_timeout_slots > 0).then(|| now_slot + self.response_timeout_slots)
    }

    fn tid(&self) -> bool {
        // Transaction-initiator bit: 0 when the master started it.
        self.role == LmRole::Slave
    }

    fn send(&self, lt_addr: u8, pdu: &Pdu) -> LmOutput {
        LmOutput::Command(LcCommand::Lmp {
            lt_addr,
            data: pdu.encode(self.tid()),
        })
    }

    /// Starts connection setup (host_connection_req → setup_complete).
    pub fn start_setup(&mut self, lt_addr: u8, now_slot: u64) -> Vec<LmOutput> {
        let pdu = Pdu::HostConnectionReq;
        self.outstanding.push_back(Outstanding {
            lt_addr,
            pdu: pdu.clone(),
            deadline_slot: self.response_deadline(now_slot),
        });
        vec![self.send(lt_addr, &pdu)]
    }

    /// Requests sniff mode on `lt_addr` starting near `now_slot`.
    pub fn request_sniff(
        &mut self,
        lt_addr: u8,
        params: SniffParams,
        now_slot: u64,
    ) -> Vec<LmOutput> {
        let pdu = Pdu::SniffReq {
            d_sniff: params.d_sniff as u16,
            t_sniff: params.t_sniff as u16,
            attempt: params.n_attempt as u16,
            timeout: params.n_timeout as u16,
        };
        self.outstanding.push_back(Outstanding {
            lt_addr,
            pdu: pdu.clone(),
            deadline_slot: self.response_deadline(now_slot),
        });
        self.pending.push(PendingMode {
            at_slot: now_slot + MODE_CHANGE_LEAD_SLOTS,
            command: LcCommand::Sniff { lt_addr, params },
            of: Opcode::SniffReq,
            lt_addr,
        });
        vec![self.send(lt_addr, &pdu)]
    }

    /// Requests leaving sniff mode.
    pub fn request_unsniff(&mut self, lt_addr: u8, now_slot: u64) -> Vec<LmOutput> {
        let pdu = Pdu::UnsniffReq;
        self.outstanding.push_back(Outstanding {
            lt_addr,
            pdu: pdu.clone(),
            deadline_slot: self.response_deadline(now_slot),
        });
        self.pending.push(PendingMode {
            at_slot: now_slot + MODE_CHANGE_LEAD_SLOTS,
            command: LcCommand::Unsniff { lt_addr },
            of: Opcode::UnsniffReq,
            lt_addr,
        });
        vec![self.send(lt_addr, &pdu)]
    }

    /// Requests hold mode for `hold_slots`, starting at an agreed instant.
    pub fn request_hold(&mut self, lt_addr: u8, hold_slots: u32, now_slot: u64) -> Vec<LmOutput> {
        let instant = now_slot + MODE_CHANGE_LEAD_SLOTS;
        let pdu = Pdu::HoldReq {
            hold_time: hold_slots.min(u16::MAX as u32) as u16,
            hold_instant: instant as u32,
        };
        self.outstanding.push_back(Outstanding {
            lt_addr,
            pdu: pdu.clone(),
            deadline_slot: self.response_deadline(now_slot),
        });
        self.pending.push(PendingMode {
            at_slot: instant,
            command: LcCommand::Hold {
                lt_addr,
                hold_slots,
            },
            of: Opcode::HoldReq,
            lt_addr,
        });
        vec![self.send(lt_addr, &pdu)]
    }

    /// Requests park mode.
    pub fn request_park(
        &mut self,
        lt_addr: u8,
        beacon_interval: u32,
        now_slot: u64,
    ) -> Vec<LmOutput> {
        let pdu = Pdu::ParkReq {
            beacon_interval: beacon_interval.min(u16::MAX as u32) as u16,
        };
        self.outstanding.push_back(Outstanding {
            lt_addr,
            pdu: pdu.clone(),
            deadline_slot: self.response_deadline(now_slot),
        });
        self.pending.push(PendingMode {
            at_slot: now_slot + MODE_CHANGE_LEAD_SLOTS,
            command: LcCommand::Park {
                lt_addr,
                beacon_interval,
            },
            of: Opcode::ParkReq,
            lt_addr,
        });
        vec![self.send(lt_addr, &pdu)]
    }

    /// Requests an SCO voice link.
    pub fn request_sco(&mut self, lt_addr: u8, params: ScoParams, now_slot: u64) -> Vec<LmOutput> {
        let hv_type = match params.ptype {
            PacketType::Hv1 => 1,
            PacketType::Hv2 => 2,
            _ => 3,
        };
        let pdu = Pdu::ScoLinkReq {
            t_sco: params.t_sco as u16,
            d_sco: params.d_sco as u16,
            hv_type,
        };
        self.outstanding.push_back(Outstanding {
            lt_addr,
            pdu: pdu.clone(),
            deadline_slot: self.response_deadline(now_slot),
        });
        self.pending.push(PendingMode {
            at_slot: now_slot + MODE_CHANGE_LEAD_SLOTS,
            command: LcCommand::ScoSetup { lt_addr, params },
            of: Opcode::ScoLinkReq,
            lt_addr,
        });
        vec![self.send(lt_addr, &pdu)]
    }

    /// Announces an AFH channel-map switch on `lt_addr` (master side,
    /// `LMP_set_AFH`): the new map takes effect on both ends at an
    /// even slot `MODE_CHANGE_LEAD_SLOTS` past `now_slot`. The local
    /// switch is scheduled immediately — the baseband holds it until
    /// the instant — so master and slave hop in lockstep through the
    /// change; the request carries a response deadline at the instant
    /// ([`LmEvent::RequestTimedOut`] if the acceptance never arrives,
    /// [`LmEvent::Rejected`] plus a cancelled switch if the slave
    /// refuses).
    pub fn request_set_afh(
        &mut self,
        lt_addr: u8,
        map: ChannelMap,
        now_slot: u64,
    ) -> Vec<LmOutput> {
        // An even instant: switches land on master-to-slave slot
        // boundaries, never between a transmission and its response.
        let instant = (now_slot + MODE_CHANGE_LEAD_SLOTS).next_multiple_of(2);
        let pdu = Pdu::SetAfh {
            instant: instant as u32,
            enabled: true,
            map: map.clone(),
        };
        self.outstanding.push_back(Outstanding {
            lt_addr,
            pdu: pdu.clone(),
            deadline_slot: Some(instant),
        });
        vec![
            self.send(lt_addr, &pdu),
            LmOutput::Command(LcCommand::SetAfhAt {
                map,
                at_slot: instant,
            }),
        ]
    }

    /// Reports this device's channel classification to the peer (slave
    /// side, `LMP_channel_classification`): `map` marks the channels the
    /// local assessment considers usable. Unacknowledged — the master
    /// answers, if at all, with a new `LMP_set_AFH`.
    pub fn send_channel_classification(&mut self, lt_addr: u8, map: ChannelMap) -> Vec<LmOutput> {
        vec![self.send(lt_addr, &Pdu::ChannelClassification { map })]
    }

    /// Requests detach: the PDU goes out first; the local teardown is
    /// scheduled a few slots later so the notification can reach the peer
    /// before the link (and its transmit queue) disappears.
    pub fn request_detach(&mut self, lt_addr: u8, now_slot: u64) -> Vec<LmOutput> {
        // 0x13: "remote user terminated connection".
        self.request_detach_with_reason(lt_addr, 0x13, now_slot)
    }

    /// [`LinkManager::request_detach`] with an explicit `LMP_detach`
    /// error code, so the peer's host learns *why* (0x08 = connection
    /// timeout, 0x13 = user requested, ...).
    pub fn request_detach_with_reason(
        &mut self,
        lt_addr: u8,
        reason: u8,
        now_slot: u64,
    ) -> Vec<LmOutput> {
        self.pending.push(PendingMode {
            at_slot: now_slot + MODE_CHANGE_LEAD_SLOTS,
            command: LcCommand::Detach { lt_addr },
            of: Opcode::Detach,
            lt_addr,
        });
        vec![self.send(lt_addr, &Pdu::Detach { reason })]
    }

    /// Negotiates the link supervision timeout (`LMP_supervision_timeout`,
    /// master side): the PDU announces `timeout_slots` to the slave, which
    /// applies it on reception; the local controller switches at the same
    /// lead-time instant as other mode changes. A value of `0` disables
    /// supervision on the link.
    pub fn request_supervision_timeout(
        &mut self,
        lt_addr: u8,
        timeout_slots: u16,
        now_slot: u64,
    ) -> Vec<LmOutput> {
        let pdu = Pdu::SupervisionTimeout { timeout_slots };
        self.outstanding.push_back(Outstanding {
            lt_addr,
            pdu: pdu.clone(),
            deadline_slot: self.response_deadline(now_slot),
        });
        self.pending.push(PendingMode {
            at_slot: now_slot + MODE_CHANGE_LEAD_SLOTS,
            command: LcCommand::SetSupervisionTimeout {
                timeout_slots: timeout_slots as u32,
            },
            of: Opcode::SupervisionTimeout,
            lt_addr,
        });
        vec![self.send(lt_addr, &pdu)]
    }

    /// The earliest slot at which a pending mode change falls due or an
    /// outstanding request's response deadline expires, if any — the
    /// manager's wakeup hint. [`LinkManager::poll`] calls before this
    /// slot are guaranteed no-ops, so an event-driven engine may skip
    /// them; it must poll again no later than this slot.
    pub fn next_pending_slot(&self) -> Option<u64> {
        self.pending
            .iter()
            .map(|p| p.at_slot)
            .chain(self.outstanding.iter().filter_map(|o| o.deadline_slot))
            .min()
    }

    /// Applies mode changes whose agreed instant has been reached and
    /// expires outstanding requests whose response deadline passed.
    pub fn poll(&mut self, now_slot: u64) -> Vec<LmOutput> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            if now_slot >= self.pending[i].at_slot {
                let p = self.pending.remove(i);
                out.push(LmOutput::Command(p.command));
                out.push(LmOutput::Event(LmEvent::ModeApplied {
                    lt_addr: p.lt_addr,
                    of: p.of,
                }));
            } else {
                i += 1;
            }
        }
        let mut k = 0;
        while k < self.outstanding.len() {
            if self.outstanding[k]
                .deadline_slot
                .is_some_and(|d| now_slot >= d)
            {
                let o = self.outstanding.remove(k).expect("index checked");
                out.push(LmOutput::Event(LmEvent::RequestTimedOut {
                    lt_addr: o.lt_addr,
                    of: o.pdu.opcode(),
                }));
            } else {
                k += 1;
            }
        }
        out
    }

    /// Feeds a link-controller event (LMP receptions drive transactions).
    pub fn on_lc_event(&mut self, ev: &LcEvent, now_slot: u64) -> Vec<LmOutput> {
        match ev {
            LcEvent::AclReceived {
                lt_addr,
                llid: Llid::Lmp,
                data,
            } => match Pdu::decode(data) {
                Some((pdu, _tid)) => self.on_pdu(*lt_addr, pdu, now_slot),
                None => Vec::new(),
            },
            _ => Vec::new(),
        }
    }

    fn on_pdu(&mut self, lt_addr: u8, pdu: Pdu, now_slot: u64) -> Vec<LmOutput> {
        let mut out = Vec::new();
        match pdu {
            Pdu::HostConnectionReq => {
                out.push(self.send(
                    lt_addr,
                    &Pdu::Accepted {
                        of: Opcode::HostConnectionReq,
                    },
                ));
                out.push(self.send(lt_addr, &Pdu::SetupComplete));
            }
            Pdu::SetupComplete => {
                if !self.setup_done.contains(&lt_addr) {
                    self.setup_done.push(lt_addr);
                    out.push(LmOutput::Event(LmEvent::SetupComplete { lt_addr }));
                }
            }
            Pdu::Accepted { of } => {
                let before = self.outstanding.len();
                self.outstanding.retain(|o| {
                    if o.lt_addr == lt_addr && o.pdu.opcode() == of {
                        if of == Opcode::HostConnectionReq {
                            // Our connection request was accepted; finish.
                            out.push(LmOutput::Command(LcCommand::Lmp {
                                lt_addr,
                                data: Pdu::SetupComplete.encode(false),
                            }));
                        }
                        false
                    } else {
                        true
                    }
                });
                if of == Opcode::SetAfh && self.outstanding.len() != before {
                    out.push(LmOutput::Event(LmEvent::AfhAccepted { lt_addr }));
                }
            }
            Pdu::NotAccepted { of, reason } => {
                self.outstanding
                    .retain(|o| !(o.lt_addr == lt_addr && o.pdu.opcode() == of));
                self.pending
                    .retain(|p| !(p.lt_addr == lt_addr && p.of == of));
                if of == Opcode::SetAfh {
                    // The slave refused, so it never scheduled the
                    // switch; drop ours before the instant arrives.
                    // AFH is piconet-wide while this cancel is
                    // controller-wide: on a multi-slave piconet a
                    // single refusal reverts the master's switch, and
                    // the host must re-announce (a fresh
                    // `request_set_afh`) to any slave that had already
                    // accepted, or that link hops away at the old
                    // instant. The in-tree slave manager always
                    // accepts `LMP_set_AFH` (as the spec mandates), so
                    // this path only fires against nonstandard peers.
                    out.push(LmOutput::Command(LcCommand::CancelAfhSwitch));
                }
                out.push(LmOutput::Event(LmEvent::Rejected { of, reason }));
            }
            Pdu::SniffReq {
                d_sniff,
                t_sniff,
                attempt,
                timeout,
            } => {
                out.push(self.send(
                    lt_addr,
                    &Pdu::Accepted {
                        of: Opcode::SniffReq,
                    },
                ));
                self.pending.push(PendingMode {
                    at_slot: now_slot + MODE_CHANGE_LEAD_SLOTS,
                    command: LcCommand::Sniff {
                        lt_addr,
                        params: SniffParams {
                            t_sniff: t_sniff as u32,
                            n_attempt: attempt as u32,
                            d_sniff: d_sniff as u32,
                            n_timeout: timeout as u32,
                        },
                    },
                    of: Opcode::SniffReq,
                    lt_addr,
                });
            }
            Pdu::UnsniffReq => {
                out.push(self.send(
                    lt_addr,
                    &Pdu::Accepted {
                        of: Opcode::UnsniffReq,
                    },
                ));
                self.pending.push(PendingMode {
                    at_slot: now_slot,
                    command: LcCommand::Unsniff { lt_addr },
                    of: Opcode::UnsniffReq,
                    lt_addr,
                });
            }
            Pdu::HoldReq {
                hold_time,
                hold_instant,
            } => {
                out.push(self.send(
                    lt_addr,
                    &Pdu::Accepted {
                        of: Opcode::HoldReq,
                    },
                ));
                self.pending.push(PendingMode {
                    at_slot: hold_instant as u64,
                    command: LcCommand::Hold {
                        lt_addr,
                        hold_slots: hold_time as u32,
                    },
                    of: Opcode::HoldReq,
                    lt_addr,
                });
            }
            Pdu::ParkReq { beacon_interval } => {
                out.push(self.send(
                    lt_addr,
                    &Pdu::Accepted {
                        of: Opcode::ParkReq,
                    },
                ));
                self.pending.push(PendingMode {
                    at_slot: now_slot + MODE_CHANGE_LEAD_SLOTS,
                    command: LcCommand::Park {
                        lt_addr,
                        beacon_interval: beacon_interval as u32,
                    },
                    of: Opcode::ParkReq,
                    lt_addr,
                });
            }
            Pdu::ScoLinkReq {
                t_sco,
                d_sco,
                hv_type,
            } => {
                out.push(self.send(
                    lt_addr,
                    &Pdu::Accepted {
                        of: Opcode::ScoLinkReq,
                    },
                ));
                let ptype = match hv_type {
                    1 => PacketType::Hv1,
                    2 => PacketType::Hv2,
                    _ => PacketType::Hv3,
                };
                self.pending.push(PendingMode {
                    at_slot: now_slot + MODE_CHANGE_LEAD_SLOTS,
                    command: LcCommand::ScoSetup {
                        lt_addr,
                        params: ScoParams {
                            t_sco: t_sco as u32,
                            d_sco: d_sco as u32,
                            ptype,
                        },
                    },
                    of: Opcode::ScoLinkReq,
                    lt_addr,
                });
            }
            Pdu::SetAfh {
                instant,
                enabled,
                map,
            } => {
                out.push(self.send(lt_addr, &Pdu::Accepted { of: Opcode::SetAfh }));
                // `enabled = false` decodes to the all-channels map:
                // hopping reverts to the full band at the instant.
                let _ = enabled;
                out.push(LmOutput::Command(LcCommand::SetAfhAt {
                    map,
                    at_slot: instant as u64,
                }));
                out.push(LmOutput::Event(LmEvent::ModeApplied {
                    lt_addr,
                    of: Opcode::SetAfh,
                }));
            }
            Pdu::ChannelClassification { map } => {
                out.push(LmOutput::Event(LmEvent::ChannelClassification {
                    lt_addr,
                    map,
                }));
            }
            Pdu::SupervisionTimeout { timeout_slots } => {
                out.push(self.send(
                    lt_addr,
                    &Pdu::Accepted {
                        of: Opcode::SupervisionTimeout,
                    },
                ));
                out.push(LmOutput::Command(LcCommand::SetSupervisionTimeout {
                    timeout_slots: timeout_slots as u32,
                }));
                out.push(LmOutput::Event(LmEvent::ModeApplied {
                    lt_addr,
                    of: Opcode::SupervisionTimeout,
                }));
            }
            Pdu::Detach { reason } => {
                out.push(LmOutput::Command(LcCommand::Detach { lt_addr }));
                out.push(LmOutput::Event(LmEvent::PeerDetached { lt_addr, reason }));
            }
        }
        out
    }
}

use btsim_kernel::{Snap, SnapReader, SnapWriter, SnapshotError};

impl Snap for LmRole {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            LmRole::Master => 0,
            LmRole::Slave => 1,
        });
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.take_u8()? {
            0 => LmRole::Master,
            1 => LmRole::Slave,
            _ => return Err(r.malformed("unknown LM role tag")),
        })
    }
}

impl Snap for Opcode {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(*self as u8);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let v = r.take_u8()?;
        Opcode::from_u8(v).ok_or_else(|| r.malformed("unknown LMP opcode"))
    }
}

impl Snap for Pdu {
    /// PDUs roundtrip through their own LMP wire encoding (the
    /// transaction-initiator bit is not part of the PDU value and is
    /// pinned to zero here).
    fn snap(&self, w: &mut SnapWriter) {
        w.put_bytes(&self.encode(false));
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let bytes = r.take_bytes()?;
        match Pdu::decode(&bytes) {
            Some((pdu, _tid)) => Ok(pdu),
            None => Err(r.malformed("undecodable LMP PDU")),
        }
    }
}

impl Snap for LmEvent {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            LmEvent::SetupComplete { lt_addr } => {
                w.put_u8(0);
                w.put_u8(*lt_addr);
            }
            LmEvent::Rejected { of, reason } => {
                w.put_u8(1);
                of.snap(w);
                w.put_u8(*reason);
            }
            LmEvent::ModeApplied { lt_addr, of } => {
                w.put_u8(2);
                w.put_u8(*lt_addr);
                of.snap(w);
            }
            LmEvent::PeerDetached { lt_addr, reason } => {
                w.put_u8(3);
                w.put_u8(*lt_addr);
                w.put_u8(*reason);
            }
            LmEvent::AfhAccepted { lt_addr } => {
                w.put_u8(4);
                w.put_u8(*lt_addr);
            }
            LmEvent::ChannelClassification { lt_addr, map } => {
                w.put_u8(5);
                w.put_u8(*lt_addr);
                map.snap(w);
            }
            LmEvent::RequestTimedOut { lt_addr, of } => {
                w.put_u8(6);
                w.put_u8(*lt_addr);
                of.snap(w);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.take_u8()? {
            0 => LmEvent::SetupComplete {
                lt_addr: r.take_u8()?,
            },
            1 => LmEvent::Rejected {
                of: Opcode::unsnap(r)?,
                reason: r.take_u8()?,
            },
            2 => LmEvent::ModeApplied {
                lt_addr: r.take_u8()?,
                of: Opcode::unsnap(r)?,
            },
            3 => LmEvent::PeerDetached {
                lt_addr: r.take_u8()?,
                reason: r.take_u8()?,
            },
            4 => LmEvent::AfhAccepted {
                lt_addr: r.take_u8()?,
            },
            5 => LmEvent::ChannelClassification {
                lt_addr: r.take_u8()?,
                map: ChannelMap::unsnap(r)?,
            },
            6 => LmEvent::RequestTimedOut {
                lt_addr: r.take_u8()?,
                of: Opcode::unsnap(r)?,
            },
            _ => return Err(r.malformed("unknown LM event tag")),
        })
    }
}

impl Snap for PendingMode {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.at_slot);
        self.command.snap(w);
        self.of.snap(w);
        w.put_u8(self.lt_addr);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            at_slot: r.take_u64()?,
            command: LcCommand::unsnap(r)?,
            of: Opcode::unsnap(r)?,
            lt_addr: r.take_u8()?,
        })
    }
}

impl Snap for Outstanding {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(self.lt_addr);
        self.pdu.snap(w);
        self.deadline_slot.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            lt_addr: r.take_u8()?,
            pdu: Pdu::unsnap(r)?,
            deadline_slot: Option::unsnap(r)?,
        })
    }
}

impl Snap for LinkManager {
    fn snap(&self, w: &mut SnapWriter) {
        self.role.snap(w);
        self.pending.snap(w);
        self.outstanding.snap(w);
        self.setup_done.snap(w);
        w.put_u64(self.response_timeout_slots);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            role: LmRole::unsnap(r)?,
            pending: Vec::unsnap(r)?,
            outstanding: VecDeque::unsnap(r)?,
            setup_done: Vec::unsnap(r)?,
            response_timeout_slots: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Routes LMP commands of `outs` into the peer manager, returning the
    /// peer's outputs (simulating a perfect link).
    fn deliver(peer: &mut LinkManager, outs: &[LmOutput], now_slot: u64) -> Vec<LmOutput> {
        let mut result = Vec::new();
        for o in outs {
            if let LmOutput::Command(LcCommand::Lmp { lt_addr, data }) = o {
                let ev = LcEvent::AclReceived {
                    lt_addr: *lt_addr,
                    llid: Llid::Lmp,
                    data: data.clone(),
                };
                result.extend(peer.on_lc_event(&ev, now_slot));
            }
        }
        result
    }

    fn commands(outs: &[LmOutput]) -> Vec<&LcCommand> {
        outs.iter()
            .filter_map(|o| match o {
                LmOutput::Command(c) => Some(c),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn connection_setup_handshake() {
        let mut master = LinkManager::new(LmRole::Master);
        let mut slave = LinkManager::new(LmRole::Slave);
        let m1 = master.start_setup(1, 0);
        let s1 = deliver(&mut slave, &m1, 0);
        // Slave answers accepted + setup_complete.
        assert_eq!(commands(&s1).len(), 2);
        let m2 = deliver(&mut master, &s1, 1);
        // Master sees setup_complete and sends its own.
        assert!(m2
            .iter()
            .any(|o| matches!(o, LmOutput::Event(LmEvent::SetupComplete { lt_addr: 1 }))));
        let s2 = deliver(&mut slave, &m2, 2);
        assert!(s2
            .iter()
            .any(|o| matches!(o, LmOutput::Event(LmEvent::SetupComplete { lt_addr: 1 }))));
    }

    #[test]
    fn sniff_negotiation_applies_on_both_sides_at_same_slot() {
        let mut master = LinkManager::new(LmRole::Master);
        let mut slave = LinkManager::new(LmRole::Slave);
        let m1 = master.request_sniff(2, SniffParams::default(), 100);
        let s1 = deliver(&mut slave, &m1, 101);
        let _ = deliver(&mut master, &s1, 102);
        // Neither applies before the agreed instant.
        assert!(master.poll(105).is_empty());
        assert!(slave.poll(105).is_empty());
        // Both apply after it.
        let mo = master.poll(120);
        let so = slave.poll(120);
        assert!(commands(&mo)
            .iter()
            .any(|c| matches!(c, LcCommand::Sniff { lt_addr: 2, .. })));
        assert!(commands(&so)
            .iter()
            .any(|c| matches!(c, LcCommand::Sniff { lt_addr: 2, .. })));
    }

    #[test]
    fn hold_negotiation_uses_requested_instant() {
        let mut master = LinkManager::new(LmRole::Master);
        let mut slave = LinkManager::new(LmRole::Slave);
        let m1 = master.request_hold(1, 400, 1000);
        let _ = deliver(&mut slave, &m1, 1001);
        let so = slave.poll(1000 + MODE_CHANGE_LEAD_SLOTS);
        assert!(commands(&so).iter().any(|c| matches!(
            c,
            LcCommand::Hold {
                lt_addr: 1,
                hold_slots: 400
            }
        )));
        let mo = master.poll(1000 + MODE_CHANGE_LEAD_SLOTS);
        assert!(commands(&mo).iter().any(|c| matches!(
            c,
            LcCommand::Hold {
                lt_addr: 1,
                hold_slots: 400
            }
        )));
    }

    #[test]
    fn next_pending_slot_tracks_the_earliest_instant() {
        let mut master = LinkManager::new(LmRole::Master);
        assert_eq!(master.next_pending_slot(), None);
        master.request_hold(1, 400, 1000);
        master.request_sniff(2, SniffParams::default(), 500);
        assert_eq!(
            master.next_pending_slot(),
            Some(500 + MODE_CHANGE_LEAD_SLOTS)
        );
        // Polls before the hint are no-ops; at the hint they drain.
        assert!(master.poll(500 + MODE_CHANGE_LEAD_SLOTS - 1).is_empty());
        assert!(!master.poll(500 + MODE_CHANGE_LEAD_SLOTS).is_empty());
        assert_eq!(
            master.next_pending_slot(),
            Some(1000 + MODE_CHANGE_LEAD_SLOTS)
        );
        assert!(!master.poll(u64::MAX).is_empty());
        assert_eq!(master.next_pending_slot(), None);
    }

    #[test]
    fn rejection_cancels_pending_change() {
        let mut master = LinkManager::new(LmRole::Master);
        let m1 = master.request_sniff(1, SniffParams::default(), 0);
        assert_eq!(m1.len(), 1);
        // Peer rejects.
        let reject = Pdu::NotAccepted {
            of: Opcode::SniffReq,
            reason: 0x0C,
        }
        .encode(true);
        let ev = LcEvent::AclReceived {
            lt_addr: 1,
            llid: Llid::Lmp,
            data: reject,
        };
        let outs = master.on_lc_event(&ev, 1);
        assert!(outs
            .iter()
            .any(|o| matches!(o, LmOutput::Event(LmEvent::Rejected { .. }))));
        assert!(master.poll(1000).is_empty(), "pending change must be gone");
    }

    #[test]
    fn detach_notifies_peer() {
        let mut master = LinkManager::new(LmRole::Master);
        let mut slave = LinkManager::new(LmRole::Slave);
        let m1 = master.request_detach(3, 0);
        // The PDU is queued immediately; the local teardown is deferred
        // so the notification can leave first.
        assert!(!commands(&m1)
            .iter()
            .any(|c| matches!(c, LcCommand::Detach { .. })));
        let deferred = master.poll(MODE_CHANGE_LEAD_SLOTS);
        assert!(commands(&deferred)
            .iter()
            .any(|c| matches!(c, LcCommand::Detach { lt_addr: 3 })));
        let s1 = deliver(&mut slave, &m1, 0);
        assert!(s1.iter().any(|o| matches!(
            o,
            LmOutput::Event(LmEvent::PeerDetached {
                lt_addr: 3,
                reason: 0x13
            })
        )));
        assert!(commands(&s1)
            .iter()
            .any(|c| matches!(c, LcCommand::Detach { lt_addr: 3 })));
    }

    #[test]
    fn supervision_timeout_negotiation_applies_on_both_sides() {
        let mut master = LinkManager::new(LmRole::Master);
        let mut slave = LinkManager::new(LmRole::Slave);
        let m1 = master.request_supervision_timeout(1, 16_000, 100);
        // The slave applies the announced value on reception and accepts.
        let s1 = deliver(&mut slave, &m1, 101);
        assert!(commands(&s1).iter().any(|c| matches!(
            c,
            LcCommand::SetSupervisionTimeout {
                timeout_slots: 16_000
            }
        )));
        assert!(s1.iter().any(|o| matches!(
            o,
            LmOutput::Event(LmEvent::ModeApplied {
                lt_addr: 1,
                of: Opcode::SupervisionTimeout
            })
        )));
        // The acceptance clears the master's outstanding request ...
        let _ = deliver(&mut master, &s1, 102);
        // ... and the master applies its own copy at the agreed lead.
        let mo = master.poll(100 + MODE_CHANGE_LEAD_SLOTS);
        assert!(commands(&mo).iter().any(|c| matches!(
            c,
            LcCommand::SetSupervisionTimeout {
                timeout_slots: 16_000
            }
        )));
        assert_eq!(master.next_pending_slot(), None);
        assert!(master.poll(u64::MAX).is_empty(), "nothing left to expire");
    }

    #[test]
    fn unanswered_request_times_out_exactly_at_the_deadline() {
        let mut master = LinkManager::new(LmRole::Master);
        master.set_response_timeout_slots(200);
        let _ = master.start_setup(1, 40);
        // The deadline is the wakeup hint; the tick before is a no-op.
        assert_eq!(master.next_pending_slot(), Some(240));
        assert!(master.poll(239).is_empty());
        let outs = master.poll(240);
        assert!(outs.iter().any(|o| matches!(
            o,
            LmOutput::Event(LmEvent::RequestTimedOut {
                lt_addr: 1,
                of: Opcode::HostConnectionReq
            })
        )));
        assert!(master.poll(u64::MAX).is_empty(), "expires once only");
    }

    #[test]
    fn zero_response_timeout_keeps_requests_pending_forever() {
        let mut master = LinkManager::new(LmRole::Master);
        master.set_response_timeout_slots(0);
        let _ = master.start_setup(1, 40);
        assert_eq!(master.next_pending_slot(), None);
        assert!(master.poll(u64::MAX).is_empty());
    }

    #[test]
    fn detach_reason_propagates_to_the_peer_host() {
        let mut master = LinkManager::new(LmRole::Master);
        let mut slave = LinkManager::new(LmRole::Slave);
        // 0x08: connection timeout — the reason supervision teardown uses.
        let m1 = master.request_detach_with_reason(2, 0x08, 10);
        let s1 = deliver(&mut slave, &m1, 11);
        assert!(s1.iter().any(|o| matches!(
            o,
            LmOutput::Event(LmEvent::PeerDetached {
                lt_addr: 2,
                reason: 0x08
            })
        )));
    }

    #[test]
    fn park_negotiation() {
        let mut master = LinkManager::new(LmRole::Master);
        let mut slave = LinkManager::new(LmRole::Slave);
        let m1 = master.request_park(1, 200, 50);
        let _ = deliver(&mut slave, &m1, 51);
        let so = slave.poll(100);
        assert!(commands(&so).iter().any(|c| matches!(
            c,
            LcCommand::Park {
                lt_addr: 1,
                beacon_interval: 200
            }
        )));
    }

    #[test]
    fn sco_negotiation_installs_the_link_on_both_sides() {
        let mut master = LinkManager::new(LmRole::Master);
        let mut slave = LinkManager::new(LmRole::Slave);
        let params = ScoParams::for_type(PacketType::Hv3, 2);
        let m1 = master.request_sco(1, params, 10);
        let _ = deliver(&mut slave, &m1, 11);
        let mo = master.poll(10 + MODE_CHANGE_LEAD_SLOTS);
        let so = slave.poll(11 + MODE_CHANGE_LEAD_SLOTS);
        for outs in [mo, so] {
            assert!(commands(&outs)
                .iter()
                .any(|c| matches!(c, LcCommand::ScoSetup { lt_addr: 1, .. })));
        }
    }

    #[test]
    fn afh_negotiation_schedules_the_same_instant_on_both_sides() {
        use btsim_baseband::hop::ChannelMap;
        let mut master = LinkManager::new(LmRole::Master);
        let mut slave = LinkManager::new(LmRole::Slave);
        let map = ChannelMap::blocking(29..=50);
        let m1 = master.request_set_afh(1, map.clone(), 101);
        // The master schedules its own switch immediately at an even
        // instant at least the lead past "now".
        let m_switch = commands(&m1)
            .into_iter()
            .find_map(|c| match c {
                LcCommand::SetAfhAt { map, at_slot } => Some((map.clone(), *at_slot)),
                _ => None,
            })
            .expect("master schedules its switch");
        assert_eq!(m_switch.0, map);
        assert!(m_switch.1 >= 101 + MODE_CHANGE_LEAD_SLOTS);
        assert!(m_switch.1.is_multiple_of(2), "switch lands on a slot pair");
        // The slave accepts and schedules the identical switch.
        let s1 = deliver(&mut slave, &m1, 103);
        let s_switch = commands(&s1)
            .into_iter()
            .find_map(|c| match c {
                LcCommand::SetAfhAt { map, at_slot } => Some((map.clone(), *at_slot)),
                _ => None,
            })
            .expect("slave schedules the announced switch");
        assert_eq!(s_switch, m_switch, "both ends switch at the same slot");
        assert!(s1.iter().any(|o| matches!(
            o,
            LmOutput::Event(LmEvent::ModeApplied {
                lt_addr: 1,
                of: Opcode::SetAfh
            })
        )));
        // The acceptance clears the outstanding request on the master.
        let m2 = deliver(&mut master, &s1, 104);
        assert!(m2
            .iter()
            .any(|o| matches!(o, LmOutput::Event(LmEvent::AfhAccepted { lt_addr: 1 }))));
        assert_eq!(master.next_pending_slot(), None);
        assert!(master.poll(m_switch.1 + 10).is_empty(), "no timeout fires");
    }

    #[test]
    fn afh_rejection_cancels_the_masters_switch() {
        use btsim_baseband::hop::ChannelMap;
        let mut master = LinkManager::new(LmRole::Master);
        let _ = master.request_set_afh(1, ChannelMap::blocking(0..=21), 50);
        let reject = Pdu::NotAccepted {
            of: Opcode::SetAfh,
            reason: 0x0C,
        }
        .encode(true);
        let ev = LcEvent::AclReceived {
            lt_addr: 1,
            llid: Llid::Lmp,
            data: reject,
        };
        let outs = master.on_lc_event(&ev, 54);
        assert!(commands(&outs)
            .iter()
            .any(|c| matches!(c, LcCommand::CancelAfhSwitch)));
        assert!(outs.iter().any(|o| matches!(
            o,
            LmOutput::Event(LmEvent::Rejected {
                of: Opcode::SetAfh,
                ..
            })
        )));
        // Nothing left to time out.
        assert_eq!(master.next_pending_slot(), None);
    }

    #[test]
    fn afh_timeout_reports_but_keeps_the_switch() {
        use btsim_baseband::hop::ChannelMap;
        let mut master = LinkManager::new(LmRole::Master);
        let m1 = master.request_set_afh(1, ChannelMap::blocking(29..=50), 200);
        let instant = commands(&m1)
            .into_iter()
            .find_map(|c| match c {
                LcCommand::SetAfhAt { at_slot, .. } => Some(*at_slot),
                _ => None,
            })
            .unwrap();
        // The deadline is the manager's wakeup hint; polls before it
        // are no-ops.
        assert_eq!(master.next_pending_slot(), Some(instant));
        assert!(master.poll(instant - 1).is_empty());
        let outs = master.poll(instant);
        assert!(outs.iter().any(|o| matches!(
            o,
            LmOutput::Event(LmEvent::RequestTimedOut {
                lt_addr: 1,
                of: Opcode::SetAfh
            })
        )));
        // The switch itself is NOT cancelled (the slave may have
        // scheduled it; see the LmEvent::RequestTimedOut docs).
        assert!(!commands(&outs)
            .iter()
            .any(|c| matches!(c, LcCommand::CancelAfhSwitch)));
        assert_eq!(master.next_pending_slot(), None);
        assert!(master.poll(instant + 100).is_empty(), "expired once only");
    }

    #[test]
    fn channel_classification_reaches_the_master_host() {
        use btsim_baseband::hop::ChannelMap;
        let mut master = LinkManager::new(LmRole::Master);
        let mut slave = LinkManager::new(LmRole::Slave);
        let map = ChannelMap::blocking([3, 4, 5]);
        let s1 = slave.send_channel_classification(2, map.clone());
        let m1 = deliver(&mut master, &s1, 10);
        assert!(m1.iter().any(|o| matches!(
            o,
            LmOutput::Event(LmEvent::ChannelClassification { lt_addr: 2, map: m }) if *m == map
        )));
    }

    #[test]
    fn manager_snapshot_roundtrips_and_resumes_identically() {
        let mut lm = LinkManager::new(LmRole::Master);
        lm.request_sniff(1, SniffParams::default(), 100);
        lm.request_set_afh(2, ChannelMap::blocking(29..=50), 200);
        lm.start_setup(3, 50);
        let mut w = SnapWriter::new();
        lm.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut back = LinkManager::unsnap(&mut r).expect("roundtrip");
        r.finish().expect("no trailing bytes");
        assert_eq!(back.role(), lm.role());
        assert_eq!(back.next_pending_slot(), lm.next_pending_slot());
        // The restored manager drains pending work exactly as the
        // original does.
        assert_eq!(back.poll(u64::MAX), lm.poll(u64::MAX));
        // Truncations are rejected, never a panic.
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            let out = LinkManager::unsnap(&mut r).and_then(|_| r.finish());
            assert!(out.is_err(), "cut at {cut} must be rejected");
        }
    }

    #[test]
    fn non_lmp_events_are_ignored() {
        let mut lm = LinkManager::new(LmRole::Master);
        let ev = LcEvent::AclReceived {
            lt_addr: 1,
            llid: Llid::Start,
            data: vec![1, 2, 3],
        };
        assert!(lm.on_lc_event(&ev, 0).is_empty());
    }
}
