//! Minimal JSON rendering for campaign results.
//!
//! The workspace builds without external crates, so this is a small
//! write-only JSON value tree: enough for `--json` result dumps, not a
//! general-purpose serializer.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// An exact unsigned integer (u64 seeds don't fit in f64).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Renders to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => out.push_str(&format!("{v}")),
            JsonValue::Num(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        out.push_str(&format!("{}", *v as i64));
                    } else {
                        out.push_str(&format!("{v}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::Obj(vec![
            ("name".into(), "fig6".into()),
            (
                "rows".into(),
                JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Num(2.5)]),
            ),
            ("ok".into(), JsonValue::Bool(true)),
            ("nan".into(), JsonValue::Num(f64::NAN)),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"fig6","rows":[1,2.5],"ok":true,"nan":null}"#
        );
    }

    #[test]
    fn u64_values_are_exact() {
        let v = JsonValue::UInt(u64::MAX);
        assert_eq!(v.render(), "18446744073709551615");
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::Str("a\"b\\c\nd".into());
        assert_eq!(v.render(), r#""a\"b\\c\nd""#);
    }
}
