//! Minimal JSON rendering and parsing for campaign results.
//!
//! The workspace builds without external crates, so this is a small
//! JSON value tree: enough for `--json` result dumps and for reading
//! back our own reports ([`JsonValue::parse`], used by the
//! `bench_hotpath` regression gate), not a general-purpose serde.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// An exact unsigned integer (u64 seeds don't fit in f64).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

/// Where a [`JsonValue::parse`] failure occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What the parser expected.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonParseError {}

impl JsonValue {
    /// Renders to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses JSON text into a value tree. Numbers with no fraction or
    /// exponent that fit a `u64` parse as [`JsonValue::UInt`] (exact
    /// round-trip for seeds); everything else numeric becomes
    /// [`JsonValue::Num`]. Trailing non-whitespace is an error — a
    /// report must be one complete document.
    pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonParseError {
                at: pos,
                message: "trailing characters after the document".into(),
            });
        }
        Ok(value)
    }

    /// Looks up a field of an object; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            JsonValue::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => out.push_str(&format!("{v}")),
            JsonValue::Num(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        out.push_str(&format!("{}", *v as i64));
                    } else {
                        out.push_str(&format!("{v}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b' ' | b'\t' | b'\n' | b'\r') = bytes.get(*pos) {
        *pos += 1;
    }
}

fn err(at: usize, message: impl Into<String>) -> JsonParseError {
    JsonParseError {
        at,
        message: message.into(),
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, format!("expected {lit:?}")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| JsonValue::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected ':' after object key"));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => Err(err(*pos, format!("unexpected byte {:?}", c as char))),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected '\"'"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        // Surrogates only appear in escaped pairs; our own
                        // renderer never emits them, so reject rather than
                        // decode UTF-16.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| err(*pos, "unpaired surrogate escape"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Take the full UTF-8 scalar starting here.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "invalid UTF-8 in string"))?;
                let c = rest.chars().next().expect("non-empty checked above");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII digits");
    if !fractional {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(JsonValue::UInt(v));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| err(start, format!("invalid number {text:?}")))
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::Obj(vec![
            ("name".into(), "fig6".into()),
            (
                "rows".into(),
                JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Num(2.5)]),
            ),
            ("ok".into(), JsonValue::Bool(true)),
            ("nan".into(), JsonValue::Num(f64::NAN)),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"fig6","rows":[1,2.5],"ok":true,"nan":null}"#
        );
    }

    #[test]
    fn u64_values_are_exact() {
        let v = JsonValue::UInt(u64::MAX);
        assert_eq!(v.render(), "18446744073709551615");
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::Str("a\"b\\c\nd".into());
        assert_eq!(v.render(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let v = JsonValue::Obj(vec![
            ("name".into(), "fig6 \"quoted\" — dash".into()),
            (
                "rows".into(),
                JsonValue::Arr(vec![
                    JsonValue::Num(1.5),
                    JsonValue::Num(-2.25e-3),
                    JsonValue::UInt(u64::MAX),
                    JsonValue::Null,
                    JsonValue::Bool(false),
                ]),
            ),
            ("empty_arr".into(), JsonValue::Arr(vec![])),
            ("empty_obj".into(), JsonValue::Obj(vec![])),
        ]);
        let parsed = JsonValue::parse(&v.render()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_accepts_whitespace_and_pretty_printing() {
        let v = JsonValue::parse("  {\n  \"a\" : [ 1 , 2.5 ] ,\n  \"b\" : true\n}\n").unwrap();
        assert_eq!(v.get("b"), Some(&JsonValue::Bool(true)));
        assert_eq!(
            v.get("a"),
            Some(&JsonValue::Arr(vec![
                JsonValue::UInt(1),
                JsonValue::Num(2.5)
            ]))
        );
        assert_eq!(v.get("a").unwrap().get("x"), None, "get on non-object");
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{\"a\":1} trailing",
            "\"unterminated",
            "nul",
            "+5",
            "{\"a\":1,}",
            "[01x]",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_read_numbers() {
        let v = JsonValue::parse(r#"{"rate": 812.5, "seed": 7}"#).unwrap();
        assert_eq!(v.get("rate").and_then(JsonValue::as_f64), Some(812.5));
        assert_eq!(v.get("seed").and_then(JsonValue::as_f64), Some(7.0));
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Bool(true).as_f64(), None);
    }
}
