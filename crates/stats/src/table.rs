//! Plain-text, CSV and JSON tables for the experiment binaries.

use std::fmt;

use crate::json::JsonValue;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use btsim_stats::Table;
///
/// let mut t = Table::new(["BER", "mean TS"]);
/// t.row(["1/100".to_string(), format!("{:.1}", 1556.0)]);
/// t.row(["1/30".to_string(), format!("{:.1}", 1801.5)]);
/// let text = t.to_string();
/// assert!(text.contains("1/100"));
/// assert_eq!(t.to_csv().lines().count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<const N: usize>(headers: [&str; N]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Creates a table from a dynamic header list.
    pub fn with_headers(headers: Vec<String>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows added so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders as comma-separated values (headers first).
    pub fn to_csv(&self) -> String {
        let escape = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(escape)
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(escape).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as a JSON array of objects keyed by the headers.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Arr(
            self.rows
                .iter()
                .map(|r| {
                    JsonValue::Obj(
                        self.headers
                            .iter()
                            .zip(r)
                            .map(|(h, c)| (h.clone(), JsonValue::Str(c.clone())))
                            .collect(),
                    )
                })
                .collect(),
        )
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>width$}", c, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = Table::new(["x", "value"]);
        t.row(["1".into(), "10".into()]);
        t.row(["100".into(), "2".into()]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines align to the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::with_headers(vec!["a,b".into(), "c\"d".into()]);
        t.row(["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",\"c\"\"d\"\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one".into()]);
    }

    #[test]
    fn len_and_rows() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["1".into()]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], "1");
    }
}
