//! Streaming univariate summaries (Welford's algorithm).

use std::fmt;

/// Mean/variance/min/max accumulator.
///
/// # Examples
///
/// ```
/// use btsim_stats::Summary;
///
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.std_dev() - 2.138089935299395).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval.
    pub fn ci95(&self) -> f64 {
        1.96 * self.std_err()
    }

    /// Smallest observation (`NaN`-free input assumed; +inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_neutral() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn single_value() {
        let mut s = Summary::new();
        s.add(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn known_variance() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.variance() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let whole: Summary = data.iter().copied().collect();
        let mut left: Summary = data[..400].iter().copied().collect();
        let right: Summary = data[400..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-6);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Summary::new();
        let b: Summary = [1.0, 2.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 2);
        let mut c: Summary = [3.0].into_iter().collect();
        c.merge(&Summary::new());
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let narrow: Summary = (0..10_000).map(|i| (i % 7) as f64).collect();
        let wide: Summary = (0..100).map(|i| (i % 7) as f64).collect();
        assert!(narrow.ci95() < wide.ci95());
    }

    #[test]
    fn display_contains_fields() {
        let s: Summary = [1.0, 2.0].into_iter().collect();
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=1.5"));
    }
}
