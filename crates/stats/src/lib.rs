//! # btsim-stats
//!
//! Statistics for Monte-Carlo simulation campaigns: streaming summaries
//! ([`Summary`]), histograms ([`Histogram`]), a deterministic parallel
//! campaign runner ([`run_campaign`]), the [`Record`] trait describing
//! structured per-run outcomes, and table/CSV/JSON formatting
//! ([`Table`], [`JsonValue`]) used by the experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod json;
mod record;
mod runner;
mod summary;
mod table;

pub use histogram::Histogram;
pub use json::{JsonParseError, JsonValue};
pub use record::{format_metric, Record};
pub use runner::run_campaign;
pub use summary::Summary;
pub use table::Table;
