//! # btsim-stats
//!
//! Statistics for Monte-Carlo simulation campaigns: streaming summaries
//! ([`Summary`]), histograms ([`Histogram`]), a deterministic parallel
//! campaign runner ([`run_campaign`]) and plain-text/CSV table formatting
//! ([`Table`]) used by the figure-regeneration binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod runner;
mod summary;
mod table;

pub use histogram::Histogram;
pub use runner::run_campaign;
pub use summary::Summary;
pub use table::Table;
