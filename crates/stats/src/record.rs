//! Structured per-run outcomes of Monte-Carlo campaigns.
//!
//! A [`Record`] is the bridge between a scenario's outcome struct and
//! the generic campaign machinery: it names the numeric metrics a run
//! produced and says whether the run completed. Everything else —
//! mean/CI aggregation, completion rates, table/CSV/JSON rendering —
//! is derived generically, replacing the per-experiment aggregation
//! loops that used to be copy-pasted for every figure.

use crate::json::JsonValue;

/// A structured outcome of one scenario run.
///
/// Implementors list their numeric metrics via [`Record::metrics`]; the
/// default `columns`/`cells` render those metrics, so simple outcomes
/// only implement `metrics` (and `completed` when a run can time out).
///
/// # Examples
///
/// ```
/// use btsim_stats::Record;
///
/// struct Outcome { slots: u64, done: bool }
/// impl Record for Outcome {
///     fn metrics(&self) -> Vec<(&'static str, f64)> {
///         vec![("slots", self.slots as f64)]
///     }
///     fn completed(&self) -> bool { self.done }
/// }
///
/// let o = Outcome { slots: 17, done: true };
/// assert_eq!(o.columns(), vec!["slots".to_string()]);
/// assert_eq!(o.cells(), vec!["17".to_string()]);
/// ```
pub trait Record {
    /// The numeric metrics of this run, as `(name, value)` pairs.
    ///
    /// Names must be stable across runs of the same scenario; campaigns
    /// aggregate per name.
    fn metrics(&self) -> Vec<(&'static str, f64)>;

    /// Whether the run completed (default `true`).
    ///
    /// Campaigns report the completion rate and, following the paper's
    /// convention, aggregate metric statistics over completed runs only.
    fn completed(&self) -> bool {
        true
    }

    /// Column names for tabular output (defaults to the metric names).
    fn columns(&self) -> Vec<String> {
        self.metrics().iter().map(|(n, _)| n.to_string()).collect()
    }

    /// Formatted cells, parallel to [`Record::columns`].
    fn cells(&self) -> Vec<String> {
        self.metrics()
            .iter()
            .map(|(_, v)| format_metric(*v))
            .collect()
    }

    /// This record as a JSON object (metrics plus `completed`).
    fn to_json(&self) -> JsonValue {
        let mut obj: Vec<(String, JsonValue)> = self
            .metrics()
            .into_iter()
            .map(|(n, v)| (n.to_string(), JsonValue::from(v)))
            .collect();
        obj.push(("completed".to_string(), JsonValue::Bool(self.completed())));
        JsonValue::Obj(obj)
    }
}

/// Formats a metric value compactly (integers without a fraction).
pub fn format_metric(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Pair;

    impl Record for Pair {
        fn metrics(&self) -> Vec<(&'static str, f64)> {
            vec![("a", 1.0), ("b", 2.5)]
        }
    }

    #[test]
    fn defaults_render_metrics() {
        let p = Pair;
        assert!(p.completed());
        assert_eq!(p.columns(), vec!["a", "b"]);
        assert_eq!(p.cells(), vec!["1", "2.5000"]);
        assert_eq!(p.to_json().render(), r#"{"a":1,"b":2.5,"completed":true}"#);
    }

    #[test]
    fn metric_formatting() {
        assert_eq!(format_metric(1556.0), "1556");
        assert_eq!(format_metric(0.026), "0.0260");
    }
}
