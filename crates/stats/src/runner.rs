//! Deterministic parallel Monte-Carlo campaigns.

/// Runs `n_runs` independent simulations in parallel and collects their
/// results in seed order.
///
/// Each run receives a distinct seed `base_seed + i`; results are
/// returned indexed by `i` regardless of thread interleaving, so a
/// campaign is bit-reproducible for a fixed `base_seed`.
///
/// `threads = 0` picks the available parallelism.
///
/// # Examples
///
/// ```
/// use btsim_stats::run_campaign;
///
/// let results = run_campaign(100, 0, 42, |seed| seed % 7);
/// assert_eq!(results.len(), 100);
/// assert_eq!(results[3], (42 + 3) % 7);
/// ```
pub fn run_campaign<T, F>(n_runs: usize, threads: usize, base_seed: u64, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(n_runs.max(1));

    if threads <= 1 || n_runs <= 1 {
        return (0..n_runs)
            .map(|i| run(base_seed.wrapping_add(i as u64)))
            .collect();
    }

    let mut slots: Vec<Option<T>> = (0..n_runs).map(|_| None).collect();
    let run_ref = &run;
    std::thread::scope(|scope| {
        // Each worker owns a contiguous chunk of result slots.
        let mut chunks: Vec<&mut [Option<T>]> = Vec::new();
        let mut rest = slots.as_mut_slice();
        let chunk_len = n_runs.div_ceil(threads);
        while !rest.is_empty() {
            let take = chunk_len.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            chunks.push(head);
            rest = tail;
        }
        let mut offset = 0usize;
        for chunk in chunks {
            let start = offset;
            offset += chunk.len();
            scope.spawn(move || {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(run_ref(base_seed.wrapping_add((start + j) as u64)));
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_seed_order() {
        let r = run_campaign(64, 4, 1000, |seed| seed);
        let expect: Vec<u64> = (1000..1064).collect();
        assert_eq!(r, expect);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let f = |seed: u64| seed.wrapping_mul(6364136223846793005).rotate_left(17);
        let seq = run_campaign(41, 1, 7, f);
        let par = run_campaign(41, 8, 7, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_runs() {
        let r = run_campaign(0, 4, 0, |s| s);
        assert!(r.is_empty());
    }

    #[test]
    fn single_run() {
        let r = run_campaign(1, 8, 5, |s| s * 2);
        assert_eq!(r, vec![10]);
    }

    #[test]
    fn auto_thread_count() {
        let r = run_campaign(10, 0, 0, |s| s);
        assert_eq!(r.len(), 10);
    }
}
