//! Fixed-bin histograms for distribution inspection.

use std::fmt;

/// A histogram over `[lo, hi)` with uniform bins.
///
/// Out-of-range values are counted in saturated edge bins so no
/// observation is silently lost.
///
/// # Examples
///
/// ```
/// use btsim_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for v in [0.5, 1.5, 2.5, 2.6, 9.9, 42.0] {
///     h.add(v);
/// }
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.bin_count(1), 2); // 2.5 and 2.6
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// Adds an observation (clamped into the edge bins).
    pub fn add(&mut self, x: f64) {
        let n = self.bins.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            n - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * n as f64) as usize
        };
        self.bins[idx.min(n - 1)] += 1;
        self.total += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Observations in bin `i`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.bins.len()
    }

    /// `[start, end)` range of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Fraction of observations at or below `x` (empirical CDF).
    pub fn cdf(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut acc = 0u64;
        for i in 0..self.bins.len() {
            let (_, end) = self.bin_range(i);
            if end <= x {
                acc += self.bins[i];
            }
        }
        acc as f64 / self.total as f64
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        for i in 0..self.bins.len() {
            let (a, b) = self.bin_range(i);
            let bar = "#".repeat((self.bins[i] * 40 / peak) as usize);
            writeln!(f, "[{a:>10.2}, {b:>10.2}) {:>8} {bar}", self.bins[i])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_values_correctly() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.add(0.0);
        h.add(9.999);
        h.add(10.0);
        h.add(99.0);
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(9), 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.add(-5.0);
        h.add(15.0);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(1), 1);
    }

    #[test]
    fn cdf_monotone() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.add(i as f64 + 0.5);
        }
        assert!((h.cdf(5.0) - 0.5).abs() < 1e-12);
        assert!((h.cdf(10.0) - 1.0).abs() < 1e-12);
        assert_eq!(h.cdf(0.0), 0.0);
    }

    #[test]
    fn display_renders_all_bins() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.add(1.0);
        let text = h.to_string();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains('#'));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_range() {
        Histogram::new(1.0, 1.0, 4);
    }
}
