//! Packet capture: a sink for simulated air traffic and LMP exchanges.
//!
//! The [`CaptureSink`] is the kernel-level collection point of the
//! observability layer: the channel's `Medium` taps it at transmission
//! registration and reception, and the simulator taps it at LMP PDU
//! dispatch. Records accumulate in dispatch order — the calendar order
//! both engines provably share — so a capture serialized to the btsnoop
//! file format (`btsim-trace::btsnoop`) is byte-identical across
//! engines.
//!
//! A disabled sink (the default) drops records behind a single branch,
//! so instrumentation stays unconditionally in the hot paths at zero
//! measurable cost. Observers never draw from any random stream.
//!
//! # Memory behaviour
//!
//! Records grow without bound by default. Long captures can cap growth
//! with [`CaptureSink::set_record_cap`]: once the cap is reached further
//! records are counted as dropped (feeding the btsnoop cumulative-drops
//! field) instead of stored. Air payloads are truncated to
//! [`MAX_AIR_PAYLOAD`] bytes; the untruncated length survives in
//! [`CaptureRecord::orig_bits`].

use crate::time::SimTime;

/// Cap on the stored byte image of one air packet. A DH5 packet is 2871
/// bits (~359 bytes) on the air; storing the first 64 bytes keeps the
/// access code + header + payload start visible to dissectors while the
/// btsnoop original-length field preserves the true size.
pub const MAX_AIR_PAYLOAD: usize = 64;

/// Which way a captured packet was going.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureDir {
    /// Registered on the medium / handed down for transmission.
    Sent,
    /// Materialised at a receiver / handed up after decode.
    Received,
}

/// What layer a captured record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureKind {
    /// A raw air-bit image (access code + header + payload).
    Air,
    /// An LMP PDU crossing the link-manager boundary.
    Lmp,
}

/// One captured packet with its simulated-air verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureRecord {
    /// When the packet hit the air (TX) or was decoded (RX).
    pub at: SimTime,
    /// Direction relative to the originating device.
    pub dir: CaptureDir,
    /// Air-bit image or LMP PDU.
    pub kind: CaptureKind,
    /// Originating device index.
    pub device: usize,
    /// RF channel (0..79) for [`CaptureKind::Air`], the logical
    /// transport address for [`CaptureKind::Lmp`].
    pub channel: u8,
    /// A co-channel transmission overlapped this packet.
    pub collided: bool,
    /// A fixed-band interferer burst wiped this packet.
    pub jammed: bool,
    /// Untruncated payload size in bits (air-bit count, or 8x the PDU
    /// byte count for LMP records).
    pub orig_bits: usize,
    /// Payload bytes, truncated to [`MAX_AIR_PAYLOAD`] for air records.
    pub data: Vec<u8>,
}

/// Collects [`CaptureRecord`]s in dispatch order (see module docs).
///
/// # Examples
///
/// ```
/// use btsim_kernel::{CaptureDir, CaptureKind, CaptureRecord, CaptureSink, SimTime};
///
/// let mut sink = CaptureSink::enabled();
/// sink.push(CaptureRecord {
///     at: SimTime::from_us(625),
///     dir: CaptureDir::Sent,
///     kind: CaptureKind::Lmp,
///     device: 0,
///     channel: 1,
///     collided: false,
///     jammed: false,
///     orig_bits: 16,
///     data: vec![0x33, 0x01],
/// });
/// assert_eq!(sink.records().len(), 1);
/// assert_eq!(sink.dropped(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CaptureSink {
    enabled: bool,
    records: Vec<CaptureRecord>,
    /// `0` means unbounded.
    record_cap: usize,
    dropped: u64,
}

impl CaptureSink {
    /// A sink that stores records.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// A sink that drops everything (the hot-path default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether records are being stored.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Caps stored records at `cap` (`0` = unbounded). Records past the
    /// cap increment [`CaptureSink::dropped`] instead of growing memory.
    pub fn set_record_cap(&mut self, cap: usize) {
        self.record_cap = cap;
    }

    /// Stores one record (no-op when disabled; counted as dropped when
    /// the cap is reached). Air payloads are truncated to
    /// [`MAX_AIR_PAYLOAD`] bytes.
    pub fn push(&mut self, mut record: CaptureRecord) {
        if !self.enabled {
            return;
        }
        if self.record_cap != 0 && self.records.len() >= self.record_cap {
            self.dropped += 1;
            return;
        }
        if record.kind == CaptureKind::Air && record.data.len() > MAX_AIR_PAYLOAD {
            record.data.truncate(MAX_AIR_PAYLOAD);
        }
        self.records.push(record);
    }

    /// The stored records, in dispatch order.
    pub fn records(&self) -> &[CaptureRecord] {
        &self.records
    }

    /// Records dropped at the cap (never nonzero without a cap).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl crate::snap::Snap for CaptureDir {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.put_u8(match self {
            CaptureDir::Sent => 0,
            CaptureDir::Received => 1,
        });
    }
    fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapshotError> {
        Ok(match r.take_u8()? {
            0 => CaptureDir::Sent,
            1 => CaptureDir::Received,
            _ => return Err(r.malformed("capture direction tag out of range")),
        })
    }
}

impl crate::snap::Snap for CaptureKind {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.put_u8(match self {
            CaptureKind::Air => 0,
            CaptureKind::Lmp => 1,
        });
    }
    fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapshotError> {
        Ok(match r.take_u8()? {
            0 => CaptureKind::Air,
            1 => CaptureKind::Lmp,
            _ => return Err(r.malformed("capture kind tag out of range")),
        })
    }
}

impl crate::snap::Snap for CaptureRecord {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        self.at.snap(w);
        self.dir.snap(w);
        self.kind.snap(w);
        w.put_usize(self.device);
        w.put_u8(self.channel);
        w.put_bool(self.collided);
        w.put_bool(self.jammed);
        w.put_usize(self.orig_bits);
        w.put_bytes(&self.data);
    }
    fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapshotError> {
        Ok(CaptureRecord {
            at: crate::snap::Snap::unsnap(r)?,
            dir: crate::snap::Snap::unsnap(r)?,
            kind: crate::snap::Snap::unsnap(r)?,
            device: r.take_usize()?,
            channel: r.take_u8()?,
            collided: r.take_bool()?,
            jammed: r.take_bool()?,
            orig_bits: r.take_usize()?,
            data: r.take_bytes()?,
        })
    }
}

impl crate::snap::Snap for CaptureSink {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.put_bool(self.enabled);
        self.records.snap(w);
        w.put_usize(self.record_cap);
        w.put_u64(self.dropped);
    }
    fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapshotError> {
        Ok(CaptureSink {
            enabled: r.take_bool()?,
            records: crate::snap::Snap::unsnap(r)?,
            record_cap: r.take_usize()?,
            dropped: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn air_record(bytes: usize) -> CaptureRecord {
        CaptureRecord {
            at: SimTime::from_us(1),
            dir: CaptureDir::Sent,
            kind: CaptureKind::Air,
            device: 0,
            channel: 40,
            collided: false,
            jammed: true,
            orig_bits: bytes * 8,
            data: vec![0xAA; bytes],
        }
    }

    #[test]
    fn disabled_sink_drops_silently() {
        let mut sink = CaptureSink::disabled();
        sink.push(air_record(4));
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0, "disabled is not the same as capped");
    }

    #[test]
    fn air_payloads_truncate_but_keep_orig_bits() {
        let mut sink = CaptureSink::enabled();
        sink.push(air_record(300));
        let r = &sink.records()[0];
        assert_eq!(r.data.len(), MAX_AIR_PAYLOAD);
        assert_eq!(r.orig_bits, 2400);
    }

    #[test]
    fn record_cap_counts_drops() {
        let mut sink = CaptureSink::enabled();
        sink.set_record_cap(2);
        for _ in 0..5 {
            sink.push(air_record(4));
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
    }
}
