//! # btsim-kernel
//!
//! A small discrete-event simulation kernel with SystemC-like semantics,
//! the substrate on which the `btsim` Bluetooth model runs (the DATE'05
//! paper used the SystemC kernel; this crate replaces it):
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond time base with Bluetooth
//!   slot constants;
//! * [`Calendar`] — deterministic time-ordered event queue (FIFO within
//!   an instant, like a delta-cycle evaluation queue);
//! * [`Wire`] — four-valued logic (`0/1/Z/X`) with the paper's channel
//!   resolver semantics;
//! * [`TraceRecorder`] — named signal waveforms (`enable_rx_RF`, …) for
//!   VCD/ASCII rendering;
//! * [`CaptureSink`] — packet-capture records (air traffic + LMP PDUs)
//!   for btsnoop export (`btsim-trace::btsnoop`, `docs/OBSERVABILITY.md`);
//! * [`SimRng`] — seedable, forkable random streams for reproducible
//!   Monte-Carlo campaigns;
//! * [`Snap`] — the validated, versioned binary codec every stateful
//!   layer implements for checkpoint/restore (`docs/SNAPSHOT.md`).
//!
//! # Examples
//!
//! A two-event simulation loop:
//!
//! ```
//! use btsim_kernel::{Calendar, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut cal = Calendar::new();
//! cal.schedule(SimTime::from_us(625), Ev::Ping);
//! let mut log = Vec::new();
//! while let Some((t, ev)) = cal.pop() {
//!     log.push((t.us(), format!("{ev:?}")));
//!     if ev == Ev::Ping && t.us() < 2000 {
//!         cal.schedule(t + SimDuration::SLOT, Ev::Pong);
//!     }
//! }
//! assert_eq!(log.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod capture;
mod rng;
mod signal;
pub mod snap;
mod time;
mod wire;

pub use calendar::Calendar;
pub use capture::{CaptureDir, CaptureKind, CaptureRecord, CaptureSink, MAX_AIR_PAYLOAD};
pub use rng::SimRng;
pub use signal::{SignalInfo, SignalRef, TraceRecord, TraceRecorder, TraceValue};
pub use snap::{Snap, SnapReader, SnapWriter, SnapshotError};
pub use time::{SimDuration, SimTime};
pub use wire::Wire;
