//! Snapshot serialization: a small, versioned, validated binary codec.
//!
//! Every stateful layer of the simulator implements [`Snap`], a
//! field-by-field binary encoding used by `btsim-core`'s `SimSnapshot`
//! wire form (`docs/SNAPSHOT.md`). The codec is deliberately minimal:
//! little-endian fixed-width integers, length-prefixed sequences, and a
//! strict reader that returns a typed [`SnapshotError`] — never panics —
//! on truncated or malformed input.
//!
//! Determinism contract: encoding is a pure function of the value (no
//! wall-clock, no pointers, no hash-map iteration order), so two
//! bit-identical simulator states produce byte-identical snapshots.
//!
//! # Examples
//!
//! ```
//! use btsim_kernel::snap::{Snap, SnapReader, SnapWriter};
//!
//! let mut w = SnapWriter::new();
//! (vec![1u64, 2, 3], String::from("hi")).snap(&mut w);
//! let bytes = w.into_bytes();
//! let mut r = SnapReader::new(&bytes);
//! let back = <(Vec<u64>, String)>::unsnap(&mut r).unwrap();
//! r.finish().unwrap();
//! assert_eq!(back, (vec![1, 2, 3], String::from("hi")));
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use crate::time::{SimDuration, SimTime};
use crate::wire::Wire;

/// Why a snapshot byte stream was rejected.
///
/// Decoding is total: any byte sequence either decodes or yields one of
/// these — malformed input must never panic or abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The stream does not start with the snapshot magic.
    BadMagic,
    /// The stream's format version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this build understands.
        supported: u32,
    },
    /// The stream ended before a field could be read.
    Truncated {
        /// Byte offset at which the read was attempted.
        at: usize,
        /// Bytes the read needed.
        need: usize,
    },
    /// A field decoded to an invalid value.
    Malformed {
        /// Byte offset of the offending field.
        at: usize,
        /// What was wrong.
        what: &'static str,
    },
    /// Decoding finished but bytes remain.
    TrailingBytes {
        /// Offset where decoding stopped.
        at: usize,
        /// Total stream length.
        len: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a btsim snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} not supported (this build reads <= {supported})"
            ),
            SnapshotError::Truncated { at, need } => {
                write!(f, "snapshot truncated at byte {at} (needed {need} more)")
            }
            SnapshotError::Malformed { at, what } => {
                write!(f, "snapshot malformed at byte {at}: {what}")
            }
            SnapshotError::TrailingBytes { at, len } => {
                write!(f, "snapshot has {extra} trailing bytes", extra = len - at)
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Accumulates the binary image of a snapshot.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far, borrowed.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a `bool` as one strict `0`/`1` byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Reads a snapshot byte stream with full bounds/validity checking.
#[derive(Debug)]
pub struct SnapReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `data`, positioned at the start.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Current byte offset (for error reporting).
    pub fn pos(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                at: self.pos,
                need: n - self.remaining(),
            });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i32`.
    pub fn take_i32(&mut self) -> Result<i32, SnapshotError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a strict `0`/`1` boolean byte.
    pub fn take_bool(&mut self) -> Result<bool, SnapshotError> {
        let at = self.pos;
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed {
                at,
                what: "boolean byte is neither 0 nor 1",
            }),
        }
    }

    /// Reads a `usize` written with [`SnapWriter::put_usize`].
    pub fn take_usize(&mut self) -> Result<usize, SnapshotError> {
        let at = self.pos;
        usize::try_from(self.take_u64()?).map_err(|_| SnapshotError::Malformed {
            at,
            what: "usize out of range for this platform",
        })
    }

    /// Reads a sequence length, rejecting lengths that cannot possibly
    /// fit in the remaining bytes (each element encodes to >= 1 byte),
    /// so a corrupted length cannot trigger a huge allocation.
    pub fn take_len(&mut self) -> Result<usize, SnapshotError> {
        let at = self.pos;
        let n = self.take_usize()?;
        if n > self.remaining() {
            return Err(SnapshotError::Malformed {
                at,
                what: "sequence length exceeds remaining bytes",
            });
        }
        Ok(n)
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.take_len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, SnapshotError> {
        let at = self.pos;
        String::from_utf8(self.take_bytes()?).map_err(|_| SnapshotError::Malformed {
            at,
            what: "string is not valid UTF-8",
        })
    }

    /// Asserts the stream was fully consumed.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes {
                at: self.pos,
                len: self.data.len(),
            });
        }
        Ok(())
    }

    /// A [`SnapshotError::Malformed`] at the current position — for
    /// `Snap` impls that validate semantic invariants (enum tags, bit
    /// counts, channel indices).
    pub fn malformed(&self, what: &'static str) -> SnapshotError {
        SnapshotError::Malformed { at: self.pos, what }
    }
}

/// A snapshot-serializable piece of simulator state.
///
/// `unsnap(snap(x)) == x` field-for-field; decoding validates enough to
/// uphold every invariant the owning type relies on.
pub trait Snap: Sized {
    /// Appends this value's binary image to `w`.
    fn snap(&self, w: &mut SnapWriter);
    /// Reads a value back, validating the stream.
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError>;
}

macro_rules! snap_prim {
    ($ty:ty, $put:ident, $take:ident) => {
        impl Snap for $ty {
            fn snap(&self, w: &mut SnapWriter) {
                w.$put(*self);
            }
            fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
                r.$take()
            }
        }
    };
}

snap_prim!(u8, put_u8, take_u8);
snap_prim!(u16, put_u16, take_u16);
snap_prim!(u32, put_u32, take_u32);
snap_prim!(u64, put_u64, take_u64);
snap_prim!(i32, put_i32, take_i32);
snap_prim!(f64, put_f64, take_f64);
snap_prim!(bool, put_bool, take_bool);
snap_prim!(usize, put_usize, take_usize);

impl Snap for String {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_str(self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        r.take_str()
    }
}

impl<T: Snap> Snap for Option<T> {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_bool(false),
            Some(v) => {
                w.put_bool(true);
                v.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        if r.take_bool()? {
            Ok(Some(T::unsnap(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.take_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Vec::<T>::unsnap(r)?.into())
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
        self.2.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?, C::unsnap(r)?))
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for (k, v) in self {
            k.snap(w);
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.take_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::unsnap(r)?;
            let v = V::unsnap(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn snap(&self, w: &mut SnapWriter) {
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::unsnap(r)?);
        }
        Ok(out.try_into().unwrap_or_else(|_| unreachable!()))
    }
}

impl Snap for SimTime {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.ns());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SimTime::from_ns(r.take_u64()?))
    }
}

impl Snap for SimDuration {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.ns());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SimDuration::from_ns(r.take_u64()?))
    }
}

impl Snap for Wire {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            Wire::L0 => 0,
            Wire::L1 => 1,
            Wire::Z => 2,
            Wire::X => 3,
        });
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.take_u8()? {
            0 => Wire::L0,
            1 => Wire::L1,
            2 => Wire::Z,
            3 => Wire::X,
            _ => return Err(r.malformed("wire level tag out of range")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snap + PartialEq + fmt::Debug>(v: &T) -> Vec<u8> {
        let mut w = SnapWriter::new();
        v.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = T::unsnap(&mut r).expect("decode");
        r.finish().expect("fully consumed");
        assert_eq!(&back, v);
        bytes
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&0xABu8);
        roundtrip(&0xAB_CDu16);
        roundtrip(&0xDEAD_BEEFu32);
        roundtrip(&u64::MAX);
        roundtrip(&-7i32);
        roundtrip(&1.5f64);
        roundtrip(&true);
        roundtrip(&String::from("scatternet"));
        roundtrip(&SimTime::from_us(625));
        roundtrip(&SimDuration::SLOT);
        roundtrip(&Wire::X);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&Option::<u32>::None);
        roundtrip(&Some(9u32));
        roundtrip(&VecDeque::from(vec![5u8, 6]));
        roundtrip(&(1u8, 2u16, 3u32));
        roundtrip(&BTreeMap::from([(1u8, String::from("a"))]));
        roundtrip(&[1u32, 2, 3]);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut w = SnapWriter::new();
        vec![1u64; 4].snap(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            let err = Vec::<u64>::unsnap(&mut r);
            assert!(err.is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn huge_length_is_rejected_without_allocating() {
        let mut w = SnapWriter::new();
        w.put_usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            Vec::<u8>::unsnap(&mut r),
            Err(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn bad_bool_and_bad_tag_are_rejected() {
        let mut r = SnapReader::new(&[7]);
        assert!(matches!(
            bool::unsnap(&mut r),
            Err(SnapshotError::Malformed { .. })
        ));
        let mut r = SnapReader::new(&[9]);
        assert!(matches!(
            Wire::unsnap(&mut r),
            Err(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_reported() {
        let mut w = SnapWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        u8::unsnap(&mut r).unwrap();
        assert!(matches!(
            r.finish(),
            Err(SnapshotError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn errors_display() {
        let e = SnapshotError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
    }
}
