//! Four-valued digital logic, mirroring the paper's channel model.
//!
//! The DATE'05 model drives the shared radio channel as a digital bus:
//! a device that is not transmitting drives high-impedance `Z`; a single
//! transmitter drives `L0`/`L1`; simultaneous transmitters make the
//! channel resolver force the undefined value `X`, which receivers see
//! as a collision (paper Fig. 2).

use std::fmt;

/// A four-valued logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Wire {
    /// Logic low.
    L0,
    /// Logic high.
    L1,
    /// High impedance: no driver.
    #[default]
    Z,
    /// Undefined: bus conflict (collision).
    X,
}

impl Wire {
    /// Converts a data bit to a driven level.
    pub fn from_bit(bit: bool) -> Wire {
        if bit {
            Wire::L1
        } else {
            Wire::L0
        }
    }

    /// Returns the data bit if the wire carries a defined driven level.
    pub fn to_bit(self) -> Option<bool> {
        match self {
            Wire::L0 => Some(false),
            Wire::L1 => Some(true),
            Wire::Z | Wire::X => None,
        }
    }

    /// True when the level is `L0` or `L1`.
    pub fn is_defined(self) -> bool {
        matches!(self, Wire::L0 | Wire::L1)
    }

    /// Resolves two simultaneous drivers per the paper's channel resolver:
    /// any second driver forces `X`.
    pub fn resolve_with(self, other: Wire) -> Wire {
        match (self, other) {
            (Wire::Z, w) | (w, Wire::Z) => w,
            _ => Wire::X,
        }
    }

    /// Resolves an arbitrary set of drivers.
    ///
    /// No driver yields `Z`; one driver yields its level; more than one
    /// driver yields `X` (even when they agree — the paper's resolver
    /// flags every overlap as a collision).
    pub fn resolve(drivers: impl IntoIterator<Item = Wire>) -> Wire {
        drivers
            .into_iter()
            .fold(Wire::Z, |acc, w| acc.resolve_with(w))
    }
}

impl From<bool> for Wire {
    fn from(bit: bool) -> Wire {
        Wire::from_bit(bit)
    }
}

impl fmt::Display for Wire {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Wire::L0 => "0",
            Wire::L1 => "1",
            Wire::Z => "Z",
            Wire::X => "X",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_conversions() {
        assert_eq!(Wire::from_bit(true), Wire::L1);
        assert_eq!(Wire::from_bit(false), Wire::L0);
        assert_eq!(Wire::L1.to_bit(), Some(true));
        assert_eq!(Wire::Z.to_bit(), None);
        assert_eq!(Wire::X.to_bit(), None);
        assert_eq!(Wire::from(true), Wire::L1);
    }

    #[test]
    fn no_driver_resolves_to_z() {
        assert_eq!(Wire::resolve([]), Wire::Z);
        assert_eq!(Wire::resolve([Wire::Z, Wire::Z]), Wire::Z);
    }

    #[test]
    fn single_driver_wins() {
        assert_eq!(Wire::resolve([Wire::L1]), Wire::L1);
        assert_eq!(Wire::resolve([Wire::Z, Wire::L0, Wire::Z]), Wire::L0);
    }

    #[test]
    fn multiple_drivers_collide_even_when_agreeing() {
        assert_eq!(Wire::resolve([Wire::L1, Wire::L1]), Wire::X);
        assert_eq!(Wire::resolve([Wire::L0, Wire::L1]), Wire::X);
        assert_eq!(Wire::resolve([Wire::L0, Wire::Z, Wire::L1]), Wire::X);
    }

    #[test]
    fn x_is_sticky() {
        assert_eq!(Wire::X.resolve_with(Wire::Z), Wire::X);
        assert_eq!(Wire::X.resolve_with(Wire::L0), Wire::X);
    }

    #[test]
    fn display() {
        let s: String = [Wire::L0, Wire::L1, Wire::Z, Wire::X]
            .iter()
            .map(Wire::to_string)
            .collect();
        assert_eq!(s, "01ZX");
    }
}
