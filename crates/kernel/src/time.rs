//! Simulation time base.
//!
//! All times are integer nanoseconds from simulation start. The Bluetooth
//! symbol rate is 1 Mbit/s, so one symbol is 1 µs; a TDD slot is 625 µs
//! and the native clock CLKN ticks every half slot (312.5 µs).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulation time (nanoseconds since start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn ns(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn us(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float (for reporting).
    pub fn secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Number of whole 625 µs slots elapsed.
    pub const fn slots(self) -> u64 {
        self.0 / SimDuration::SLOT.0
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// One modulation symbol at 1 Mbit/s: 1 µs.
    pub const SYMBOL: SimDuration = SimDuration(1_000);
    /// Half a TDD slot: 312.5 µs, the CLKN tick period.
    pub const HALF_SLOT: SimDuration = SimDuration(312_500);
    /// One TDD slot: 625 µs.
    pub const SLOT: SimDuration = SimDuration(625_000);

    /// Creates a span from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span of `n` slots.
    pub const fn from_slots(n: u64) -> Self {
        SimDuration(n * Self::SLOT.0)
    }

    /// Creates a span covering `n` symbols (bits) at 1 Mbit/s.
    pub const fn from_bits(n: usize) -> Self {
        SimDuration(n as u64 * Self::SYMBOL.0)
    }

    /// Length in nanoseconds.
    pub const fn ns(self) -> u64 {
        self.0
    }

    /// Length in microseconds (truncating).
    pub const fn us(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in whole slots (truncating).
    pub const fn slots(self) -> u64 {
        self.0 / Self::SLOT.0
    }

    /// Length in seconds as a float (for reporting).
    pub fn secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies the span by an integer factor.
    pub const fn times(self, n: u64) -> Self {
        SimDuration(self.0 * n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}us", self.0 / 1_000, self.0 % 1_000)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}us", self.0 / 1_000, self.0 % 1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_constants_are_consistent() {
        assert_eq!(SimDuration::HALF_SLOT.ns() * 2, SimDuration::SLOT.ns());
        assert_eq!(SimDuration::SLOT.ns(), 625_000);
        assert_eq!(SimDuration::from_bits(625).ns(), SimDuration::SLOT.ns());
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_us(100) + SimDuration::from_us(25);
        assert_eq!(t.us(), 125);
        assert_eq!(t.since(SimTime::from_us(100)).us(), 25);
        assert_eq!(
            SimTime::from_us(1).since(SimTime::from_us(5)),
            SimDuration::ZERO
        );
        assert_eq!((t - SimDuration::from_us(25)).us(), 100);
    }

    #[test]
    fn slot_counting() {
        assert_eq!(SimTime::from_us(624).slots(), 0);
        assert_eq!(SimTime::from_us(625).slots(), 1);
        assert_eq!((SimTime::ZERO + SimDuration::from_slots(7)).slots(), 7);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_ns(1_500).to_string(), "1.500us");
        assert_eq!(SimDuration::from_us(625).to_string(), "625.000us");
    }
}
