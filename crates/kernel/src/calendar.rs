//! The event calendar: a time-ordered queue driving the simulation.
//!
//! Events scheduled for the same instant are dispatched in insertion
//! order (FIFO), which mirrors the determinism of a SystemC delta-cycle
//! evaluation queue and makes every simulation bit-reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key(SimTime, u64);

#[derive(Debug, Clone)]
struct Entry<E> {
    key: Key,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A deterministic discrete-event calendar.
///
/// # Examples
///
/// ```
/// use btsim_kernel::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::from_us(20), "late");
/// cal.schedule(SimTime::from_us(10), "early");
/// cal.schedule(SimTime::from_us(10), "early-second");
/// assert_eq!(cal.pop(), Some((SimTime::from_us(10), "early")));
/// assert_eq!(cal.pop(), Some((SimTime::from_us(10), "early-second")));
/// assert_eq!(cal.pop(), Some((SimTime::from_us(20), "late")));
/// assert_eq!(cal.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct Calendar<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the last popped event): the
    /// causality of a discrete-event simulation would be violated.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past ({at} < {now})",
            now = self.now
        );
        self.heap.push(Reverse(Entry {
            key: Key(at, self.seq),
            event,
        }));
        self.seq += 1;
    }

    /// Removes and returns the earliest event, advancing `now`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.key.0;
        Some((entry.key.0, entry.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.key.0)
    }

    /// Advances `now` to `to` without dispatching anything, clamped so it
    /// never passes a pending event. Returns the new `now`.
    ///
    /// An event-driven engine leaves gaps in the calendar: when every
    /// process sleeps past a run horizon, nothing is popped at the
    /// horizon itself, yet observers (power reports, activity fractions)
    /// need the clock to sit exactly at the horizon — the same instant a
    /// lockstep engine reaches by ticking through the gap. Idempotent;
    /// `to` in the past is a no-op.
    pub fn advance_to(&mut self, to: SimTime) -> SimTime {
        let limit = self.peek_time().map_or(to, |p| p.min(to));
        if limit > self.now {
            self.now = limit;
        }
        self.now
    }

    /// Iterates over all pending events in arbitrary (heap) order.
    ///
    /// Useful for horizon scans that need the earliest event of a given
    /// kind without disturbing the queue; callers must not rely on any
    /// particular ordering.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &E)> {
        self.heap.iter().map(|Reverse(e)| (e.key.0, &e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Snapshot export: every pending entry as `(time, insertion seq,
    /// event)` sorted by `(time, seq)`, i.e. exact dispatch order.
    ///
    /// Together with [`Calendar::now`] and [`Calendar::next_seq`] this is
    /// the calendar's complete state; [`Calendar::from_parts`] rebuilds
    /// an identical queue from it.
    pub fn entries(&self) -> Vec<(SimTime, u64, &E)> {
        let mut out: Vec<(SimTime, u64, &E)> = self
            .heap
            .iter()
            .map(|Reverse(e)| (e.key.0, e.key.1, &e.event))
            .collect();
        out.sort_by_key(|&(at, seq, _)| (at, seq));
        out
    }

    /// The sequence number the next [`Calendar::schedule`] will use.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Snapshot import: rebuilds a calendar from [`Calendar::entries`]
    /// output (entry `seq`s are preserved verbatim, so FIFO dispatch
    /// within an instant is bit-identical to the snapshotted queue).
    pub fn from_parts(now: SimTime, next_seq: u64, entries: Vec<(SimTime, u64, E)>) -> Self {
        let heap = entries
            .into_iter()
            .map(|(at, seq, event)| {
                Reverse(Entry {
                    key: Key(at, seq),
                    event,
                })
            })
            .collect();
        Self {
            heap,
            seq: next_seq,
            now,
        }
    }
}

impl<E: crate::snap::Snap> crate::snap::Snap for Calendar<E> {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        self.now.snap(w);
        w.put_u64(self.seq);
        let entries = self.entries();
        w.put_usize(entries.len());
        for (at, seq, event) in entries {
            at.snap(w);
            w.put_u64(seq);
            event.snap(w);
        }
    }
    fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapshotError> {
        let now = SimTime::unsnap(r)?;
        let seq = r.take_u64()?;
        let n = r.take_len()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let at = SimTime::unsnap(r)?;
            if at < now {
                return Err(r.malformed("calendar entry scheduled before now"));
            }
            let entry_seq = r.take_u64()?;
            entries.push((at, entry_seq, E::unsnap(r)?));
        }
        Ok(Calendar::from_parts(now, seq, entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_us(5), 1);
        cal.schedule(SimTime::from_us(1), 2);
        cal.schedule(SimTime::from_us(5), 3);
        cal.schedule(SimTime::from_us(3), 4);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn now_tracks_pops() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_us(7), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_us(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn rejects_past_events() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_us(10), ());
        cal.pop();
        cal.schedule(SimTime::from_us(5), ());
    }

    #[test]
    fn same_instant_scheduling_is_allowed() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_us(10), 1);
        cal.pop();
        // Scheduling *at* now models a SystemC delta cycle.
        cal.schedule(cal.now(), 2);
        assert_eq!(cal.pop(), Some((SimTime::from_us(10), 2)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_us(1), "a");
        cal.schedule(SimTime::from_us(10), "d");
        assert_eq!(cal.pop().unwrap().1, "a");
        cal.schedule(cal.now() + SimDuration::from_us(2), "b");
        cal.schedule(cal.now() + SimDuration::from_us(4), "c");
        let rest: Vec<&str> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec!["b", "c", "d"]);
    }

    #[test]
    fn advance_to_clamps_at_pending_events() {
        let mut cal: Calendar<()> = Calendar::new();
        // Empty calendar: advance freely, never backwards.
        assert_eq!(cal.advance_to(SimTime::from_us(50)), SimTime::from_us(50));
        assert_eq!(cal.advance_to(SimTime::from_us(10)), SimTime::from_us(50));
        assert_eq!(cal.now(), SimTime::from_us(50));
        // A pending event bounds the advance.
        cal.schedule(SimTime::from_us(70), ());
        assert_eq!(cal.advance_to(SimTime::from_us(100)), SimTime::from_us(70));
        cal.pop();
        assert_eq!(cal.advance_to(SimTime::from_us(100)), SimTime::from_us(100));
    }

    #[test]
    fn entries_and_from_parts_preserve_dispatch_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_us(5), "b");
        cal.schedule(SimTime::from_us(1), "a");
        cal.schedule(SimTime::from_us(5), "c");
        cal.pop(); // consume "a" so `now` is nonzero
        let parts: Vec<_> = cal
            .entries()
            .into_iter()
            .map(|(at, seq, e)| (at, seq, *e))
            .collect();
        let mut rebuilt = Calendar::from_parts(cal.now(), cal.next_seq(), parts);
        let orig: Vec<_> = std::iter::from_fn(|| cal.pop()).collect();
        let back: Vec<_> = std::iter::from_fn(|| rebuilt.pop()).collect();
        assert_eq!(orig, back);
        // The seq counter carried over: same-instant inserts after the
        // rebuild still dispatch after the restored entries.
        assert_eq!(cal.next_seq(), rebuilt.next_seq());
    }

    #[test]
    fn snap_roundtrip_is_exact() {
        use crate::snap::{Snap, SnapReader, SnapWriter};
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_us(9), 4u32);
        cal.schedule(SimTime::from_us(2), 7u32);
        cal.pop();
        let mut w = SnapWriter::new();
        cal.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut back = Calendar::<u32>::unsnap(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.now(), cal.now());
        assert_eq!(back.next_seq(), cal.next_seq());
        assert_eq!(back.pop(), cal.pop());
    }

    #[test]
    fn snap_rejects_entry_before_now() {
        use crate::snap::{Snap, SnapReader, SnapWriter};
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_us(10), 1u32);
        cal.pop();
        cal.schedule(SimTime::from_us(20), 2u32);
        let mut w = SnapWriter::new();
        cal.snap(&mut w);
        let mut bytes = w.into_bytes();
        // Rewrite the entry time (after now=10us + seq u64 + len u64) to zero.
        let entry_at = 8 + 8 + 8;
        bytes[entry_at..entry_at + 8].fill(0);
        let mut r = SnapReader::new(&bytes);
        assert!(Calendar::<u32>::unsnap(&mut r).is_err());
    }

    #[test]
    fn len_and_is_empty() {
        let mut cal = Calendar::new();
        assert!(cal.is_empty());
        cal.schedule(SimTime::from_us(1), ());
        cal.schedule(SimTime::from_us(2), ());
        assert_eq!(cal.len(), 2);
        cal.pop();
        cal.pop();
        assert!(cal.is_empty());
    }
}
