//! The event calendar: a time-ordered queue driving the simulation.
//!
//! Events scheduled for the same instant are dispatched in insertion
//! order (FIFO), which mirrors the determinism of a SystemC delta-cycle
//! evaluation queue and makes every simulation bit-reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Key(SimTime, u64);

#[derive(Debug)]
struct Entry<E> {
    key: Key,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A deterministic discrete-event calendar.
///
/// # Examples
///
/// ```
/// use btsim_kernel::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::from_us(20), "late");
/// cal.schedule(SimTime::from_us(10), "early");
/// cal.schedule(SimTime::from_us(10), "early-second");
/// assert_eq!(cal.pop(), Some((SimTime::from_us(10), "early")));
/// assert_eq!(cal.pop(), Some((SimTime::from_us(10), "early-second")));
/// assert_eq!(cal.pop(), Some((SimTime::from_us(20), "late")));
/// assert_eq!(cal.pop(), None);
/// ```
#[derive(Debug)]
pub struct Calendar<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the last popped event): the
    /// causality of a discrete-event simulation would be violated.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past ({at} < {now})",
            now = self.now
        );
        self.heap.push(Reverse(Entry {
            key: Key(at, self.seq),
            event,
        }));
        self.seq += 1;
    }

    /// Removes and returns the earliest event, advancing `now`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.key.0;
        Some((entry.key.0, entry.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.key.0)
    }

    /// Advances `now` to `to` without dispatching anything, clamped so it
    /// never passes a pending event. Returns the new `now`.
    ///
    /// An event-driven engine leaves gaps in the calendar: when every
    /// process sleeps past a run horizon, nothing is popped at the
    /// horizon itself, yet observers (power reports, activity fractions)
    /// need the clock to sit exactly at the horizon — the same instant a
    /// lockstep engine reaches by ticking through the gap. Idempotent;
    /// `to` in the past is a no-op.
    pub fn advance_to(&mut self, to: SimTime) -> SimTime {
        let limit = self.peek_time().map_or(to, |p| p.min(to));
        if limit > self.now {
            self.now = limit;
        }
        self.now
    }

    /// Iterates over all pending events in arbitrary (heap) order.
    ///
    /// Useful for horizon scans that need the earliest event of a given
    /// kind without disturbing the queue; callers must not rely on any
    /// particular ordering.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &E)> {
        self.heap.iter().map(|Reverse(e)| (e.key.0, &e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_us(5), 1);
        cal.schedule(SimTime::from_us(1), 2);
        cal.schedule(SimTime::from_us(5), 3);
        cal.schedule(SimTime::from_us(3), 4);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn now_tracks_pops() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_us(7), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_us(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn rejects_past_events() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_us(10), ());
        cal.pop();
        cal.schedule(SimTime::from_us(5), ());
    }

    #[test]
    fn same_instant_scheduling_is_allowed() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_us(10), 1);
        cal.pop();
        // Scheduling *at* now models a SystemC delta cycle.
        cal.schedule(cal.now(), 2);
        assert_eq!(cal.pop(), Some((SimTime::from_us(10), 2)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_us(1), "a");
        cal.schedule(SimTime::from_us(10), "d");
        assert_eq!(cal.pop().unwrap().1, "a");
        cal.schedule(cal.now() + SimDuration::from_us(2), "b");
        cal.schedule(cal.now() + SimDuration::from_us(4), "c");
        let rest: Vec<&str> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec!["b", "c", "d"]);
    }

    #[test]
    fn advance_to_clamps_at_pending_events() {
        let mut cal: Calendar<()> = Calendar::new();
        // Empty calendar: advance freely, never backwards.
        assert_eq!(cal.advance_to(SimTime::from_us(50)), SimTime::from_us(50));
        assert_eq!(cal.advance_to(SimTime::from_us(10)), SimTime::from_us(50));
        assert_eq!(cal.now(), SimTime::from_us(50));
        // A pending event bounds the advance.
        cal.schedule(SimTime::from_us(70), ());
        assert_eq!(cal.advance_to(SimTime::from_us(100)), SimTime::from_us(70));
        cal.pop();
        assert_eq!(cal.advance_to(SimTime::from_us(100)), SimTime::from_us(100));
    }

    #[test]
    fn len_and_is_empty() {
        let mut cal = Calendar::new();
        assert!(cal.is_empty());
        cal.schedule(SimTime::from_us(1), ());
        cal.schedule(SimTime::from_us(2), ());
        assert_eq!(cal.len(), 2);
        cal.pop();
        cal.pop();
        assert!(cal.is_empty());
    }
}
