//! Deterministic random numbers for reproducible simulations.
//!
//! Every simulation run is seeded with a single `u64`; independent
//! sub-streams (one per device, one for the channel, …) are derived with
//! SplitMix64 so that adding a consumer never perturbs the draws of
//! another. The paper's channel "controls bit inversion with a random
//! number generator"; [`SimRng::next_flip_gap`] provides the geometric
//! jumps that implement that efficiently at packet granularity.

/// SplitMix64 step, used for seed derivation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Xoshiro256++ core: fast, high-quality, dependency-free.
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed(seed: u64) -> Self {
        // Expand the seed with SplitMix64, as the xoshiro authors
        // advise: draw n of the stream is splitmix64 of the seed
        // advanced by n golden-ratio steps.
        let mut s = [0u64; 4];
        for (n, word) in s.iter_mut().enumerate() {
            *word = splitmix64(seed.wrapping_add((n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        }
        Self { s }
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// A seedable simulation RNG.
///
/// # Examples
///
/// ```
/// use btsim_kernel::SimRng;
///
/// let mut a = SimRng::new(42).fork(7);
/// let mut b = SimRng::new(42).fork(7);
/// assert_eq!(a.range_u64(1000), b.range_u64(1000));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    rng: Xoshiro256,
}

impl SimRng {
    /// Creates the root RNG of a run.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rng: Xoshiro256::from_seed(splitmix64(seed)),
        }
    }

    /// Derives an independent sub-stream identified by `stream`.
    ///
    /// Forking with the same `(seed, stream)` always yields the same
    /// stream, regardless of draws made on the parent.
    pub fn fork(&self, stream: u64) -> SimRng {
        SimRng::new(splitmix64(
            self.seed ^ splitmix64(stream.wrapping_add(0xA5A5_5A5A)),
        ))
    }

    /// The seed this RNG was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A digest of the generator's current position in its stream.
    ///
    /// Two generators with the same seed have equal fingerprints exactly
    /// when they have made the same number of draws — which is how the
    /// engine-equivalence harness proves an alternative simulation engine
    /// consumed the random streams identically to the reference engine.
    pub fn fingerprint(&self) -> u64 {
        let mut acc = splitmix64(self.seed);
        for w in self.rng.s {
            acc = splitmix64(acc ^ w);
        }
        acc
    }

    /// Draws a boolean that is `true` with probability `p` (clamped to 0..=1).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// Draws a uniform integer in `0..bound` (`bound` must be nonzero).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range_u64 bound must be nonzero");
        // Multiply-shift mapping of a 64-bit draw onto `0..bound`; the
        // bias is at most 2^-64 per value, far below simulation noise.
        ((self.rng.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Draws a uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The raw generator state: `(seed, xoshiro words)`.
    ///
    /// Snapshots persist the exact stream *position* (the four xoshiro
    /// words), not just the seed — a restored RNG continues the stream
    /// from the same draw, which is what makes restore-then-run
    /// bit-identical to an uninterrupted run.
    pub fn state(&self) -> (u64, [u64; 4]) {
        (self.seed, self.rng.s)
    }

    /// Rebuilds an RNG at an exact stream position captured by
    /// [`SimRng::state`].
    pub fn from_state(seed: u64, s: [u64; 4]) -> Self {
        Self {
            seed,
            rng: Xoshiro256 { s },
        }
    }

    /// Number of successes (bits kept intact) before the next failure when
    /// each bit flips independently with probability `ber`.
    ///
    /// Returns `u64::MAX` when `ber <= 0` (no flips ever) and `0` when
    /// `ber >= 1`. Sampling geometric gaps lets the channel corrupt a
    /// packet in O(errors) instead of O(bits).
    pub fn next_flip_gap(&mut self, ber: f64) -> u64 {
        if ber <= 0.0 {
            return u64::MAX;
        }
        if ber >= 1.0 {
            return 0;
        }
        let u = self.unit_f64().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - ber).ln()) as u64
    }
}

impl crate::snap::Snap for SimRng {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.put_u64(self.seed);
        for word in self.rng.s {
            w.put_u64(word);
        }
    }
    fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapshotError> {
        let seed = r.take_u64()?;
        let s = <[u64; 4]>::unsnap(r)?;
        Ok(SimRng::from_state(seed, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.range_u64(1_000_000), b.range_u64(1_000_000));
        }
    }

    #[test]
    fn forks_are_independent_of_parent_draws() {
        let mut parent1 = SimRng::new(9);
        let parent2 = SimRng::new(9);
        parent1.range_u64(10); // consume from one parent only
        let mut f1 = parent1.fork(3);
        let mut f2 = parent2.fork(3);
        for _ in 0..10 {
            assert_eq!(f1.range_u64(1 << 40), f2.range_u64(1 << 40));
        }
    }

    #[test]
    fn different_streams_differ() {
        let root = SimRng::new(77);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..20)
            .filter(|_| a.range_u64(1 << 30) == b.range_u64(1 << 30))
            .count();
        assert!(same < 3, "streams should not coincide");
    }

    #[test]
    fn fingerprint_tracks_draws() {
        let mut a = SimRng::new(11);
        let b = SimRng::new(11);
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.range_u64(100);
        assert_ne!(a.fingerprint(), b.fingerprint(), "a drew, b did not");
        let mut b = b;
        b.range_u64(100);
        assert_eq!(a.fingerprint(), b.fingerprint(), "same draw count again");
        assert_ne!(
            SimRng::new(1).fingerprint(),
            SimRng::new(2).fingerprint(),
            "different seeds differ"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn flip_gap_extremes() {
        let mut r = SimRng::new(5);
        assert_eq!(r.next_flip_gap(0.0), u64::MAX);
        assert_eq!(r.next_flip_gap(-0.5), u64::MAX);
        assert_eq!(r.next_flip_gap(1.0), 0);
    }

    #[test]
    fn flip_gap_mean_matches_geometric() {
        let mut r = SimRng::new(2024);
        let ber = 0.01;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| r.next_flip_gap(ber).min(10_000)).sum();
        let mean = total as f64 / n as f64;
        // Geometric mean gap ≈ (1-p)/p ≈ 99.
        assert!((80.0..120.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn flip_gap_induces_correct_ber_over_stream() {
        let mut r = SimRng::new(7);
        let ber = 0.02;
        let bits: u64 = 500_000;
        let mut flips = 0u64;
        let mut pos = 0u64;
        loop {
            let gap = r.next_flip_gap(ber);
            if pos.saturating_add(gap) >= bits {
                break;
            }
            pos += gap + 1;
            flips += 1;
        }
        let measured = flips as f64 / bits as f64;
        assert!(
            (measured - ber).abs() < ber * 0.15,
            "measured BER {measured} vs {ber}"
        );
    }

    #[test]
    fn state_roundtrip_resumes_stream_exactly() {
        let mut a = SimRng::new(0xFEED);
        for _ in 0..17 {
            a.range_u64(1 << 40);
        }
        let (seed, s) = a.state();
        let mut b = SimRng::from_state(seed, s);
        assert_eq!(a.fingerprint(), b.fingerprint());
        for _ in 0..50 {
            assert_eq!(a.range_u64(1 << 40), b.range_u64(1 << 40));
        }
    }

    #[test]
    fn snap_roundtrip_preserves_position() {
        use crate::snap::{Snap, SnapReader, SnapWriter};
        let mut a = SimRng::new(31);
        a.unit_f64();
        a.unit_f64();
        let mut w = SnapWriter::new();
        a.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut b = SimRng::unsnap(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.next_flip_gap(0.01), b.next_flip_gap(0.01));
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SimRng::new(1);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
