//! Traced signals: named waveforms recorded during simulation.
//!
//! The paper inspects its model through SystemC signal waveforms
//! (`enable_rx_RF`, `enable_tx_RF`, packet data — Figs. 5 and 9). The
//! [`TraceRecorder`] plays that role here: simulation components declare
//! named signals and record value changes; the `btsim-trace` crate
//! renders the records as VCD files or ASCII art.
//!
//! Records may be inserted out of chronological order (the simulator
//! sometimes learns the exact end of an RF window retroactively); readers
//! must call [`TraceRecorder::sorted_records`].

use std::fmt;

use crate::time::SimTime;
use crate::wire::Wire;

/// Identifies a declared signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalRef(usize);

/// A recorded signal value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceValue {
    /// A single-bit level (RF enables, flags).
    Bit(bool),
    /// A four-valued bus level (the channel).
    Wire(Wire),
    /// A small integer (state numbers, channel indices).
    Int(u64),
}

impl fmt::Display for TraceValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceValue::Bit(b) => write!(f, "{}", *b as u8),
            TraceValue::Wire(w) => write!(f, "{w}"),
            TraceValue::Int(v) => write!(f, "{v}"),
        }
    }
}

/// Declaration metadata of a signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalInfo {
    /// Hierarchical scope, e.g. a device name.
    pub scope: String,
    /// Signal name within the scope, e.g. `enable_rx_RF`.
    pub name: String,
    /// Bit width hint for renderers (1 for Bit/Wire).
    pub width: u32,
}

/// One recorded value change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Time of the change.
    pub at: SimTime,
    /// Which signal changed.
    pub signal: SignalRef,
    /// The new value.
    pub value: TraceValue,
}

/// Collects signal declarations and value changes during a run.
///
/// A disabled recorder (the default for Monte-Carlo batches) ignores all
/// records, so instrumentation can stay unconditionally in the hot path.
///
/// # Memory behaviour
///
/// An enabled recorder stores every record (~32 bytes each) for the
/// whole run — fine for the paper's millisecond waveform windows, a
/// hazard for hour-long captures. [`TraceRecorder::set_record_cap`]
/// bounds growth: once the cap is reached further records are counted
/// in [`TraceRecorder::dropped`] instead of stored, so a long campaign
/// keeps its waveform head instead of dying of memory. Renderers that
/// emit repeatedly should prefer `btsim_trace::to_vcd_into`, which
/// appends into a caller-owned buffer instead of rebuilding the whole
/// VCD string per call.
///
/// # Examples
///
/// ```
/// use btsim_kernel::{SimTime, TraceRecorder, TraceValue};
///
/// let mut tr = TraceRecorder::enabled();
/// let rx = tr.declare("slave1", "enable_rx_RF", 1);
/// tr.record(SimTime::from_us(10), rx, TraceValue::Bit(true));
/// tr.record(SimTime::from_us(42), rx, TraceValue::Bit(false));
/// assert_eq!(tr.sorted_records().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    signals: Vec<SignalInfo>,
    records: Vec<TraceRecord>,
    enabled: bool,
    /// `0` means unbounded.
    record_cap: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// Creates a recorder that stores records.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Creates a recorder that drops all records (zero memory growth).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether records are being stored.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Declares a signal and returns its handle.
    ///
    /// Declarations are kept even when disabled, so handles stay valid
    /// across enable states.
    pub fn declare(&mut self, scope: &str, name: &str, width: u32) -> SignalRef {
        self.signals.push(SignalInfo {
            scope: scope.to_owned(),
            name: name.to_owned(),
            width,
        });
        SignalRef(self.signals.len() - 1)
    }

    /// Caps stored records at `cap` (`0` = unbounded, the default).
    /// Records past the cap are counted in [`TraceRecorder::dropped`]
    /// instead of stored — the guard that keeps long captures from
    /// growing without bound (see *Memory behaviour* above).
    pub fn set_record_cap(&mut self, cap: usize) {
        self.record_cap = cap;
    }

    /// Records dropped at the cap (never nonzero without a cap).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records a value change (no-op when disabled; counted as dropped
    /// once the record cap is reached).
    pub fn record(&mut self, at: SimTime, signal: SignalRef, value: TraceValue) {
        if !self.enabled {
            return;
        }
        if self.record_cap != 0 && self.records.len() >= self.record_cap {
            self.dropped += 1;
            return;
        }
        self.records.push(TraceRecord { at, signal, value });
    }

    /// Declared signals, indexable by [`SignalRef`].
    pub fn signals(&self) -> &[SignalInfo] {
        &self.signals
    }

    /// Looks up a signal's metadata.
    pub fn info(&self, signal: SignalRef) -> &SignalInfo {
        &self.signals[signal.0]
    }

    /// Index form of a [`SignalRef`] for table-building renderers.
    pub fn index_of(&self, signal: SignalRef) -> usize {
        signal.0
    }

    /// All records in canonical order: by time, then by signal
    /// declaration index (stable for repeated changes of one signal at
    /// one instant, so level sequences survive).
    ///
    /// The signal tiebreak makes the rendering independent of which
    /// *order* devices were processed within a simultaneous instant —
    /// engines that schedule the same work differently (see
    /// `Engine::EventDriven`) still produce byte-identical waveforms,
    /// which is what lets golden-trace tests pin VCD output.
    pub fn sorted_records(&self) -> Vec<TraceRecord> {
        let mut out = self.records.clone();
        out.sort_by_key(|r| (r.at, r.signal.0));
        out
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl crate::snap::Snap for SignalRef {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.put_usize(self.0);
    }
    fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapshotError> {
        Ok(SignalRef(r.take_usize()?))
    }
}

impl crate::snap::Snap for TraceValue {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        match self {
            TraceValue::Bit(b) => {
                w.put_u8(0);
                w.put_bool(*b);
            }
            TraceValue::Wire(wire) => {
                w.put_u8(1);
                wire.snap(w);
            }
            TraceValue::Int(v) => {
                w.put_u8(2);
                w.put_u64(*v);
            }
        }
    }
    fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapshotError> {
        Ok(match r.take_u8()? {
            0 => TraceValue::Bit(r.take_bool()?),
            1 => TraceValue::Wire(crate::snap::Snap::unsnap(r)?),
            2 => TraceValue::Int(r.take_u64()?),
            _ => return Err(r.malformed("trace value tag out of range")),
        })
    }
}

impl crate::snap::Snap for SignalInfo {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.put_str(&self.scope);
        w.put_str(&self.name);
        w.put_u32(self.width);
    }
    fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapshotError> {
        Ok(SignalInfo {
            scope: r.take_str()?,
            name: r.take_str()?,
            width: r.take_u32()?,
        })
    }
}

impl crate::snap::Snap for TraceRecord {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        self.at.snap(w);
        self.signal.snap(w);
        self.value.snap(w);
    }
    fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapshotError> {
        Ok(TraceRecord {
            at: crate::snap::Snap::unsnap(r)?,
            signal: crate::snap::Snap::unsnap(r)?,
            value: crate::snap::Snap::unsnap(r)?,
        })
    }
}

impl crate::snap::Snap for TraceRecorder {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        self.signals.snap(w);
        self.records.snap(w);
        w.put_bool(self.enabled);
        w.put_usize(self.record_cap);
        w.put_u64(self.dropped);
    }
    fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapshotError> {
        let signals: Vec<SignalInfo> = crate::snap::Snap::unsnap(r)?;
        let records: Vec<TraceRecord> = crate::snap::Snap::unsnap(r)?;
        if records.iter().any(|rec| rec.signal.0 >= signals.len()) {
            return Err(r.malformed("trace record references undeclared signal"));
        }
        Ok(TraceRecorder {
            signals,
            records,
            enabled: r.take_bool()?,
            record_cap: r.take_usize()?,
            dropped: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_record() {
        let mut tr = TraceRecorder::enabled();
        let a = tr.declare("master", "enable_tx_RF", 1);
        let b = tr.declare("master", "channel", 7);
        assert_ne!(a, b);
        tr.record(SimTime::from_us(1), a, TraceValue::Bit(true));
        tr.record(SimTime::from_us(2), b, TraceValue::Int(42));
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.info(a).name, "enable_tx_RF");
        assert_eq!(tr.info(b).width, 7);
        assert_eq!(tr.signals().len(), 2);
    }

    #[test]
    fn disabled_recorder_drops_records_but_keeps_declarations() {
        let mut tr = TraceRecorder::disabled();
        let a = tr.declare("s", "sig", 1);
        tr.record(SimTime::from_us(1), a, TraceValue::Bit(true));
        assert!(tr.is_empty());
        assert_eq!(tr.signals().len(), 1);
        assert!(!tr.is_enabled());
    }

    #[test]
    fn sorted_records_orders_out_of_order_inserts() {
        let mut tr = TraceRecorder::enabled();
        let a = tr.declare("s", "sig", 1);
        tr.record(SimTime::from_us(30), a, TraceValue::Bit(false));
        tr.record(SimTime::from_us(10), a, TraceValue::Bit(true));
        tr.record(SimTime::from_us(20), a, TraceValue::Bit(false));
        let times: Vec<u64> = tr.sorted_records().iter().map(|r| r.at.us()).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn record_cap_counts_drops() {
        let mut tr = TraceRecorder::enabled();
        let a = tr.declare("s", "sig", 1);
        tr.set_record_cap(2);
        for i in 0..5 {
            tr.record(SimTime::from_us(i), a, TraceValue::Bit(i % 2 == 0));
        }
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.dropped(), 3);
        // An uncapped recorder never reports drops.
        let mut free = TraceRecorder::enabled();
        let b = free.declare("s", "sig", 1);
        for i in 0..5 {
            free.record(SimTime::from_us(i), b, TraceValue::Bit(true));
        }
        assert_eq!(free.dropped(), 0);
    }

    #[test]
    fn trace_value_display() {
        assert_eq!(TraceValue::Bit(true).to_string(), "1");
        assert_eq!(TraceValue::Wire(Wire::X).to_string(), "X");
        assert_eq!(TraceValue::Int(79).to_string(), "79");
    }
}
