//! Property-based tests of the simulation kernel.

use btsim_kernel::{Calendar, SimDuration, SimRng, SimTime, Wire};
use proptest::prelude::*;

proptest! {
    #[test]
    fn calendar_pops_in_time_then_fifo_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::from_ns(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(x) = cal.pop() {
            popped.push(x);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO order violated at equal times");
            }
        }
    }

    #[test]
    fn calendar_interleaved_schedule_respects_causality(
        steps in prop::collection::vec((0u64..1000, any::<bool>()), 1..100)
    ) {
        let mut cal = Calendar::new();
        let mut last = SimTime::ZERO;
        for (delay, pop_first) in steps {
            if pop_first {
                if let Some((t, _)) = cal.pop() {
                    prop_assert!(t >= last);
                    last = t;
                }
            }
            cal.schedule(cal.now() + SimDuration::from_ns(delay), 0u8);
        }
    }

    #[test]
    fn rng_streams_are_reproducible(seed: u64, stream: u64, draws in 1usize..50) {
        let mut a = SimRng::new(seed).fork(stream);
        let mut b = SimRng::new(seed).fork(stream);
        for _ in 0..draws {
            prop_assert_eq!(a.range_u64(u64::MAX), b.range_u64(u64::MAX));
        }
    }

    #[test]
    fn flip_gap_handles_all_bers(seed: u64, ber in 0.0f64..1.0) {
        let mut r = SimRng::new(seed);
        let gap = r.next_flip_gap(ber);
        if ber <= 0.0 {
            prop_assert_eq!(gap, u64::MAX);
        }
        let _ = gap;
    }

    #[test]
    fn wire_resolution_is_order_independent(
        drivers in prop::collection::vec(prop::sample::select(vec![Wire::L0, Wire::L1, Wire::Z, Wire::X]), 0..6)
    ) {
        let forward = Wire::resolve(drivers.iter().copied());
        let mut reversed = drivers.clone();
        reversed.reverse();
        prop_assert_eq!(forward, Wire::resolve(reversed));
        // Any split point folds to the same result.
        for split in 0..=drivers.len() {
            let left = Wire::resolve(drivers[..split].iter().copied());
            let right = Wire::resolve(drivers[split..].iter().copied());
            prop_assert_eq!(left.resolve_with(right), forward);
        }
    }

    #[test]
    fn time_arithmetic_is_consistent(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let t = SimTime::from_ns(a);
        let d = SimDuration::from_ns(b);
        prop_assert_eq!((t + d).since(t), d);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!(SimDuration::from_slots(3).ns(), 3 * 625_000);
    }
}
