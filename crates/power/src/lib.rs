//! # btsim-power
//!
//! RF activity and energy accounting for the DATE'05 model. The paper
//! measures "RF activity" — the fraction of time `enable_tx_RF` /
//! `enable_rx_RF` are asserted — per device and per life phase (inquiry,
//! page, active, sniff, hold, park; Figs. 10-12). [`PowerMonitor`]
//! integrates the RF-enable intervals the simulator reports and
//! [`PowerProfile`] converts on-times into energy.
//!
//! The monitor is generic over the phase tag `P` so this crate stays
//! independent of the baseband layer (the simulator instantiates it with
//! its `LifePhase` enum).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Debug;

use btsim_kernel::{SimDuration, SimTime};

/// Radio power draw in milliwatts per state.
///
/// Defaults model a class-2 (2.5 mW output) Bluetooth radio of the
/// paper's era (≈ the 0.18 µm CMOS radio of the paper's reference [2]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerProfile {
    /// Transmitter chain active.
    pub tx_mw: f64,
    /// Receiver chain active.
    pub rx_mw: f64,
    /// Baseband awake, RF off.
    pub idle_mw: f64,
}

impl Default for PowerProfile {
    fn default() -> Self {
        Self {
            tx_mw: 45.0,
            rx_mw: 40.0,
            idle_mw: 1.0,
        }
    }
}

/// Per-phase accumulated on-times.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Nanoseconds the transmitter was on in this phase.
    pub tx_ns: u64,
    /// Nanoseconds the receiver was on in this phase.
    pub rx_ns: u64,
    /// Nanoseconds spent in this phase overall.
    pub phase_ns: u64,
}

impl PhaseTotals {
    /// RF activity (TX+RX on-time over phase duration), as a fraction.
    pub fn activity(&self) -> f64 {
        if self.phase_ns == 0 {
            0.0
        } else {
            (self.tx_ns + self.rx_ns) as f64 / self.phase_ns as f64
        }
    }
}

/// Activity report for one device.
///
/// `phases` is an ordered map so that reports of identical runs render
/// identically — differential tests compare their `Debug` output.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport<P: Copy + Ord> {
    /// Total transmitter on-time.
    pub tx: SimDuration,
    /// Total receiver on-time.
    pub rx: SimDuration,
    /// Observation window (simulation end time).
    pub total: SimDuration,
    /// Per-phase breakdown.
    pub phases: BTreeMap<P, PhaseTotals>,
}

impl<P: Copy + Ord> DeviceReport<P> {
    /// Overall RF activity: (TX + RX on-time) / observation window.
    pub fn rf_activity(&self) -> f64 {
        if self.total.ns() == 0 {
            0.0
        } else {
            (self.tx.ns() + self.rx.ns()) as f64 / self.total.ns() as f64
        }
    }

    /// Transmitter-only activity fraction.
    pub fn tx_activity(&self) -> f64 {
        if self.total.ns() == 0 {
            0.0
        } else {
            self.tx.ns() as f64 / self.total.ns() as f64
        }
    }

    /// Receiver-only activity fraction.
    pub fn rx_activity(&self) -> f64 {
        if self.total.ns() == 0 {
            0.0
        } else {
            self.rx.ns() as f64 / self.total.ns() as f64
        }
    }

    /// Mean power over the window under `profile`, in milliwatts.
    pub fn mean_power_mw(&self, profile: &PowerProfile) -> f64 {
        if self.total.ns() == 0 {
            return 0.0;
        }
        let idle_ns = self.total.ns().saturating_sub(self.tx.ns() + self.rx.ns());
        (self.tx.ns() as f64 * profile.tx_mw
            + self.rx.ns() as f64 * profile.rx_mw
            + idle_ns as f64 * profile.idle_mw)
            / self.total.ns() as f64
    }

    /// Energy consumed over the window, in microjoules.
    pub fn energy_uj(&self, profile: &PowerProfile) -> f64 {
        self.mean_power_mw(profile) * self.total.ns() as f64 / 1e6
    }

    /// Totals for one phase.
    pub fn phase(&self, phase: P) -> PhaseTotals {
        self.phases.get(&phase).copied().unwrap_or_default()
    }
}

#[derive(Debug, Clone)]
struct DeviceAccount<P> {
    tx_ns: u64,
    rx_ns: u64,
    /// Phase timeline: (start, phase), sorted by construction.
    timeline: Vec<(SimTime, P)>,
    per_phase: BTreeMap<P, PhaseTotals>,
}

/// Integrates RF-enable intervals per device and phase.
///
/// Intervals may be reported out of order (the simulator learns the exact
/// end of a receive window retroactively), but each interval is
/// attributed to phases by its own timestamps, so ordering does not
/// matter. Phase *changes*, however, must be reported in order.
///
/// # Examples
///
/// ```
/// use btsim_kernel::SimTime;
/// use btsim_power::PowerMonitor;
///
/// let mut mon: PowerMonitor<&'static str> = PowerMonitor::new(1, "idle");
/// mon.set_phase(0, "active", SimTime::ZERO);
/// mon.add_rx(0, SimTime::from_us(0), SimTime::from_us(32));
/// let report = mon.report(0, SimTime::from_us(1250));
/// assert!((report.rf_activity() - 32.0 / 1250.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct PowerMonitor<P: Copy + Ord + Debug> {
    devices: Vec<DeviceAccount<P>>,
}

impl<P: Copy + Ord + Debug> PowerMonitor<P> {
    /// Creates a monitor for `n` devices starting in `initial_phase`.
    pub fn new(n: usize, initial_phase: P) -> Self {
        Self {
            devices: (0..n)
                .map(|_| DeviceAccount {
                    tx_ns: 0,
                    rx_ns: 0,
                    timeline: vec![(SimTime::ZERO, initial_phase)],
                    per_phase: BTreeMap::new(),
                })
                .collect(),
        }
    }

    /// Number of monitored devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Records a phase change of `device` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range or `at` precedes the last
    /// recorded phase change (phase changes must be chronological).
    pub fn set_phase(&mut self, device: usize, phase: P, at: SimTime) {
        let acc = &mut self.devices[device];
        let last = acc.timeline.last().expect("timeline is never empty");
        assert!(
            at >= last.0,
            "phase changes must be chronological ({at} < {})",
            last.0
        );
        if last.1 != phase {
            if last.0 == at {
                // Replace a zero-length phase entry.
                acc.timeline.pop();
                if acc
                    .timeline
                    .last()
                    .map(|(_, p)| *p != phase)
                    .unwrap_or(true)
                {
                    acc.timeline.push((at, phase));
                }
            } else {
                acc.timeline.push((at, phase));
            }
        }
    }

    /// Records a transmitter-on interval `[from, to)`.
    pub fn add_tx(&mut self, device: usize, from: SimTime, to: SimTime) {
        self.add_interval(device, from, to, true);
    }

    /// Bulk-accounts `tx_ns`/`rx_ns` nanoseconds of radio time entirely
    /// within the phase active at `at`.
    ///
    /// Equivalent to many [`PowerMonitor::add_tx`]/[`PowerMonitor::add_rx`]
    /// calls whose intervals all start at or after `at`, **provided** the
    /// caller guarantees no phase change occurs over the accounted span —
    /// the single timeline lookup here is what makes batched accounting
    /// (thousands of intervals in one known-quiet stretch) cheap.
    pub fn add_bulk(&mut self, device: usize, at: SimTime, tx_ns: u64, rx_ns: u64) {
        if tx_ns == 0 && rx_ns == 0 {
            return;
        }
        let acc = &mut self.devices[device];
        acc.tx_ns += tx_ns;
        acc.rx_ns += rx_ns;
        let idx = match acc.timeline.binary_search_by(|(t, _)| t.cmp(&at)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        let entry = acc.per_phase.entry(acc.timeline[idx].1).or_default();
        entry.tx_ns += tx_ns;
        entry.rx_ns += rx_ns;
    }

    /// Records a receiver-on interval `[from, to)`.
    pub fn add_rx(&mut self, device: usize, from: SimTime, to: SimTime) {
        self.add_interval(device, from, to, false);
    }

    fn add_interval(&mut self, device: usize, from: SimTime, to: SimTime, is_tx: bool) {
        if to <= from {
            return;
        }
        let acc = &mut self.devices[device];
        let total = to.since(from).ns();
        if is_tx {
            acc.tx_ns += total;
        } else {
            acc.rx_ns += total;
        }
        // Split the interval over the phase timeline.
        let mut cursor = from;
        while cursor < to {
            // Find the phase active at `cursor` and its end.
            let idx = match acc.timeline.binary_search_by(|(t, _)| t.cmp(&cursor)) {
                Ok(i) => i,
                Err(0) => 0,
                Err(i) => i - 1,
            };
            let phase = acc.timeline[idx].1;
            let seg_end = acc
                .timeline
                .get(idx + 1)
                .map(|(t, _)| *t)
                .unwrap_or(to)
                .min(to);
            let seg_end = seg_end.max(cursor);
            let len = seg_end.since(cursor).ns();
            let entry = acc.per_phase.entry(phase).or_default();
            if is_tx {
                entry.tx_ns += len;
            } else {
                entry.rx_ns += len;
            }
            if seg_end == cursor {
                break;
            }
            cursor = seg_end;
        }
    }

    /// Produces the report of `device` for the window `[0, end)`.
    pub fn report(&self, device: usize, end: SimTime) -> DeviceReport<P> {
        let acc = &self.devices[device];
        let mut phases = acc.per_phase.clone();
        // Fill in phase durations from the timeline.
        for (i, (start, phase)) in acc.timeline.iter().enumerate() {
            let stop = acc
                .timeline
                .get(i + 1)
                .map(|(t, _)| *t)
                .unwrap_or(end)
                .min(end);
            if stop > *start {
                phases.entry(*phase).or_default().phase_ns += stop.since(*start).ns();
            }
        }
        DeviceReport {
            tx: SimDuration::from_ns(acc.tx_ns),
            rx: SimDuration::from_ns(acc.rx_ns),
            total: end.since(SimTime::ZERO),
            phases,
        }
    }
}

use btsim_kernel::{Snap, SnapReader, SnapWriter, SnapshotError};

impl Snap for PhaseTotals {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.tx_ns);
        w.put_u64(self.rx_ns);
        w.put_u64(self.phase_ns);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            tx_ns: r.take_u64()?,
            rx_ns: r.take_u64()?,
            phase_ns: r.take_u64()?,
        })
    }
}

impl<P: Snap + Copy + Ord> Snap for DeviceAccount<P> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.tx_ns);
        w.put_u64(self.rx_ns);
        self.timeline.snap(w);
        self.per_phase.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let tx_ns = r.take_u64()?;
        let rx_ns = r.take_u64()?;
        let timeline = Vec::<(SimTime, P)>::unsnap(r)?;
        if timeline.is_empty() {
            return Err(r.malformed("empty phase timeline"));
        }
        if timeline.windows(2).any(|w| w[1].0 < w[0].0) {
            return Err(r.malformed("phase timeline out of order"));
        }
        Ok(Self {
            tx_ns,
            rx_ns,
            timeline,
            per_phase: BTreeMap::unsnap(r)?,
        })
    }
}

impl<P: Snap + Copy + Ord + Debug> Snap for PowerMonitor<P> {
    fn snap(&self, w: &mut SnapWriter) {
        self.devices.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            devices: Vec::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimTime {
        SimTime::from_us(v)
    }

    #[test]
    fn monitor_snapshot_roundtrips() {
        let mut mon: PowerMonitor<u8> = PowerMonitor::new(2, 0);
        mon.set_phase(0, 1, us(100));
        mon.add_tx(0, us(0), us(150));
        mon.add_rx(1, us(20), us(60));
        let mut w = SnapWriter::new();
        mon.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = PowerMonitor::<u8>::unsnap(&mut r).expect("roundtrip");
        r.finish().expect("no trailing bytes");
        assert_eq!(back.report(0, us(1000)), mon.report(0, us(1000)));
        assert_eq!(back.report(1, us(1000)), mon.report(1, us(1000)));
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            let out = PowerMonitor::<u8>::unsnap(&mut r).and_then(|_| r.finish());
            assert!(out.is_err(), "cut at {cut} must be rejected");
        }
    }

    #[test]
    fn integrates_tx_and_rx() {
        let mut mon: PowerMonitor<u8> = PowerMonitor::new(2, 0);
        mon.add_tx(0, us(0), us(100));
        mon.add_rx(0, us(200), us(250));
        mon.add_rx(1, us(0), us(1000));
        let r0 = mon.report(0, us(1000));
        assert_eq!(r0.tx.us(), 100);
        assert_eq!(r0.rx.us(), 50);
        assert!((r0.rf_activity() - 0.15).abs() < 1e-12);
        assert!((r0.tx_activity() - 0.10).abs() < 1e-12);
        assert!((r0.rx_activity() - 0.05).abs() < 1e-12);
        let r1 = mon.report(1, us(1000));
        assert!((r1.rf_activity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_interval_is_ignored() {
        let mut mon: PowerMonitor<u8> = PowerMonitor::new(1, 0);
        mon.add_tx(0, us(10), us(10));
        mon.add_rx(0, us(20), us(10));
        let r = mon.report(0, us(100));
        assert_eq!(r.rf_activity(), 0.0);
    }

    #[test]
    fn attributes_intervals_to_phases() {
        let mut mon: PowerMonitor<&str> = PowerMonitor::new(1, "inquiry");
        mon.set_phase(0, "page", us(1000));
        mon.set_phase(0, "active", us(2000));
        // Interval spanning all three phases.
        mon.add_rx(0, us(500), us(2500));
        let r = mon.report(0, us(3000));
        assert_eq!(r.phase("inquiry").rx_ns, 500_000);
        assert_eq!(r.phase("page").rx_ns, 1_000_000);
        assert_eq!(r.phase("active").rx_ns, 500_000);
        assert_eq!(r.phase("inquiry").phase_ns, 1_000_000);
        assert_eq!(r.phase("page").phase_ns, 1_000_000);
        assert_eq!(r.phase("active").phase_ns, 1_000_000);
        assert!((r.phase("page").activity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_order_intervals_are_fine() {
        let mut mon: PowerMonitor<u8> = PowerMonitor::new(1, 0);
        mon.set_phase(0, 1, us(100));
        mon.add_rx(0, us(150), us(200));
        mon.add_rx(0, us(0), us(50)); // earlier interval reported later
        let r = mon.report(0, us(200));
        assert_eq!(r.phase(0).rx_ns, 50_000);
        assert_eq!(r.phase(1).rx_ns, 50_000);
    }

    #[test]
    fn zero_length_phase_is_replaced() {
        let mut mon: PowerMonitor<u8> = PowerMonitor::new(1, 0);
        mon.set_phase(0, 1, us(100));
        mon.set_phase(0, 2, us(100)); // replaces phase 1 entirely
        mon.add_rx(0, us(100), us(200));
        let r = mon.report(0, us(200));
        assert_eq!(r.phase(1).rx_ns, 0);
        assert_eq!(r.phase(2).rx_ns, 100_000);
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn rejects_backwards_phase_changes() {
        let mut mon: PowerMonitor<u8> = PowerMonitor::new(1, 0);
        mon.set_phase(0, 1, us(100));
        mon.set_phase(0, 2, us(50));
    }

    #[test]
    fn power_and_energy() {
        let mut mon: PowerMonitor<u8> = PowerMonitor::new(1, 0);
        mon.add_tx(0, us(0), us(500));
        mon.add_rx(0, us(500), us(1000));
        let r = mon.report(0, us(1000));
        let profile = PowerProfile {
            tx_mw: 100.0,
            rx_mw: 50.0,
            idle_mw: 0.0,
        };
        assert!((r.mean_power_mw(&profile) - 75.0).abs() < 1e-9);
        // 75 mW over 1 ms = 75 µJ.
        assert!((r.energy_uj(&profile) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn default_profile_is_ordered_sanely() {
        let p = PowerProfile::default();
        assert!(p.tx_mw > p.rx_mw);
        assert!(p.rx_mw > p.idle_mw);
    }

    #[test]
    fn report_truncates_timeline_at_end() {
        let mut mon: PowerMonitor<u8> = PowerMonitor::new(1, 0);
        mon.set_phase(0, 1, us(500));
        let r = mon.report(0, us(300));
        assert_eq!(r.phase(0).phase_ns, 300_000);
        assert_eq!(r.phase(1).phase_ns, 0);
    }
}
