//! Fidelity tiers and the analytic packet-error model.
//!
//! The bit-level pipeline encodes, whitens, FEC-protects and correlates
//! every packet even when the link is clean and settled, yet on such a
//! link the *outcome* of a reception is statistically determined by the
//! channel BER alone. This crate derives, at startup, closed-form
//! per-section failure probabilities from the same table-driven codecs
//! in `btsim-coding` that the bit pipeline uses:
//!
//! - **sync-word miss** — the correlator compares 64 received sync bits
//!   against the expected word and fires when at least `threshold` match,
//!   so a miss is the exact binomial tail
//!   `P(flips > 64 - threshold)` over 64 independent bits;
//! - **header (HEC) failure** — the 18 header bits travel under FEC 1/3
//!   (bit-tripling + majority vote), so a decoded header bit is wrong
//!   with `p3 = p^3 + 3 p^2 (1-p)`, and the HEC rejects the header when
//!   any decoded bit is wrong: `1 - (1-p3)^18` (the ~2^-8 chance of a
//!   coincidental HEC match on a corrupt header is neglected);
//! - **payload (CRC) failure** — for FEC 2/3 payloads the per-block data
//!   survival is computed *exactly* by enumerating all 2^15 error
//!   patterns through the real `(15,10)` decoder and counting, per
//!   pattern weight, the patterns whose decoded data prefix is intact
//!   (this includes miscorrections that happen to leave the data bits
//!   unchanged, and partial final blocks); uncoded payloads fail when
//!   any framed bit flips, `1 - (1-p)^framed` (the 2^-16 undetected-CRC
//!   probability is neglected). Whitening is a bijection on bit
//!   positions and does not change any of these probabilities.
//!
//! The statistical receive path draws a single uniform variate per
//! transmitted packet and classifies it into the four-way
//! [`Outcome`] with cumulative thresholds — see
//! [`PacketProfile::draw`] for the pinned draw contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;

use btsim_coding::fec::fec23_decode;
use btsim_coding::BitVec;
use btsim_kernel::SimRng;

/// Simulation fidelity tier selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Always simulate the PHY bit by bit (the reference tier).
    #[default]
    Bit,
    /// Promote eligible links to the statistical tier as soon as the
    /// stability conditions hold, without waiting for channel history.
    Stat,
    /// Like [`Fidelity::Stat`], but additionally require a converged
    /// channel-quality estimate before the first promotion.
    Auto,
}

impl Fidelity {
    /// Parses a `--fidelity` CLI value. Unknown names return `None`.
    pub fn from_name(name: &str) -> Option<Fidelity> {
        match name {
            "bit" => Some(Fidelity::Bit),
            "stat" => Some(Fidelity::Stat),
            "auto" => Some(Fidelity::Auto),
            _ => None,
        }
    }

    /// The CLI name of this tier.
    pub fn name(self) -> &'static str {
        match self {
            Fidelity::Bit => "bit",
            Fidelity::Stat => "stat",
            Fidelity::Auto => "auto",
        }
    }
}

impl btsim_kernel::Snap for Fidelity {
    fn snap(&self, w: &mut btsim_kernel::SnapWriter) {
        w.put_u8(match self {
            Fidelity::Bit => 0,
            Fidelity::Stat => 1,
            Fidelity::Auto => 2,
        });
    }
    fn unsnap(r: &mut btsim_kernel::SnapReader<'_>) -> Result<Self, btsim_kernel::SnapshotError> {
        Ok(match r.take_u8()? {
            0 => Fidelity::Bit,
            1 => Fidelity::Stat,
            2 => Fidelity::Auto,
            _ => return Err(r.malformed("fidelity tier tag out of range")),
        })
    }
}

/// The four-way outcome of a statistical packet reception, ordered by
/// how far the receiver got before failing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The sync correlator never fired; the receiver saw nothing.
    SyncMiss,
    /// Sync detected but the FEC-1/3-decoded header failed its HEC.
    HecFail,
    /// Header accepted but the payload failed its CRC (or, for
    /// FEC 2/3, an uncorrectable block corrupted the framed bits).
    CrcFail,
    /// The packet decoded cleanly.
    Clean,
}

impl Outcome {
    /// Whether the receiver extracted a usable packet.
    pub fn is_clean(self) -> bool {
        self == Outcome::Clean
    }
}

/// Payload coding of a packet, as needed by the error model.
///
/// `framed_bits` counts everything inside the FEC/CRC envelope: the
/// payload header, the user bytes and the 16-bit CRC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadCoding {
    /// No payload section at all (NULL / POLL).
    None,
    /// Payload transmitted uncoded (DH types).
    Uncoded {
        /// Framed payload length in bits.
        framed_bits: usize,
    },
    /// Payload under (15,10) shortened-Hamming FEC 2/3 (DM types).
    Fec23 {
        /// Framed payload length in bits (before FEC expansion).
        framed_bits: usize,
    },
}

/// Number of sync bits the correlator compares.
const SYNC_BITS: u32 = 64;
/// Number of header bits protected by FEC 1/3 and checked by the HEC.
const HEADER_BITS: i32 = 18;

/// `N_OK[k][w]`: number of 15-bit error patterns of weight `w` whose
/// decoded data leaves the first `k` data bits intact, for the real
/// (15,10) decoder. Built once per process by exhaustive enumeration
/// through [`fec23_decode`]; the code is linear, so decoding the error
/// pattern against the all-zero codeword is fully general.
fn fec23_ok_table() -> &'static [[f64; 16]; 11] {
    static TABLE: OnceLock<[[f64; 16]; 11]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [[0.0f64; 16]; 11];
        for pattern in 0u32..(1 << 15) {
            let bits = BitVec::from_fn(15, |i| pattern & (1 << i) != 0);
            let decoded = fec23_decode(&bits);
            let w = pattern.count_ones() as usize;
            table[0][w] += 1.0; // k = 0: vacuously intact
            let mut intact = true;
            for (k, row) in table.iter_mut().enumerate().skip(1) {
                intact = intact && decoded.data.get(k - 1) != Some(true);
                if intact {
                    row[w] += 1.0;
                }
            }
        }
        table
    })
}

/// Closed-form per-section error probabilities for one channel BER.
///
/// Constructed once per simulation from the configured BER and sync
/// threshold; [`ErrorModel::profile`] then yields per-packet
/// classification thresholds in O(1).
#[derive(Debug, Clone)]
pub struct ErrorModel {
    ber: f64,
    p_sync_miss: f64,
    p_header_fail: f64,
    /// `q_block[k]`: probability that the first `k` data bits of one
    /// FEC 2/3 block decode intact (`k = 10` for full blocks).
    q_block: [f64; 11],
}

impl ErrorModel {
    /// Builds the model for a channel flipping each air bit
    /// independently with probability `ber`, received through a sync
    /// correlator firing at `sync_threshold` of 64 matching bits.
    pub fn new(ber: f64, sync_threshold: u8) -> Self {
        let ber = ber.clamp(0.0, 1.0);
        let p_sync_miss =
            binomial_tail_gt(SYNC_BITS, SYNC_BITS as i32 - sync_threshold as i32, ber);
        // FEC 1/3 majority vote: a decoded bit is wrong when >= 2 of
        // its 3 copies flipped.
        let p3 = ber * ber * ber + 3.0 * ber * ber * (1.0 - ber);
        let p_header_fail = 1.0 - (1.0 - p3).powi(HEADER_BITS);
        let table = fec23_ok_table();
        let mut q_block = [1.0f64; 11];
        if ber > 0.0 {
            for k in 0..=10 {
                let mut q = 0.0;
                for (w, count) in table[k].iter().enumerate() {
                    if *count > 0.0 {
                        q += count * ber.powi(w as i32) * (1.0 - ber).powi(15 - w as i32);
                    }
                }
                q_block[k] = q;
            }
        }
        Self {
            ber,
            p_sync_miss,
            p_header_fail,
            q_block,
        }
    }

    /// The channel bit-error rate the model was built for.
    pub fn ber(&self) -> f64 {
        self.ber
    }

    /// Probability that the 64-bit sync correlator does not fire.
    pub fn p_sync_miss(&self) -> f64 {
        self.p_sync_miss
    }

    /// Probability that the FEC-1/3-protected header fails its HEC,
    /// given sync was detected.
    pub fn p_header_fail(&self) -> f64 {
        self.p_header_fail
    }

    /// Probability that the payload section fails its integrity check,
    /// given the header was accepted.
    pub fn p_payload_fail(&self, coding: PayloadCoding) -> f64 {
        match coding {
            PayloadCoding::None => 0.0,
            PayloadCoding::Uncoded { framed_bits } => {
                1.0 - (1.0 - self.ber).powi(framed_bits as i32)
            }
            PayloadCoding::Fec23 { framed_bits } => {
                let full = framed_bits / 10;
                let rem = framed_bits % 10;
                let mut ok = self.q_block[10].powi(full as i32);
                if rem > 0 {
                    ok *= self.q_block[rem];
                }
                1.0 - ok
            }
        }
    }

    /// The cumulative classification thresholds for one packet shape.
    pub fn profile(&self, coding: PayloadCoding) -> PacketProfile {
        let p_s = self.p_sync_miss;
        let p_h = self.p_header_fail;
        let p_p = self.p_payload_fail(coding);
        let t_sync = p_s;
        let t_header = t_sync + (1.0 - p_s) * p_h;
        let t_payload = t_header + (1.0 - p_s) * (1.0 - p_h) * p_p;
        PacketProfile {
            t_sync,
            t_header,
            t_payload,
        }
    }
}

impl btsim_kernel::Snap for ErrorModel {
    /// Serializes the derived probabilities bit-exactly rather than
    /// re-deriving them, so a restored model classifies identically
    /// even across floating-point environment differences.
    fn snap(&self, w: &mut btsim_kernel::SnapWriter) {
        self.ber.snap(w);
        self.p_sync_miss.snap(w);
        self.p_header_fail.snap(w);
        self.q_block.snap(w);
    }

    fn unsnap(r: &mut btsim_kernel::SnapReader<'_>) -> Result<Self, btsim_kernel::SnapshotError> {
        Ok(Self {
            ber: f64::unsnap(r)?,
            p_sync_miss: f64::unsnap(r)?,
            p_header_fail: f64::unsnap(r)?,
            q_block: <[f64; 11]>::unsnap(r)?,
        })
    }
}

/// Cumulative outcome thresholds for one packet shape at one BER.
///
/// The unit interval is partitioned as
/// `[0, t_sync) -> SyncMiss`, `[t_sync, t_header) -> HecFail`,
/// `[t_header, t_payload) -> CrcFail`, `[t_payload, 1) -> Clean`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketProfile {
    t_sync: f64,
    t_header: f64,
    t_payload: f64,
}

impl PacketProfile {
    /// Classifies a uniform variate `u in [0, 1)` into an outcome.
    pub fn classify(&self, u: f64) -> Outcome {
        if u < self.t_sync {
            Outcome::SyncMiss
        } else if u < self.t_header {
            Outcome::HecFail
        } else if u < self.t_payload {
            Outcome::CrcFail
        } else {
            Outcome::Clean
        }
    }

    /// Draws the outcome of one transmitted packet.
    ///
    /// **Pinned draw contract:** exactly one [`SimRng::unit_f64`] is
    /// consumed per transmitted packet, unconditionally — even at
    /// BER 0, where the draw always classifies as [`Outcome::Clean`].
    /// The *receiver's* link-controller RNG makes the draw. Keeping the
    /// count fixed makes RNG fingerprints comparable across runs and
    /// keeps the statistical tier's draw schedule independent of the
    /// channel configuration.
    pub fn draw(&self, rng: &mut SimRng) -> Outcome {
        self.classify(rng.unit_f64())
    }

    /// Probability that [`PacketProfile::draw`] returns a clean packet.
    pub fn p_clean(&self) -> f64 {
        1.0 - self.t_payload
    }
}

/// `P(Binomial(n, p) > k)`, exactly, by iterating the pmf.
///
/// `k < 0` yields 1; `k >= n` yields 0.
fn binomial_tail_gt(n: u32, k: i32, p: f64) -> f64 {
    if p <= 0.0 {
        return if k < 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if (n as i64) > k as i64 { 1.0 } else { 0.0 };
    }
    if k < 0 {
        return 1.0;
    }
    if k as i64 >= n as i64 {
        return 0.0;
    }
    // pmf(0) = (1-p)^n, then pmf(j) = pmf(j-1) * (n-j+1)/j * p/(1-p).
    let mut pmf = (1.0 - p).powi(n as i32);
    let ratio = p / (1.0 - p);
    let mut head = pmf; // running sum of pmf(0..=j)
    for j in 1..=(k as u32) {
        pmf *= (n - j + 1) as f64 / j as f64 * ratio;
        head += pmf;
    }
    (1.0 - head).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btsim_coding::fec::{fec13_decode, fec13_encode, fec23_encode};
    use btsim_coding::syncword::{access_code, correlate, DEFAULT_SYNC_THRESHOLD};

    fn flip_bits(bits: &BitVec, ber: f64, rng: &mut SimRng) -> BitVec {
        BitVec::from_fn(bits.len(), |i| bits.get(i).unwrap() ^ rng.chance(ber))
    }

    #[test]
    fn fidelity_names_round_trip() {
        for f in [Fidelity::Bit, Fidelity::Stat, Fidelity::Auto] {
            assert_eq!(Fidelity::from_name(f.name()), Some(f));
        }
        assert_eq!(Fidelity::from_name("fast"), None);
        assert_eq!(Fidelity::from_name(""), None);
        assert_eq!(Fidelity::from_name("Bit"), None);
    }

    #[test]
    fn zero_ber_is_always_clean() {
        let m = ErrorModel::new(0.0, DEFAULT_SYNC_THRESHOLD);
        assert_eq!(m.p_sync_miss(), 0.0);
        assert_eq!(m.p_header_fail(), 0.0);
        for coding in [
            PayloadCoding::None,
            PayloadCoding::Uncoded { framed_bits: 2744 },
            PayloadCoding::Fec23 { framed_bits: 160 },
        ] {
            assert_eq!(m.p_payload_fail(coding), 0.0);
            let mut rng = SimRng::new(1);
            assert_eq!(m.profile(coding).draw(&mut rng), Outcome::Clean);
        }
    }

    #[test]
    fn saturated_ber_always_misses_sync() {
        let m = ErrorModel::new(1.0, DEFAULT_SYNC_THRESHOLD);
        assert!((m.p_sync_miss() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn draw_consumes_exactly_one_variate_even_at_zero_ber() {
        let profile = ErrorModel::new(0.0, DEFAULT_SYNC_THRESHOLD)
            .profile(PayloadCoding::Fec23 { framed_bits: 160 });
        let mut a = SimRng::new(99);
        let mut b = SimRng::new(99);
        profile.draw(&mut a);
        b.unit_f64();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn classify_respects_cumulative_thresholds() {
        let p = PacketProfile {
            t_sync: 0.1,
            t_header: 0.3,
            t_payload: 0.6,
        };
        assert_eq!(p.classify(0.0), Outcome::SyncMiss);
        assert_eq!(p.classify(0.0999), Outcome::SyncMiss);
        assert_eq!(p.classify(0.1), Outcome::HecFail);
        assert_eq!(p.classify(0.2999), Outcome::HecFail);
        assert_eq!(p.classify(0.3), Outcome::CrcFail);
        assert_eq!(p.classify(0.5999), Outcome::CrcFail);
        assert_eq!(p.classify(0.6), Outcome::Clean);
        assert_eq!(p.classify(0.9999), Outcome::Clean);
        assert!((p.p_clean() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn probabilities_are_monotone_in_ber() {
        let coding = PayloadCoding::Fec23 { framed_bits: 160 };
        let mut last = (0.0, 0.0, 0.0);
        for ber in [0.0, 1e-4, 1e-3, 1e-2, 0.05, 0.2, 0.5] {
            let m = ErrorModel::new(ber, DEFAULT_SYNC_THRESHOLD);
            let now = (m.p_sync_miss(), m.p_header_fail(), m.p_payload_fail(coding));
            assert!(
                now.0 >= last.0 && now.1 >= last.1 && now.2 >= last.2,
                "{ber}"
            );
            last = now;
        }
    }

    /// Monte-Carlo cross-check of the sync-miss tail against the real
    /// correlator from `btsim-coding`.
    #[test]
    fn sync_miss_matches_correlator_monte_carlo() {
        let lap = 0x2A96EF;
        let code = access_code(lap, true);
        let ber = 0.08;
        let model = ErrorModel::new(ber, DEFAULT_SYNC_THRESHOLD);
        let mut rng = SimRng::new(0xF1DE);
        let trials = 20_000;
        let mut misses = 0usize;
        for _ in 0..trials {
            let dirty = flip_bits(&code, ber, &mut rng);
            if !correlate(&dirty, 4, None, lap, DEFAULT_SYNC_THRESHOLD).detected {
                misses += 1;
            }
        }
        let measured = misses as f64 / trials as f64;
        let sigma = (model.p_sync_miss() * (1.0 - model.p_sync_miss()) / trials as f64).sqrt();
        assert!(
            (measured - model.p_sync_miss()).abs() < 5.0 * sigma + 1e-4,
            "measured {measured} vs analytic {}",
            model.p_sync_miss()
        );
    }

    /// Monte-Carlo cross-check of the header failure probability against
    /// the real FEC 1/3 codec.
    #[test]
    fn header_fail_matches_fec13_monte_carlo() {
        let ber = 0.05;
        let model = ErrorModel::new(ber, DEFAULT_SYNC_THRESHOLD);
        let header = BitVec::from_fn(18, |i| i % 3 != 1);
        let coded = fec13_encode(&header);
        let mut rng = SimRng::new(0x13EC);
        let trials = 20_000;
        let mut failures = 0usize;
        for _ in 0..trials {
            let dirty = flip_bits(&coded, ber, &mut rng);
            let (decoded, _) = fec13_decode(&dirty);
            if decoded != header {
                failures += 1;
            }
        }
        let measured = failures as f64 / trials as f64;
        let p = model.p_header_fail();
        let sigma = (p * (1.0 - p) / trials as f64).sqrt();
        assert!(
            (measured - p).abs() < 5.0 * sigma + 1e-4,
            "measured {measured} vs analytic {p}"
        );
    }

    /// Monte-Carlo cross-check of the FEC 2/3 payload survival against
    /// the real codec, including a partial final block.
    #[test]
    fn fec23_payload_matches_codec_monte_carlo() {
        for (framed, seed) in [(160usize, 0x23A_u64), (64, 0x23B)] {
            let ber = 0.03;
            let model = ErrorModel::new(ber, DEFAULT_SYNC_THRESHOLD);
            let data = BitVec::from_fn(framed, |i| (i * 5 + 1) % 3 == 0);
            let coded = fec23_encode(&data);
            let mut rng = SimRng::new(seed);
            let trials = 20_000;
            let mut failures = 0usize;
            for _ in 0..trials {
                let dirty = flip_bits(&coded, ber, &mut rng);
                let decoded = fec23_decode(&dirty);
                if decoded.data.slice(0, framed) != data {
                    failures += 1;
                }
            }
            let measured = failures as f64 / trials as f64;
            let p = model.p_payload_fail(PayloadCoding::Fec23 {
                framed_bits: framed,
            });
            let sigma = (p * (1.0 - p) / trials as f64).sqrt();
            assert!(
                (measured - p).abs() < 5.0 * sigma + 1e-4,
                "framed {framed}: measured {measured} vs analytic {p}"
            );
        }
    }

    /// The uncoded payload formula is a plain binomial zero-flip term.
    #[test]
    fn uncoded_payload_is_any_flip_probability() {
        let model = ErrorModel::new(0.01, DEFAULT_SYNC_THRESHOLD);
        let p = model.p_payload_fail(PayloadCoding::Uncoded { framed_bits: 200 });
        assert!((p - (1.0 - 0.99f64.powi(200))).abs() < 1e-12);
    }

    #[test]
    fn binomial_tail_edges() {
        assert_eq!(binomial_tail_gt(64, -1, 0.5), 1.0);
        assert_eq!(binomial_tail_gt(64, 64, 0.5), 0.0);
        assert_eq!(binomial_tail_gt(64, 10, 0.0), 0.0);
        assert_eq!(binomial_tail_gt(64, 10, 1.0), 1.0);
        // P(X > 31) + P(X <= 31) for a symmetric binomial: the tail at
        // the median of an even n splits around 0.5.
        let t = binomial_tail_gt(64, 31, 0.5);
        assert!((0.4..0.6).contains(&t), "{t}");
    }
}
