//! Bluetooth device addressing.
//!
//! A 48-bit `BD_ADDR` splits into the 24-bit Lower Address Part (LAP, used
//! to derive access codes and hop sequences), the 8-bit Upper Address Part
//! (UAP, seeding HEC and CRC) and the 16-bit Non-significant Address Part
//! (NAP).

use std::fmt;

use btsim_coding::syncword;

/// A 48-bit Bluetooth device address.
///
/// # Examples
///
/// ```
/// use btsim_baseband::BdAddr;
///
/// let addr = BdAddr::new(0x1234, 0x56, 0x789ABC);
/// assert_eq!(addr.lap(), 0x789ABC);
/// assert_eq!(addr.uap(), 0x56);
/// assert_eq!(addr.nap(), 0x1234);
/// assert_eq!(addr.to_string(), "12:34:56:78:9A:BC");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BdAddr {
    raw: u64, // 48 bits: NAP(16) | UAP(8) | LAP(24)
}

impl BdAddr {
    /// Builds an address from its three parts.
    ///
    /// Out-of-range bits of each part are masked off.
    pub fn new(nap: u16, uap: u8, lap: u32) -> Self {
        Self {
            raw: ((nap as u64) << 32) | ((uap as u64) << 24) | (lap as u64 & 0xFF_FFFF),
        }
    }

    /// Builds an address from a raw 48-bit value (upper bits masked).
    pub fn from_raw(raw: u64) -> Self {
        Self {
            raw: raw & 0xFFFF_FFFF_FFFF,
        }
    }

    /// The raw 48-bit value.
    pub fn raw(self) -> u64 {
        self.raw
    }

    /// Lower address part (24 bits) — seeds access codes and hopping.
    pub fn lap(self) -> u32 {
        (self.raw & 0xFF_FFFF) as u32
    }

    /// Upper address part (8 bits) — seeds HEC and CRC.
    pub fn uap(self) -> u8 {
        ((self.raw >> 24) & 0xFF) as u8
    }

    /// Non-significant address part (16 bits).
    pub fn nap(self) -> u16 {
        ((self.raw >> 32) & 0xFFFF) as u16
    }

    /// The 28 address bits feeding the hop-selection box:
    /// `UAP[3:0] ++ LAP[23:0]`.
    pub fn hop_input(self) -> u32 {
        ((self.uap() as u32 & 0x0F) << 24) | self.lap()
    }

    /// Sync word of this device's access code (DAC/CAC).
    pub fn sync_word(self) -> u64 {
        syncword::sync_word(self.lap())
    }
}

impl fmt::Display for BdAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = |i: u32| (self.raw >> (8 * i)) & 0xFF;
        write!(
            f,
            "{:02X}:{:02X}:{:02X}:{:02X}:{:02X}:{:02X}",
            b(5),
            b(4),
            b(3),
            b(2),
            b(1),
            b(0)
        )
    }
}

/// The "default check initialisation" UAP used for inquiry FHS packets,
/// where no real UAP is known yet (spec v1.2 §7.1.1).
pub const DCI_UAP: u8 = 0x00;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_roundtrip() {
        let a = BdAddr::new(0xABCD, 0xEF, 0x123456);
        assert_eq!(a.nap(), 0xABCD);
        assert_eq!(a.uap(), 0xEF);
        assert_eq!(a.lap(), 0x123456);
        assert_eq!(BdAddr::from_raw(a.raw()), a);
    }

    #[test]
    fn masks_out_of_range_parts() {
        let a = BdAddr::new(0xFFFF, 0xFF, 0xFFFF_FFFF);
        assert_eq!(a.lap(), 0xFF_FFFF);
        assert_eq!(BdAddr::from_raw(u64::MAX).raw(), 0xFFFF_FFFF_FFFF);
    }

    #[test]
    fn hop_input_combines_uap_low_nibble_and_lap() {
        let a = BdAddr::new(0, 0xAB, 0x123456);
        assert_eq!(a.hop_input(), (0x0B << 24) | 0x123456);
    }

    #[test]
    fn display_is_colon_hex() {
        let a = BdAddr::new(0x0102, 0x03, 0x040506);
        assert_eq!(a.to_string(), "01:02:03:04:05:06");
    }

    #[test]
    fn sync_word_matches_lap() {
        let a = BdAddr::new(0xDEAD, 0xBE, 0x9E8B33);
        assert_eq!(a.sync_word(), syncword::sync_word(0x9E8B33));
    }
}
