//! The Bluetooth native clock (CLKN) and piconet clock (CLK).
//!
//! CLKN is a free-running 28-bit counter ticking every half slot
//! (312.5 µs); it wraps roughly once a day. A slave participating in a
//! piconet derives the piconet clock CLK = CLKN + offset, where the offset
//! is learned from the master's FHS packet. The paper's `CLOCK` module
//! (update_offset / synchro_clk) corresponds to [`Clock`].

use btsim_kernel::{SimDuration, SimTime};

/// Modulus of the 28-bit clock.
pub const CLK_WRAP: u32 = 1 << 28;

/// A 28-bit Bluetooth clock value (half-slot ticks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct ClkVal(u32);

impl ClkVal {
    /// Wraps a raw tick count into a clock value.
    pub fn new(ticks: u32) -> Self {
        ClkVal(ticks & (CLK_WRAP - 1))
    }

    /// The raw 28-bit value.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Extracts bit `i`.
    pub fn bit(self, i: u32) -> bool {
        (self.0 >> i) & 1 == 1
    }

    /// Extracts the inclusive bit range `hi..=lo` as an integer.
    pub fn bits(self, hi: u32, lo: u32) -> u32 {
        debug_assert!(hi >= lo && hi < 28);
        (self.0 >> lo) & ((1 << (hi - lo + 1)) - 1)
    }

    /// Adds an offset (wrapping mod 2²⁸).
    pub fn offset_by(self, offset: u32) -> ClkVal {
        ClkVal::new(self.0.wrapping_add(offset))
    }

    /// The offset that maps `self` onto `other` (mod 2²⁸).
    pub fn offset_to(self, other: ClkVal) -> u32 {
        other.0.wrapping_sub(self.0) & (CLK_WRAP - 1)
    }

    /// True in master-to-slave transmit slots (CLK₁ = 0).
    pub fn is_master_tx_slot(self) -> bool {
        !self.bit(1)
    }

    /// True at the first tick of a slot (CLK₀ = 0).
    pub fn is_slot_start(self) -> bool {
        !self.bit(0)
    }

    /// Clock bits CLK₆₋₁, the whitening seed of the piconet.
    pub fn whitening_seed(self) -> u8 {
        self.bits(6, 1) as u8
    }

    /// The CLK₂₇₋₂ field carried in FHS packets.
    pub fn clk27_2(self) -> u32 {
        self.bits(27, 2)
    }

    /// Reconstructs a clock value from an FHS CLK₂₇₋₂ field, assuming the
    /// two low bits are zero (FHS packets start at a master slot start).
    pub fn from_clk27_2(field: u32) -> ClkVal {
        ClkVal::new((field & 0x03FF_FFFF) << 2)
    }

    /// Slot index (CLK₂₇₋₁): increments every 625 µs.
    pub fn slot(self) -> u32 {
        self.0 >> 1
    }
}

/// A device's free-running native clock.
///
/// The simulator ticks every device once per half slot; the clock maps
/// simulation time to CLKN deterministically from a start value.
///
/// # Examples
///
/// ```
/// use btsim_baseband::{Clock, ClkVal};
/// use btsim_kernel::SimTime;
///
/// let clock = Clock::new(ClkVal::new(100));
/// assert_eq!(clock.clkn_at(SimTime::ZERO).raw(), 100);
/// assert_eq!(clock.clkn_at(SimTime::from_us(625)).raw(), 102);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clock {
    start: ClkVal,
}

impl Clock {
    /// Creates a clock whose CLKN at simulation time zero is `start`.
    pub fn new(start: ClkVal) -> Self {
        Self { start }
    }

    /// CLKN at simulation time `t`.
    pub fn clkn_at(self, t: SimTime) -> ClkVal {
        let ticks = t.ns() / SimDuration::HALF_SLOT.ns();
        self.start.offset_by(ticks as u32)
    }

    /// The simulation time of the tick carrying clock value with the given
    /// raw tick index since start (inverse of [`Clock::clkn_at`] phase).
    pub fn tick_time(self, tick_index: u64) -> SimTime {
        SimTime::from_ns(tick_index * SimDuration::HALF_SLOT.ns())
    }

    /// Initial CLKN value.
    pub fn start_value(self) -> ClkVal {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_at_28_bits() {
        let c = ClkVal::new(CLK_WRAP - 1);
        assert_eq!(c.offset_by(1).raw(), 0);
        assert_eq!(ClkVal::new(CLK_WRAP).raw(), 0);
    }

    #[test]
    fn bit_extraction() {
        let c = ClkVal::new(0b1011_0110);
        assert!(c.bit(1));
        assert!(!c.bit(0));
        assert_eq!(c.bits(7, 4), 0b1011);
        assert_eq!(c.bits(2, 0), 0b110);
    }

    #[test]
    fn offsets_roundtrip() {
        let a = ClkVal::new(12345);
        let b = ClkVal::new(CLK_WRAP - 7);
        let off = a.offset_to(b);
        assert_eq!(a.offset_by(off), b);
        let back = b.offset_to(a);
        assert_eq!(b.offset_by(back), a);
    }

    #[test]
    fn slot_parity_helpers() {
        // CLK1=0, CLK0=0: master TX slot start.
        let c = ClkVal::new(0b100);
        assert!(c.is_master_tx_slot());
        assert!(c.is_slot_start());
        let d = ClkVal::new(0b110);
        assert!(!d.is_master_tx_slot());
        assert!(d.is_slot_start());
        let e = ClkVal::new(0b101);
        assert!(!e.is_slot_start());
    }

    #[test]
    fn whitening_seed_is_clk6_1() {
        let c = ClkVal::new(0b111_1110);
        assert_eq!(c.whitening_seed(), 0b11_1111);
        let d = ClkVal::new(0b000_0001);
        assert_eq!(d.whitening_seed(), 0);
    }

    #[test]
    fn clk27_2_roundtrip_at_slot_boundary() {
        let c = ClkVal::new(0xABC_DEF0 & !0b11); // low bits zero
        assert_eq!(ClkVal::from_clk27_2(c.clk27_2()), c);
    }

    #[test]
    fn clock_ticks_every_half_slot() {
        let clk = Clock::new(ClkVal::new(0));
        assert_eq!(clk.clkn_at(SimTime::from_us(0)).raw(), 0);
        assert_eq!(clk.clkn_at(SimTime::from_us(312)).raw(), 0);
        assert_eq!(clk.clkn_at(SimTime::from_ns(312_500)).raw(), 1);
        assert_eq!(clk.clkn_at(SimTime::from_us(1250)).raw(), 4);
    }

    #[test]
    fn slot_counter() {
        assert_eq!(ClkVal::new(0).slot(), 0);
        assert_eq!(ClkVal::new(1).slot(), 0);
        assert_eq!(ClkVal::new(2).slot(), 1);
        assert_eq!(ClkVal::new(5).slot(), 2);
    }
}
