//! # btsim-baseband
//!
//! The Bluetooth Baseband layer as modelled in the DATE'05 paper (its
//! Fig. 3 architecture), built bit-accurately in Rust:
//!
//! * [`BdAddr`] — device addressing (LAP/UAP/NAP);
//! * [`Clock`] / [`ClkVal`] — the 28-bit native clock CLKN and piconet
//!   clock arithmetic (the paper's `CLOCK` module);
//! * [`hop`] — the §2.6 frequency hop selection box (`HOP_FREQ`);
//! * [`packet`] — every packet format of the v1.2 standard with exact
//!   air images (`TRANSMITTER` / `RECEIVER`);
//! * [`TxBuffer`] / [`RxAssembler`] — link buffering (`BUFFER_TX/RX`);
//! * [`LinkController`] — the link-controller state machine
//!   (`STATE MACHINE`): inquiry, page, their scan/response substates and
//!   the CONNECTION state with active/sniff/hold/park modes.
//!
//! The link controller is sans-IO: it consumes half-slot ticks, decoded
//! receptions and commands, and emits RF actions plus events. The
//! `btsim-core` crate wires it to the channel and the discrete-event
//! kernel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod buffer;
mod clock;
pub mod hop;
mod lc;
pub mod packet;

pub use address::{BdAddr, DCI_UAP};
pub use buffer::{RxAssembler, TxBuffer};
pub use clock::{ClkVal, Clock, CLK_WRAP};
pub use lc::{
    stat_slot_pair, ChannelAssessment, LcAction, LcCommand, LcConfig, LcEvent, LifePhase,
    LinkController, LinkMode, Role, RxDelivery, ScoParams, SniffParams, StatPairReport,
    StatRespReport, StatSide,
};
pub use packet::{Llid, PacketType};
