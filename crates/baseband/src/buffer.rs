//! Transmit/receive buffering between the Link Manager and the baseband —
//! the paper's `BUFFER_TX` / `BUFFER_RX` modules.
//!
//! [`TxBuffer`] queues outbound messages and hands out link-layer
//! fragments sized to the current packet type, marking the first fragment
//! of a message with [`Llid::Start`] and the rest with
//! [`Llid::Continuation`] (LMP PDUs are never fragmented). [`RxAssembler`]
//! reassembles the fragments back into messages.

use std::collections::VecDeque;

use crate::packet::Llid;

/// An outbound message queued for a link.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TxMessage {
    llid: Llid,
    data: Vec<u8>,
    offset: usize,
}

/// Outbound queue with fragmentation.
///
/// # Examples
///
/// ```
/// use btsim_baseband::{Llid, TxBuffer};
///
/// let mut buf = TxBuffer::new();
/// buf.push(Llid::Start, (0..40u8).collect());
/// let (llid, frag) = buf.pop_fragment(27).unwrap();
/// assert_eq!(llid, Llid::Start);
/// assert_eq!(frag.len(), 27);
/// let (llid, frag) = buf.pop_fragment(27).unwrap();
/// assert_eq!(llid, Llid::Continuation);
/// assert_eq!(frag.len(), 13);
/// assert!(buf.pop_fragment(27).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TxBuffer {
    queue: VecDeque<TxMessage>,
    queued_bytes: usize,
}

impl TxBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a message. `llid` selects the logical link: user data
    /// ([`Llid::Start`]) is fragmented as needed; LMP PDUs ([`Llid::Lmp`])
    /// must fit a single packet and are never fragmented.
    ///
    /// LMP PDUs take priority over user data (spec: LMP traffic outranks
    /// ACL payload): a PDU is inserted ahead of every user message —
    /// including one mid-fragmentation — behind only earlier LMP PDUs.
    /// Without this, a control PDU queued behind a saturated bulk
    /// transfer — exactly the situation of an AFH map exchange under
    /// interference — would miss its switch instant by the whole
    /// remaining transfer. Interleaving a PDU between two fragments of
    /// a user message is safe: the receive side routes [`Llid::Lmp`]
    /// around the reassembler without disturbing it.
    pub fn push(&mut self, llid: Llid, data: Vec<u8>) {
        self.queued_bytes += data.len();
        let msg = TxMessage {
            llid,
            data,
            offset: 0,
        };
        if llid == Llid::Lmp {
            let idx = self
                .queue
                .iter()
                .position(|m| m.llid != Llid::Lmp)
                .unwrap_or(self.queue.len());
            self.queue.insert(idx, msg);
        } else {
            self.queue.push_back(msg);
        }
    }

    /// True when no data is waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total user bytes still queued (including partially sent messages).
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Takes the next fragment of at most `max_bytes`.
    ///
    /// Returns the LLID to put in the payload header and the fragment
    /// bytes, or `None` when the buffer is empty. Empty messages produce
    /// one empty [`Llid::Start`] fragment.
    ///
    /// # Panics
    ///
    /// Panics if `max_bytes` is zero while data is pending.
    pub fn pop_fragment(&mut self, max_bytes: usize) -> Option<(Llid, Vec<u8>)> {
        let msg = self.queue.front_mut()?;
        assert!(max_bytes > 0, "cannot fragment into zero-byte packets");
        let first = msg.offset == 0;
        let take = (msg.data.len() - msg.offset).min(max_bytes);
        let frag = msg.data[msg.offset..msg.offset + take].to_vec();
        msg.offset += take;
        let llid = match (msg.llid, first) {
            (Llid::Lmp, _) => Llid::Lmp,
            (_, true) => Llid::Start,
            (_, false) => Llid::Continuation,
        };
        self.queued_bytes -= take;
        if msg.offset >= msg.data.len() {
            self.queue.pop_front();
        }
        Some((llid, frag))
    }

    /// The `(llid, length)` [`TxBuffer::pop_fragment`] would return next,
    /// without consuming anything.
    pub fn peek_fragment(&self, max_bytes: usize) -> Option<(Llid, usize)> {
        let msg = self.queue.front()?;
        let first = msg.offset == 0;
        let take = (msg.data.len() - msg.offset).min(max_bytes);
        let llid = match (msg.llid, first) {
            (Llid::Lmp, _) => Llid::Lmp,
            (_, true) => Llid::Start,
            (_, false) => Llid::Continuation,
        };
        Some((llid, take))
    }

    /// Whether an LMP PDU is queued. PDUs outrank user data, so a pending
    /// PDU always sits at the queue front.
    pub fn has_lmp(&self) -> bool {
        self.queue.front().is_some_and(|m| m.llid == Llid::Lmp)
    }

    /// Empties the buffer (link teardown), returning the count of
    /// *user* bytes dropped: the unsent remainder of every queued
    /// non-LMP message, including one stranded mid-fragmentation. LMP
    /// PDU bytes are control traffic and not counted.
    ///
    /// # Examples
    ///
    /// ```
    /// use btsim_baseband::{Llid, TxBuffer};
    ///
    /// let mut buf = TxBuffer::new();
    /// buf.push(Llid::Start, vec![0; 40]);
    /// buf.pop_fragment(27); // 27 of the 40 user bytes went out
    /// buf.push(Llid::Lmp, vec![0x51]);
    /// assert_eq!(buf.flush(), 13); // stranded remainder; LMP not counted
    /// assert!(buf.is_empty());
    /// ```
    pub fn flush(&mut self) -> usize {
        let user = self
            .queue
            .iter()
            .filter(|m| m.llid != Llid::Lmp)
            .map(|m| m.data.len() - m.offset)
            .sum();
        self.queue.clear();
        self.queued_bytes = 0;
        user
    }
}

/// Reassembles received fragments into messages.
///
/// Fragments arrive deduplicated and in order (the baseband ARQ
/// guarantees this); a [`Llid::Start`] begins a new message and flushes
/// any incomplete predecessor.
#[derive(Debug, Clone, Default)]
pub struct RxAssembler {
    current: Vec<u8>,
    assembling: bool,
    messages: VecDeque<Vec<u8>>,
    lmp: VecDeque<Vec<u8>>,
}

impl RxAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one received fragment.
    pub fn push(&mut self, llid: Llid, data: &[u8]) {
        match llid {
            Llid::Lmp => self.lmp.push_back(data.to_vec()),
            Llid::Start => {
                if self.assembling {
                    let done = std::mem::take(&mut self.current);
                    self.messages.push_back(done);
                }
                self.current = data.to_vec();
                self.assembling = true;
            }
            Llid::Continuation => {
                if self.assembling {
                    self.current.extend_from_slice(data);
                }
                // A continuation with no start is dropped (stale fragment).
            }
        }
    }

    /// Flushes the message under assembly (call at end-of-stream).
    pub fn flush(&mut self) {
        if self.assembling {
            let done = std::mem::take(&mut self.current);
            self.messages.push_back(done);
            self.assembling = false;
        }
    }

    /// Takes the next complete user message.
    pub fn pop_message(&mut self) -> Option<Vec<u8>> {
        self.messages.pop_front()
    }

    /// Takes the next LMP PDU.
    pub fn pop_lmp(&mut self) -> Option<Vec<u8>> {
        self.lmp.pop_front()
    }

    /// All user bytes received so far (consumes completed messages).
    pub fn drain_bytes(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        while let Some(m) = self.pop_message() {
            out.extend_from_slice(&m);
        }
        out
    }
}

impl btsim_kernel::Snap for TxMessage {
    fn snap(&self, w: &mut btsim_kernel::SnapWriter) {
        self.llid.snap(w);
        self.data.snap(w);
        w.put_usize(self.offset);
    }

    fn unsnap(r: &mut btsim_kernel::SnapReader<'_>) -> Result<Self, btsim_kernel::SnapshotError> {
        let llid = Llid::unsnap(r)?;
        let data = Vec::<u8>::unsnap(r)?;
        let offset = r.take_usize()?;
        if offset > data.len() {
            return Err(r.malformed("tx fragment offset past message end"));
        }
        Ok(Self { llid, data, offset })
    }
}

impl btsim_kernel::Snap for TxBuffer {
    fn snap(&self, w: &mut btsim_kernel::SnapWriter) {
        self.queue.snap(w);
    }

    fn unsnap(r: &mut btsim_kernel::SnapReader<'_>) -> Result<Self, btsim_kernel::SnapshotError> {
        let queue = std::collections::VecDeque::<TxMessage>::unsnap(r)?;
        // The byte gauge is derived state: recompute it rather than
        // trusting (and having to cross-validate) a serialized copy.
        let queued_bytes = queue.iter().map(|m| m.data.len() - m.offset).sum();
        Ok(Self {
            queue,
            queued_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragments_large_message() {
        let mut buf = TxBuffer::new();
        buf.push(Llid::Start, (0..100u8).collect());
        assert_eq!(buf.queued_bytes(), 100);
        let mut got = Vec::new();
        let mut llids = Vec::new();
        while let Some((llid, frag)) = buf.pop_fragment(27) {
            llids.push(llid);
            got.extend(frag);
        }
        assert_eq!(got, (0..100u8).collect::<Vec<_>>());
        assert_eq!(
            llids,
            vec![
                Llid::Start,
                Llid::Continuation,
                Llid::Continuation,
                Llid::Continuation
            ]
        );
        assert_eq!(buf.queued_bytes(), 0);
    }

    #[test]
    fn small_message_is_single_start_fragment() {
        let mut buf = TxBuffer::new();
        buf.push(Llid::Start, vec![1, 2, 3]);
        assert_eq!(buf.pop_fragment(27), Some((Llid::Start, vec![1, 2, 3])));
        assert!(buf.pop_fragment(27).is_none());
    }

    #[test]
    fn lmp_keeps_its_llid() {
        let mut buf = TxBuffer::new();
        buf.push(Llid::Lmp, vec![0x51, 0x01]);
        assert_eq!(buf.pop_fragment(17), Some((Llid::Lmp, vec![0x51, 0x01])));
    }

    #[test]
    fn messages_queue_in_order() {
        let mut buf = TxBuffer::new();
        buf.push(Llid::Start, vec![1; 5]);
        buf.push(Llid::Start, vec![2; 5]);
        assert_eq!(buf.pop_fragment(17).unwrap().1, vec![1; 5]);
        assert_eq!(buf.pop_fragment(17).unwrap().1, vec![2; 5]);
    }

    #[test]
    fn lmp_jumps_ahead_of_unsent_user_data() {
        let mut buf = TxBuffer::new();
        buf.push(Llid::Start, vec![1; 40]);
        buf.push(Llid::Start, vec![2; 5]);
        buf.push(Llid::Lmp, vec![0x79]);
        // No fragment taken yet: the PDU overtakes every queued user
        // message and goes out first.
        assert_eq!(buf.pop_fragment(17), Some((Llid::Lmp, vec![0x79])));
        assert_eq!(buf.pop_fragment(17), Some((Llid::Start, vec![1; 17])));
    }

    #[test]
    fn lmp_overtakes_a_partially_sent_message_without_breaking_it() {
        let mut buf = TxBuffer::new();
        buf.push(Llid::Start, vec![7; 30]);
        let mut asm = RxAssembler::new();
        let (llid, frag) = buf.pop_fragment(17).unwrap();
        assert_eq!((llid, frag.len()), (Llid::Start, 17));
        asm.push(llid, &frag);
        buf.push(Llid::Lmp, vec![0x11]);
        buf.push(Llid::Lmp, vec![0x22]);
        // PDUs overtake even a message mid-fragmentation (a saturated
        // transfer is one huge message — waiting for it would starve
        // LMP for the whole transfer) and stay FIFO among themselves;
        // the next pops are the PDUs, then the continuation. The
        // reassembler is undisturbed because Lmp fragments bypass it.
        assert_eq!(buf.pop_fragment(17), Some((Llid::Lmp, vec![0x11])));
        asm.push(Llid::Lmp, &[0x11]);
        while let Some((llid, frag)) = buf.pop_fragment(17) {
            asm.push(llid, &frag);
        }
        asm.flush();
        assert_eq!(asm.pop_lmp(), Some(vec![0x11]));
        assert_eq!(asm.pop_lmp(), Some(vec![0x22]));
        assert_eq!(asm.pop_message(), Some(vec![7; 30]));
    }

    #[test]
    fn empty_message_yields_empty_fragment() {
        let mut buf = TxBuffer::new();
        buf.push(Llid::Start, Vec::new());
        assert_eq!(buf.pop_fragment(17), Some((Llid::Start, Vec::new())));
        assert!(buf.is_empty());
    }

    #[test]
    fn assembler_reassembles_fragments() {
        let mut asm = RxAssembler::new();
        asm.push(Llid::Start, &[1, 2, 3]);
        asm.push(Llid::Continuation, &[4, 5]);
        asm.push(Llid::Start, &[9]); // completes previous
        assert_eq!(asm.pop_message(), Some(vec![1, 2, 3, 4, 5]));
        assert_eq!(asm.pop_message(), None);
        asm.flush();
        assert_eq!(asm.pop_message(), Some(vec![9]));
    }

    #[test]
    fn assembler_separates_lmp() {
        let mut asm = RxAssembler::new();
        asm.push(Llid::Lmp, &[0x33]);
        asm.push(Llid::Start, &[1]);
        assert_eq!(asm.pop_lmp(), Some(vec![0x33]));
        assert_eq!(asm.pop_lmp(), None);
    }

    #[test]
    fn stray_continuation_is_dropped() {
        let mut asm = RxAssembler::new();
        asm.push(Llid::Continuation, &[7, 7]);
        asm.flush();
        assert_eq!(asm.pop_message(), None);
    }

    #[test]
    fn drain_bytes_concatenates() {
        let mut asm = RxAssembler::new();
        asm.push(Llid::Start, &[1, 2]);
        asm.push(Llid::Start, &[3]);
        asm.flush();
        assert_eq!(asm.drain_bytes(), vec![1, 2, 3]);
    }

    #[test]
    fn roundtrip_buffer_to_assembler() {
        let data: Vec<u8> = (0..200u8).collect();
        let mut buf = TxBuffer::new();
        buf.push(Llid::Start, data.clone());
        let mut asm = RxAssembler::new();
        while let Some((llid, frag)) = buf.pop_fragment(17) {
            asm.push(llid, &frag);
        }
        asm.flush();
        assert_eq!(asm.pop_message(), Some(data));
    }
}
