//! Baseband packet formats: the paper's `TRANSMITTER` (composer) and
//! `RECEIVER` modules.
//!
//! Every packet is built as its exact over-the-air bit image:
//!
//! ```text
//! [access code 68/72] [header 54 = (10 info + 8 HEC) × FEC 1/3] [payload]
//! ```
//!
//! The payload chain is `payload header + data + CRC-16 → whitening →
//! FEC` with the whitening LFSR running continuously from the packet
//! header through the payload (spec v1.2 Baseband §6/§7). All ACL and SCO
//! packet types of the 2005-era standard are implemented: ID, NULL, POLL,
//! FHS, DM1/3/5, DH1/3/5, AUX1, HV1/2/3 and DV.

use btsim_coding::{crc, fec, hec, syncword, BitVec, Whitener};

use crate::address::BdAddr;
use crate::clock::ClkVal;

/// Fixed whitening seed used during inquiry/page control exchanges, where
/// the two sides do not yet share a piconet clock. The spec derives these
/// seeds from clock estimates exchanged in the procedure itself; using a
/// fixed seed is behaviourally equivalent for error statistics
/// (whitening is error-transparent). Documented in DESIGN.md.
pub const CONTROL_WHITEN_SEED: u8 = 0x3F;

/// Access-code-only slack: receptions at most this many bits longer than
/// an ID packet still parse as an ID.
const ID_SLACK_BITS: usize = 8;

/// Bits in the packet header on the air (18 × 3).
pub const HEADER_AIR_BITS: usize = 54;

/// A Bluetooth baseband packet type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketType {
    /// Access code only (inquiry/page trains and responses).
    Id,
    /// Header only; carries ARQ/flow information.
    Null,
    /// Header only; solicits a response.
    Poll,
    /// FHS: sender identity + clock, used in inquiry response and page.
    Fhs,
    /// 1-slot data, 2/3 FEC, CRC.
    Dm1,
    /// 1-slot data, no FEC, CRC.
    Dh1,
    /// 3-slot data, 2/3 FEC, CRC.
    Dm3,
    /// 3-slot data, no FEC, CRC.
    Dh3,
    /// 5-slot data, 2/3 FEC, CRC.
    Dm5,
    /// 5-slot data, no FEC, CRC.
    Dh5,
    /// 1-slot data, no FEC, no CRC.
    Aux1,
    /// SCO voice, 10 bytes, 1/3 FEC.
    Hv1,
    /// SCO voice, 20 bytes, 2/3 FEC.
    Hv2,
    /// SCO voice, 30 bytes, no FEC.
    Hv3,
    /// Combined data + voice.
    Dv,
}

impl PacketType {
    /// The 4-bit type code of the packet header.
    pub fn code(self) -> u8 {
        match self {
            PacketType::Null => 0b0000,
            PacketType::Poll => 0b0001,
            PacketType::Fhs => 0b0010,
            PacketType::Dm1 => 0b0011,
            PacketType::Dh1 => 0b0100,
            PacketType::Hv1 => 0b0101,
            PacketType::Hv2 => 0b0110,
            PacketType::Hv3 => 0b0111,
            PacketType::Dv => 0b1000,
            PacketType::Aux1 => 0b1001,
            PacketType::Dm3 => 0b1010,
            PacketType::Dh3 => 0b1011,
            PacketType::Dm5 => 0b1110,
            PacketType::Dh5 => 0b1111,
            PacketType::Id => unreachable!("ID packets have no header"),
        }
    }

    /// Decodes a 4-bit type code (codes 1100/1101 are undefined in v1.2).
    pub fn from_code(code: u8) -> Option<PacketType> {
        Some(match code & 0xF {
            0b0000 => PacketType::Null,
            0b0001 => PacketType::Poll,
            0b0010 => PacketType::Fhs,
            0b0011 => PacketType::Dm1,
            0b0100 => PacketType::Dh1,
            0b0101 => PacketType::Hv1,
            0b0110 => PacketType::Hv2,
            0b0111 => PacketType::Hv3,
            0b1000 => PacketType::Dv,
            0b1001 => PacketType::Aux1,
            0b1010 => PacketType::Dm3,
            0b1011 => PacketType::Dh3,
            0b1110 => PacketType::Dm5,
            0b1111 => PacketType::Dh5,
            _ => return None,
        })
    }

    /// Number of slots the packet occupies.
    pub fn slots(self) -> u8 {
        match self {
            PacketType::Dm3 | PacketType::Dh3 => 3,
            PacketType::Dm5 | PacketType::Dh5 => 5,
            _ => 1,
        }
    }

    /// Maximum user payload bytes (excluding payload header and CRC).
    pub fn max_user_bytes(self) -> usize {
        match self {
            PacketType::Dm1 => 17,
            PacketType::Dh1 => 27,
            PacketType::Dm3 => 121,
            PacketType::Dh3 => 183,
            PacketType::Dm5 => 224,
            PacketType::Dh5 => 339,
            PacketType::Aux1 => 29,
            PacketType::Hv1 => 10,
            PacketType::Hv2 => 20,
            PacketType::Hv3 => 30,
            PacketType::Dv => 9,
            _ => 0,
        }
    }

    /// Whether the payload carries a CRC (and participates in ARQ).
    pub fn has_crc(self) -> bool {
        matches!(
            self,
            PacketType::Fhs
                | PacketType::Dm1
                | PacketType::Dh1
                | PacketType::Dm3
                | PacketType::Dh3
                | PacketType::Dm5
                | PacketType::Dh5
                | PacketType::Dv
        )
    }

    /// Whether this is an ACL data packet with a payload header.
    pub fn is_acl_data(self) -> bool {
        matches!(
            self,
            PacketType::Dm1
                | PacketType::Dh1
                | PacketType::Dm3
                | PacketType::Dh3
                | PacketType::Dm5
                | PacketType::Dh5
                | PacketType::Aux1
        )
    }

    /// Whether the payload is protected by the 2/3 FEC.
    pub fn fec23(self) -> bool {
        matches!(
            self,
            PacketType::Dm1 | PacketType::Dm3 | PacketType::Dm5 | PacketType::Hv2
        )
    }

    /// Payload header length in bytes (0 for non-ACL types).
    pub fn payload_header_bytes(self) -> usize {
        match self {
            PacketType::Dm1 | PacketType::Dh1 | PacketType::Aux1 => 1,
            PacketType::Dm3 | PacketType::Dh3 | PacketType::Dm5 | PacketType::Dh5 => 2,
            _ => 0,
        }
    }
}

/// Logical link identifier carried in ACL payload headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Llid {
    /// Continuation fragment of an L2CAP message.
    Continuation,
    /// Start of an L2CAP message (or unfragmented message).
    Start,
    /// LMP message.
    Lmp,
}

impl Llid {
    /// The 2-bit code.
    pub fn code(self) -> u8 {
        match self {
            Llid::Continuation => 0b01,
            Llid::Start => 0b10,
            Llid::Lmp => 0b11,
        }
    }

    /// Decodes the 2-bit code (00 is undefined).
    pub fn from_code(code: u8) -> Option<Llid> {
        match code & 0b11 {
            0b01 => Some(Llid::Continuation),
            0b10 => Some(Llid::Start),
            0b11 => Some(Llid::Lmp),
            _ => None,
        }
    }
}

/// The 18-bit packet header (before FEC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Logical transport address (3 bits; 0 = broadcast).
    pub lt_addr: u8,
    /// Packet type.
    pub ptype: PacketType,
    /// Flow control bit.
    pub flow: bool,
    /// ARQ acknowledgement bit.
    pub arqn: bool,
    /// ARQ sequence bit.
    pub seqn: bool,
}

impl Header {
    fn info_bits(&self) -> u16 {
        // Transmission order: LT_ADDR(3) TYPE(4) FLOW ARQN SEQN.
        let mut v = (self.lt_addr as u16) & 0b111;
        v |= (self.ptype.code() as u16) << 3;
        v |= (self.flow as u16) << 7;
        v |= (self.arqn as u16) << 8;
        v |= (self.seqn as u16) << 9;
        v
    }

    fn from_info(info: u16) -> Option<Header> {
        Some(Header {
            lt_addr: (info & 0b111) as u8,
            ptype: PacketType::from_code(((info >> 3) & 0xF) as u8)?,
            flow: info & (1 << 7) != 0,
            arqn: info & (1 << 8) != 0,
            seqn: info & (1 << 9) != 0,
        })
    }
}

/// The FHS payload: identity and clock of the sender (144 bits + CRC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FhsPayload {
    /// Sender's device address.
    pub addr: BdAddr,
    /// Class of device (24 bits).
    pub class_of_device: u32,
    /// LT_ADDR assigned to the receiving slave (0 in inquiry responses).
    pub lt_addr: u8,
    /// Sender's CLK₂₇₋₂ sampled at packet transmission.
    pub clk27_2: u32,
    /// Page scan mode field (3 bits).
    pub page_scan_mode: u8,
    /// Scan repetition field (2 bits).
    pub sr: u8,
    /// Scan period field (2 bits).
    pub sp: u8,
}

impl FhsPayload {
    /// Packs the 144 information bits.
    pub fn pack(&self) -> BitVec {
        let mut b = BitVec::with_capacity(144);
        b.push_bits_lsb(syncword::parity_bits(self.addr.sync_word()), 34);
        b.push_bits_lsb(self.addr.lap() as u64, 24);
        b.push_bits_lsb(0, 2); // undefined
        b.push_bits_lsb(self.sr as u64 & 0b11, 2);
        b.push_bits_lsb(self.sp as u64 & 0b11, 2);
        b.push_bits_lsb(self.addr.uap() as u64, 8);
        b.push_bits_lsb(self.addr.nap() as u64, 16);
        b.push_bits_lsb(self.class_of_device as u64 & 0xFF_FFFF, 24);
        b.push_bits_lsb(self.lt_addr as u64 & 0b111, 3);
        b.push_bits_lsb(self.clk27_2 as u64 & 0x03FF_FFFF, 26);
        b.push_bits_lsb(self.page_scan_mode as u64 & 0b111, 3);
        debug_assert_eq!(b.len(), 144);
        b
    }

    /// Unpacks 144 information bits.
    pub fn unpack(bits: &BitVec) -> Option<FhsPayload> {
        if bits.len() != 144 {
            return None;
        }
        let lap = bits.bits_lsb(34, 24) as u32;
        let sr = bits.bits_lsb(60, 2) as u8;
        let sp = bits.bits_lsb(62, 2) as u8;
        let uap = bits.bits_lsb(64, 8) as u8;
        let nap = bits.bits_lsb(72, 16) as u16;
        let class_of_device = bits.bits_lsb(88, 24) as u32;
        let lt_addr = bits.bits_lsb(112, 3) as u8;
        let clk27_2 = bits.bits_lsb(115, 26) as u32;
        let page_scan_mode = bits.bits_lsb(141, 3) as u8;
        Some(FhsPayload {
            addr: BdAddr::new(nap, uap, lap),
            class_of_device,
            lt_addr,
            clk27_2,
            page_scan_mode,
            sr,
            sp,
        })
    }

    /// The sender's clock value implied by the FHS (low bits zeroed).
    pub fn clock(&self) -> ClkVal {
        ClkVal::from_clk27_2(self.clk27_2)
    }
}

/// Payload content of a packet under construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// No payload (ID/NULL/POLL).
    None,
    /// FHS content.
    Fhs(FhsPayload),
    /// ACL data with logical link id.
    Acl {
        /// Logical link (L2CAP start/continuation or LMP).
        llid: Llid,
        /// Payload-level flow control bit.
        flow: bool,
        /// User data (length validated against the packet type).
        data: Vec<u8>,
    },
    /// SCO voice data (fixed length per type).
    Sco(Vec<u8>),
}

/// Everything needed to build or decode packets on a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkKeys {
    /// LAP of the access code on this exchange (CAC/DAC/GIAC).
    pub lap: u32,
    /// UAP seeding HEC/CRC.
    pub uap: u8,
    /// Whitening seed (CLK₆₋₁ in connection, fixed for control exchanges).
    pub whiten: u8,
    /// Sync-word correlator threshold.
    pub sync_threshold: u8,
    /// Whether FHS payloads carry 2/3 FEC (spec: yes; the paper's
    /// behavioural model is reproduced with `false` — see EXPERIMENTS.md).
    pub fhs_fec: bool,
}

impl LinkKeys {
    /// Keys for a control exchange (inquiry/page) on `lap`.
    pub fn control(lap: u32, uap: u8, sync_threshold: u8, fhs_fec: bool) -> Self {
        LinkKeys {
            lap,
            uap,
            whiten: CONTROL_WHITEN_SEED,
            sync_threshold,
            fhs_fec,
        }
    }
}

/// Builds the air image of an ID packet for `lap`.
pub fn encode_id(lap: u32) -> BitVec {
    syncword::access_code(lap, false)
}

/// Per-link encoder state: memoized access-code images (the 72-bit
/// access code is invariant per LAP, but costs a BCH encode to build)
/// plus a scratch body buffer reused across calls, so a saturated ACL
/// slot allocates only the returned air image.
///
/// [`LinkController`](crate::LinkController) owns one and routes every
/// packet build through it; the free [`encode`] function wraps a fresh
/// `Codec` for one-off callers and is bit-for-bit identical.
#[derive(Debug, Clone, Default)]
pub struct Codec {
    /// Cached access codes keyed by `(lap, with_trailer)`. A device
    /// talks to a handful of LAPs (its own CAC, peers' DACs, the GIAC),
    /// so a linear scan beats hashing.
    codes: Vec<(u32, bool, BitVec)>,
    /// Reused body staging buffer (payload header + data + CRC).
    scratch: BitVec,
}

impl Codec {
    /// Creates an empty codec.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached access-code image for `lap`.
    fn access_code(&mut self, lap: u32, with_trailer: bool) -> &BitVec {
        let pos = self
            .codes
            .iter()
            .position(|(l, t, _)| *l == lap && *t == with_trailer);
        let pos = match pos {
            Some(p) => p,
            None => {
                self.codes
                    .push((lap, with_trailer, syncword::access_code(lap, with_trailer)));
                self.codes.len() - 1
            }
        };
        &self.codes[pos].2
    }

    /// Builds the air image of an ID packet for `lap` from the cache.
    pub fn encode_id(&mut self, lap: u32) -> BitVec {
        self.access_code(lap, false).clone()
    }

    /// Builds the full air image of a packet with a header.
    ///
    /// # Panics
    ///
    /// Panics if the payload does not match the packet type (wrong
    /// variant or oversized data) — these are programming errors of the
    /// caller.
    pub fn encode(&mut self, keys: &LinkKeys, header: &Header, payload: &Payload) -> BitVec {
        let mut whitener = Whitener::from_clk(keys.whiten);

        // Header: 10 info + HEC, whitened, then FEC 1/3 — all three
        // stages word-level: the 18 bits and their tripled 54-bit image
        // stay in registers.
        let info = header.info_bits();
        let header_bits = (info as u64) | ((hec::hec(keys.uap, info) as u64) << 10);
        let header_white = header_bits ^ whitener.next_bits(18);

        // Body staging (scratch buffer, before whitening and FEC).
        let body_bits = match payload {
            Payload::None => {
                assert!(
                    matches!(header.ptype, PacketType::Null | PacketType::Poll),
                    "payload required for {:?}",
                    header.ptype
                );
                let mut air = BitVec::with_capacity(72 + HEADER_AIR_BITS);
                air.extend_bits(self.access_code(keys.lap, true));
                air.push_bits_lsb(fec::trip_bits(header_white, 18), HEADER_AIR_BITS as u32);
                return air;
            }
            Payload::Fhs(fhs) => {
                assert_eq!(header.ptype, PacketType::Fhs);
                self.scratch.clear();
                self.scratch.extend_bits(&fhs.pack());
                crc::append_crc(keys.uap, &mut self.scratch);
                self.scratch.len()
            }
            Payload::Acl { llid, flow, data } => {
                assert!(
                    header.ptype.is_acl_data(),
                    "not an ACL type: {:?}",
                    header.ptype
                );
                assert!(
                    data.len() <= header.ptype.max_user_bytes(),
                    "payload of {} bytes exceeds {:?} capacity",
                    data.len(),
                    header.ptype
                );
                self.scratch.clear();
                match header.ptype.payload_header_bytes() {
                    1 => {
                        let h = (llid.code() as u64)
                            | ((*flow as u64) << 2)
                            | ((data.len() as u64 & 0x1F) << 3);
                        self.scratch.push_bits_lsb(h, 8);
                    }
                    2 => {
                        let h = (llid.code() as u64)
                            | ((*flow as u64) << 2)
                            | ((data.len() as u64 & 0x1FF) << 3);
                        self.scratch.push_bits_lsb(h, 16);
                    }
                    n => unreachable!("ACL payload header of {n} bytes"),
                }
                self.scratch.push_bytes_lsb(data);
                if header.ptype.has_crc() {
                    crc::append_crc(keys.uap, &mut self.scratch);
                }
                self.scratch.len()
            }
            Payload::Sco(data) => {
                assert_eq!(
                    data.len(),
                    header.ptype.max_user_bytes(),
                    "SCO payloads are fixed-size"
                );
                self.scratch.clear();
                self.scratch.push_bytes_lsb(data);
                self.scratch.len()
            }
        };

        // Whitening continues the header's stream over the body, XORed
        // in place in 64-bit words.
        whitener.xor_into(&mut self.scratch);

        let fec23 = match header.ptype {
            PacketType::Fhs => keys.fhs_fec,
            t => t.fec23(),
        };
        let coded_bits = if header.ptype == PacketType::Hv1 {
            body_bits * 3
        } else if fec23 {
            body_bits.div_ceil(10) * 15
        } else {
            body_bits
        };
        let mut air = BitVec::with_capacity(72 + HEADER_AIR_BITS + coded_bits);
        air.extend_bits(self.access_code(keys.lap, true));
        air.push_bits_lsb(fec::trip_bits(header_white, 18), HEADER_AIR_BITS as u32);
        if header.ptype == PacketType::Hv1 {
            fec::fec13_encode_into(&self.scratch, &mut air);
        } else if fec23 {
            fec::fec23_encode_into(&self.scratch, &mut air);
        } else {
            air.extend_bits(&self.scratch);
        }
        air
    }
}

/// Builds the full air image of a packet with a header.
///
/// One-off form of [`Codec::encode`] (no access-code cache or scratch
/// reuse); hot paths should hold a [`Codec`] instead.
///
/// # Panics
///
/// Panics if the payload does not match the packet type (wrong variant or
/// oversized data) — these are programming errors of the caller.
pub fn encode(keys: &LinkKeys, header: &Header, payload: &Payload) -> BitVec {
    Codec::new().encode(keys, header, payload)
}

/// Why a reception failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Sync word did not correlate above the threshold.
    NoSync,
    /// Bit image too short / inconsistent for the decoded type.
    BadLength,
    /// A collision (`X` bits) hit the header.
    HeaderCollision,
    /// Header HEC check failed.
    HeaderHec,
    /// Undefined packet type code.
    UnknownType,
    /// A collision (`X` bits) hit the payload.
    PayloadCollision,
    /// Payload CRC failed (or uncorrectable FEC damage).
    PayloadCrc,
    /// Payload structure invalid (bad LLID / length field).
    PayloadFormat,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DecodeError::NoSync => "sync word not detected",
            DecodeError::BadLength => "inconsistent packet length",
            DecodeError::HeaderCollision => "collision over header",
            DecodeError::HeaderHec => "header error check failed",
            DecodeError::UnknownType => "undefined packet type",
            DecodeError::PayloadCollision => "collision over payload",
            DecodeError::PayloadCrc => "payload integrity check failed",
            DecodeError::PayloadFormat => "invalid payload structure",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DecodeError {}

/// A successfully decoded packet.
#[derive(Debug, Clone, PartialEq)]
pub enum Decoded {
    /// An ID packet (access code only).
    Id,
    /// A packet with a header (payload already validated).
    Packet {
        /// The decoded header.
        header: Header,
        /// The decoded payload.
        payload: Payload,
    },
}

fn region_collided(mask: Option<&BitVec>, start: usize, len: usize) -> bool {
    let Some(mask) = mask else { return false };
    (start..start + len).any(|i| mask.get(i) == Some(true))
}

/// Decodes a received bit image against the link keys.
///
/// `mask` marks bits hit by a collision (from the channel resolver).
///
/// # Errors
///
/// Returns a [`DecodeError`] naming the first stage that failed; the
/// caller maps these to retransmissions or silence.
pub fn decode(
    bits: &BitVec,
    mask: Option<&BitVec>,
    keys: &LinkKeys,
) -> Result<Decoded, DecodeError> {
    if bits.len() < syncword::ID_PACKET_BITS {
        return Err(DecodeError::BadLength);
    }
    let corr = syncword::correlate(bits, 4, mask, keys.lap, keys.sync_threshold);
    if !corr.detected {
        return Err(DecodeError::NoSync);
    }
    if bits.len() <= syncword::ID_PACKET_BITS + ID_SLACK_BITS {
        return Ok(Decoded::Id);
    }
    if bits.len() < 72 + HEADER_AIR_BITS {
        return Err(DecodeError::BadLength);
    }
    if region_collided(mask, 72, HEADER_AIR_BITS) {
        return Err(DecodeError::HeaderCollision);
    }
    let mut whitener = Whitener::from_clk(keys.whiten);
    let (header_fec, _) = fec::fec13_decode(&bits.slice(72, HEADER_AIR_BITS));
    let header_bits = whitener.apply(&header_fec);
    let info = header_bits.bits_lsb(0, 10) as u16;
    let rx_hec = header_bits.bits_lsb(10, 8) as u8;
    if !hec::check(keys.uap, info, rx_hec) {
        return Err(DecodeError::HeaderHec);
    }
    let header = Header::from_info(info).ok_or(DecodeError::UnknownType)?;

    let pay_start = 72 + HEADER_AIR_BITS;
    let pay_bits = bits.len() - pay_start;
    if matches!(header.ptype, PacketType::Null | PacketType::Poll) {
        return Ok(Decoded::Packet {
            header,
            payload: Payload::None,
        });
    }
    if region_collided(mask, pay_start, pay_bits) {
        return Err(DecodeError::PayloadCollision);
    }
    let raw = bits.slice(pay_start, pay_bits);

    // Undo FEC.
    let body_white = match header.ptype {
        PacketType::Hv1 => {
            if !raw.len().is_multiple_of(3) {
                return Err(DecodeError::BadLength);
            }
            fec::fec13_decode(&raw).0
        }
        PacketType::Fhs if !keys.fhs_fec => raw,
        t if t.fec23() || t == PacketType::Fhs => {
            if !raw.len().is_multiple_of(15) {
                return Err(DecodeError::BadLength);
            }
            fec::fec23_decode(&raw).data
        }
        _ => raw,
    };
    let body = whitener.apply(&body_white);

    match header.ptype {
        PacketType::Fhs => {
            if body.len() < 160 {
                return Err(DecodeError::BadLength);
            }
            let framed = body.slice(0, 160);
            let info = crc::strip_crc(keys.uap, &framed).ok_or(DecodeError::PayloadCrc)?;
            let fhs = FhsPayload::unpack(&info).ok_or(DecodeError::PayloadFormat)?;
            Ok(Decoded::Packet {
                header,
                payload: Payload::Fhs(fhs),
            })
        }
        t if t.is_acl_data() => {
            let ph_bytes = t.payload_header_bytes();
            if body.len() < ph_bytes * 8 {
                return Err(DecodeError::BadLength);
            }
            let (llid_code, flow, length) = if ph_bytes == 1 {
                let h = body.bits_lsb(0, 8);
                ((h & 0b11) as u8, h & 0b100 != 0, ((h >> 3) & 0x1F) as usize)
            } else {
                let h = body.bits_lsb(0, 16);
                (
                    (h & 0b11) as u8,
                    h & 0b100 != 0,
                    ((h >> 3) & 0x1FF) as usize,
                )
            };
            let llid = Llid::from_code(llid_code).ok_or(DecodeError::PayloadFormat)?;
            if length > t.max_user_bytes() {
                return Err(DecodeError::PayloadFormat);
            }
            let framed_bits = (ph_bytes + length) * 8 + if t.has_crc() { 16 } else { 0 };
            if body.len() < framed_bits {
                return Err(DecodeError::BadLength);
            }
            let framed = body.slice(0, framed_bits);
            let content = if t.has_crc() {
                crc::strip_crc(keys.uap, &framed).ok_or(DecodeError::PayloadCrc)?
            } else {
                framed
            };
            let data = content.slice(ph_bytes * 8, length * 8).to_bytes_lsb();
            Ok(Decoded::Packet {
                header,
                payload: Payload::Acl { llid, flow, data },
            })
        }
        PacketType::Hv1 | PacketType::Hv2 | PacketType::Hv3 => {
            let want = header.ptype.max_user_bytes() * 8;
            if body.len() < want {
                return Err(DecodeError::BadLength);
            }
            Ok(Decoded::Packet {
                header,
                payload: Payload::Sco(body.slice(0, want).to_bytes_lsb()),
            })
        }
        // DV combines an unprotected voice field with a FEC-protected data
        // field in one payload; no experiment or LMP procedure of the paper
        // uses it, so it is recognised but not reassembled.
        PacketType::Dv => Err(DecodeError::PayloadFormat),
        _ => Err(DecodeError::UnknownType),
    }
}

/// Air length in bits of an encoded packet with the given type and user
/// payload length (for scheduling windows before building the image).
pub fn air_bits(ptype: PacketType, user_bytes: usize, fhs_fec: bool) -> usize {
    let base = 72 + HEADER_AIR_BITS;
    let body_bits = |framed_bits: usize, fec23: bool| {
        if fec23 {
            framed_bits.div_ceil(10) * 15
        } else {
            framed_bits
        }
    };
    match ptype {
        PacketType::Id => syncword::ID_PACKET_BITS,
        PacketType::Null | PacketType::Poll => base,
        PacketType::Fhs => base + body_bits(160, fhs_fec),
        PacketType::Hv1 => base + 240,
        PacketType::Hv2 => base + 240,
        PacketType::Hv3 => base + 240,
        PacketType::Dv => base + 80 + body_bits(96, true),
        t => {
            let framed =
                (t.payload_header_bytes() + user_bytes) * 8 + if t.has_crc() { 16 } else { 0 };
            base + body_bits(framed, t.fec23())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> LinkKeys {
        LinkKeys {
            lap: 0x2C7F91,
            uap: 0x47,
            whiten: 0x15,
            sync_threshold: syncword::DEFAULT_SYNC_THRESHOLD,
            fhs_fec: true,
        }
    }

    fn header(ptype: PacketType) -> Header {
        Header {
            lt_addr: 2,
            ptype,
            flow: true,
            arqn: false,
            seqn: true,
        }
    }

    #[test]
    fn type_codes_roundtrip() {
        for t in [
            PacketType::Null,
            PacketType::Poll,
            PacketType::Fhs,
            PacketType::Dm1,
            PacketType::Dh1,
            PacketType::Dm3,
            PacketType::Dh3,
            PacketType::Dm5,
            PacketType::Dh5,
            PacketType::Aux1,
            PacketType::Hv1,
            PacketType::Hv2,
            PacketType::Hv3,
            PacketType::Dv,
        ] {
            assert_eq!(PacketType::from_code(t.code()), Some(t));
        }
        assert_eq!(PacketType::from_code(0b1100), None);
        assert_eq!(PacketType::from_code(0b1101), None);
    }

    #[test]
    fn id_packet_roundtrip() {
        let air = encode_id(keys().lap);
        assert_eq!(air.len(), 68);
        assert_eq!(decode(&air, None, &keys()), Ok(Decoded::Id));
    }

    #[test]
    fn null_and_poll_roundtrip() {
        for t in [PacketType::Null, PacketType::Poll] {
            let air = encode(&keys(), &header(t), &Payload::None);
            assert_eq!(air.len(), 126);
            match decode(&air, None, &keys()).unwrap() {
                Decoded::Packet { header: h, payload } => {
                    assert_eq!(h.ptype, t);
                    assert_eq!(h.lt_addr, 2);
                    assert!(h.flow);
                    assert!(!h.arqn);
                    assert!(h.seqn);
                    assert_eq!(payload, Payload::None);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    fn fhs_payload() -> FhsPayload {
        FhsPayload {
            addr: BdAddr::new(0xBEEF, 0x9A, 0x5C1D2E),
            class_of_device: 0x20041C,
            lt_addr: 5,
            clk27_2: 0x155_AA55,
            page_scan_mode: 1,
            sr: 2,
            sp: 1,
        }
    }

    #[test]
    fn fhs_roundtrip_with_fec() {
        let air = encode(
            &keys(),
            &header(PacketType::Fhs),
            &Payload::Fhs(fhs_payload()),
        );
        assert_eq!(air.len(), 126 + 240);
        match decode(&air, None, &keys()).unwrap() {
            Decoded::Packet {
                payload: Payload::Fhs(f),
                ..
            } => assert_eq!(f, fhs_payload()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fhs_roundtrip_without_fec() {
        let mut k = keys();
        k.fhs_fec = false;
        let air = encode(&k, &header(PacketType::Fhs), &Payload::Fhs(fhs_payload()));
        assert_eq!(air.len(), 126 + 160);
        match decode(&air, None, &k).unwrap() {
            Decoded::Packet {
                payload: Payload::Fhs(f),
                ..
            } => assert_eq!(f, fhs_payload()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fhs_clock_field_roundtrip() {
        let f = fhs_payload();
        assert_eq!(f.clock().clk27_2(), f.clk27_2 & 0x03FF_FFFF);
    }

    #[test]
    fn acl_roundtrip_all_data_types() {
        for t in [
            PacketType::Dm1,
            PacketType::Dh1,
            PacketType::Dm3,
            PacketType::Dh3,
            PacketType::Dm5,
            PacketType::Dh5,
            PacketType::Aux1,
        ] {
            let data: Vec<u8> = (0..t.max_user_bytes() as u32).map(|i| i as u8).collect();
            let payload = Payload::Acl {
                llid: Llid::Start,
                flow: false,
                data: data.clone(),
            };
            let air = encode(&keys(), &header(t), &payload);
            match decode(&air, None, &keys()).unwrap() {
                Decoded::Packet {
                    payload:
                        Payload::Acl {
                            llid, data: got, ..
                        },
                    header: h,
                } => {
                    assert_eq!(h.ptype, t, "{t:?}");
                    assert_eq!(llid, Llid::Start);
                    assert_eq!(got, data, "{t:?}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn acl_roundtrip_empty_and_partial_payloads() {
        for len in [0usize, 1, 5, 17] {
            let data: Vec<u8> = vec![0xC3; len];
            let payload = Payload::Acl {
                llid: Llid::Lmp,
                flow: true,
                data: data.clone(),
            };
            let air = encode(&keys(), &header(PacketType::Dm1), &payload);
            match decode(&air, None, &keys()).unwrap() {
                Decoded::Packet {
                    payload:
                        Payload::Acl {
                            data: got, llid, ..
                        },
                    ..
                } => {
                    assert_eq!(got, data, "len {len}");
                    assert_eq!(llid, Llid::Lmp);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn sco_roundtrip() {
        for t in [PacketType::Hv1, PacketType::Hv2, PacketType::Hv3] {
            let data: Vec<u8> = (0..t.max_user_bytes() as u32)
                .map(|i| (i * 7) as u8)
                .collect();
            let air = encode(&keys(), &header(t), &Payload::Sco(data.clone()));
            match decode(&air, None, &keys()).unwrap() {
                Decoded::Packet {
                    payload: Payload::Sco(got),
                    ..
                } => assert_eq!(got, data, "{t:?}"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn codec_reuse_matches_one_off_encode() {
        // A reused Codec (cached access code, dirty scratch from prior
        // packets of other types/sizes) must emit byte-identical images.
        let mut codec = Codec::new();
        let mut jobs: Vec<(LinkKeys, Header, Payload)> = Vec::new();
        let mut k2 = keys();
        k2.lap = 0x11_22_33;
        k2.whiten = 0x01;
        for (i, t) in [
            PacketType::Dm1,
            PacketType::Dh5,
            PacketType::Null,
            PacketType::Hv1,
            PacketType::Dm5,
            PacketType::Fhs,
            PacketType::Poll,
            PacketType::Hv3,
            PacketType::Dm1,
        ]
        .into_iter()
        .enumerate()
        {
            let keys = if i % 2 == 0 { keys() } else { k2 };
            let payload = match t {
                PacketType::Null | PacketType::Poll => Payload::None,
                PacketType::Fhs => Payload::Fhs(fhs_payload()),
                PacketType::Hv1 | PacketType::Hv3 => {
                    Payload::Sco(vec![i as u8; t.max_user_bytes()])
                }
                _ => Payload::Acl {
                    llid: Llid::Start,
                    flow: false,
                    data: vec![0xA0 | i as u8; t.max_user_bytes() - i],
                },
            };
            jobs.push((keys, header(t), payload));
        }
        for (keys, header, payload) in &jobs {
            assert_eq!(
                codec.encode(keys, header, payload),
                encode(keys, header, payload),
                "{:?}",
                header.ptype
            );
        }
        assert_eq!(codec.encode_id(keys().lap), encode_id(keys().lap));
    }

    #[test]
    fn air_bits_matches_encoder() {
        let k = keys();
        assert_eq!(air_bits(PacketType::Id, 0, true), 68);
        assert_eq!(air_bits(PacketType::Null, 0, true), 126);
        for (t, len) in [
            (PacketType::Dm1, 17),
            (PacketType::Dm1, 3),
            (PacketType::Dh1, 27),
            (PacketType::Dm3, 121),
            (PacketType::Dh3, 183),
            (PacketType::Dm5, 224),
            (PacketType::Dh5, 339),
            (PacketType::Aux1, 29),
        ] {
            let payload = Payload::Acl {
                llid: Llid::Start,
                flow: false,
                data: vec![0; len],
            };
            let air = encode(&k, &header(t), &payload);
            assert_eq!(air.len(), air_bits(t, len, true), "{t:?}/{len}");
        }
        let air = encode(&k, &header(PacketType::Fhs), &Payload::Fhs(fhs_payload()));
        assert_eq!(air.len(), air_bits(PacketType::Fhs, 0, true));
    }

    #[test]
    fn packets_fit_their_slots() {
        // 1-slot ≤ 366 µs, 3-slot ≤ 1622 µs, 5-slot ≤ 2870 µs.
        let limit = |t: PacketType| match t.slots() {
            1 => 366,
            3 => 1626,
            5 => 2871,
            _ => unreachable!(),
        };
        for t in [
            PacketType::Dm1,
            PacketType::Dh1,
            PacketType::Dm3,
            PacketType::Dh3,
            PacketType::Dm5,
            PacketType::Dh5,
            PacketType::Aux1,
            PacketType::Hv1,
            PacketType::Hv2,
            PacketType::Hv3,
            PacketType::Fhs,
        ] {
            let bits = air_bits(t, t.max_user_bytes(), true);
            assert!(
                bits <= limit(t),
                "{t:?}: {bits} bits exceed {} µs slot budget",
                limit(t)
            );
        }
    }

    #[test]
    fn wrong_lap_gives_no_sync() {
        let air = encode(&keys(), &header(PacketType::Null), &Payload::None);
        let mut k2 = keys();
        k2.lap = 0x111111;
        assert_eq!(decode(&air, None, &k2), Err(DecodeError::NoSync));
    }

    #[test]
    fn wrong_uap_fails_hec() {
        let air = encode(&keys(), &header(PacketType::Null), &Payload::None);
        let mut k2 = keys();
        k2.uap = 0x48;
        assert_eq!(decode(&air, None, &k2), Err(DecodeError::HeaderHec));
    }

    #[test]
    fn wrong_whitening_seed_fails() {
        let air = encode(&keys(), &header(PacketType::Null), &Payload::None);
        let mut k2 = keys();
        k2.whiten = 0x16;
        assert!(decode(&air, None, &k2).is_err());
    }

    #[test]
    fn header_collision_detected() {
        let air = encode(&keys(), &header(PacketType::Null), &Payload::None);
        let mut mask = BitVec::zeros(air.len());
        mask.set(80, true);
        assert_eq!(
            decode(&air, Some(&mask), &keys()),
            Err(DecodeError::HeaderCollision)
        );
    }

    #[test]
    fn payload_collision_detected() {
        let payload = Payload::Acl {
            llid: Llid::Start,
            flow: false,
            data: vec![1, 2, 3],
        };
        let air = encode(&keys(), &header(PacketType::Dm1), &payload);
        let mut mask = BitVec::zeros(air.len());
        mask.set(130, true);
        assert_eq!(
            decode(&air, Some(&mask), &keys()),
            Err(DecodeError::PayloadCollision)
        );
    }

    #[test]
    fn single_payload_bit_error_corrected_by_dm_fec() {
        let payload = Payload::Acl {
            llid: Llid::Start,
            flow: false,
            data: vec![0xAB; 10],
        };
        let air = encode(&keys(), &header(PacketType::Dm1), &payload);
        let mut corrupt = air.clone();
        corrupt.toggle(130);
        assert!(decode(&corrupt, None, &keys()).is_ok());
    }

    #[test]
    fn payload_corruption_caught_by_crc_in_dh() {
        let payload = Payload::Acl {
            llid: Llid::Start,
            flow: false,
            data: vec![0xAB; 10],
        };
        let air = encode(&keys(), &header(PacketType::Dh1), &payload);
        let mut corrupt = air.clone();
        corrupt.toggle(130);
        assert_eq!(
            decode(&corrupt, None, &keys()),
            Err(DecodeError::PayloadCrc)
        );
    }

    #[test]
    fn truncated_packet_is_bad_length() {
        let payload = Payload::Acl {
            llid: Llid::Start,
            flow: false,
            data: vec![1; 17],
        };
        let air = encode(&keys(), &header(PacketType::Dm1), &payload);
        let cut = air.slice(0, 150);
        assert_eq!(decode(&cut, None, &keys()), Err(DecodeError::BadLength));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_payload_panics() {
        let payload = Payload::Acl {
            llid: Llid::Start,
            flow: false,
            data: vec![0; 18],
        };
        encode(&keys(), &header(PacketType::Dm1), &payload);
    }
}
