//! AFH channel assessment: classifying RF channels from the link
//! controller's own reception outcomes (spec v1.2 "channel assessment",
//! the input side of adaptive frequency hopping).
//!
//! Every connection-state reception is scored against the channel it
//! arrived on: a delivery that decodes cleanly (sync word, HEC, CRC all
//! pass, no collision mask) counts *good*; a delivery carrying a
//! collision mask — device-vs-device overlap or an interferer burst —
//! or failing any decode stage counts *bad*. The counters feed
//! [`ChannelAssessment::proposed_map`], which turns the per-channel
//! picture into a [`ChannelMap`] proposal: channels whose bad fraction
//! crosses a threshold (with enough samples to trust it) are blocked,
//! clamped so at least [`MIN_AFH_CHANNELS`] always stay in use.
//!
//! The assessor only *observes* — it never changes controller behaviour
//! on its own. The host (link manager / scenario layer) reads the
//! proposal, exchanges it over LMP (`LMP_channel_classification` /
//! `LMP_set_AFH`) and schedules the synchronized map switch.

use crate::hop::{ChannelMap, CHANNELS, MIN_AFH_CHANNELS};

/// Per-RF-channel reception scoring of one link controller.
#[derive(Debug, Clone)]
pub struct ChannelAssessment {
    good: [u32; CHANNELS as usize],
    bad: [u32; CHANNELS as usize],
}

impl Default for ChannelAssessment {
    fn default() -> Self {
        Self {
            good: [0; CHANNELS as usize],
            bad: [0; CHANNELS as usize],
        }
    }
}

impl ChannelAssessment {
    /// An empty assessment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one reception outcome on `rf_channel`.
    pub(crate) fn note(&mut self, rf_channel: u8, good: bool) {
        let Some(slot) = (if good {
            self.good.get_mut(rf_channel as usize)
        } else {
            self.bad.get_mut(rf_channel as usize)
        }) else {
            return;
        };
        *slot = slot.saturating_add(1);
    }

    /// `(good, bad)` reception counts of one channel.
    pub fn counts(&self, rf_channel: u8) -> (u32, u32) {
        let ch = rf_channel as usize;
        (
            self.good.get(ch).copied().unwrap_or(0),
            self.bad.get(ch).copied().unwrap_or(0),
        )
    }

    /// Total receptions scored across all channels.
    pub fn samples(&self) -> u64 {
        self.good
            .iter()
            .chain(self.bad.iter())
            .map(|&c| c as u64)
            .sum()
    }

    /// Clears all counters (start a fresh assessment window).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Classifies the channels into a proposed [`ChannelMap`]: a channel
    /// with at least `min_samples` observations whose bad fraction is at
    /// or above `bad_threshold` is blocked. When blocking would leave
    /// fewer than [`MIN_AFH_CHANNELS`] channels, the least-bad blocked
    /// candidates are re-admitted (deterministically: lowest bad
    /// fraction first, channel index breaking ties) until the spec floor
    /// holds — the proposal is therefore always a valid map.
    pub fn proposed_map(&self, min_samples: u32, bad_threshold: f64) -> ChannelMap {
        let mut used = [true; CHANNELS as usize];
        let mut blocked: Vec<(f64, u8)> = Vec::new();
        for (ch, slot) in used.iter_mut().enumerate() {
            let (g, b) = (self.good[ch], self.bad[ch]);
            let n = g + b;
            if n >= min_samples.max(1) {
                let frac = b as f64 / n as f64;
                if frac >= bad_threshold {
                    *slot = false;
                    blocked.push((frac, ch as u8));
                }
            }
        }
        let mut count = used.iter().filter(|&&u| u).count();
        if count < MIN_AFH_CHANNELS {
            blocked.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("bad fractions are finite")
                    .then(a.1.cmp(&b.1))
            });
            for (_, ch) in blocked {
                if count >= MIN_AFH_CHANNELS {
                    break;
                }
                used[ch as usize] = true;
                count += 1;
            }
        }
        ChannelMap::try_from_used(used).expect("clamped to the spec floor")
    }
}

impl btsim_kernel::Snap for ChannelAssessment {
    fn snap(&self, w: &mut btsim_kernel::SnapWriter) {
        self.good.snap(w);
        self.bad.snap(w);
    }

    fn unsnap(r: &mut btsim_kernel::SnapReader<'_>) -> Result<Self, btsim_kernel::SnapshotError> {
        Ok(Self {
            good: <[u32; CHANNELS as usize]>::unsnap(r)?,
            bad: <[u32; CHANNELS as usize]>::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channels_stay_used() {
        let mut a = ChannelAssessment::new();
        for ch in 0..CHANNELS {
            for _ in 0..10 {
                a.note(ch, true);
            }
        }
        let map = a.proposed_map(4, 0.3);
        assert_eq!(map.used_count(), CHANNELS as usize);
        assert_eq!(a.samples(), 790);
    }

    #[test]
    fn bad_channels_are_blocked_above_the_threshold() {
        let mut a = ChannelAssessment::new();
        for ch in 0..CHANNELS {
            let in_band = (29..=50).contains(&ch);
            for k in 0..10 {
                // In-band: 60% bad; out of band: all good.
                a.note(ch, !(in_band && k < 6));
            }
        }
        let map = a.proposed_map(4, 0.3);
        assert_eq!(map.used_count(), 79 - 22);
        for ch in 0..CHANNELS {
            assert_eq!(map.is_used(ch), !(29..=50).contains(&ch), "channel {ch}");
        }
        assert_eq!(a.counts(29), (4, 6));
        assert_eq!(a.counts(0), (10, 0));
    }

    #[test]
    fn under_sampled_channels_are_not_classified() {
        let mut a = ChannelAssessment::new();
        a.note(7, false);
        a.note(7, false);
        // Two bad samples < min_samples: not enough evidence to block.
        assert_eq!(a.proposed_map(4, 0.3).used_count(), CHANNELS as usize);
        a.note(7, false);
        a.note(7, false);
        assert!(!a.proposed_map(4, 0.3).is_used(7));
    }

    #[test]
    fn proposal_is_clamped_to_the_spec_floor() {
        let mut a = ChannelAssessment::new();
        // Every channel looks bad, with channel-dependent severity.
        for ch in 0..CHANNELS {
            let bad = 4 + (ch as u32 % 7);
            for _ in 0..bad {
                a.note(ch, false);
            }
            a.note(ch, true);
        }
        let map = a.proposed_map(1, 0.1);
        assert_eq!(
            map.used_count(),
            MIN_AFH_CHANNELS,
            "clamp keeps exactly the spec floor when everything is bad"
        );
        // Determinism: the same counters always produce the same map.
        assert_eq!(map, a.proposed_map(1, 0.1));
    }

    #[test]
    fn reset_clears_the_window() {
        let mut a = ChannelAssessment::new();
        a.note(3, false);
        assert_eq!(a.samples(), 1);
        a.reset();
        assert_eq!(a.samples(), 0);
        assert_eq!(a.counts(3), (0, 0));
    }
}
