//! Inquiry and inquiry-scan substates (paper §3.1).
//!
//! The inquirer transmits two GIAC ID packets per even slot while
//! sweeping its inquiry train, and listens in the following slot for FHS
//! responses. A scanning device listens continuously (the paper's
//! "RF receiver always active" behaviour, Fig. 5); on hearing an ID it
//! first backs off a random number of slots, then answers the next ID
//! with an FHS carrying its address and clock, backs off again, and keeps
//! scanning.
//!
//! Response frequencies reuse the channel of the triggering ID — the
//! spec's dedicated response sequences guarantee the same rendezvous by
//! construction (see DESIGN.md §1).

use btsim_coding::syncword;
use btsim_kernel::{SimDuration, SimTime};

use crate::address::BdAddr;
use crate::hop::{self, HopSequence};
use crate::packet::{self, FhsPayload, Header, PacketType, Payload};

use super::{tx_action, LcAction, LcEvent, LifePhase, LinkController, ProcState};

/// GIAC address input to the hop selection box (UAP nibble = DCI = 0).
pub(crate) const GIAC_HOP_INPUT: u32 = syncword::GIAC_LAP;

/// Inquirer context.
#[derive(Debug, Clone)]
pub(crate) struct InquiryCtx {
    pub num_responses: u8,
    pub timeout_slots: u32,
    pub found: Vec<BdAddr>,
}

/// Scanner context.
#[derive(Debug, Clone)]
pub(crate) struct InquiryScanCtx {
    /// Whether the first ID (pre-backoff) was already heard.
    pub armed: bool,
    /// RF off until this time (random backoff).
    pub backoff_until: Option<SimTime>,
    /// Channel of the currently open scan window.
    pub cur_channel: Option<u8>,
    /// FHS responses transmitted so far.
    pub responses_sent: u32,
}

impl LinkController {
    pub(crate) fn start_inquiry(
        &mut self,
        num_responses: u8,
        timeout_slots: u32,
        now: SimTime,
        out: &mut Vec<LcAction>,
    ) {
        self.mark_proc_start(now);
        self.state = ProcState::Inquiry(InquiryCtx {
            num_responses,
            timeout_slots,
            found: Vec::new(),
        });
        self.set_phase(LifePhase::Inquiry, out);
    }

    pub(crate) fn start_inquiry_scan(&mut self, now: SimTime, out: &mut Vec<LcAction>) {
        self.mark_proc_start(now);
        self.state = ProcState::InquiryScan(InquiryScanCtx {
            armed: false,
            backoff_until: None,
            cur_channel: None,
            responses_sent: 0,
        });
        self.set_phase(LifePhase::InquiryScan, out);
        // Open the scan window immediately.
        let ch = self.inquiry_scan_channel(now);
        if let ProcState::InquiryScan(ctx) = &mut self.state {
            ctx.cur_channel = Some(ch);
        }
        out.push(LcAction::RxWindow {
            from: now,
            until: None,
            rf_channel: ch,
        });
    }

    pub(crate) fn abort_procedure(&mut self, now: SimTime, out: &mut Vec<LcAction>) {
        let _ = now;
        if !matches!(self.state, ProcState::Connection | ProcState::Standby) {
            out.push(LcAction::RxOff);
        }
        self.settle_state(out);
    }

    fn inquiry_scan_channel(&self, now: SimTime) -> u8 {
        hop::hop_channel(HopSequence::InquiryScan, self.clkn(now), GIAC_HOP_INPUT)
    }

    pub(crate) fn tick_inquiry(&mut self, now: SimTime, out: &mut Vec<LcAction>) {
        let clkn = self.clkn(now);
        let ProcState::Inquiry(ctx) = &self.state else {
            return;
        };
        // Timeout?
        if ctx.timeout_slots > 0 && self.proc_ticks(now) >= 2 * ctx.timeout_slots as u64 {
            let responses = ctx.found.len() as u8;
            out.push(LcAction::RxOff);
            out.push(LcAction::Event(LcEvent::InquiryComplete { responses }));
            self.settle_state(out);
            return;
        }
        if !clkn.is_master_tx_slot() {
            return; // Listening windows were scheduled from the TX halves.
        }
        let kofs = self.train_kofs(now);
        let ch = hop::hop_channel(HopSequence::Inquiry { kofs }, clkn, GIAC_HOP_INPUT);
        out.push(tx_action(now, ch, self.codec.encode_id(syncword::GIAC_LAP)));
        // Listen for the response 625 µs after this ID, for half a slot
        // (an FHS that starts there is received to completion).
        out.push(LcAction::RxWindow {
            from: now + SimDuration::SLOT,
            until: Some(now + SimDuration::SLOT + SimDuration::HALF_SLOT),
            rf_channel: ch,
        });
    }

    pub(crate) fn rx_inquiry(
        &mut self,
        rx: &super::RxDelivery,
        now: SimTime,
        out: &mut Vec<LcAction>,
    ) {
        let keys = self.giac_keys();
        let Ok(packet::Decoded::Packet {
            header,
            payload: Payload::Fhs(fhs),
        }) = packet::decode(&rx.bits, rx.collision_mask.as_ref(), &keys)
        else {
            return;
        };
        if header.ptype != PacketType::Fhs {
            return;
        }
        let own_at_start = self.clkn(rx.start);
        let clk_offset = own_at_start.offset_to(fhs.clock());
        let ProcState::Inquiry(ctx) = &mut self.state else {
            return;
        };
        if ctx.found.contains(&fhs.addr) {
            return;
        }
        ctx.found.push(fhs.addr);
        let done = ctx.num_responses > 0 && ctx.found.len() >= ctx.num_responses as usize;
        let responses = ctx.found.len() as u8;
        out.push(LcAction::Event(LcEvent::InquiryResult {
            addr: fhs.addr,
            clk_offset,
        }));
        if done {
            out.push(LcAction::RxOff);
            out.push(LcAction::Event(LcEvent::InquiryComplete { responses }));
            self.settle_state(out);
        }
        let _ = now;
    }

    pub(crate) fn tick_inquiry_scan(&mut self, now: SimTime, out: &mut Vec<LcAction>) {
        let ch = self.inquiry_scan_channel(now);
        let ProcState::InquiryScan(ctx) = &mut self.state else {
            return;
        };
        if let Some(until) = ctx.backoff_until {
            if now >= until {
                ctx.backoff_until = None;
                ctx.cur_channel = Some(ch);
                out.push(LcAction::RxWindow {
                    from: now,
                    until: None,
                    rf_channel: ch,
                });
            }
            return;
        }
        // Scan channel follows CLKN16-12: re-open on epoch change.
        if ctx.cur_channel != Some(ch) {
            ctx.cur_channel = Some(ch);
            out.push(LcAction::RxWindow {
                from: now,
                until: None,
                rf_channel: ch,
            });
        }
    }

    pub(crate) fn rx_inquiry_scan(
        &mut self,
        rx: &super::RxDelivery,
        now: SimTime,
        out: &mut Vec<LcAction>,
    ) {
        let keys = self.giac_keys();
        let Ok(packet::Decoded::Id) = packet::decode(&rx.bits, rx.collision_mask.as_ref(), &keys)
        else {
            return;
        };
        let first_backoff = self
            .rng
            .range_u64(self.cfg.inquiry_backoff_max.max(1) as u64);
        let rearm_backoff = self
            .rng
            .range_u64(self.cfg.inquiry_rearm_backoff_max.max(1) as u64);
        let fhs_at = rx.start + SimDuration::SLOT;
        let clk_at_fhs = self.clkn(fhs_at);
        let addr = self.addr;
        let class_of_device = self.cfg.class_of_device;
        let ProcState::InquiryScan(ctx) = &mut self.state else {
            return;
        };
        if !ctx.armed {
            // First ID: back off a random number of slots before answering
            // (spec v1.2 §8.4.3), RF off meanwhile.
            ctx.armed = true;
            ctx.backoff_until = Some(now + SimDuration::from_slots(first_backoff));
            ctx.cur_channel = None;
            out.push(LcAction::RxOff);
            return;
        }
        // Armed: answer this ID with an FHS 625 µs after its start, then
        // back off again and return to scanning.
        ctx.responses_sent += 1;
        ctx.backoff_until = Some(fhs_at + SimDuration::from_slots(rearm_backoff));
        ctx.cur_channel = None;
        let fhs = FhsPayload {
            addr,
            class_of_device,
            lt_addr: 0,
            clk27_2: clk_at_fhs.clk27_2(),
            page_scan_mode: 0,
            sr: 1,
            sp: 0,
        };
        let header = Header {
            lt_addr: 0,
            ptype: PacketType::Fhs,
            flow: true,
            arqn: false,
            seqn: false,
        };
        let bits = packet::encode(&keys, &header, &Payload::Fhs(fhs));
        out.push(LcAction::RxOff);
        out.push(tx_action(fhs_at, rx.rf_channel, bits));
    }
}
