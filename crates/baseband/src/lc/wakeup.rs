//! Wakeup hints: when does this controller next need a tick?
//!
//! The lockstep engine ticks every device every half slot; almost all of
//! those ticks are no-ops — a held link is silent for hundreds of slots,
//! a sniffing slave wakes once per `T_sniff`, a parked slave once per
//! beacon. [`LinkController::next_wakeup`] computes the earliest future
//! half-slot tick at which [`LinkController::on_tick`] could perform an
//! *observable* action (transmit, open/close a window, emit an event,
//! mutate visible state), so an event-driven engine can fast-forward the
//! clock across the guaranteed-no-op gap.
//!
//! ## The contract
//!
//! For every tick instant `t` with `from ≤ t < next_wakeup(from)`,
//! `on_tick(t)` must return no actions and leave the controller in a
//! state indistinguishable from not having been ticked at all. The hint
//! may be **conservative** (earlier than necessary — a woken no-op tick
//! is harmless, the engine just recomputes), but never late. `None`
//! means no future tick can ever act from the current state (standby);
//! the engine re-queries after every command or reception, which are the
//! only things that can change that.
//!
//! Periodic duties (sniff windows, SCO anchors, park beacons) are found
//! by scanning future master-slot starts with the *same predicates the
//! tick path evaluates*, bounded by one period plus margin; if a scan
//! caps out, the cap tick is returned as a conservative no-op wake. The
//! differential harness in `tests/engine_equivalence.rs` holds this
//! contract to bit-identical event logs against the lockstep oracle.

use btsim_kernel::{SimDuration, SimTime};

use crate::clock::ClkVal;
use crate::hop::{self, HopSequence};

use super::connection::{
    sco_at_anchor, sniff_at_anchor, sniff_in_window, supervision_deadline, LinkMode, SlaveCtx,
};
use super::inquiry::GIAC_HOP_INPUT;
use super::page::{PageScanSub, PageSub};
use super::{InquiryCtx, InquiryScanCtx, LinkController, PageCtx, PageScanCtx, ProcState};

const HALF_NS: u64 = SimDuration::HALF_SLOT.ns();

/// First tick index whose instant is `>= t`.
fn tick_at_or_after(t: SimTime) -> u64 {
    t.ns().div_ceil(HALF_NS)
}

/// Advances `k` to the next tick where the clock with start value `r0`
/// reads CLK₁,₀ = 00 (a master-to-slave slot start).
fn align_slot_start(k: u64, r0: u32) -> u64 {
    k + (4 - (r0 as u64 + k) % 4) % 4
}

/// Advances `k` to the next tick where the clock with start value `r0`
/// reads CLK₁ = 0 (either half of a master-to-slave slot).
fn align_master_half(k: u64, r0: u32) -> u64 {
    let mut k = k;
    while (r0 as u64 + k) % 4 >= 2 {
        k += 1;
    }
    k
}

/// Folds a candidate tick into the running minimum.
fn consider(best: &mut Option<u64>, candidate: u64) {
    *best = Some(best.map_or(candidate, |b| b.min(candidate)));
}

impl LinkController {
    /// The earliest tick instant at or after `from` at which
    /// [`LinkController::on_tick`] could act, or `None` when no future
    /// tick can do anything from the current state.
    ///
    /// Ticks strictly before the returned instant are guaranteed no-ops;
    /// see the module docs for the exact contract. The hint must be
    /// re-queried after every [`LinkController::command`] and
    /// [`LinkController::on_rx`], which may arm earlier work.
    pub fn next_wakeup(&self, from: SimTime) -> Option<SimTime> {
        // Ticks inside a statistical fast-forward span are no-ops
        // (`on_tick` returns early), so the next actionable tick can
        // never precede `ff_until`.
        let k0 = tick_at_or_after(from.max(self.ff_until));
        let k = match &self.state {
            ProcState::Standby => None,
            ProcState::Inquiry(ctx) => self.inquiry_wakeup(ctx, k0),
            ProcState::InquiryScan(ctx) => self.inquiry_scan_wakeup(ctx, k0),
            ProcState::Page(ctx) => self.page_wakeup(ctx, k0),
            ProcState::PageScan(ctx) => self.page_scan_wakeup(ctx, k0),
            ProcState::Connection => self.connection_wakeup(k0),
        }?;
        Some(SimTime::from_ns(k * HALF_NS))
    }

    /// Raw CLKN start value (tick `k` reads `start + k`).
    fn r0(&self) -> u32 {
        self.clock.start_value().raw()
    }

    /// The procedure-timeout tick: `proc_ticks >= 2 * timeout_slots`.
    fn timeout_tick(&self, timeout_slots: u32, k0: u64) -> Option<u64> {
        (timeout_slots > 0).then(|| k0.max(self.proc_start_tick + 2 * timeout_slots as u64))
    }

    fn inquiry_wakeup(&self, ctx: &InquiryCtx, k0: u64) -> Option<u64> {
        // IDs go out at both halves of every master-TX slot.
        let mut best = Some(align_master_half(k0, self.r0()));
        if let Some(t) = self.timeout_tick(ctx.timeout_slots, k0) {
            consider(&mut best, t);
        }
        best
    }

    fn inquiry_scan_wakeup(&self, ctx: &InquiryScanCtx, k0: u64) -> Option<u64> {
        if let Some(until) = ctx.backoff_until {
            return Some(k0.max(tick_at_or_after(until)));
        }
        // The scan channel follows CLKN₁₆₋₁₂: it can only change when the
        // raw clock crosses a multiple of 2¹².
        let ch = hop::hop_channel(
            HopSequence::InquiryScan,
            self.clock.clkn_at(SimTime::from_ns(k0 * HALF_NS)),
            GIAC_HOP_INPUT,
        );
        if ctx.cur_channel != Some(ch) {
            return Some(k0);
        }
        let r = self.r0() as u64 + k0;
        Some(k0 + (((r >> 12) + 1) << 12) - r)
    }

    fn page_wakeup(&self, ctx: &PageCtx, k0: u64) -> Option<u64> {
        let mut best = match &ctx.sub {
            PageSub::Paging => Some(align_master_half(k0, self.r0())),
            PageSub::MasterResponse {
                next_fhs_at,
                deadline,
                ..
            } => Some(k0.max(tick_at_or_after((*next_fhs_at).min(*deadline)))),
        };
        if let Some(t) = self.timeout_tick(ctx.timeout_slots, k0) {
            consider(&mut best, t);
        }
        best
    }

    fn page_scan_wakeup(&self, ctx: &PageScanCtx, k0: u64) -> Option<u64> {
        match &ctx.sub {
            PageScanSub::SlaveResponse { deadline, .. } => {
                Some(k0.max(tick_at_or_after(*deadline)))
            }
            PageScanSub::Scanning => {
                let at_k0 = SimTime::from_ns(k0 * HALF_NS);
                let ch = hop::hop_channel(
                    HopSequence::PageScan,
                    self.clock.clkn_at(at_k0),
                    self.addr.hop_input(),
                );
                let open = self.scan_window_open_at_tick(k0);
                // Mismatch between the held window/channel and the tick's
                // view means the very next tick acts.
                if (open && ctx.cur_channel != Some(ch)) || (!open && ctx.cur_channel.is_some()) {
                    return Some(k0);
                }
                let mut best: Option<u64> = None;
                if open {
                    // Channel epoch boundary within an open window.
                    let r = self.r0() as u64 + k0;
                    consider(&mut best, k0 + (((r >> 12) + 1) << 12) - r);
                }
                if !self.cfg.page_scan_continuous {
                    // Next R1 window boundary: phase 0 opens the window,
                    // phase `window_slots` closes it.
                    let interval = self.cfg.page_scan_interval_slots.max(1) as u64;
                    let window = self.cfg.page_scan_window_slots as u64;
                    let slot_q = k0.saturating_sub(self.proc_start_tick) / 2;
                    let phase = slot_q % interval;
                    let target = if open { window % interval } else { 0 };
                    let delta = (interval + target - phase) % interval;
                    let delta = if delta == 0 { interval } else { delta };
                    consider(&mut best, self.proc_start_tick + 2 * (slot_q + delta));
                }
                best
            }
        }
    }

    /// Whether the page-scan window is open at tick `k` (mirrors the
    /// private tick-path check).
    fn scan_window_open_at_tick(&self, k: u64) -> bool {
        if self.cfg.page_scan_continuous {
            return true;
        }
        let slot_q = k.saturating_sub(self.proc_start_tick) / 2;
        slot_q % (self.cfg.page_scan_interval_slots.max(1) as u64)
            < self.cfg.page_scan_window_slots as u64
    }

    fn connection_wakeup(&self, k0: u64) -> Option<u64> {
        let mut best: Option<u64> = None;
        if let Some(m) = &self.master {
            // The master acts only at slot starts of master-TX slots, and
            // only once past its busy window and any open response wait
            // (the expiry check clears `awaiting` at the gate tick itself).
            let mut gate = k0.max(tick_at_or_after(m.busy_until));
            if let Some((_, until)) = m.awaiting {
                gate = gate.max(tick_at_or_after(until));
            }
            let t_poll = self.t_poll as u64;
            let sup_to = self.cfg.supervision_timeout_slots as u64;
            for s in &m.slaves {
                if let Some(d) = s.newconn_deadline_slot {
                    consider(&mut best, self.clk00_at_slot(gate, d, 0));
                }
                // Supervision runs at every tick before the slot and
                // busy gates, so its candidate folds over k0, not gate.
                if let Some(d) = supervision_deadline(
                    sup_to,
                    s.mode,
                    s.newconn_deadline_slot,
                    s.last_rx_slot,
                    s.sup_hold_excuse_slot,
                ) {
                    consider(&mut best, k0.max(2 * d));
                }
                if s.mode != LinkMode::Park {
                    if let Some(p) = &s.sco {
                        let p = *p;
                        consider(
                            &mut best,
                            self.scan_clk00(0, gate, p.t_sco as u64 + 8, |cs, _| {
                                sco_at_anchor(cs, &p)
                            }),
                        );
                    }
                }
                match s.mode {
                    LinkMode::Park => {
                        let b = s.park_beacon_interval as u64;
                        if b > 0 {
                            consider(
                                &mut best,
                                self.jump_scan_clk00(0, gate, 4, 0, b as u32, b + 8, |cs, _| {
                                    (cs as u64).is_multiple_of(b)
                                }),
                            );
                        }
                    }
                    LinkMode::Hold => {
                        if let Some(h) = s.hold_until_slot {
                            consider(&mut best, self.clk00_at_slot(gate, h, 0));
                        }
                    }
                    LinkMode::Active => {
                        let due = if s.poll_asap || s.link.has_data() {
                            0
                        } else {
                            s.last_poll_slot + t_poll
                        };
                        consider(&mut best, self.clk00_at_slot(gate, due, 0));
                    }
                    LinkMode::Sniff => {
                        let Some(p) = s.sniff else { continue };
                        let from = if s.poll_asap || s.link.has_data() {
                            gate
                        } else {
                            gate.max(2 * (s.last_poll_slot + t_poll))
                        };
                        let ext = s.sniff_ext_until_slot;
                        let cap = p.t_sniff as u64 + 2 * p.n_attempt as u64 + 16;
                        consider(
                            &mut best,
                            self.jump_scan_clk00(
                                0,
                                from,
                                p.n_attempt as u64 + 4,
                                p.d_sniff,
                                p.t_sniff,
                                cap,
                                |cs, ns| sniff_in_window(cs, &p) || ext.is_some_and(|e| ns < e),
                            ),
                        );
                    }
                }
            }
        }
        for s in &self.slave_links {
            self.slave_link_wakeup(s, k0, &mut best);
        }
        best
    }

    fn slave_link_wakeup(&self, s: &SlaveCtx, k0: u64, best: &mut Option<u64>) {
        // The new-connection deadline is checked at every tick, before
        // the slot gates; so is the supervision deadline.
        if let Some(d) = s.newconn_deadline_slot {
            consider(best, k0.max(2 * d));
        }
        if let Some(d) = supervision_deadline(
            self.cfg.supervision_timeout_slots as u64,
            s.mode,
            s.newconn_deadline_slot,
            s.last_rx_slot,
            s.sup_hold_excuse_slot,
        ) {
            consider(best, k0.max(2 * d));
        }
        let gate = k0.max(tick_at_or_after(s.busy_until));
        let off = s.clk_offset;
        if s.mode != LinkMode::Park {
            if let Some(p) = &s.sco {
                let p = *p;
                consider(
                    best,
                    self.scan_clk00(off, gate, p.t_sco as u64 + 8, |cs, _| sco_at_anchor(cs, &p)),
                );
            }
        }
        match s.mode {
            LinkMode::Active => consider(best, self.clk00_at_slot(gate, 0, off)),
            LinkMode::Sniff => {
                let Some(p) = s.sniff else { return };
                let ext = s.sniff_ext_until_slot;
                let cap = p.t_sniff as u64 + 2 * p.n_attempt as u64 + 16;
                consider(
                    best,
                    self.jump_scan_clk00(
                        off,
                        gate,
                        p.n_attempt as u64 + 4,
                        p.d_sniff,
                        p.t_sniff,
                        cap,
                        |cs, ns| {
                            sniff_at_anchor(cs, &p)
                                || ext.is_some_and(|e| ns < e)
                                || (p.n_attempt > 1 && sniff_in_window(cs, &p))
                        },
                    ),
                );
            }
            LinkMode::Hold => {
                // Resynchronisation starts `resync_guard_slots` early.
                let h = s.hold_until_slot.unwrap_or(0);
                let wake_slot = h.saturating_sub(self.cfg.resync_guard_slots as u64);
                consider(best, self.clk00_at_slot(gate, wake_slot, off));
            }
            LinkMode::Park => {
                let b = s.park_beacon_interval.max(1) as u64;
                consider(
                    best,
                    self.jump_scan_clk00(off, gate, 4, 0, b as u32, b + 8, |cs, _| {
                        (cs as u64).is_multiple_of(b)
                    }),
                );
            }
        }
    }

    /// First CLK₁,₀ = 00 tick (clock offset `off`) at or after `from_k`
    /// whose simulation slot count has reached `due_slot`.
    fn clk00_at_slot(&self, from_k: u64, due_slot: u64, off: u32) -> u64 {
        let r0 = self.r0().wrapping_add(off);
        align_slot_start(from_k.max(2 * due_slot), r0)
    }

    /// First CLK₁,₀ = 00 tick at or after `from_k` whose piconet slot
    /// satisfies `pred(clk_slot, now_slot)`, scanning at most `cap`
    /// master slots; caps out to a conservative no-op wake.
    fn scan_clk00(&self, off: u32, from_k: u64, cap: u64, pred: impl Fn(u32, u64) -> bool) -> u64 {
        let r0 = self.r0().wrapping_add(off);
        let mut k = align_slot_start(from_k, r0);
        for _ in 0..cap {
            let clk_slot = ClkVal::new(r0.wrapping_add(k as u32)).slot();
            if pred(clk_slot, k / 2) {
                return k;
            }
            k += 4;
        }
        k
    }

    /// [`LinkController::scan_clk00`] accelerated for periodic anchors:
    /// after a short verifying prefix (which also catches extension
    /// windows, always contiguous with `from_k`), jumps straight to the
    /// next piconet slot `≡ anchor (mod period)` by solving the
    /// congruence on the CLK₁,₀ = 00 stride (2 slots per visit). The
    /// jump target is verified against `pred` and falls back to the
    /// linear scan on any mismatch (clock wrap, unreachable parity), so
    /// this is purely a constant-factor optimisation — the recompute
    /// cost per wake drops from O(period) to O(1).
    #[allow(clippy::too_many_arguments)] // one call shape per periodic duty
    fn jump_scan_clk00(
        &self,
        off: u32,
        from_k: u64,
        prefix: u64,
        anchor: u32,
        period: u32,
        cap: u64,
        pred: impl Fn(u32, u64) -> bool,
    ) -> u64 {
        let r0 = self.r0().wrapping_add(off);
        let mut k = align_slot_start(from_k, r0);
        for _ in 0..prefix {
            let clk_slot = ClkVal::new(r0.wrapping_add(k as u32)).slot();
            if pred(clk_slot, k / 2) {
                return k;
            }
            k += 4;
        }
        if period > 0 {
            let s0 = ClkVal::new(r0.wrapping_add(k as u32)).slot();
            if let Some(j) = stride2_steps_to_congruent(s0, anchor, period) {
                let jk = k + 4 * j;
                let clk_slot = ClkVal::new(r0.wrapping_add(jk as u32)).slot();
                if pred(clk_slot, jk / 2) {
                    return jk;
                }
            }
        }
        self.scan_clk00(off, from_k, cap, pred)
    }
}

/// Number of stride-2 steps from slot `s0` to the first visited slot
/// `≡ d (mod t)`, or `None` when the congruence has no solution on this
/// parity class (even `t`, odd offset).
fn stride2_steps_to_congruent(s0: u32, d: u32, t: u32) -> Option<u64> {
    let t = t as u64;
    let a = (d as u64 % t + t - s0 as u64 % t) % t; // (d - s0) mod t
    if !t.is_multiple_of(2) {
        // 2⁻¹ mod t exists for odd t: t.div_ceil(2).
        Some(a * t.div_ceil(2) % t)
    } else if a.is_multiple_of(2) {
        Some(a / 2)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::super::{LcCommand, LcConfig};
    use super::*;
    use crate::address::BdAddr;
    use crate::clock::Clock;

    fn lc(start: u32) -> LinkController {
        LinkController::new(
            BdAddr::new(0, 0x12, 0x345678),
            Clock::new(ClkVal::new(start)),
            LcConfig::default(),
            7,
        )
    }

    #[test]
    fn standby_never_wakes() {
        let lc = lc(0);
        assert_eq!(lc.next_wakeup(SimTime::ZERO), None);
        assert_eq!(lc.next_wakeup(SimTime::from_us(10_000)), None);
    }

    #[test]
    fn inquiry_wakes_at_master_tx_halves() {
        for start in [0u32, 1, 2, 3, 7] {
            let mut c = lc(start);
            c.command(
                LcCommand::Inquiry {
                    num_responses: 1,
                    timeout_slots: 0,
                },
                SimTime::ZERO,
            );
            for from_k in 0..12u64 {
                let from = SimTime::from_ns(from_k * HALF_NS);
                let wake = c.next_wakeup(from).expect("inquiry always ticks");
                let k = wake.ns() / HALF_NS;
                assert!(wake >= from);
                // The woken tick is a master-TX half for this clock.
                assert!(
                    c.clkn(wake).is_master_tx_slot(),
                    "start {start} from {from_k}"
                );
                // And no earlier tick is.
                for j in from_k..k {
                    assert!(
                        !c.clkn(SimTime::from_ns(j * HALF_NS)).is_master_tx_slot(),
                        "missed earlier TX half: start {start} j {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn inquiry_timeout_bounds_the_wake() {
        let mut c = lc(2); // CLK1 = 1 at tick 0: next TX half is tick 2
        c.command(
            LcCommand::Inquiry {
                num_responses: 0,
                timeout_slots: 1,
            },
            SimTime::ZERO,
        );
        // Timeout at proc_ticks >= 2 → tick 2; TX half also tick 2.
        let wake = c.next_wakeup(SimTime::from_ns(1)).unwrap();
        assert_eq!(wake.ns() / HALF_NS, 2);
    }

    #[test]
    fn inquiry_scan_sleeps_to_the_channel_epoch() {
        let mut c = lc(100);
        c.command(LcCommand::InquiryScan, SimTime::ZERO);
        // The start command already opened the window on the current
        // channel; nothing happens until CLKN crosses a 4096 boundary.
        let wake = c.next_wakeup(SimTime::from_ns(1)).unwrap();
        let k = wake.ns() / HALF_NS;
        assert_eq!((100 + k) % 4096, 0, "wake at the CLKN16-12 epoch");
        assert!(k >= 3900, "sleeps most of the epoch, woke at {k}");
        // Ticks before the epoch are no-ops.
        for j in [1u64, 2, 100, 2000, k - 1] {
            assert!(
                c.on_tick(SimTime::from_ns(j * HALF_NS)).is_empty(),
                "tick {j} must be a no-op"
            );
        }
        // The epoch tick re-opens the window on the new channel.
        assert!(!c.on_tick(wake).is_empty(), "epoch tick acts");
    }

    #[test]
    fn page_scan_r1_window_boundaries() {
        let cfg = LcConfig {
            page_scan_continuous: false,
            page_scan_interval_slots: 64,
            page_scan_window_slots: 8,
            ..LcConfig::default()
        };
        let mut c = LinkController::new(
            BdAddr::new(0, 0x12, 0x345678),
            Clock::new(ClkVal::new(0)),
            cfg,
            7,
        );
        c.command(LcCommand::PageScan, SimTime::ZERO);
        // Window opened at slot 0; next action closes it at slot 8.
        let wake = c.next_wakeup(SimTime::from_ns(1)).unwrap();
        assert_eq!(wake.ns() / HALF_NS, 16, "close at slot 8 = tick 16");
        for j in 1..16u64 {
            assert!(c.on_tick(SimTime::from_ns(j * HALF_NS)).is_empty());
        }
        assert!(!c.on_tick(wake).is_empty(), "window closes");
        // Now closed; next action re-opens at slot 64.
        let wake2 = c.next_wakeup(wake + SimDuration::from_ns(1)).unwrap();
        assert_eq!(wake2.ns() / HALF_NS, 128, "open at slot 64 = tick 128");
        for j in 17..128u64 {
            assert!(c.on_tick(SimTime::from_ns(j * HALF_NS)).is_empty());
        }
        assert!(!c.on_tick(wake2).is_empty(), "window reopens");
    }

    #[test]
    fn wakeup_contract_no_ops_before_the_hint() {
        // Generic contract check across procedure starts: every tick
        // strictly before the hint yields no actions.
        let cases: Vec<(u32, LcCommand)> = vec![
            (
                5,
                LcCommand::Inquiry {
                    num_responses: 1,
                    timeout_slots: 100,
                },
            ),
            (9, LcCommand::InquiryScan),
            (
                14,
                LcCommand::Page {
                    target: BdAddr::new(0, 9, 0x111111),
                    clke_offset: 77,
                    timeout_slots: 50,
                },
            ),
            (3, LcCommand::PageScan),
        ];
        for (start, cmd) in cases {
            let mut c = lc(start);
            c.command(cmd.clone(), SimTime::ZERO);
            let from = SimTime::from_ns(1);
            let Some(wake) = c.next_wakeup(from) else {
                continue;
            };
            let k = wake.ns() / HALF_NS;
            for j in 1..k {
                assert!(
                    c.on_tick(SimTime::from_ns(j * HALF_NS)).is_empty(),
                    "{cmd:?} from start {start}: tick {j} acted before hint {k}"
                );
            }
            assert!(
                !c.on_tick(wake).is_empty()
                    || c.next_wakeup(wake + SimDuration::from_ns(1)).is_some(),
                "{cmd:?}: hint tick neither acts nor reschedules"
            );
        }
    }
}
