//! CONNECTION state: master polling, slave listening, ARQ and the
//! low-power modes (paper §3.2).
//!
//! The master owns the piconet timing: it addresses one slave per even
//! slot (data from the slave's queue, or POLL when the polling interval
//! expires) and listens for the response in the following slot. A slave
//! in **active** mode opens a short carrier-detect window at every master
//! slot start — the constant RF floor the paper measures at 2.6%. In
//! **sniff** mode it wakes only at sniff anchors; in **hold** it is
//! silent for the hold duration and resynchronises at the end; in
//! **park** it gives up its LT_ADDR and listens only to beacons.

use btsim_kernel::{SimDuration, SimTime};

use crate::address::BdAddr;
use crate::buffer::TxBuffer;
use crate::clock::ClkVal;
use crate::hop::{self, ChannelMap, HopSequence};
use crate::packet::{self, Header, LinkKeys, Llid, PacketType, Payload};

use super::{LcAction, LcEvent, LifePhase, LinkController, ProcState};

/// Sub-mode of a connected link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkMode {
    /// Listening at every master slot.
    Active,
    /// Periodic listening at sniff anchors.
    Sniff,
    /// Link suspended for a fixed duration.
    Hold,
    /// Parked: beacon listening only.
    Park,
}

/// SCO link parameters (LMP_SCO_link_req contents, simplified).
///
/// SCO slots are reserved: every `t_sco` slots the master sends an HV
/// packet to the slave and the slave answers with its own HV packet in
/// the following slot. HV packets carry no CRC and are never
/// retransmitted — late voice is worthless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoParams {
    /// Interval between reserved slot pairs (2, 4 or 6 slots for
    /// HV1/HV2/HV3).
    pub t_sco: u32,
    /// Anchor offset (piconet clock slots; forced even).
    pub d_sco: u32,
    /// Voice packet type: HV1, HV2 or HV3.
    pub ptype: PacketType,
}

impl ScoParams {
    /// The spec pairing of packet type and interval: HV1 every 2 slots,
    /// HV2 every 4, HV3 every 6 — each carries 1.25 ms of 64 kbit/s
    /// voice, so the stream exactly fills the link.
    pub fn for_type(ptype: PacketType, d_sco: u32) -> ScoParams {
        let t_sco = match ptype {
            PacketType::Hv1 => 2,
            PacketType::Hv2 => 4,
            _ => 6,
        };
        ScoParams {
            t_sco,
            d_sco: d_sco & !1,
            ptype,
        }
    }
}

/// Connection-state channel with optional AFH remapping.
pub(crate) fn conn_channel(clk: ClkVal, addr28: u32, afh: Option<&ChannelMap>) -> u8 {
    match afh {
        Some(map) => hop::hop_channel_afh(clk, addr28, map),
        None => hop::hop_channel(HopSequence::Connection, clk, addr28),
    }
}

/// [`conn_channel`] for precomputed address words — the statistical
/// tier derives the words once per slot pair and hops twice.
pub(crate) fn conn_channel_words(
    clk: ClkVal,
    words: &hop::ConnWords,
    afh: Option<&ChannelMap>,
) -> u8 {
    let ch = hop::conn_channel_words(words, clk);
    match afh {
        Some(map) => {
            debug_assert!(map.used_count() >= hop::MIN_AFH_CHANNELS);
            map.remap(ch)
        }
        None => ch,
    }
}

/// Snapshot of a controller's AFH state for one tick / RX dispatch: the
/// in-use map plus any scheduled switch, resolved per hop slot.
///
/// Keying the lookup on each hop's *own* slot (rather than "now") keeps
/// both ends of a frame consistent when the switch instant falls between
/// a transmission and its response: the master picks the response-listen
/// channel for slot `s + n` with the map in effect *at* `s + n`, which
/// is exactly the map the slave uses when it transmits there.
#[derive(Debug, Clone)]
pub(crate) struct AfhView {
    current: Option<ChannelMap>,
    pending: Option<(ChannelMap, u64)>,
}

impl AfhView {
    /// The map in effect for a hop at piconet slot `slot` (delegates to
    /// [`super::resolve_afh`], the single switch-instant rule).
    pub(crate) fn for_slot(&self, slot: u64) -> Option<&ChannelMap> {
        super::resolve_afh(self.current.as_ref(), self.pending.as_ref(), slot)
    }
}

/// Whether piconet slot `slot` is the master half of a reserved SCO pair.
pub(crate) fn sco_at_anchor(slot: u32, p: &ScoParams) -> bool {
    p.t_sco != 0 && (slot.wrapping_sub(p.d_sco)).is_multiple_of(p.t_sco)
}

/// Sniff mode parameters (LMP_sniff_req contents).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SniffParams {
    /// Interval between sniff anchors, in slots.
    pub t_sniff: u32,
    /// Master slots the slave listens per anchor.
    pub n_attempt: u32,
    /// Anchor offset in slots (piconet clock).
    pub d_sniff: u32,
    /// Extension after traffic, in master slots.
    pub n_timeout: u32,
}

impl Default for SniffParams {
    fn default() -> Self {
        Self {
            t_sniff: 100,
            n_attempt: 1,
            d_sniff: 0,
            n_timeout: 0,
        }
    }
}

/// Per-link ARQ + queue state, shared by both roles.
#[derive(Debug, Clone, Default)]
pub(crate) struct LinkState {
    pub tx: TxBuffer,
    pub in_flight: Option<(Llid, Vec<u8>)>,
    pub seqn_out: bool,
    pub last_seqn_in: Option<bool>,
    pub arqn_to_send: bool,
}

impl LinkState {
    pub(crate) fn new() -> Self {
        Self {
            seqn_out: true,
            ..Self::default()
        }
    }

    /// True when a data packet could be sent (new or retransmission).
    pub(crate) fn has_data(&self) -> bool {
        self.in_flight.is_some() || !self.tx.is_empty()
    }

    /// Fragment to transmit now: the unacknowledged one, or a fresh pop.
    pub(crate) fn next_outgoing(&mut self, max_bytes: usize) -> Option<(Llid, Vec<u8>)> {
        if self.in_flight.is_none() {
            self.in_flight = self.tx.pop_fragment(max_bytes);
        }
        self.in_flight.clone()
    }

    /// The `(llid, length)` [`LinkState::next_outgoing`] would transmit,
    /// without consuming or cloning anything.
    pub(crate) fn peek_outgoing(&self, max_bytes: usize) -> Option<(Llid, usize)> {
        match &self.in_flight {
            Some((llid, data)) => Some((*llid, data.len())),
            None => self.tx.peek_fragment(max_bytes),
        }
    }

    /// Whether any LMP traffic is pending on this link (queued or in
    /// flight). LMP PDUs carry link-management side effects, so the
    /// statistical tier refuses to batch while one is outstanding.
    pub(crate) fn has_lmp(&self) -> bool {
        matches!(&self.in_flight, Some((Llid::Lmp, _))) || self.tx.has_lmp()
    }

    /// Processes a received ARQN bit; returns true when it acknowledges
    /// the packet in flight.
    pub(crate) fn on_arqn(&mut self, arqn: bool) -> bool {
        if arqn && self.in_flight.is_some() {
            self.in_flight = None;
            self.seqn_out = !self.seqn_out;
            true
        } else {
            false
        }
    }

    /// The ARQN bit for the next response, consumed on use: an ACK is
    /// sent once per received CRC packet. Were it sticky, a response to
    /// a keep-alive POLL after a hold would carry a stale ACK and
    /// acknowledge an in-flight packet the peer never received (a real
    /// loss on scatternet bridges, which hold links all the time).
    /// If the ACK itself is lost the peer retransmits, the dedup path
    /// re-arms the flag, and the next response acknowledges again.
    pub(crate) fn take_arqn(&mut self) -> bool {
        std::mem::take(&mut self.arqn_to_send)
    }

    /// Processes the SEQN of a received CRC packet; returns true when the
    /// payload is new (not a retransmission). Always arms the ACK.
    pub(crate) fn on_rx_crc_packet(&mut self, seqn: bool) -> bool {
        self.arqn_to_send = true;
        if self.last_seqn_in == Some(seqn) {
            false
        } else {
            self.last_seqn_in = Some(seqn);
            true
        }
    }

    /// Drops everything queued or in flight (link teardown), returning
    /// the number of *user* (non-LMP) bytes that will never be
    /// delivered — the peer's dedup state is gone with the link, so a
    /// packet in flight counts in full even if its bits were on the air.
    pub(crate) fn flush_dropped(&mut self) -> u64 {
        let mut n = self.tx.flush() as u64;
        if let Some((llid, data)) = self.in_flight.take() {
            if llid != Llid::Lmp {
                n += data.len() as u64;
            }
        }
        n
    }
}

/// Master-side record of one slave.
#[derive(Debug, Clone)]
pub(crate) struct SlaveSlot {
    pub lt_addr: u8,
    pub addr: BdAddr,
    pub mode: LinkMode,
    pub sco: Option<ScoParams>,
    pub sco_out: std::collections::VecDeque<u8>,
    pub sniff: Option<SniffParams>,
    pub sniff_ext_until_slot: Option<u64>,
    pub hold_until_slot: Option<u64>,
    /// End slot of the earliest hold granted with no reception since —
    /// the supervision excuse. Re-arming a hold the peer never answered
    /// must not push this forward, or a pre-scheduled hold calendar
    /// would excuse a dead link forever. Cleared on any valid
    /// reception.
    pub sup_hold_excuse_slot: Option<u64>,
    pub park_beacon_interval: u32,
    pub parked_lt: u8,
    pub last_poll_slot: u64,
    /// Poll at the next opportunity (new connection / after hold).
    pub poll_asap: bool,
    pub newconn_deadline_slot: Option<u64>,
    /// Simulation slot of the last valid reception from this slave —
    /// the link supervision baseline. Meaningful only once the first
    /// exchange completed (`newconn_deadline_slot` is `None`).
    pub last_rx_slot: u64,
    pub link: LinkState,
}

/// Master context: the paper's `PICONET` module.
#[derive(Debug, Clone, Default)]
pub(crate) struct MasterCtx {
    pub slaves: Vec<SlaveSlot>,
    pub busy_until: SimTime,
    /// Awaiting a response from (lt_addr) until the given time.
    pub awaiting: Option<(u8, SimTime)>,
}

impl MasterCtx {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn slot_mut(&mut self, lt_addr: u8) -> Option<&mut SlaveSlot> {
        self.slaves.iter_mut().find(|s| s.lt_addr == lt_addr)
    }
}

/// Slave context of a connected device.
#[derive(Debug, Clone)]
pub(crate) struct SlaveCtx {
    pub master: BdAddr,
    pub lt_addr: u8,
    pub clk_offset: u32,
    pub mode: LinkMode,
    pub sco: Option<ScoParams>,
    pub sco_out: std::collections::VecDeque<u8>,
    pub sniff: Option<SniffParams>,
    pub sniff_ext_until_slot: Option<u64>,
    pub hold_until_slot: Option<u64>,
    /// End slot of the earliest hold entered with no reception since —
    /// the supervision excuse (see [`SlaveSlot::sup_hold_excuse_slot`]).
    pub sup_hold_excuse_slot: Option<u64>,
    pub park_beacon_interval: u32,
    pub parked_lt: u8,
    pub newconn_deadline_slot: Option<u64>,
    /// Simulation slot of the last valid reception from the master —
    /// the link supervision baseline. Meaningful only once the first
    /// exchange completed (`newconn_deadline_slot` is `None`).
    pub last_rx_slot: u64,
    /// Resynchronising after hold: listen whole master slots.
    pub resync: bool,
    pub link: LinkState,
    /// Listen whole slots (new connection) instead of peeks.
    pub listening_full_slot: bool,
    pub busy_until: SimTime,
}

/// Whether piconet slot `slot` falls inside the sniff window.
pub(crate) fn sniff_in_window(slot: u32, p: &SniffParams) -> bool {
    if p.t_sniff == 0 {
        return true;
    }
    let pos = (slot.wrapping_sub(p.d_sniff)) % p.t_sniff;
    pos < 2 * p.n_attempt
}

/// Whether `slot` is the anchor (first master slot) of a sniff window.
pub(crate) fn sniff_at_anchor(slot: u32, p: &SniffParams) -> bool {
    p.t_sniff != 0 && (slot.wrapping_sub(p.d_sniff)).is_multiple_of(p.t_sniff)
}

/// Picks a data packet type of the same family that fits `len` bytes.
pub(crate) fn fit_type(prefer: PacketType, len: usize) -> PacketType {
    if len <= prefer.max_user_bytes() {
        return prefer;
    }
    let fec = prefer.fec23();
    let ladder: &[PacketType] = if fec {
        &[PacketType::Dm1, PacketType::Dm3, PacketType::Dm5]
    } else {
        &[PacketType::Dh1, PacketType::Dh3, PacketType::Dh5]
    };
    *ladder
        .iter()
        .find(|t| len <= t.max_user_bytes())
        .unwrap_or(ladder.last().expect("ladder is non-empty"))
}

/// Link supervision deadline for one link, or `None` when supervision
/// is not armed: disabled (`sup_to == 0`), the first exchange has not
/// completed yet (`newconn` pending — the new-connection timeout owns
/// that window and a fresh link's `last_rx_slot` is not meaningful), or
/// the link is parked (beacons are broadcast, so a parked slave's
/// silence is expected; park is exempt by design).
///
/// A held link is excused for the hold period itself: the baseline is
/// the later of the last reception and `sup_hold_excuse_slot` — the end
/// of the earliest hold the peer never answered — so the timer only
/// runs once traffic is expected again. The excuse deliberately ignores
/// the *live* `hold_until_slot`: a pre-scheduled hold calendar keeps
/// re-arming holds on a link whose peer crashed, and chasing the live
/// hold end would push the deadline out forever. A dead bridge is
/// detected `sup_to` slots after the first hold it failed to return
/// from.
pub(crate) fn supervision_deadline(
    sup_to: u64,
    mode: LinkMode,
    newconn: Option<u64>,
    last_rx_slot: u64,
    sup_hold_excuse_slot: Option<u64>,
) -> Option<u64> {
    if sup_to == 0 || newconn.is_some() || mode == LinkMode::Park {
        return None;
    }
    Some(last_rx_slot.max(sup_hold_excuse_slot.unwrap_or(0)) + sup_to)
}

/// How "awake" a link mode keeps the radio (lower = more awake). The
/// phase of a device with several slave links is its most awake one.
fn mode_rank(mode: LinkMode) -> u8 {
    match mode {
        LinkMode::Active => 0,
        LinkMode::Sniff => 1,
        LinkMode::Hold => 2,
        LinkMode::Park => 3,
    }
}

impl LinkController {
    /// Snapshots the AFH state for one tick / RX dispatch.
    pub(crate) fn afh_view(&self) -> AfhView {
        AfhView {
            current: self.afh.clone(),
            pending: self.afh_pending.clone(),
        }
    }

    /// Life phase implied by the current connection mode(s). A device
    /// with several slave links (a scatternet bridge) is attributed the
    /// most awake of its link modes: while one piconet is held the
    /// radio is still busy following the other.
    pub(crate) fn connection_phase(&self) -> LifePhase {
        let awakest = self
            .slave_links
            .iter()
            .map(|s| s.mode)
            .min_by_key(|m| mode_rank(*m));
        match awakest {
            Some(LinkMode::Active) | None => LifePhase::Active,
            Some(LinkMode::Sniff) => LifePhase::Sniff,
            Some(LinkMode::Hold) => LifePhase::Hold,
            Some(LinkMode::Park) => LifePhase::Park,
        }
    }

    /// Whether any link of this controller — a master-side slave slot
    /// or a slave-side context — is in active mode, i.e. exchanging at
    /// least Tpoll keepalive traffic rather than sleeping through a
    /// hold / sniff / park window. The statistical tier treats such a
    /// device as co-channel contention even when its traffic is not in
    /// the air at this instant.
    pub fn has_active_link(&self) -> bool {
        self.master
            .as_ref()
            .is_some_and(|m| m.slaves.iter().any(|s| s.mode == LinkMode::Active))
            || self.slave_links.iter().any(|s| s.mode == LinkMode::Active)
    }

    pub(crate) fn tick_connection(&mut self, now: SimTime, out: &mut Vec<LcAction>) {
        // Supervision runs before the slot-phase and busy gates so the
        // event engine's hinted tick at exactly the deadline fires it.
        self.supervise_links(now, out);
        self.master_tick(now, out);
        let mut i = 0;
        while i < self.slave_links.len() {
            if self.slave_tick_one(i, now, out) {
                i += 1;
            }
        }
    }

    /// Link supervision timeout (spec `supervisionTO`): tears down every
    /// link with no valid reception for `supervision_timeout_slots`
    /// slots, raising [`LcEvent::SupervisionTimeout`] then
    /// [`LcEvent::Detached`] per dead link. The LT_ADDR is freed and the
    /// transmit buffers flushed with the dropped user bytes accounted in
    /// [`LinkController::dropped_tx_bytes`]. A slave whose last link
    /// died reverts to page scan so recovery can re-page it.
    fn supervise_links(&mut self, now: SimTime, out: &mut Vec<LcAction>) {
        let sup_to = self.cfg.supervision_timeout_slots as u64;
        if sup_to == 0 {
            return;
        }
        let now_slot = now.slots();
        let mut dead_master: Vec<u8> = Vec::new();
        let mut dead_slave: Vec<u8> = Vec::new();
        let mut dropped: u64 = 0;
        if let Some(m) = &mut self.master {
            m.slaves.retain_mut(|s| {
                let expired = supervision_deadline(
                    sup_to,
                    s.mode,
                    s.newconn_deadline_slot,
                    s.last_rx_slot,
                    s.sup_hold_excuse_slot,
                )
                .is_some_and(|d| now_slot >= d);
                if expired {
                    dropped += s.link.flush_dropped();
                    dead_master.push(s.lt_addr);
                }
                !expired
            });
        }
        if self.master.as_ref().is_some_and(|m| m.slaves.is_empty()) && !dead_master.is_empty() {
            self.master = None;
        }
        self.slave_links.retain_mut(|s| {
            let expired = supervision_deadline(
                sup_to,
                s.mode,
                s.newconn_deadline_slot,
                s.last_rx_slot,
                s.sup_hold_excuse_slot,
            )
            .is_some_and(|d| now_slot >= d);
            if expired {
                dropped += s.link.flush_dropped();
                dead_slave.push(s.lt_addr);
            }
            !expired
        });
        if dead_master.is_empty() && dead_slave.is_empty() {
            return;
        }
        self.dropped_tx_bytes += dropped;
        if !dead_slave.is_empty() {
            out.push(LcAction::RxOff);
        }
        for lt in dead_master.into_iter().chain(dead_slave) {
            out.push(LcAction::Event(LcEvent::SupervisionTimeout { lt_addr: lt }));
            out.push(LcAction::Event(LcEvent::Detached { lt_addr: lt }));
        }
        if self.slave_links.is_empty() && !self.is_master() {
            self.start_page_scan(now, out);
        } else {
            self.settle_state(out);
        }
    }

    /// The earliest armed supervision deadline over all links, in
    /// simulation slots — the event engine folds it into its wakeup
    /// hints and the statistical tier caps batch horizons at it.
    pub fn next_supervision_deadline_slot(&self) -> Option<u64> {
        let sup_to = self.cfg.supervision_timeout_slots as u64;
        let mut best: Option<u64> = None;
        let mut consider = |d: Option<u64>| {
            if let Some(d) = d {
                best = Some(best.map_or(d, |b: u64| b.min(d)));
            }
        };
        if let Some(m) = &self.master {
            for s in &m.slaves {
                consider(supervision_deadline(
                    sup_to,
                    s.mode,
                    s.newconn_deadline_slot,
                    s.last_rx_slot,
                    s.sup_hold_excuse_slot,
                ));
            }
        }
        for s in &self.slave_links {
            consider(supervision_deadline(
                sup_to,
                s.mode,
                s.newconn_deadline_slot,
                s.last_rx_slot,
                s.sup_hold_excuse_slot,
            ));
        }
        best
    }

    /// Power-off (crash): all state is lost instantly and silently — no
    /// Detach PDUs, no [`LcEvent::Detached`]. Peers only find out
    /// through their own supervision timeouts, which is the detection
    /// latency the fault experiments measure. Dropped user bytes are
    /// still accounted (the accounting models the simulator's view, not
    /// the dead device's).
    pub(crate) fn cmd_power_off(&mut self, out: &mut Vec<LcAction>) {
        let mut dropped: u64 = 0;
        if let Some(m) = &mut self.master {
            for s in &mut m.slaves {
                dropped += s.link.flush_dropped();
            }
        }
        for s in &mut self.slave_links {
            dropped += s.link.flush_dropped();
        }
        self.dropped_tx_bytes += dropped;
        self.master = None;
        self.slave_links.clear();
        self.afh = None;
        self.afh_pending = None;
        self.assessment.reset();
        self.stat_promoted = false;
        self.ff_until = SimTime::ZERO;
        self.state = ProcState::Standby;
        out.push(LcAction::RxOff);
        self.set_phase(LifePhase::Standby, out);
    }

    pub(crate) fn rx_connection(
        &mut self,
        rx: &super::RxDelivery,
        now: SimTime,
        out: &mut Vec<LcAction>,
    ) {
        let mut decoded = false;
        if self.master.is_some() {
            decoded |= self.master_rx(rx, now, out);
        }
        // Each slave link listens under its own master's access code;
        // the first link whose keys decode the packet consumes it.
        for i in 0..self.slave_links.len() {
            if self.slave_rx_one(i, rx, now, out) {
                decoded = true;
                break;
            }
        }
        // AFH channel assessment: score the channel this delivery
        // arrived on. A clean decode with no collision mask is a good
        // observation; a collision mask (device overlap or interferer
        // burst) or a failed decode (sync / HEC / CRC) is a bad one.
        self.assessment
            .note(rx.rf_channel, decoded && rx.collision_mask.is_none());
    }

    // ----- master side ----------------------------------------------------

    fn master_tick(&mut self, now: SimTime, out: &mut Vec<LcAction>) {
        let clk = self.clkn(now); // master: CLK == CLKN
        let own = self.addr;
        let acl_prefer = self.acl_type;
        let t_poll = self.t_poll as u64;
        let peek = self.peek_duration();
        let sync_threshold = self.cfg.sync_threshold;
        let fhs_fec = self.cfg.page_fhs_fec;
        let afh = self.afh_view();
        let now_slot = now.slots();

        let Some(m) = &mut self.master else { return };
        // Expire a response window that produced nothing.
        if let Some((_, until)) = m.awaiting {
            if now >= until {
                m.awaiting = None;
            }
        }
        if !clk.is_slot_start() || !clk.is_master_tx_slot() {
            return;
        }
        if now < m.busy_until || m.awaiting.is_some() {
            return;
        }
        // Drop slaves that never completed the first exchange.
        let mut dropped = Vec::new();
        let mut dropped_bytes: u64 = 0;
        m.slaves.retain_mut(|s| {
            let expired = s.newconn_deadline_slot.is_some_and(|d| now_slot >= d);
            if expired {
                dropped_bytes += s.link.flush_dropped();
                dropped.push(s.lt_addr);
            }
            !expired
        });
        self.dropped_tx_bytes += dropped_bytes;
        for lt in dropped {
            out.push(LcAction::Event(LcEvent::Detached { lt_addr: lt }));
        }

        let clk_slot = clk.slot();
        // Reserved SCO slots take absolute priority.
        if let Some(idx) = m.slaves.iter().position(|s| {
            s.mode != LinkMode::Park && s.sco.as_ref().is_some_and(|p| sco_at_anchor(clk_slot, p))
        }) {
            let keys = LinkKeys {
                lap: own.lap(),
                uap: own.uap(),
                whiten: clk.whitening_seed(),
                sync_threshold,
                fhs_fec,
            };
            let ch = conn_channel(clk, own.hop_input(), afh.for_slot(now_slot));
            let slave = &mut m.slaves[idx];
            let params = slave.sco.expect("checked above");
            let frame = take_voice(&mut slave.sco_out, params.ptype.max_user_bytes());
            let header = Header {
                lt_addr: slave.lt_addr,
                ptype: params.ptype,
                flow: true,
                arqn: slave.link.take_arqn(),
                seqn: slave.link.seqn_out,
            };
            let bits = self.codec.encode(&keys, &header, &Payload::Sco(frame));
            let resp_at = now + SimDuration::SLOT;
            m.busy_until = resp_at + SimDuration::SLOT;
            m.awaiting = Some((m.slaves[idx].lt_addr, resp_at + SimDuration::SLOT));
            out.push(LcAction::Tx {
                at: now,
                rf_channel: ch,
                bits,
            });
            let resp_clk = clk.offset_by(2);
            let resp_ch = conn_channel(resp_clk, own.hop_input(), afh.for_slot(now_slot + 1));
            out.push(LcAction::RxWindow {
                from: resp_at,
                until: Some(resp_at + peek),
                rf_channel: resp_ch,
            });
            return;
        }
        let reachable = |s: &SlaveSlot| match s.mode {
            LinkMode::Active => true,
            LinkMode::Sniff => {
                s.sniff
                    .as_ref()
                    .is_some_and(|p| sniff_in_window(clk_slot, p))
                    || s.sniff_ext_until_slot.is_some_and(|e| now_slot < e)
            }
            LinkMode::Hold => s.hold_until_slot.is_some_and(|h| now_slot >= h),
            LinkMode::Park => false,
        };
        // Selection priority: post-hold/new-connection polls, pending
        // data, then ordinary T_poll maintenance.
        let pick = m
            .slaves
            .iter()
            .position(|s| reachable(s) && (s.poll_asap || s.mode == LinkMode::Hold))
            .or_else(|| {
                m.slaves
                    .iter()
                    .position(|s| reachable(s) && s.link.has_data())
            })
            .or_else(|| {
                m.slaves.iter().position(|s| {
                    reachable(s) && now_slot.saturating_sub(s.last_poll_slot) >= t_poll
                })
            });
        // Park beacon: broadcast NULL at beacon anchors when no unicast
        // traffic is scheduled this slot.
        let beacon_due = m.slaves.iter().any(|s| {
            s.mode == LinkMode::Park
                && s.park_beacon_interval > 0
                && (clk_slot as u64).is_multiple_of(s.park_beacon_interval as u64)
        });
        let keys = LinkKeys {
            lap: own.lap(),
            uap: own.uap(),
            whiten: clk.whitening_seed(),
            sync_threshold,
            fhs_fec,
        };
        let ch = conn_channel(clk, own.hop_input(), afh.for_slot(now_slot));
        let Some(idx) = pick else {
            if beacon_due {
                let header = Header {
                    lt_addr: 0,
                    ptype: PacketType::Null,
                    flow: true,
                    arqn: false,
                    seqn: false,
                };
                let bits = self.codec.encode(&keys, &header, &Payload::None);
                m.busy_until = now + SimDuration::SLOT;
                out.push(LcAction::Tx {
                    at: now,
                    rf_channel: ch,
                    bits,
                });
            }
            return;
        };
        let slave = &mut m.slaves[idx];
        let (header, payload) = match slave.link.next_outgoing(acl_prefer.max_user_bytes()) {
            Some((llid, data)) if !slave.poll_asap => {
                let ptype = if llid == Llid::Lmp {
                    fit_type(PacketType::Dm1, data.len())
                } else {
                    fit_type(acl_prefer, data.len())
                };
                (
                    Header {
                        lt_addr: slave.lt_addr,
                        ptype,
                        flow: true,
                        arqn: slave.link.take_arqn(),
                        seqn: slave.link.seqn_out,
                    },
                    Payload::Acl {
                        llid,
                        flow: true,
                        data,
                    },
                )
            }
            _ => (
                Header {
                    lt_addr: slave.lt_addr,
                    ptype: PacketType::Poll,
                    flow: true,
                    arqn: slave.link.take_arqn(),
                    seqn: slave.link.seqn_out,
                },
                Payload::None,
            ),
        };
        let n_slots = header.ptype.slots() as u64;
        slave.last_poll_slot = now_slot;
        if let Some(p) = &slave.sniff {
            if slave.mode == LinkMode::Sniff && p.n_timeout > 0 {
                slave.sniff_ext_until_slot = Some(now_slot + n_slots + 2 * p.n_timeout as u64);
            }
        }
        let lt = slave.lt_addr;
        let bits = self.codec.encode(&keys, &header, &payload);
        let resp_at = now + SimDuration::from_slots(n_slots);
        m.busy_until = resp_at + SimDuration::SLOT;
        m.awaiting = Some((lt, resp_at + SimDuration::SLOT));
        out.push(LcAction::Tx {
            at: now,
            rf_channel: ch,
            bits,
        });
        // Listen for the response at the following slave-to-master slot.
        let resp_clk = clk.offset_by(2 * n_slots as u32);
        let resp_ch = conn_channel(resp_clk, own.hop_input(), afh.for_slot(now_slot + n_slots));
        out.push(LcAction::RxWindow {
            from: resp_at,
            until: Some(resp_at + peek),
            rf_channel: resp_ch,
        });
    }

    /// Feeds a reception to the master context; returns `true` when the
    /// packet decoded under the piconet's access code.
    fn master_rx(&mut self, rx: &super::RxDelivery, now: SimTime, out: &mut Vec<LcAction>) -> bool {
        let own = self.addr;
        let clk_at_start = self.clkn(rx.start);
        let sync_threshold = self.cfg.sync_threshold;
        let fhs_fec = self.cfg.page_fhs_fec;
        let keys = LinkKeys {
            lap: own.lap(),
            uap: own.uap(),
            whiten: clk_at_start.whitening_seed(),
            sync_threshold,
            fhs_fec,
        };
        let Ok(packet::Decoded::Packet { header, payload }) =
            packet::decode(&rx.bits, rx.collision_mask.as_ref(), &keys)
        else {
            return false;
        };
        let Some(m) = &mut self.master else {
            return true;
        };
        let Some(slave) = m.slot_mut(header.lt_addr) else {
            return true;
        };
        let lt = slave.lt_addr;
        let mut events = Vec::new();
        if slave.link.on_arqn(header.arqn) {
            events.push(LcEvent::AclDelivered { lt_addr: lt });
        }
        if header.ptype.has_crc() {
            if let Payload::Acl { llid, data, .. } = &payload {
                if slave.link.on_rx_crc_packet(header.seqn) {
                    events.push(LcEvent::AclReceived {
                        lt_addr: lt,
                        llid: *llid,
                        data: data.clone(),
                    });
                }
            }
        }
        if let Payload::Sco(data) = &payload {
            events.push(LcEvent::ScoReceived {
                lt_addr: lt,
                data: data.clone(),
            });
        }
        slave.poll_asap = false;
        slave.newconn_deadline_slot = None;
        slave.last_rx_slot = now.slots();
        slave.sup_hold_excuse_slot = None;
        let mode_event = if slave.mode == LinkMode::Hold
            && slave.hold_until_slot.is_some_and(|h| now.slots() >= h)
        {
            slave.mode = LinkMode::Active;
            slave.hold_until_slot = None;
            Some(LcEvent::ModeChanged {
                lt_addr: lt,
                mode: LinkMode::Active,
            })
        } else {
            None
        };
        m.awaiting = None;
        for e in events {
            out.push(LcAction::Event(e));
        }
        if let Some(e) = mode_event {
            out.push(LcAction::Event(e));
        }
        true
    }

    // ----- slave side -----------------------------------------------------

    /// Ticks slave link `i`; returns `false` when the link was dropped
    /// (so the caller must not advance its index).
    fn slave_tick_one(&mut self, i: usize, now: SimTime, out: &mut Vec<LcAction>) -> bool {
        let clkn = self.clkn(now);
        let peek = self.peek_duration();
        let sniff_listen_us = self.cfg.sniff_listen_us;
        let sniff_drift_ppm = self.cfg.sniff_drift_ppm;
        let guard = self.cfg.resync_guard_slots as u64;
        let afh = self.afh_view();
        let now_slot = now.slots();

        enum Todo {
            Nothing,
            RevertToPageScan,
            Window {
                until: SimTime,
                clk: ClkVal,
                master: BdAddr,
            },
        }
        let todo = {
            let s = &mut self.slave_links[i];
            let clk = clkn.offset_by(s.clk_offset);
            if s.newconn_deadline_slot.is_some_and(|d| now_slot >= d) {
                Todo::RevertToPageScan
            } else if now < s.busy_until || !clk.is_slot_start() || !clk.is_master_tx_slot() {
                Todo::Nothing
            } else {
                let clk_slot = clk.slot();
                if s.mode != LinkMode::Park
                    && s.sco.as_ref().is_some_and(|p| sco_at_anchor(clk_slot, p))
                {
                    // Reserved SCO slot: wake whatever the ACL mode says.
                    Todo::Window {
                        until: now + peek,
                        clk,
                        master: s.master,
                    }
                } else {
                    match s.mode {
                        LinkMode::Active => {
                            let until = if s.listening_full_slot || s.resync {
                                now + SimDuration::SLOT
                            } else {
                                now + peek
                            };
                            Todo::Window {
                                until,
                                clk,
                                master: s.master,
                            }
                        }
                        LinkMode::Sniff => {
                            let in_ext = s.sniff_ext_until_slot.is_some_and(|e| now_slot < e);
                            match &s.sniff {
                                Some(p) if sniff_at_anchor(clk_slot, p) => {
                                    // Anchor: listen for the uncertainty window
                                    // (fixed part + drift-proportional part).
                                    let listen_us = sniff_listen_us
                                        + sniff_drift_ppm * p.t_sniff as u64 * 625 / 1_000_000;
                                    Todo::Window {
                                        until: now + SimDuration::from_us(listen_us),
                                        clk,
                                        master: s.master,
                                    }
                                }
                                Some(p)
                                    if in_ext
                                        || (p.n_attempt > 1 && sniff_in_window(clk_slot, p)) =>
                                {
                                    Todo::Window {
                                        until: now + peek,
                                        clk,
                                        master: s.master,
                                    }
                                }
                                _ => Todo::Nothing,
                            }
                        }
                        LinkMode::Hold => {
                            let h = s.hold_until_slot.unwrap_or(0);
                            if now_slot + guard >= h {
                                // Wake early and listen whole master slots to
                                // resynchronise.
                                s.resync = true;
                                Todo::Window {
                                    until: now + SimDuration::SLOT,
                                    clk,
                                    master: s.master,
                                }
                            } else {
                                Todo::Nothing
                            }
                        }
                        LinkMode::Park => {
                            let b = s.park_beacon_interval.max(1);
                            if clk_slot.is_multiple_of(b) {
                                Todo::Window {
                                    until: now + peek,
                                    clk,
                                    master: s.master,
                                }
                            } else {
                                Todo::Nothing
                            }
                        }
                    }
                }
            }
        };
        match todo {
            Todo::Nothing => true,
            Todo::RevertToPageScan => {
                let dropped = self.slave_links[i].link.flush_dropped();
                self.dropped_tx_bytes += dropped;
                self.slave_links.remove(i);
                out.push(LcAction::RxOff);
                if self.slave_links.is_empty() && !self.is_master() {
                    self.start_page_scan(now, out);
                }
                false
            }
            Todo::Window { until, clk, master } => {
                let ch = conn_channel(clk, master.hop_input(), afh.for_slot(now_slot));
                out.push(LcAction::RxWindow {
                    from: now,
                    until: Some(until),
                    rf_channel: ch,
                });
                true
            }
        }
    }

    /// Feeds a reception to slave link `i`; returns `true` when the
    /// packet decoded under that link's access code (and was consumed).
    fn slave_rx_one(
        &mut self,
        i: usize,
        rx: &super::RxDelivery,
        now: SimTime,
        out: &mut Vec<LcAction>,
    ) -> bool {
        let clkn_start = self.clkn(rx.start);
        let acl_prefer = self.acl_type;
        let sync_threshold = self.cfg.sync_threshold;
        let fhs_fec = self.cfg.page_fhs_fec;
        let afh = self.afh_view();
        let now_slot = now.slots();

        let s = &mut self.slave_links[i];
        let clk_start = clkn_start.offset_by(s.clk_offset);
        let keys = LinkKeys {
            lap: s.master.lap(),
            uap: s.master.uap(),
            whiten: clk_start.whitening_seed(),
            sync_threshold,
            fhs_fec,
        };
        let Ok(packet::Decoded::Packet { header, payload }) =
            packet::decode(&rx.bits, rx.collision_mask.as_ref(), &keys)
        else {
            return false;
        };
        let broadcast = header.lt_addr == 0;
        if !broadcast && header.lt_addr != s.lt_addr {
            return true; // this piconet, but addressed to another slave
        }
        s.last_rx_slot = now.slots();
        s.sup_hold_excuse_slot = None;
        let mut events = Vec::new();
        let mut phase_change = false;
        // First packet of a new connection: we are in the piconet.
        if s.newconn_deadline_slot.take().is_some() {
            s.listening_full_slot = false;
            events.push(LcEvent::Connected {
                master: s.master,
                lt_addr: s.lt_addr,
            });
        }
        if s.resync || (s.mode == LinkMode::Hold && s.hold_until_slot.is_some()) {
            s.resync = false;
            s.hold_until_slot = None;
            s.mode = LinkMode::Active;
            events.push(LcEvent::ModeChanged {
                lt_addr: s.lt_addr,
                mode: LinkMode::Active,
            });
            phase_change = true;
        }
        if !broadcast && s.link.on_arqn(header.arqn) {
            events.push(LcEvent::AclDelivered { lt_addr: s.lt_addr });
        }
        if header.ptype.has_crc() {
            if let Payload::Acl { llid, data, .. } = &payload {
                if s.link.on_rx_crc_packet(header.seqn) {
                    events.push(LcEvent::AclReceived {
                        lt_addr: s.lt_addr,
                        llid: *llid,
                        data: data.clone(),
                    });
                }
            }
        }
        // Sniff extension on traffic.
        if s.mode == LinkMode::Sniff {
            if let Some(p) = &s.sniff {
                if p.n_timeout > 0 {
                    s.sniff_ext_until_slot =
                        Some(now_slot + header.ptype.slots() as u64 + 2 * p.n_timeout as u64);
                }
            }
        }
        // A voice packet: deliver it and answer with our own HV frame in
        // the reserved response slot (no ARQ on SCO).
        if let Payload::Sco(data) = &payload {
            events.push(LcEvent::ScoReceived {
                lt_addr: s.lt_addr,
                data: data.clone(),
            });
            if let Some(params) = s.sco {
                let resp_at = rx.start + SimDuration::SLOT;
                let resp_clk = clk_start.offset_by(2);
                let resp_keys = LinkKeys {
                    whiten: resp_clk.whitening_seed(),
                    ..keys
                };
                let frame = take_voice(&mut s.sco_out, params.ptype.max_user_bytes());
                let resp_header = Header {
                    lt_addr: s.lt_addr,
                    ptype: params.ptype,
                    flow: true,
                    arqn: s.link.take_arqn(),
                    seqn: s.link.seqn_out,
                };
                let bits = self
                    .codec
                    .encode(&resp_keys, &resp_header, &Payload::Sco(frame));
                s.busy_until = resp_at + SimDuration::SLOT;
                let ch = conn_channel(
                    resp_clk,
                    s.master.hop_input(),
                    afh.for_slot(resp_at.slots()),
                );
                out.push(LcAction::Tx {
                    at: resp_at,
                    rf_channel: ch,
                    bits,
                });
            }
            for e in events {
                out.push(LcAction::Event(e));
            }
            if phase_change {
                self.set_phase(self.connection_phase(), out);
            }
            return true;
        }
        // Respond when addressed with POLL or a CRC data packet.
        let must_respond =
            !broadcast && (header.ptype == PacketType::Poll || header.ptype.has_crc());
        if must_respond {
            let n_slots = header.ptype.slots() as u64;
            let resp_at = rx.start + SimDuration::from_slots(n_slots);
            let resp_clk = clk_start.offset_by(2 * n_slots as u32);
            let resp_keys = LinkKeys {
                whiten: resp_clk.whitening_seed(),
                ..keys
            };
            let (resp_header, resp_payload) =
                match s.link.next_outgoing(acl_prefer.max_user_bytes()) {
                    Some((llid, data)) => {
                        let ptype = if llid == Llid::Lmp {
                            fit_type(PacketType::Dm1, data.len())
                        } else {
                            fit_type(acl_prefer, data.len())
                        };
                        (
                            Header {
                                lt_addr: s.lt_addr,
                                ptype,
                                flow: true,
                                arqn: s.link.take_arqn(),
                                seqn: s.link.seqn_out,
                            },
                            Payload::Acl {
                                llid,
                                flow: true,
                                data,
                            },
                        )
                    }
                    None => (
                        Header {
                            lt_addr: s.lt_addr,
                            ptype: PacketType::Null,
                            flow: true,
                            arqn: s.link.take_arqn(),
                            seqn: s.link.seqn_out,
                        },
                        Payload::None,
                    ),
                };
            let master = s.master;
            let bits = self.codec.encode(&resp_keys, &resp_header, &resp_payload);
            s.busy_until = resp_at + SimDuration::from_slots(resp_header.ptype.slots() as u64);
            let ch = conn_channel(resp_clk, master.hop_input(), afh.for_slot(resp_at.slots()));
            out.push(LcAction::Tx {
                at: resp_at,
                rf_channel: ch,
                bits,
            });
        }
        for e in events {
            out.push(LcAction::Event(e));
        }
        if phase_change {
            self.set_phase(self.connection_phase(), out);
        }
        true
    }

    // ----- mode commands ---------------------------------------------------

    pub(crate) fn cmd_sco_setup(
        &mut self,
        lt_addr: u8,
        params: ScoParams,
        _now: SimTime,
        out: &mut Vec<LcAction>,
    ) {
        assert!(
            matches!(
                params.ptype,
                PacketType::Hv1 | PacketType::Hv2 | PacketType::Hv3
            ),
            "SCO links carry HV packets"
        );
        let params = ScoParams {
            t_sco: params.t_sco.max(2) & !1,
            d_sco: params.d_sco & !1,
            ..params
        };
        if let Some(m) = &mut self.master {
            if let Some(slot) = m.slot_mut(lt_addr) {
                slot.sco = Some(params);
                return;
            }
        }
        if let Some(i) = self.slave_cmd_index(lt_addr) {
            self.slave_links[i].sco = Some(params);
        }
        let _ = out;
    }

    pub(crate) fn cmd_sco_remove(&mut self, lt_addr: u8, _now: SimTime, out: &mut Vec<LcAction>) {
        if let Some(m) = &mut self.master {
            if let Some(slot) = m.slot_mut(lt_addr) {
                slot.sco = None;
                slot.sco_out.clear();
                return;
            }
        }
        if let Some(i) = self.slave_cmd_index(lt_addr) {
            let s = &mut self.slave_links[i];
            s.sco = None;
            s.sco_out.clear();
        }
        let _ = out;
    }

    pub(crate) fn cmd_sniff(
        &mut self,
        lt_addr: u8,
        params: SniffParams,
        _now: SimTime,
        out: &mut Vec<LcAction>,
    ) {
        if let Some(m) = &mut self.master {
            if let Some(slot) = m.slot_mut(lt_addr) {
                slot.mode = LinkMode::Sniff;
                slot.sniff = Some(params);
                slot.sniff_ext_until_slot = None;
                out.push(LcAction::Event(LcEvent::ModeChanged {
                    lt_addr,
                    mode: LinkMode::Sniff,
                }));
                return;
            }
        }
        if let Some(i) = self.slave_cmd_index(lt_addr) {
            let s = &mut self.slave_links[i];
            s.mode = LinkMode::Sniff;
            s.sniff = Some(params);
            s.sniff_ext_until_slot = None;
            let lt = s.lt_addr;
            out.push(LcAction::RxOff);
            out.push(LcAction::Event(LcEvent::ModeChanged {
                lt_addr: lt,
                mode: LinkMode::Sniff,
            }));
            self.set_phase(self.connection_phase(), out);
        }
    }

    pub(crate) fn cmd_unsniff(&mut self, lt_addr: u8, _now: SimTime, out: &mut Vec<LcAction>) {
        if let Some(m) = &mut self.master {
            if let Some(slot) = m.slot_mut(lt_addr) {
                slot.mode = LinkMode::Active;
                slot.sniff = None;
                out.push(LcAction::Event(LcEvent::ModeChanged {
                    lt_addr,
                    mode: LinkMode::Active,
                }));
                return;
            }
        }
        if let Some(i) = self.slave_cmd_index(lt_addr) {
            let s = &mut self.slave_links[i];
            s.mode = LinkMode::Active;
            s.sniff = None;
            let lt = s.lt_addr;
            out.push(LcAction::Event(LcEvent::ModeChanged {
                lt_addr: lt,
                mode: LinkMode::Active,
            }));
            self.set_phase(self.connection_phase(), out);
        }
    }

    pub(crate) fn cmd_hold(
        &mut self,
        lt_addr: u8,
        hold_slots: u32,
        now: SimTime,
        out: &mut Vec<LcAction>,
    ) {
        let until = now.slots() + 1 + hold_slots as u64;
        if let Some(m) = &mut self.master {
            if let Some(slot) = m.slot_mut(lt_addr) {
                slot.mode = LinkMode::Hold;
                slot.hold_until_slot = Some(until);
                // Only the first unanswered hold excuses supervision;
                // re-arms on a silent link must not extend it.
                slot.sup_hold_excuse_slot.get_or_insert(until);
                slot.poll_asap = true;
                out.push(LcAction::Event(LcEvent::ModeChanged {
                    lt_addr,
                    mode: LinkMode::Hold,
                }));
                return;
            }
        }
        if let Some(i) = self.slave_cmd_index(lt_addr) {
            self.hold_slave_link(i, until, out);
        }
    }

    /// Slave-side hold addressed by piconet master (unambiguous on a
    /// scatternet bridge whose links may share an LT_ADDR).
    pub(crate) fn cmd_hold_piconet(
        &mut self,
        master: BdAddr,
        hold_slots: u32,
        now: SimTime,
        out: &mut Vec<LcAction>,
    ) {
        let until = now.slots() + 1 + hold_slots as u64;
        if let Some(i) = self.slave_index_of_master(master) {
            self.hold_slave_link(i, until, out);
        }
    }

    fn hold_slave_link(&mut self, i: usize, until_slot: u64, out: &mut Vec<LcAction>) {
        let s = &mut self.slave_links[i];
        s.mode = LinkMode::Hold;
        s.hold_until_slot = Some(until_slot);
        s.sup_hold_excuse_slot.get_or_insert(until_slot);
        s.resync = false;
        let lt = s.lt_addr;
        // The radio leaves this piconet; links to other piconets re-open
        // their own windows at their next master-slot tick.
        out.push(LcAction::RxOff);
        out.push(LcAction::Event(LcEvent::ModeChanged {
            lt_addr: lt,
            mode: LinkMode::Hold,
        }));
        self.set_phase(self.connection_phase(), out);
    }

    pub(crate) fn cmd_park(
        &mut self,
        lt_addr: u8,
        beacon_interval: u32,
        _now: SimTime,
        out: &mut Vec<LcAction>,
    ) {
        if let Some(m) = &mut self.master {
            if let Some(slot) = m.slot_mut(lt_addr) {
                slot.mode = LinkMode::Park;
                slot.park_beacon_interval = beacon_interval;
                slot.parked_lt = slot.lt_addr;
                out.push(LcAction::Event(LcEvent::ModeChanged {
                    lt_addr,
                    mode: LinkMode::Park,
                }));
                return;
            }
        }
        if let Some(i) = self.slave_cmd_index(lt_addr) {
            let s = &mut self.slave_links[i];
            s.mode = LinkMode::Park;
            s.park_beacon_interval = beacon_interval;
            s.parked_lt = s.lt_addr;
            let lt = s.lt_addr;
            out.push(LcAction::RxOff);
            out.push(LcAction::Event(LcEvent::ModeChanged {
                lt_addr: lt,
                mode: LinkMode::Park,
            }));
            self.set_phase(self.connection_phase(), out);
        }
    }

    pub(crate) fn cmd_unpark(&mut self, lt_addr: u8, now: SimTime, out: &mut Vec<LcAction>) {
        if let Some(m) = &mut self.master {
            if let Some(slot) = m.slot_mut(lt_addr) {
                slot.mode = LinkMode::Active;
                slot.poll_asap = true;
                // Park suspends supervision; re-arm from now, not from
                // the pre-park baseline.
                slot.last_rx_slot = now.slots();
                slot.sup_hold_excuse_slot = None;
                out.push(LcAction::Event(LcEvent::ModeChanged {
                    lt_addr,
                    mode: LinkMode::Active,
                }));
                return;
            }
        }
        if let Some(i) = self.slave_cmd_index(lt_addr) {
            let s = &mut self.slave_links[i];
            s.mode = LinkMode::Active;
            s.last_rx_slot = now.slots();
            s.sup_hold_excuse_slot = None;
            let lt = s.lt_addr;
            out.push(LcAction::Event(LcEvent::ModeChanged {
                lt_addr: lt,
                mode: LinkMode::Active,
            }));
            self.set_phase(self.connection_phase(), out);
        }
    }

    pub(crate) fn cmd_detach(&mut self, lt_addr: u8, _now: SimTime, out: &mut Vec<LcAction>) {
        if let Some(m) = &mut self.master {
            let before = m.slaves.len();
            let mut dropped = 0;
            m.slaves.retain_mut(|s| {
                let gone = s.lt_addr == lt_addr;
                if gone {
                    dropped += s.link.flush_dropped();
                }
                !gone
            });
            self.dropped_tx_bytes += dropped;
            if m.slaves.len() != before {
                out.push(LcAction::Event(LcEvent::Detached { lt_addr }));
            }
            if m.slaves.is_empty() {
                self.master = None;
            }
            self.settle_state(out);
            return;
        }
        if let Some(i) = self.slave_cmd_index(lt_addr) {
            let dropped = self.slave_links[i].link.flush_dropped();
            self.dropped_tx_bytes += dropped;
            self.slave_links.remove(i);
            out.push(LcAction::RxOff);
            out.push(LcAction::Event(LcEvent::Detached { lt_addr }));
            self.settle_state(out);
        }
    }
}

/// Takes one voice frame of `frame_bytes` from the queue, padding with
/// zeros (silence) when the source runs dry.
fn take_voice(queue: &mut std::collections::VecDeque<u8>, frame_bytes: usize) -> Vec<u8> {
    let mut frame = Vec::with_capacity(frame_bytes);
    for _ in 0..frame_bytes {
        frame.push(queue.pop_front().unwrap_or(0));
    }
    frame
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_state_arq_cycle() {
        let mut l = LinkState::new();
        l.tx.push(Llid::Start, vec![1, 2, 3]);
        assert!(l.has_data());
        let first_seqn = l.seqn_out;
        let (llid, data) = l.next_outgoing(17).unwrap();
        assert_eq!(llid, Llid::Start);
        assert_eq!(data, vec![1, 2, 3]);
        // Unacked: same fragment again (retransmission).
        assert_eq!(l.next_outgoing(17).unwrap().1, vec![1, 2, 3]);
        assert_eq!(l.seqn_out, first_seqn);
        // NAK does not advance.
        assert!(!l.on_arqn(false));
        // ACK advances and toggles SEQN.
        assert!(l.on_arqn(true));
        assert!(!l.has_data());
        assert_ne!(l.seqn_out, first_seqn);
        // ACK with nothing in flight is ignored.
        assert!(!l.on_arqn(true));
    }

    #[test]
    fn link_state_dedupes_by_seqn() {
        let mut l = LinkState::new();
        assert!(l.on_rx_crc_packet(true));
        assert!(l.arqn_to_send);
        // Retransmission of the same SEQN is a duplicate.
        assert!(!l.on_rx_crc_packet(true));
        // New SEQN accepted.
        assert!(l.on_rx_crc_packet(false));
        assert!(l.on_rx_crc_packet(true));
    }

    #[test]
    fn sniff_window_maths() {
        let p = SniffParams {
            t_sniff: 100,
            n_attempt: 1,
            d_sniff: 10,
            n_timeout: 0,
        };
        assert!(sniff_at_anchor(10, &p));
        assert!(sniff_in_window(10, &p));
        assert!(sniff_in_window(11, &p));
        assert!(!sniff_in_window(12, &p));
        assert!(!sniff_in_window(9, &p));
        assert!(sniff_at_anchor(110, &p));
        assert!(!sniff_at_anchor(60, &p));
    }

    #[test]
    fn sniff_window_with_multiple_attempts() {
        let p = SniffParams {
            t_sniff: 50,
            n_attempt: 3,
            d_sniff: 0,
            n_timeout: 0,
        };
        for slot in 0..6 {
            assert!(sniff_in_window(slot, &p), "slot {slot}");
        }
        assert!(!sniff_in_window(6, &p));
    }

    #[test]
    fn fit_type_picks_smallest_sufficient() {
        assert_eq!(fit_type(PacketType::Dm1, 10), PacketType::Dm1);
        assert_eq!(fit_type(PacketType::Dm1, 17), PacketType::Dm1);
        assert_eq!(fit_type(PacketType::Dm1, 18), PacketType::Dm3);
        assert_eq!(fit_type(PacketType::Dm1, 200), PacketType::Dm5);
        assert_eq!(fit_type(PacketType::Dh1, 100), PacketType::Dh3);
        assert_eq!(fit_type(PacketType::Dh5, 100), PacketType::Dh5);
    }

    #[test]
    fn sco_params_for_type_pairs_interval() {
        assert_eq!(ScoParams::for_type(PacketType::Hv1, 0).t_sco, 2);
        assert_eq!(ScoParams::for_type(PacketType::Hv2, 0).t_sco, 4);
        assert_eq!(ScoParams::for_type(PacketType::Hv3, 0).t_sco, 6);
        // Odd offsets are forced even so anchors land on master slots.
        assert_eq!(ScoParams::for_type(PacketType::Hv3, 5).d_sco, 4);
    }

    #[test]
    fn sco_anchor_maths() {
        let p = ScoParams::for_type(PacketType::Hv3, 2);
        assert!(sco_at_anchor(2, &p));
        assert!(sco_at_anchor(8, &p));
        assert!(!sco_at_anchor(4, &p));
        assert!(!sco_at_anchor(3, &p));
    }

    #[test]
    fn take_voice_pads_with_silence() {
        let mut q: std::collections::VecDeque<u8> = vec![1, 2, 3].into();
        assert_eq!(take_voice(&mut q, 5), vec![1, 2, 3, 0, 0]);
        assert_eq!(take_voice(&mut q, 2), vec![0, 0]);
    }

    #[test]
    fn sniff_params_default_sane() {
        let p = SniffParams::default();
        assert_eq!(p.t_sniff, 100);
        assert_eq!(p.n_attempt, 1);
    }

    #[test]
    fn afh_switch_applies_per_hop_slot() {
        use crate::clock::Clock;
        use crate::lc::{LcCommand, LcConfig};
        use btsim_kernel::SimTime;
        let mut lc = LinkController::new(
            BdAddr::new(0, 1, 0x111111),
            Clock::new(ClkVal::new(0)),
            LcConfig::default(),
            1,
        );
        let map = ChannelMap::blocking(29..=50);
        assert!(lc
            .command(
                LcCommand::SetAfhAt {
                    map: map.clone(),
                    at_slot: 100,
                },
                SimTime::ZERO,
            )
            .is_empty());
        // Hops before the instant keep the old (absent) map; hops at or
        // after it use the new one — on both sides of the same instant.
        assert_eq!(lc.afh_map_at(99), None);
        assert_eq!(lc.afh_map_at(100), Some(&map));
        assert_eq!(lc.afh_map_at(5000), Some(&map));
        assert_eq!(lc.afh_pending_switch(), Some((&map, 100)));
        // The view used by the tick/RX paths agrees.
        let view = lc.afh_view();
        assert_eq!(view.for_slot(99), None);
        assert_eq!(view.for_slot(100), Some(&map));
    }

    #[test]
    fn afh_cancel_drops_future_switches_and_keeps_effective_ones() {
        use crate::clock::Clock;
        use crate::lc::{LcCommand, LcConfig};
        use btsim_kernel::{SimDuration, SimTime};
        let mut lc = LinkController::new(
            BdAddr::new(0, 1, 0x111111),
            Clock::new(ClkVal::new(0)),
            LcConfig::default(),
            1,
        );
        let map = ChannelMap::blocking(29..=50);
        lc.command(
            LcCommand::SetAfhAt {
                map: map.clone(),
                at_slot: 100,
            },
            SimTime::ZERO,
        );
        // Cancel before the instant: the switch never happens.
        lc.command(
            LcCommand::CancelAfhSwitch,
            SimTime::ZERO + SimDuration::from_slots(50),
        );
        assert_eq!(lc.afh_map_at(100), None);
        assert_eq!(lc.afh_pending_switch(), None);
        // Schedule again and let the instant pass: cancelling afterwards
        // keeps the now-effective map.
        lc.command(
            LcCommand::SetAfhAt {
                map: map.clone(),
                at_slot: 100,
            },
            SimTime::ZERO + SimDuration::from_slots(60),
        );
        lc.command(
            LcCommand::CancelAfhSwitch,
            SimTime::ZERO + SimDuration::from_slots(150),
        );
        assert_eq!(lc.afh_map_at(150), Some(&map));
        // A later re-schedule first folds in the effective switch.
        let wider = ChannelMap::blocking(0..=21);
        lc.command(
            LcCommand::SetAfhAt {
                map: wider.clone(),
                at_slot: 300,
            },
            SimTime::ZERO + SimDuration::from_slots(200),
        );
        assert_eq!(lc.afh_map_at(299), Some(&map));
        assert_eq!(lc.afh_map_at(300), Some(&wider));
    }

    #[test]
    fn slave_cmd_index_refuses_colliding_lt_addrs() {
        use crate::clock::Clock;
        use crate::lc::LcConfig;
        let mut lc = LinkController::new(
            BdAddr::new(0, 1, 0x111111),
            Clock::new(ClkVal::new(0)),
            LcConfig::default(),
            1,
        );
        let m1 = BdAddr::new(0, 2, 0x222222);
        let m2 = BdAddr::new(0, 3, 0x333333);
        lc.slave_links.push(super::SlaveCtx::new(m1, 2, 0, 100));
        // Single link: LT_ADDR is effectively ignored (legacy).
        assert_eq!(lc.slave_cmd_index(2), Some(0));
        assert_eq!(lc.slave_cmd_index(5), Some(0));
        // Two links with distinct LT_ADDRs: exact match only.
        lc.slave_links.push(super::SlaveCtx::new(m2, 3, 0, 100));
        assert_eq!(lc.slave_cmd_index(2), Some(0));
        assert_eq!(lc.slave_cmd_index(3), Some(1));
        assert_eq!(lc.slave_cmd_index(5), None);
        // Colliding LT_ADDRs: ambiguous, targets nothing (acting on
        // the wrong piconet's link would desynchronise the bridge).
        lc.slave_links[1].lt_addr = 2;
        assert_eq!(lc.slave_cmd_index(2), None);
        // Master-addressed lookup stays unambiguous.
        assert_eq!(lc.slave_index_of_master(m1), Some(0));
        assert_eq!(lc.slave_index_of_master(m2), Some(1));
    }
}
