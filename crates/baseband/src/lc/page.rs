//! Page, page scan and the master/slave response substates (paper §3.1).
//!
//! The pager sweeps its page train with the target's DAC, using the clock
//! estimate CLKE learned during inquiry; the A-train covers the estimate
//! mid-train, so an accurate estimate connects within one train pass
//! (the paper's 17-slot average). The exchange is:
//!
//! ```text
//! master: ID(DAC) ──► slave (page scan)
//! slave:  ID(DAC) 625 µs later            (slave response)
//! master: FHS with CLK + LT_ADDR          (master response)
//! slave:  ID(DAC) acknowledging the FHS
//! master: POLL on the connection hopping sequence
//! slave:  NULL — connection established
//! ```

use btsim_kernel::{SimDuration, SimTime};

use crate::address::BdAddr;
use crate::hop::{self, HopSequence};
use crate::packet::{self, FhsPayload, Header, PacketType, Payload};

use super::connection::{LinkMode, LinkState, MasterCtx, SlaveCtx, SlaveSlot};
use super::{tx_action, LcAction, LcEvent, LifePhase, LinkController, ProcState};

/// Pager context.
#[derive(Debug, Clone)]
pub(crate) struct PageCtx {
    pub target: BdAddr,
    /// CLKE = own CLKN + this offset (estimate of the target's CLKN).
    pub clke_offset: u32,
    pub timeout_slots: u32,
    pub sub: PageSub,
}

#[derive(Debug, Clone)]
pub(crate) enum PageSub {
    /// Sweeping the page train.
    Paging,
    /// Got the slave's ID response; (re)transmitting the FHS.
    MasterResponse {
        /// Channel the exchange continues on.
        channel: u8,
        /// Next FHS (re)transmission time.
        next_fhs_at: SimTime,
        /// Give-up time (pagerespTO).
        deadline: SimTime,
    },
}

/// Page-scan context.
#[derive(Debug, Clone)]
pub(crate) struct PageScanCtx {
    pub sub: PageScanSub,
    /// Channel of the currently open scan window (None while responding
    /// or outside a scan window).
    pub cur_channel: Option<u8>,
}

#[derive(Debug, Clone)]
pub(crate) enum PageScanSub {
    Scanning,
    /// Sent our ID response; waiting for the master's FHS.
    SlaveResponse {
        /// Channel the exchange continues on.
        channel: u8,
        /// Give-up time (pagerespTO).
        deadline: SimTime,
    },
}

impl LinkController {
    pub(crate) fn start_page(
        &mut self,
        target: BdAddr,
        clke_offset: u32,
        timeout_slots: u32,
        now: SimTime,
        out: &mut Vec<LcAction>,
    ) {
        self.mark_proc_start(now);
        self.state = ProcState::Page(PageCtx {
            target,
            clke_offset,
            timeout_slots,
            sub: PageSub::Paging,
        });
        self.set_phase(LifePhase::Page, out);
    }

    pub(crate) fn start_page_scan(&mut self, now: SimTime, out: &mut Vec<LcAction>) {
        self.mark_proc_start(now);
        self.state = ProcState::PageScan(PageScanCtx {
            sub: PageScanSub::Scanning,
            cur_channel: None,
        });
        self.set_phase(LifePhase::PageScan, out);
        let ch = self.page_scan_channel(now);
        if self.page_scan_window_open(now) {
            if let ProcState::PageScan(ctx) = &mut self.state {
                ctx.cur_channel = Some(ch);
            }
            out.push(LcAction::RxWindow {
                from: now,
                until: None,
                rf_channel: ch,
            });
        }
    }

    fn page_scan_channel(&self, now: SimTime) -> u8 {
        hop::hop_channel(HopSequence::PageScan, self.clkn(now), self.addr.hop_input())
    }

    /// Whether the page-scan window is open at `now` (always, when
    /// configured continuous).
    fn page_scan_window_open(&self, now: SimTime) -> bool {
        if self.cfg.page_scan_continuous {
            return true;
        }
        let slot_in_interval =
            (self.proc_ticks(now) / 2) % self.cfg.page_scan_interval_slots.max(1) as u64;
        slot_in_interval < self.cfg.page_scan_window_slots as u64
    }

    /// The LT_ADDR the pager will assign to the slave being connected.
    fn next_lt_addr(&self) -> u8 {
        let used: Vec<u8> = self
            .master
            .as_ref()
            .map(|m| m.slaves.iter().map(|s| s.lt_addr).collect())
            .unwrap_or_default();
        (1..=7).find(|lt| !used.contains(lt)).unwrap_or(7)
    }

    /// Builds the page-response FHS of this (future) master.
    fn page_fhs_bits(&self, target: BdAddr, lt_addr: u8, at: SimTime) -> btsim_coding::BitVec {
        let keys = self.dac_keys(target);
        let fhs = FhsPayload {
            addr: self.addr,
            class_of_device: self.cfg.class_of_device,
            lt_addr,
            clk27_2: self.clkn(at).clk27_2(),
            page_scan_mode: 0,
            sr: 1,
            sp: 0,
        };
        let header = Header {
            lt_addr,
            ptype: PacketType::Fhs,
            flow: true,
            arqn: false,
            seqn: false,
        };
        packet::encode(&keys, &header, &Payload::Fhs(fhs))
    }

    pub(crate) fn tick_page(&mut self, now: SimTime, out: &mut Vec<LcAction>) {
        enum Todo {
            Nothing,
            Fail(BdAddr),
            SendId,
            SendFhs { channel: u8, at: SimTime },
        }
        let proc_ticks = self.proc_ticks(now);
        let todo = {
            let ProcState::Page(ctx) = &mut self.state else {
                return;
            };
            if ctx.timeout_slots > 0 && proc_ticks >= 2 * ctx.timeout_slots as u64 {
                Todo::Fail(ctx.target)
            } else {
                match &mut ctx.sub {
                    PageSub::Paging => Todo::SendId,
                    PageSub::MasterResponse {
                        channel,
                        next_fhs_at,
                        deadline,
                    } => {
                        if now >= *deadline {
                            ctx.sub = PageSub::Paging;
                            Todo::Nothing
                        } else if now >= *next_fhs_at {
                            let at = *next_fhs_at;
                            let ch = *channel;
                            *next_fhs_at = at + SimDuration::from_slots(2);
                            Todo::SendFhs { channel: ch, at }
                        } else {
                            Todo::Nothing
                        }
                    }
                }
            }
        };
        match todo {
            Todo::Nothing => {}
            Todo::Fail(target) => {
                out.push(LcAction::RxOff);
                out.push(LcAction::Event(LcEvent::PageFailed { addr: target }));
                self.settle_state(out);
            }
            Todo::SendId => {
                let (target, clke_offset) = {
                    let ProcState::Page(ctx) = &self.state else {
                        return;
                    };
                    (ctx.target, ctx.clke_offset)
                };
                // Timing follows the pager's own clock (its slot grid will
                // become the piconet grid); only the hop phase uses CLKE.
                if !self.clkn(now).is_master_tx_slot() {
                    return;
                }
                let clke = self.clkn(now).offset_by(clke_offset);
                let kofs = self.train_kofs(now);
                let ch = hop::hop_channel(HopSequence::Page { kofs }, clke, target.hop_input());
                out.push(tx_action(now, ch, self.codec.encode_id(target.lap())));
                out.push(LcAction::RxWindow {
                    from: now + SimDuration::SLOT,
                    until: Some(now + SimDuration::SLOT + SimDuration::HALF_SLOT),
                    rf_channel: ch,
                });
            }
            Todo::SendFhs { channel, at } => {
                let target = {
                    let ProcState::Page(ctx) = &self.state else {
                        return;
                    };
                    ctx.target
                };
                let lt_addr = self.next_lt_addr();
                let bits = self.page_fhs_bits(target, lt_addr, at);
                out.push(tx_action(at, channel, bits));
                out.push(LcAction::RxWindow {
                    from: at + SimDuration::SLOT,
                    until: Some(at + SimDuration::SLOT + SimDuration::HALF_SLOT),
                    rf_channel: channel,
                });
            }
        }
    }

    pub(crate) fn rx_page(
        &mut self,
        rx: &super::RxDelivery,
        now: SimTime,
        out: &mut Vec<LcAction>,
    ) {
        let (target, keys) = {
            let ProcState::Page(ctx) = &self.state else {
                return;
            };
            (ctx.target, self.dac_keys(ctx.target))
        };
        let Ok(packet::Decoded::Id) = packet::decode(&rx.bits, rx.collision_mask.as_ref(), &keys)
        else {
            return;
        };
        let pageresp = SimDuration::from_slots(self.cfg.page_resp_timeout_slots as u64);
        let got_ack = {
            let ProcState::Page(ctx) = &mut self.state else {
                return;
            };
            match &ctx.sub {
                PageSub::Paging => {
                    // Slave response heard. The FHS must leave at one of
                    // our own master-to-slave *slot starts* (CLK1,0 = 00):
                    // its CLK27-2 field implies zero low clock bits, and
                    // the slave derives the piconet timing from it.
                    let mut fhs_at = rx.start + SimDuration::SLOT;
                    while self.clock.clkn_at(fhs_at).bits(1, 0) != 0 {
                        fhs_at += SimDuration::HALF_SLOT;
                    }
                    ctx.sub = PageSub::MasterResponse {
                        channel: rx.rf_channel,
                        next_fhs_at: fhs_at,
                        deadline: now + pageresp,
                    };
                    false
                }
                PageSub::MasterResponse { .. } => true,
            }
        };
        if got_ack {
            // The slave acknowledged the FHS: the piconet link exists.
            let lt_addr = self.next_lt_addr();
            let newconn_deadline = now.slots() + self.cfg.new_connection_timeout_slots as u64;
            let master = self.master.get_or_insert_with(MasterCtx::new);
            let mut slot = SlaveSlot::new(lt_addr, target);
            slot.newconn_deadline_slot = Some(newconn_deadline);
            master.slaves.push(slot);
            out.push(LcAction::RxOff);
            out.push(LcAction::Event(LcEvent::PageComplete {
                addr: target,
                lt_addr,
            }));
            self.settle_state(out);
        }
    }

    pub(crate) fn tick_page_scan(&mut self, now: SimTime, out: &mut Vec<LcAction>) {
        let ch = self.page_scan_channel(now);
        let window_open = self.page_scan_window_open(now);
        let ProcState::PageScan(ctx) = &mut self.state else {
            return;
        };
        match &ctx.sub {
            PageScanSub::Scanning => {
                if window_open {
                    if ctx.cur_channel != Some(ch) {
                        ctx.cur_channel = Some(ch);
                        out.push(LcAction::RxWindow {
                            from: now,
                            until: None,
                            rf_channel: ch,
                        });
                    }
                } else if ctx.cur_channel.is_some() {
                    ctx.cur_channel = None;
                    out.push(LcAction::RxOff);
                }
            }
            PageScanSub::SlaveResponse { deadline, .. } => {
                if now >= *deadline {
                    // No FHS in time: back to scanning.
                    ctx.sub = PageScanSub::Scanning;
                    ctx.cur_channel = Some(ch);
                    out.push(LcAction::RxWindow {
                        from: now,
                        until: None,
                        rf_channel: ch,
                    });
                }
            }
        }
    }

    pub(crate) fn rx_page_scan(
        &mut self,
        rx: &super::RxDelivery,
        now: SimTime,
        out: &mut Vec<LcAction>,
    ) {
        let keys = self.dac_keys(self.addr);
        let Ok(decoded) = packet::decode(&rx.bits, rx.collision_mask.as_ref(), &keys) else {
            return;
        };
        let pageresp = SimDuration::from_slots(self.cfg.page_resp_timeout_slots as u64);
        let newconn = self.cfg.new_connection_timeout_slots;
        let own_at_fhs_start = self.clkn(rx.start);
        let own_lap = self.addr.lap();
        enum Todo {
            Nothing,
            Respond,
            Join { fhs: FhsPayload, channel: u8 },
        }
        let todo = {
            let ProcState::PageScan(ctx) = &mut self.state else {
                return;
            };
            match (&ctx.sub, decoded) {
                (PageScanSub::Scanning, packet::Decoded::Id) => {
                    let resp_at = rx.start + SimDuration::SLOT;
                    ctx.sub = PageScanSub::SlaveResponse {
                        channel: rx.rf_channel,
                        deadline: resp_at + pageresp,
                    };
                    ctx.cur_channel = None;
                    Todo::Respond
                }
                (
                    PageScanSub::SlaveResponse { channel, .. },
                    packet::Decoded::Packet {
                        payload: Payload::Fhs(fhs),
                        ..
                    },
                ) => Todo::Join {
                    fhs,
                    channel: *channel,
                },
                _ => Todo::Nothing,
            }
        };
        match todo {
            Todo::Nothing => {}
            Todo::Respond => {
                let resp_at = rx.start + SimDuration::SLOT;
                out.push(tx_action(
                    resp_at,
                    rx.rf_channel,
                    self.codec.encode_id(own_lap),
                ));
                // Keep listening on the exchange channel for the FHS.
                out.push(LcAction::RxWindow {
                    from: resp_at + SimDuration::from_bits(68),
                    until: None,
                    rf_channel: rx.rf_channel,
                });
            }
            Todo::Join { fhs, channel } => {
                // FHS received: acknowledge with ID, join the piconet.
                let ack_at = rx.start + SimDuration::SLOT;
                out.push(tx_action(ack_at, channel, self.codec.encode_id(own_lap)));
                out.push(LcAction::RxOff);
                let clk_offset = own_at_fhs_start.offset_to(fhs.clock());
                // Re-joining the same piconet replaces the old link; a
                // link to a *different* master is kept — the device
                // becomes a scatternet bridge with one SlaveCtx per
                // piconet.
                self.slave_links.retain(|s| s.master != fhs.addr);
                self.slave_links.push(SlaveCtx::new(
                    fhs.addr,
                    fhs.lt_addr,
                    clk_offset,
                    now.slots() + newconn as u64,
                ));
                self.state = ProcState::Connection;
                self.set_phase(self.connection_phase(), out);
            }
        }
    }
}

// Constructors for the link contexts created on page completion.
impl SlaveSlot {
    pub(crate) fn new(lt_addr: u8, addr: BdAddr) -> Self {
        SlaveSlot {
            lt_addr,
            addr,
            mode: LinkMode::Active,
            sco: None,
            sco_out: std::collections::VecDeque::new(),
            sniff: None,
            sniff_ext_until_slot: None,
            hold_until_slot: None,
            sup_hold_excuse_slot: None,
            park_beacon_interval: 0,
            parked_lt: 0,
            last_poll_slot: 0,
            poll_asap: true,
            newconn_deadline_slot: None,
            last_rx_slot: 0,
            link: LinkState::new(),
        }
    }
}

impl SlaveCtx {
    pub(crate) fn new(master: BdAddr, lt_addr: u8, clk_offset: u32, newconn_deadline: u64) -> Self {
        SlaveCtx {
            master,
            lt_addr,
            clk_offset,
            mode: LinkMode::Active,
            sco: None,
            sco_out: std::collections::VecDeque::new(),
            sniff: None,
            sniff_ext_until_slot: None,
            hold_until_slot: None,
            sup_hold_excuse_slot: None,
            park_beacon_interval: 0,
            parked_lt: 0,
            newconn_deadline_slot: Some(newconn_deadline),
            last_rx_slot: 0,
            resync: false,
            link: LinkState::new(),
            listening_full_slot: true,
            busy_until: SimTime::ZERO,
        }
    }
}
