//! [`Snap`] wire forms for the link-controller state tree.
//!
//! Everything a [`LinkController`] holds — procedure contexts, per-link
//! ARQ state, AFH maps and the RNG position — roundtrips through the
//! kernel's snapshot codec. The packet [`Codec`](packet::Codec) is the
//! one deliberate exception: it is a pure memoization of access-code
//! images, so restore rebuilds it empty and the caches refill
//! identically on demand (cache state never influences behaviour).
//!
//! Decoding is total: malformed bytes produce a
//! [`SnapshotError`], never a panic, and semantic invariants (clock
//! range, RF channels < 79, AFH map floor, fragment offsets) are
//! checked before any panicking constructor runs.

use std::collections::VecDeque;

use btsim_kernel::{SimTime, Snap, SnapReader, SnapWriter, SnapshotError};

use crate::address::BdAddr;
use crate::clock::{ClkVal, Clock, CLK_WRAP};
use crate::hop::{ChannelMap, CHANNELS, CHANNEL_MAP_BYTES};
use crate::packet::{self, Llid, PacketType};

use super::connection::{
    LinkMode, LinkState, MasterCtx, ScoParams, SlaveCtx, SlaveSlot, SniffParams,
};
use super::inquiry::{InquiryCtx, InquiryScanCtx};
use super::page::{PageCtx, PageScanCtx, PageScanSub, PageSub};
use super::{
    ChannelAssessment, LcCommand, LcConfig, LcEvent, LifePhase, LinkController, ProcState,
};

fn rf_channel(r: &mut SnapReader<'_>) -> Result<u8, SnapshotError> {
    let ch = r.take_u8()?;
    if ch >= CHANNELS {
        return Err(r.malformed("RF channel out of range"));
    }
    Ok(ch)
}

impl Snap for BdAddr {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.raw());
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let raw = r.take_u64()?;
        if raw > 0xFFFF_FFFF_FFFF {
            return Err(r.malformed("BD_ADDR wider than 48 bits"));
        }
        Ok(BdAddr::from_raw(raw))
    }
}

impl Snap for ClkVal {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.raw());
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let raw = r.take_u32()?;
        if raw >= CLK_WRAP {
            return Err(r.malformed("clock value wider than 28 bits"));
        }
        Ok(ClkVal::new(raw))
    }
}

impl Snap for Clock {
    fn snap(&self, w: &mut SnapWriter) {
        self.start_value().snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Clock::new(ClkVal::unsnap(r)?))
    }
}

impl Snap for PacketType {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            PacketType::Id => 0,
            PacketType::Null => 1,
            PacketType::Poll => 2,
            PacketType::Fhs => 3,
            PacketType::Dm1 => 4,
            PacketType::Dh1 => 5,
            PacketType::Dm3 => 6,
            PacketType::Dh3 => 7,
            PacketType::Dm5 => 8,
            PacketType::Dh5 => 9,
            PacketType::Aux1 => 10,
            PacketType::Hv1 => 11,
            PacketType::Hv2 => 12,
            PacketType::Hv3 => 13,
            PacketType::Dv => 14,
        });
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.take_u8()? {
            0 => PacketType::Id,
            1 => PacketType::Null,
            2 => PacketType::Poll,
            3 => PacketType::Fhs,
            4 => PacketType::Dm1,
            5 => PacketType::Dh1,
            6 => PacketType::Dm3,
            7 => PacketType::Dh3,
            8 => PacketType::Dm5,
            9 => PacketType::Dh5,
            10 => PacketType::Aux1,
            11 => PacketType::Hv1,
            12 => PacketType::Hv2,
            13 => PacketType::Hv3,
            14 => PacketType::Dv,
            _ => return Err(r.malformed("unknown packet-type tag")),
        })
    }
}

impl Snap for Llid {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            Llid::Continuation => 0,
            Llid::Start => 1,
            Llid::Lmp => 2,
        });
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.take_u8()? {
            0 => Llid::Continuation,
            1 => Llid::Start,
            2 => Llid::Lmp,
            _ => return Err(r.malformed("unknown LLID tag")),
        })
    }
}

impl Snap for LifePhase {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            LifePhase::Standby => 0,
            LifePhase::Inquiry => 1,
            LifePhase::InquiryScan => 2,
            LifePhase::Page => 3,
            LifePhase::PageScan => 4,
            LifePhase::Active => 5,
            LifePhase::Sniff => 6,
            LifePhase::Hold => 7,
            LifePhase::Park => 8,
        });
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.take_u8()? {
            0 => LifePhase::Standby,
            1 => LifePhase::Inquiry,
            2 => LifePhase::InquiryScan,
            3 => LifePhase::Page,
            4 => LifePhase::PageScan,
            5 => LifePhase::Active,
            6 => LifePhase::Sniff,
            7 => LifePhase::Hold,
            8 => LifePhase::Park,
            _ => return Err(r.malformed("unknown life-phase tag")),
        })
    }
}

impl Snap for LinkMode {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            LinkMode::Active => 0,
            LinkMode::Sniff => 1,
            LinkMode::Hold => 2,
            LinkMode::Park => 3,
        });
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.take_u8()? {
            0 => LinkMode::Active,
            1 => LinkMode::Sniff,
            2 => LinkMode::Hold,
            3 => LinkMode::Park,
            _ => return Err(r.malformed("unknown link-mode tag")),
        })
    }
}

impl Snap for ScoParams {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.t_sco);
        w.put_u32(self.d_sco);
        self.ptype.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            t_sco: r.take_u32()?,
            d_sco: r.take_u32()?,
            ptype: PacketType::unsnap(r)?,
        })
    }
}

impl Snap for SniffParams {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.t_sniff);
        w.put_u32(self.n_attempt);
        w.put_u32(self.d_sniff);
        w.put_u32(self.n_timeout);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            t_sniff: r.take_u32()?,
            n_attempt: r.take_u32()?,
            d_sniff: r.take_u32()?,
            n_timeout: r.take_u32()?,
        })
    }
}

impl Snap for ChannelMap {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_bytes(&self.to_bytes());
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let bytes = r.take_bytes()?;
        let arr: [u8; CHANNEL_MAP_BYTES] = bytes
            .as_slice()
            .try_into()
            .map_err(|_| r.malformed("channel map is not 10 bytes"))?;
        ChannelMap::from_bytes(&arr).map_err(|_| r.malformed("channel map below the AFH floor"))
    }
}

impl Snap for LcConfig {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(self.sync_threshold);
        w.put_bool(self.page_fhs_fec);
        w.put_u64(self.peek_us);
        w.put_u32(self.inquiry_backoff_max);
        w.put_u32(self.inquiry_rearm_backoff_max);
        w.put_u32(self.train_switch_slots);
        w.put_u32(self.page_resp_timeout_slots);
        w.put_u32(self.new_connection_timeout_slots);
        w.put_u32(self.t_poll_slots);
        self.default_acl.snap(w);
        w.put_bool(self.inquiry_scan_continuous);
        w.put_bool(self.page_scan_continuous);
        w.put_u32(self.page_scan_interval_slots);
        w.put_u32(self.page_scan_window_slots);
        w.put_u32(self.resync_guard_slots);
        w.put_u64(self.sniff_listen_us);
        w.put_u64(self.sniff_drift_ppm);
        w.put_u32(self.class_of_device);
        w.put_u32(self.supervision_timeout_slots);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            sync_threshold: r.take_u8()?,
            page_fhs_fec: r.take_bool()?,
            peek_us: r.take_u64()?,
            inquiry_backoff_max: r.take_u32()?,
            inquiry_rearm_backoff_max: r.take_u32()?,
            train_switch_slots: r.take_u32()?,
            page_resp_timeout_slots: r.take_u32()?,
            new_connection_timeout_slots: r.take_u32()?,
            t_poll_slots: r.take_u32()?,
            default_acl: PacketType::unsnap(r)?,
            inquiry_scan_continuous: r.take_bool()?,
            page_scan_continuous: r.take_bool()?,
            page_scan_interval_slots: r.take_u32()?,
            page_scan_window_slots: r.take_u32()?,
            resync_guard_slots: r.take_u32()?,
            sniff_listen_us: r.take_u64()?,
            sniff_drift_ppm: r.take_u64()?,
            class_of_device: r.take_u32()?,
            supervision_timeout_slots: r.take_u32()?,
        })
    }
}

impl Snap for LcCommand {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            LcCommand::Inquiry {
                num_responses,
                timeout_slots,
            } => {
                w.put_u8(0);
                w.put_u8(*num_responses);
                w.put_u32(*timeout_slots);
            }
            LcCommand::InquiryScan => w.put_u8(1),
            LcCommand::Page {
                target,
                clke_offset,
                timeout_slots,
            } => {
                w.put_u8(2);
                target.snap(w);
                w.put_u32(*clke_offset);
                w.put_u32(*timeout_slots);
            }
            LcCommand::PageScan => w.put_u8(3),
            LcCommand::AbortProcedure => w.put_u8(4),
            LcCommand::AclData { lt_addr, data } => {
                w.put_u8(5);
                w.put_u8(*lt_addr);
                data.snap(w);
            }
            LcCommand::Lmp { lt_addr, data } => {
                w.put_u8(6);
                w.put_u8(*lt_addr);
                data.snap(w);
            }
            LcCommand::SetAclType(t) => {
                w.put_u8(7);
                t.snap(w);
            }
            LcCommand::SetTpoll(t) => {
                w.put_u8(8);
                w.put_u32(*t);
            }
            LcCommand::SetAfh(map) => {
                w.put_u8(9);
                map.snap(w);
            }
            LcCommand::SetAfhAt { map, at_slot } => {
                w.put_u8(10);
                map.snap(w);
                w.put_u64(*at_slot);
            }
            LcCommand::CancelAfhSwitch => w.put_u8(11),
            LcCommand::ScoSetup { lt_addr, params } => {
                w.put_u8(12);
                w.put_u8(*lt_addr);
                params.snap(w);
            }
            LcCommand::ScoRemove { lt_addr } => {
                w.put_u8(13);
                w.put_u8(*lt_addr);
            }
            LcCommand::ScoData { lt_addr, data } => {
                w.put_u8(14);
                w.put_u8(*lt_addr);
                data.snap(w);
            }
            LcCommand::Sniff { lt_addr, params } => {
                w.put_u8(15);
                w.put_u8(*lt_addr);
                params.snap(w);
            }
            LcCommand::Unsniff { lt_addr } => {
                w.put_u8(16);
                w.put_u8(*lt_addr);
            }
            LcCommand::Hold {
                lt_addr,
                hold_slots,
            } => {
                w.put_u8(17);
                w.put_u8(*lt_addr);
                w.put_u32(*hold_slots);
            }
            LcCommand::HoldPiconet { master, hold_slots } => {
                w.put_u8(18);
                master.snap(w);
                w.put_u32(*hold_slots);
            }
            LcCommand::AclDataTo { master, data } => {
                w.put_u8(19);
                master.snap(w);
                data.snap(w);
            }
            LcCommand::Park {
                lt_addr,
                beacon_interval,
            } => {
                w.put_u8(20);
                w.put_u8(*lt_addr);
                w.put_u32(*beacon_interval);
            }
            LcCommand::Unpark { lt_addr } => {
                w.put_u8(21);
                w.put_u8(*lt_addr);
            }
            LcCommand::Detach { lt_addr } => {
                w.put_u8(22);
                w.put_u8(*lt_addr);
            }
            LcCommand::SetSupervisionTimeout { timeout_slots } => {
                w.put_u8(23);
                w.put_u32(*timeout_slots);
            }
            LcCommand::PowerOff => w.put_u8(24),
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.take_u8()? {
            0 => LcCommand::Inquiry {
                num_responses: r.take_u8()?,
                timeout_slots: r.take_u32()?,
            },
            1 => LcCommand::InquiryScan,
            2 => LcCommand::Page {
                target: BdAddr::unsnap(r)?,
                clke_offset: r.take_u32()?,
                timeout_slots: r.take_u32()?,
            },
            3 => LcCommand::PageScan,
            4 => LcCommand::AbortProcedure,
            5 => LcCommand::AclData {
                lt_addr: r.take_u8()?,
                data: Vec::unsnap(r)?,
            },
            6 => LcCommand::Lmp {
                lt_addr: r.take_u8()?,
                data: Vec::unsnap(r)?,
            },
            7 => LcCommand::SetAclType(PacketType::unsnap(r)?),
            8 => LcCommand::SetTpoll(r.take_u32()?),
            9 => LcCommand::SetAfh(ChannelMap::unsnap(r)?),
            10 => LcCommand::SetAfhAt {
                map: ChannelMap::unsnap(r)?,
                at_slot: r.take_u64()?,
            },
            11 => LcCommand::CancelAfhSwitch,
            12 => LcCommand::ScoSetup {
                lt_addr: r.take_u8()?,
                params: ScoParams::unsnap(r)?,
            },
            13 => LcCommand::ScoRemove {
                lt_addr: r.take_u8()?,
            },
            14 => LcCommand::ScoData {
                lt_addr: r.take_u8()?,
                data: Vec::unsnap(r)?,
            },
            15 => LcCommand::Sniff {
                lt_addr: r.take_u8()?,
                params: SniffParams::unsnap(r)?,
            },
            16 => LcCommand::Unsniff {
                lt_addr: r.take_u8()?,
            },
            17 => LcCommand::Hold {
                lt_addr: r.take_u8()?,
                hold_slots: r.take_u32()?,
            },
            18 => LcCommand::HoldPiconet {
                master: BdAddr::unsnap(r)?,
                hold_slots: r.take_u32()?,
            },
            19 => LcCommand::AclDataTo {
                master: BdAddr::unsnap(r)?,
                data: Vec::unsnap(r)?,
            },
            20 => LcCommand::Park {
                lt_addr: r.take_u8()?,
                beacon_interval: r.take_u32()?,
            },
            21 => LcCommand::Unpark {
                lt_addr: r.take_u8()?,
            },
            22 => LcCommand::Detach {
                lt_addr: r.take_u8()?,
            },
            23 => LcCommand::SetSupervisionTimeout {
                timeout_slots: r.take_u32()?,
            },
            24 => LcCommand::PowerOff,
            _ => return Err(r.malformed("unknown LC command tag")),
        })
    }
}

impl Snap for LcEvent {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            LcEvent::InquiryResult { addr, clk_offset } => {
                w.put_u8(0);
                addr.snap(w);
                w.put_u32(*clk_offset);
            }
            LcEvent::InquiryComplete { responses } => {
                w.put_u8(1);
                w.put_u8(*responses);
            }
            LcEvent::PageComplete { addr, lt_addr } => {
                w.put_u8(2);
                addr.snap(w);
                w.put_u8(*lt_addr);
            }
            LcEvent::PageFailed { addr } => {
                w.put_u8(3);
                addr.snap(w);
            }
            LcEvent::Connected { master, lt_addr } => {
                w.put_u8(4);
                master.snap(w);
                w.put_u8(*lt_addr);
            }
            LcEvent::AclReceived {
                lt_addr,
                llid,
                data,
            } => {
                w.put_u8(5);
                w.put_u8(*lt_addr);
                llid.snap(w);
                data.snap(w);
            }
            LcEvent::AclDelivered { lt_addr } => {
                w.put_u8(6);
                w.put_u8(*lt_addr);
            }
            LcEvent::ScoReceived { lt_addr, data } => {
                w.put_u8(7);
                w.put_u8(*lt_addr);
                data.snap(w);
            }
            LcEvent::ModeChanged { lt_addr, mode } => {
                w.put_u8(8);
                w.put_u8(*lt_addr);
                mode.snap(w);
            }
            LcEvent::Detached { lt_addr } => {
                w.put_u8(9);
                w.put_u8(*lt_addr);
            }
            LcEvent::PhaseChanged { phase } => {
                w.put_u8(10);
                phase.snap(w);
            }
            LcEvent::FidelityChanged { promoted } => {
                w.put_u8(11);
                w.put_bool(*promoted);
            }
            LcEvent::SupervisionTimeout { lt_addr } => {
                w.put_u8(12);
                w.put_u8(*lt_addr);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.take_u8()? {
            0 => LcEvent::InquiryResult {
                addr: BdAddr::unsnap(r)?,
                clk_offset: r.take_u32()?,
            },
            1 => LcEvent::InquiryComplete {
                responses: r.take_u8()?,
            },
            2 => LcEvent::PageComplete {
                addr: BdAddr::unsnap(r)?,
                lt_addr: r.take_u8()?,
            },
            3 => LcEvent::PageFailed {
                addr: BdAddr::unsnap(r)?,
            },
            4 => LcEvent::Connected {
                master: BdAddr::unsnap(r)?,
                lt_addr: r.take_u8()?,
            },
            5 => LcEvent::AclReceived {
                lt_addr: r.take_u8()?,
                llid: Llid::unsnap(r)?,
                data: Vec::unsnap(r)?,
            },
            6 => LcEvent::AclDelivered {
                lt_addr: r.take_u8()?,
            },
            7 => LcEvent::ScoReceived {
                lt_addr: r.take_u8()?,
                data: Vec::unsnap(r)?,
            },
            8 => LcEvent::ModeChanged {
                lt_addr: r.take_u8()?,
                mode: LinkMode::unsnap(r)?,
            },
            9 => LcEvent::Detached {
                lt_addr: r.take_u8()?,
            },
            10 => LcEvent::PhaseChanged {
                phase: LifePhase::unsnap(r)?,
            },
            11 => LcEvent::FidelityChanged {
                promoted: r.take_bool()?,
            },
            12 => LcEvent::SupervisionTimeout {
                lt_addr: r.take_u8()?,
            },
            _ => return Err(r.malformed("unknown LC event tag")),
        })
    }
}

impl Snap for LinkState {
    fn snap(&self, w: &mut SnapWriter) {
        self.tx.snap(w);
        self.in_flight.snap(w);
        w.put_bool(self.seqn_out);
        self.last_seqn_in.snap(w);
        w.put_bool(self.arqn_to_send);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            tx: crate::buffer::TxBuffer::unsnap(r)?,
            in_flight: Option::unsnap(r)?,
            seqn_out: r.take_bool()?,
            last_seqn_in: Option::unsnap(r)?,
            arqn_to_send: r.take_bool()?,
        })
    }
}

impl Snap for SlaveSlot {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(self.lt_addr);
        self.addr.snap(w);
        self.mode.snap(w);
        self.sco.snap(w);
        self.sco_out.snap(w);
        self.sniff.snap(w);
        self.sniff_ext_until_slot.snap(w);
        self.hold_until_slot.snap(w);
        self.sup_hold_excuse_slot.snap(w);
        w.put_u32(self.park_beacon_interval);
        w.put_u8(self.parked_lt);
        w.put_u64(self.last_poll_slot);
        w.put_bool(self.poll_asap);
        self.newconn_deadline_slot.snap(w);
        w.put_u64(self.last_rx_slot);
        self.link.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            lt_addr: r.take_u8()?,
            addr: BdAddr::unsnap(r)?,
            mode: LinkMode::unsnap(r)?,
            sco: Option::unsnap(r)?,
            sco_out: VecDeque::unsnap(r)?,
            sniff: Option::unsnap(r)?,
            sniff_ext_until_slot: Option::unsnap(r)?,
            hold_until_slot: Option::unsnap(r)?,
            sup_hold_excuse_slot: Option::unsnap(r)?,
            park_beacon_interval: r.take_u32()?,
            parked_lt: r.take_u8()?,
            last_poll_slot: r.take_u64()?,
            poll_asap: r.take_bool()?,
            newconn_deadline_slot: Option::unsnap(r)?,
            last_rx_slot: r.take_u64()?,
            link: LinkState::unsnap(r)?,
        })
    }
}

impl Snap for MasterCtx {
    fn snap(&self, w: &mut SnapWriter) {
        self.slaves.snap(w);
        self.busy_until.snap(w);
        self.awaiting.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            slaves: Vec::unsnap(r)?,
            busy_until: SimTime::unsnap(r)?,
            awaiting: Option::unsnap(r)?,
        })
    }
}

impl Snap for SlaveCtx {
    fn snap(&self, w: &mut SnapWriter) {
        self.master.snap(w);
        w.put_u8(self.lt_addr);
        w.put_u32(self.clk_offset);
        self.mode.snap(w);
        self.sco.snap(w);
        self.sco_out.snap(w);
        self.sniff.snap(w);
        self.sniff_ext_until_slot.snap(w);
        self.hold_until_slot.snap(w);
        self.sup_hold_excuse_slot.snap(w);
        w.put_u32(self.park_beacon_interval);
        w.put_u8(self.parked_lt);
        self.newconn_deadline_slot.snap(w);
        w.put_u64(self.last_rx_slot);
        w.put_bool(self.resync);
        self.link.snap(w);
        w.put_bool(self.listening_full_slot);
        self.busy_until.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            master: BdAddr::unsnap(r)?,
            lt_addr: r.take_u8()?,
            clk_offset: r.take_u32()?,
            mode: LinkMode::unsnap(r)?,
            sco: Option::unsnap(r)?,
            sco_out: VecDeque::unsnap(r)?,
            sniff: Option::unsnap(r)?,
            sniff_ext_until_slot: Option::unsnap(r)?,
            hold_until_slot: Option::unsnap(r)?,
            sup_hold_excuse_slot: Option::unsnap(r)?,
            park_beacon_interval: r.take_u32()?,
            parked_lt: r.take_u8()?,
            newconn_deadline_slot: Option::unsnap(r)?,
            last_rx_slot: r.take_u64()?,
            resync: r.take_bool()?,
            link: LinkState::unsnap(r)?,
            listening_full_slot: r.take_bool()?,
            busy_until: SimTime::unsnap(r)?,
        })
    }
}

impl Snap for InquiryCtx {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(self.num_responses);
        w.put_u32(self.timeout_slots);
        self.found.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            num_responses: r.take_u8()?,
            timeout_slots: r.take_u32()?,
            found: Vec::unsnap(r)?,
        })
    }
}

impl Snap for InquiryScanCtx {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_bool(self.armed);
        self.backoff_until.snap(w);
        self.cur_channel.snap(w);
        w.put_u32(self.responses_sent);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let armed = r.take_bool()?;
        let backoff_until = Option::unsnap(r)?;
        let cur_channel: Option<u8> = Option::unsnap(r)?;
        if cur_channel.is_some_and(|ch| ch >= CHANNELS) {
            return Err(r.malformed("scan channel out of range"));
        }
        Ok(Self {
            armed,
            backoff_until,
            cur_channel,
            responses_sent: r.take_u32()?,
        })
    }
}

impl Snap for PageSub {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            PageSub::Paging => w.put_u8(0),
            PageSub::MasterResponse {
                channel,
                next_fhs_at,
                deadline,
            } => {
                w.put_u8(1);
                w.put_u8(*channel);
                next_fhs_at.snap(w);
                deadline.snap(w);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.take_u8()? {
            0 => PageSub::Paging,
            1 => PageSub::MasterResponse {
                channel: rf_channel(r)?,
                next_fhs_at: SimTime::unsnap(r)?,
                deadline: SimTime::unsnap(r)?,
            },
            _ => return Err(r.malformed("unknown page substate tag")),
        })
    }
}

impl Snap for PageCtx {
    fn snap(&self, w: &mut SnapWriter) {
        self.target.snap(w);
        w.put_u32(self.clke_offset);
        w.put_u32(self.timeout_slots);
        self.sub.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            target: BdAddr::unsnap(r)?,
            clke_offset: r.take_u32()?,
            timeout_slots: r.take_u32()?,
            sub: PageSub::unsnap(r)?,
        })
    }
}

impl Snap for PageScanSub {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            PageScanSub::Scanning => w.put_u8(0),
            PageScanSub::SlaveResponse { channel, deadline } => {
                w.put_u8(1);
                w.put_u8(*channel);
                deadline.snap(w);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.take_u8()? {
            0 => PageScanSub::Scanning,
            1 => PageScanSub::SlaveResponse {
                channel: rf_channel(r)?,
                deadline: SimTime::unsnap(r)?,
            },
            _ => return Err(r.malformed("unknown page-scan substate tag")),
        })
    }
}

impl Snap for PageScanCtx {
    fn snap(&self, w: &mut SnapWriter) {
        self.sub.snap(w);
        self.cur_channel.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let sub = PageScanSub::unsnap(r)?;
        let cur_channel: Option<u8> = Option::unsnap(r)?;
        if cur_channel.is_some_and(|ch| ch >= CHANNELS) {
            return Err(r.malformed("scan channel out of range"));
        }
        Ok(Self { sub, cur_channel })
    }
}

impl Snap for ProcState {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            ProcState::Standby => w.put_u8(0),
            ProcState::Inquiry(ctx) => {
                w.put_u8(1);
                ctx.snap(w);
            }
            ProcState::InquiryScan(ctx) => {
                w.put_u8(2);
                ctx.snap(w);
            }
            ProcState::Page(ctx) => {
                w.put_u8(3);
                ctx.snap(w);
            }
            ProcState::PageScan(ctx) => {
                w.put_u8(4);
                ctx.snap(w);
            }
            ProcState::Connection => w.put_u8(5),
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.take_u8()? {
            0 => ProcState::Standby,
            1 => ProcState::Inquiry(InquiryCtx::unsnap(r)?),
            2 => ProcState::InquiryScan(InquiryScanCtx::unsnap(r)?),
            3 => ProcState::Page(PageCtx::unsnap(r)?),
            4 => ProcState::PageScan(PageScanCtx::unsnap(r)?),
            5 => ProcState::Connection,
            _ => return Err(r.malformed("unknown procedure-state tag")),
        })
    }
}

impl Snap for LinkController {
    fn snap(&self, w: &mut SnapWriter) {
        self.cfg.snap(w);
        self.addr.snap(w);
        self.clock.snap(w);
        self.rng.snap(w);
        self.state.snap(w);
        self.master.snap(w);
        self.slave_links.snap(w);
        self.acl_type.snap(w);
        w.put_u32(self.t_poll);
        self.afh.snap(w);
        self.afh_pending.snap(w);
        self.assessment.snap(w);
        self.phase.snap(w);
        w.put_u64(self.proc_start_tick);
        self.ff_until.snap(w);
        w.put_bool(self.stat_promoted);
        w.put_u64(self.dropped_tx_bytes);
        // The codec is a pure access-code memoization: rebuilt empty on
        // restore, refilled on demand with bit-identical images.
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            cfg: LcConfig::unsnap(r)?,
            addr: BdAddr::unsnap(r)?,
            clock: Clock::unsnap(r)?,
            rng: btsim_kernel::SimRng::unsnap(r)?,
            state: ProcState::unsnap(r)?,
            master: Option::unsnap(r)?,
            slave_links: Vec::unsnap(r)?,
            acl_type: PacketType::unsnap(r)?,
            t_poll: r.take_u32()?,
            afh: Option::unsnap(r)?,
            afh_pending: Option::unsnap(r)?,
            assessment: ChannelAssessment::unsnap(r)?,
            phase: LifePhase::unsnap(r)?,
            proc_start_tick: r.take_u64()?,
            ff_until: SimTime::unsnap(r)?,
            stat_promoted: r.take_bool()?,
            dropped_tx_bytes: r.take_u64()?,
            codec: packet::Codec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btsim_kernel::SimRng;

    fn snap_bytes<T: Snap>(v: &T) -> Vec<u8> {
        let mut w = SnapWriter::new();
        v.snap(&mut w);
        w.into_bytes()
    }

    fn unsnap_all<T: Snap>(bytes: &[u8]) -> Result<T, SnapshotError> {
        let mut r = SnapReader::new(bytes);
        let v = T::unsnap(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    /// A controller mid-procedure with a populated connection tree.
    fn busy_controller() -> LinkController {
        let mut lc = LinkController::new(
            BdAddr::new(0xAB, 0xCD, 0x123456),
            Clock::new(ClkVal::new(42)),
            LcConfig::default(),
            7,
        );
        // Burn some RNG draws so the stream position is non-trivial.
        for _ in 0..5 {
            lc.rng.range_u64(1 << 20);
        }
        lc.afh = Some(ChannelMap::blocking(10..40));
        lc.afh_pending = Some((ChannelMap::blocking(50..70), 12_345));
        lc.assessment.note(3, true);
        lc.assessment.note(61, false);
        lc.acl_type = PacketType::Dh3;
        lc.t_poll = 36;
        lc.phase = LifePhase::Active;
        lc.proc_start_tick = 99;
        lc.stat_promoted = true;
        lc.state = ProcState::Connection;

        let mut link = LinkState::new();
        link.tx.push(Llid::Start, vec![1, 2, 3, 4]);
        link.tx.push(Llid::Lmp, vec![0x51]);
        link.in_flight = Some((Llid::Start, vec![9, 9]));
        link.last_seqn_in = Some(true);
        link.arqn_to_send = true;
        let slot = SlaveSlot {
            lt_addr: 1,
            addr: BdAddr::new(0, 1, 2),
            mode: LinkMode::Sniff,
            sco: Some(ScoParams::for_type(PacketType::Hv3, 2)),
            sco_out: VecDeque::from(vec![7, 8, 9]),
            sniff: Some(SniffParams::default()),
            sniff_ext_until_slot: Some(400),
            hold_until_slot: None,
            sup_hold_excuse_slot: None,
            park_beacon_interval: 0,
            parked_lt: 0,
            last_poll_slot: 300,
            poll_asap: true,
            newconn_deadline_slot: Some(500),
            last_rx_slot: 250,
            link,
        };
        lc.master = Some(MasterCtx {
            slaves: vec![slot],
            busy_until: SimTime::from_us(1250),
            awaiting: Some((1, SimTime::from_us(1875))),
        });
        lc.slave_links = vec![SlaveCtx {
            master: BdAddr::new(5, 6, 7),
            lt_addr: 2,
            clk_offset: 1024,
            mode: LinkMode::Active,
            sco: None,
            sco_out: VecDeque::new(),
            sniff: None,
            sniff_ext_until_slot: None,
            hold_until_slot: Some(900),
            sup_hold_excuse_slot: Some(900),
            park_beacon_interval: 0,
            parked_lt: 0,
            newconn_deadline_slot: None,
            last_rx_slot: 800,
            resync: true,
            link: LinkState::new(),
            listening_full_slot: true,
            busy_until: SimTime::from_us(625),
        }];
        lc.dropped_tx_bytes = 123;
        lc
    }

    #[test]
    fn controller_roundtrips_bit_exactly() {
        let lc = busy_controller();
        let bytes = snap_bytes(&lc);
        let mut back: LinkController = unsnap_all(&bytes).expect("roundtrip");
        // Byte-stable: re-encoding the restored controller is identical.
        assert_eq!(snap_bytes(&back), bytes);
        // The RNG stream resumes exactly where the original would.
        let mut orig = lc;
        assert_eq!(back.rng.fingerprint(), orig.rng.fingerprint());
        assert_eq!(back.rng.range_u64(1 << 20), orig.rng.range_u64(1 << 20));
        assert_eq!(back.addr(), orig.addr());
        assert_eq!(back.queued_tx_bytes(), orig.queued_tx_bytes());
        assert_eq!(back.connected_slaves(), orig.connected_slaves());
        assert_eq!(back.slave_masters(), orig.slave_masters());
    }

    #[test]
    fn procedure_states_roundtrip() {
        for state in [
            ProcState::Standby,
            ProcState::Inquiry(InquiryCtx {
                num_responses: 3,
                timeout_slots: 8192,
                found: vec![BdAddr::new(1, 2, 3)],
            }),
            ProcState::InquiryScan(InquiryScanCtx {
                armed: true,
                backoff_until: Some(SimTime::from_us(10_000)),
                cur_channel: Some(17),
                responses_sent: 2,
            }),
            ProcState::Page(PageCtx {
                target: BdAddr::new(9, 9, 9),
                clke_offset: 77,
                timeout_slots: 4096,
                sub: PageSub::MasterResponse {
                    channel: 33,
                    next_fhs_at: SimTime::from_us(100),
                    deadline: SimTime::from_us(5000),
                },
            }),
            ProcState::PageScan(PageScanCtx {
                sub: PageScanSub::SlaveResponse {
                    channel: 5,
                    deadline: SimTime::from_us(2000),
                },
                cur_channel: None,
            }),
            ProcState::Connection,
        ] {
            let bytes = snap_bytes(&state);
            let back: ProcState = unsnap_all(&bytes).expect("roundtrip");
            assert_eq!(snap_bytes(&back), bytes);
        }
    }

    #[test]
    fn every_tagged_enum_roundtrips() {
        for t in [
            PacketType::Id,
            PacketType::Null,
            PacketType::Poll,
            PacketType::Fhs,
            PacketType::Dm1,
            PacketType::Dh1,
            PacketType::Dm3,
            PacketType::Dh3,
            PacketType::Dm5,
            PacketType::Dh5,
            PacketType::Aux1,
            PacketType::Hv1,
            PacketType::Hv2,
            PacketType::Hv3,
            PacketType::Dv,
        ] {
            assert_eq!(unsnap_all::<PacketType>(&snap_bytes(&t)).unwrap(), t);
        }
        for l in [Llid::Continuation, Llid::Start, Llid::Lmp] {
            assert_eq!(unsnap_all::<Llid>(&snap_bytes(&l)).unwrap(), l);
        }
        for p in [
            LifePhase::Standby,
            LifePhase::Inquiry,
            LifePhase::InquiryScan,
            LifePhase::Page,
            LifePhase::PageScan,
            LifePhase::Active,
            LifePhase::Sniff,
            LifePhase::Hold,
            LifePhase::Park,
        ] {
            assert_eq!(unsnap_all::<LifePhase>(&snap_bytes(&p)).unwrap(), p);
        }
        for m in [
            LinkMode::Active,
            LinkMode::Sniff,
            LinkMode::Hold,
            LinkMode::Park,
        ] {
            assert_eq!(unsnap_all::<LinkMode>(&snap_bytes(&m)).unwrap(), m);
        }
    }

    #[test]
    fn commands_and_events_roundtrip() {
        let cmds = vec![
            LcCommand::Inquiry {
                num_responses: 4,
                timeout_slots: 100,
            },
            LcCommand::InquiryScan,
            LcCommand::Page {
                target: BdAddr::new(1, 2, 3),
                clke_offset: 9,
                timeout_slots: 50,
            },
            LcCommand::PageScan,
            LcCommand::AbortProcedure,
            LcCommand::AclData {
                lt_addr: 1,
                data: vec![1, 2, 3],
            },
            LcCommand::Lmp {
                lt_addr: 2,
                data: vec![0x51, 7],
            },
            LcCommand::SetAclType(PacketType::Dh5),
            LcCommand::SetTpoll(40),
            LcCommand::SetAfh(ChannelMap::blocking(0..30)),
            LcCommand::SetAfhAt {
                map: ChannelMap::blocking(40..59),
                at_slot: 777,
            },
            LcCommand::CancelAfhSwitch,
            LcCommand::ScoSetup {
                lt_addr: 1,
                params: ScoParams::for_type(PacketType::Hv2, 0),
            },
            LcCommand::ScoRemove { lt_addr: 1 },
            LcCommand::ScoData {
                lt_addr: 1,
                data: vec![6; 10],
            },
            LcCommand::Sniff {
                lt_addr: 3,
                params: SniffParams::default(),
            },
            LcCommand::Unsniff { lt_addr: 3 },
            LcCommand::Hold {
                lt_addr: 1,
                hold_slots: 200,
            },
            LcCommand::HoldPiconet {
                master: BdAddr::new(4, 5, 6),
                hold_slots: 300,
            },
            LcCommand::AclDataTo {
                master: BdAddr::new(4, 5, 6),
                data: vec![1],
            },
            LcCommand::Park {
                lt_addr: 2,
                beacon_interval: 64,
            },
            LcCommand::Unpark { lt_addr: 2 },
            LcCommand::Detach { lt_addr: 1 },
            LcCommand::SetSupervisionTimeout {
                timeout_slots: 16_000,
            },
            LcCommand::PowerOff,
        ];
        for cmd in cmds {
            assert_eq!(unsnap_all::<LcCommand>(&snap_bytes(&cmd)).unwrap(), cmd);
        }
        let events = vec![
            LcEvent::InquiryResult {
                addr: BdAddr::new(1, 2, 3),
                clk_offset: 5,
            },
            LcEvent::InquiryComplete { responses: 2 },
            LcEvent::PageComplete {
                addr: BdAddr::new(1, 2, 3),
                lt_addr: 1,
            },
            LcEvent::PageFailed {
                addr: BdAddr::new(1, 2, 3),
            },
            LcEvent::Connected {
                master: BdAddr::new(9, 8, 7),
                lt_addr: 2,
            },
            LcEvent::AclReceived {
                lt_addr: 1,
                llid: Llid::Start,
                data: vec![1, 2],
            },
            LcEvent::AclDelivered { lt_addr: 1 },
            LcEvent::ScoReceived {
                lt_addr: 1,
                data: vec![3; 30],
            },
            LcEvent::ModeChanged {
                lt_addr: 1,
                mode: LinkMode::Sniff,
            },
            LcEvent::Detached { lt_addr: 1 },
            LcEvent::PhaseChanged {
                phase: LifePhase::Hold,
            },
            LcEvent::FidelityChanged { promoted: true },
            LcEvent::SupervisionTimeout { lt_addr: 1 },
        ];
        for ev in events {
            assert_eq!(unsnap_all::<LcEvent>(&snap_bytes(&ev)).unwrap(), ev);
        }
    }

    #[test]
    fn malformed_controller_bytes_are_rejected_not_panicking() {
        let bytes = snap_bytes(&busy_controller());
        // Truncation at every cut point fails cleanly.
        for cut in 0..bytes.len() {
            assert!(
                unsnap_all::<LinkController>(&bytes[..cut]).is_err(),
                "cut at {cut} must be rejected"
            );
        }
        // Trailing garbage is rejected too.
        let mut long = bytes.clone();
        long.push(0);
        assert!(unsnap_all::<LinkController>(&long).is_err());
        // A clock wider than 28 bits is semantic garbage.
        let mut w = SnapWriter::new();
        w.put_u32(CLK_WRAP);
        assert!(unsnap_all::<ClkVal>(w.as_bytes()).is_err());
        // A channel map below the AFH floor is rejected at decode.
        let mut w = SnapWriter::new();
        w.put_bytes(&[0u8; CHANNEL_MAP_BYTES]);
        assert!(unsnap_all::<ChannelMap>(w.as_bytes()).is_err());
        // Out-of-range RF channel in a page response.
        let mut w = SnapWriter::new();
        w.put_u8(1);
        w.put_u8(79);
        SimTime::from_us(1).snap(&mut w);
        SimTime::from_us(2).snap(&mut w);
        assert!(unsnap_all::<PageSub>(w.as_bytes()).is_err());
    }

    #[test]
    fn reseed_matches_a_fresh_controller_stream() {
        let mut lc = busy_controller();
        lc.reseed(0xFEED);
        let mut fresh = SimRng::new(0xFEED);
        assert_eq!(lc.rng.fingerprint(), fresh.fingerprint());
        assert_eq!(lc.rng.range_u64(1 << 20), fresh.range_u64(1 << 20));
    }
}
