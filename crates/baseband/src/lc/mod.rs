//! The link controller: the paper's `STATE MACHINE` module (Fig. 3/4).
//!
//! [`LinkController`] is a *sans-IO* state machine: the simulator feeds it
//! half-slot ticks ([`LinkController::on_tick`]), decoded-packet
//! deliveries ([`LinkController::on_rx`]) and application commands
//! ([`LinkController::command`]); it returns [`LcAction`]s — RF
//! transmissions, receive windows and upward events. This mirrors the
//! paper's separation between the baseband state machine and the RF
//! module it drives through `enable_tx_RF` / `enable_rx_RF`.
//!
//! States follow the spec's main diagram (paper Fig. 4): STANDBY,
//! INQUIRY, INQUIRY SCAN (+ response/backoff), PAGE, PAGE SCAN, MASTER
//! RESPONSE, SLAVE RESPONSE and CONNECTION with the ACTIVE / SNIFF /
//! HOLD / PARK sub-modes.

mod afh;
mod connection;
mod inquiry;
mod page;
mod snap_impls;
mod statpath;
mod wakeup;

pub use afh::ChannelAssessment;
pub use connection::{LinkMode, ScoParams, SniffParams};
pub use statpath::{stat_slot_pair, StatPairReport, StatRespReport, StatSide};

use btsim_coding::{syncword, BitVec};
use btsim_kernel::{SimDuration, SimRng, SimTime};

use crate::address::{BdAddr, DCI_UAP};
use crate::clock::{ClkVal, Clock};
use crate::hop;
use crate::packet::{self, LinkKeys, PacketType};

pub(crate) use connection::{MasterCtx, SlaveCtx};
pub(crate) use inquiry::{InquiryCtx, InquiryScanCtx};
pub(crate) use page::{PageCtx, PageScanCtx};

/// Life phase of a device, used for power attribution (the paper's
/// inquiry/page/active/sniff/park/hold phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LifePhase {
    /// No procedure running.
    Standby,
    /// Discovering other devices.
    Inquiry,
    /// Discoverable, listening for inquiries.
    InquiryScan,
    /// Connecting to a specific device.
    Page,
    /// Connectable, listening for pages.
    PageScan,
    /// In a piconet, active mode.
    Active,
    /// In a piconet, sniff mode.
    Sniff,
    /// In a piconet, hold mode.
    Hold,
    /// In a piconet, park mode.
    Park,
}

/// Role in a piconet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Coordinates the piconet, transmits in even slots.
    Master,
    /// Responds to the master by polling.
    Slave,
}

/// Static configuration of a link controller.
///
/// Defaults are spec-v1.2-faithful where the spec fixes a value;
/// calibration knobs reproducing the paper's behavioural model are
/// documented field by field (see EXPERIMENTS.md for the derivation).
#[derive(Debug, Clone, PartialEq)]
pub struct LcConfig {
    /// Sync-word correlator threshold (matches out of 64).
    pub sync_threshold: u8,
    /// Whether *page-response* FHS payloads carry the spec's 2/3 FEC.
    /// The paper's behavioural model — where the page phase collapses for
    /// BER > 1/30 while inquiry survives — is reproduced with `false`;
    /// inquiry-response FHS packets always use the spec coding.
    pub page_fhs_fec: bool,
    /// Carrier-detect window at each listened slot start, in µs. The
    /// paper's active-mode slave floor of 2.6% RF activity corresponds to
    /// ~32 µs per slot pair.
    pub peek_us: u64,
    /// Maximum first-ID inquiry-response backoff (slots); drawn uniformly.
    pub inquiry_backoff_max: u32,
    /// Maximum re-arm backoff after an FHS response (slots).
    pub inquiry_rearm_backoff_max: u32,
    /// Page/inquiry train switch period in slots (A ↔ B train).
    pub train_switch_slots: u32,
    /// pagerespTO: slots to wait for the FHS / ID ack during page response.
    pub page_resp_timeout_slots: u32,
    /// newconnectionTO: slots to complete the first POLL exchange.
    pub new_connection_timeout_slots: u32,
    /// Default polling interval T_poll (slots).
    pub t_poll_slots: u32,
    /// ACL packet type used for data traffic.
    pub default_acl: PacketType,
    /// Continuous inquiry scan (paper Fig. 5: scanning receivers always on).
    pub inquiry_scan_continuous: bool,
    /// Continuous page scan.
    pub page_scan_continuous: bool,
    /// Page-scan interval in slots (used when not continuous).
    pub page_scan_interval_slots: u32,
    /// Page-scan window in slots (used when not continuous).
    pub page_scan_window_slots: u32,
    /// Slots a slave wakes early after hold to resynchronise.
    pub resync_guard_slots: u32,
    /// Fixed listen window at each sniff anchor, in µs.
    pub sniff_listen_us: u64,
    /// Drift-proportional widening of the sniff anchor window, in ppm of
    /// the sniff interval. The spec's crystal tolerance is ±20 ppm; the
    /// paper's behavioural sniff cost is reproduced with a much larger
    /// effective value (see EXPERIMENTS.md, Fig. 11 calibration).
    pub sniff_drift_ppm: u64,
    /// Class-of-device advertised in FHS packets.
    pub class_of_device: u32,
    /// supervisionTO: slots without a valid reception on a connected
    /// link before the link is declared dead and torn down (spec
    /// default 0x7D00 = 32000 slots = 20 s; 0 disables supervision).
    /// The timer runs in active and sniff modes on both ends; a hold
    /// period is excused (the timer restarts from the hold end) and
    /// park suspends it entirely.
    pub supervision_timeout_slots: u32,
}

impl Default for LcConfig {
    fn default() -> Self {
        Self {
            sync_threshold: syncword::DEFAULT_SYNC_THRESHOLD,
            page_fhs_fec: true,
            peek_us: 32,
            inquiry_backoff_max: 2048,
            inquiry_rearm_backoff_max: 1024,
            train_switch_slots: 2048,
            page_resp_timeout_slots: 8,
            new_connection_timeout_slots: 32,
            t_poll_slots: 100,
            default_acl: PacketType::Dm1,
            inquiry_scan_continuous: true,
            page_scan_continuous: true,
            page_scan_interval_slots: 2048,
            page_scan_window_slots: 18,
            resync_guard_slots: 3,
            sniff_listen_us: 233,
            sniff_drift_ppm: 14350,
            class_of_device: 0x00_1F00,
            supervision_timeout_slots: 32_000,
        }
    }
}

/// Commands from the link manager / application layer.
#[derive(Debug, Clone, PartialEq)]
pub enum LcCommand {
    /// Start discovering devices (paper's Enable_inquiry).
    Inquiry {
        /// Stop after this many FHS responses (0 = run to timeout).
        num_responses: u8,
        /// Give up after this many slots (0 = no timeout).
        timeout_slots: u32,
    },
    /// Become discoverable (Enable_inquiry_scan).
    InquiryScan,
    /// Connect to `target` as master (Enable_page).
    Page {
        /// Device to page.
        target: BdAddr,
        /// CLKN offset of the target relative to our CLKN (from inquiry).
        clke_offset: u32,
        /// Give up after this many slots (0 = no timeout).
        timeout_slots: u32,
    },
    /// Become connectable (Enable_page_scan).
    PageScan,
    /// Abort any procedure and return to standby / connection
    /// (Enable_detach_reset for procedures).
    AbortProcedure,
    /// Queue ACL user data to a connected peer.
    AclData {
        /// Destination logical transport (ignored on the slave side).
        lt_addr: u8,
        /// Payload bytes.
        data: Vec<u8>,
    },
    /// Queue an LMP PDU to a connected peer.
    Lmp {
        /// Destination logical transport (ignored on the slave side).
        lt_addr: u8,
        /// PDU bytes (must fit one DM1).
        data: Vec<u8>,
    },
    /// Change the ACL packet type used for data.
    SetAclType(PacketType),
    /// Change the polling interval.
    SetTpoll(u32),
    /// Install an AFH channel map for connection-state hopping
    /// immediately (v1.2 adaptive frequency hopping; both ends must
    /// receive the same map). Prefer [`LcCommand::SetAfhAt`] on live
    /// links — an immediate switch on one end desynchronises the hop
    /// sequences until the other end follows.
    SetAfh(hop::ChannelMap),
    /// Schedule an AFH map switch at an agreed piconet slot (the
    /// master-announced instant of `LMP_set_AFH`). Hops for slots
    /// before `at_slot` keep the previous map; hops for `at_slot` and
    /// later use the new one, so master and slaves that agree on the
    /// instant stay hop-synchronized through the switch.
    SetAfhAt {
        /// The map to switch to.
        map: hop::ChannelMap,
        /// Piconet slot (both ends' simulation slot count) at which the
        /// new map takes effect.
        at_slot: u64,
    },
    /// Cancel a scheduled AFH switch whose instant has not passed yet
    /// (the `LMP_not_accepted` path). A switch already in effect stays.
    CancelAfhSwitch,
    /// Establish an SCO voice link over an existing ACL connection.
    ScoSetup {
        /// Link (slave's own on the slave side).
        lt_addr: u8,
        /// SCO parameters (interval, offset, HV type).
        params: ScoParams,
    },
    /// Remove the SCO link.
    ScoRemove {
        /// Link to strip of its SCO reservation.
        lt_addr: u8,
    },
    /// Queue voice bytes on the SCO link (sent without ARQ; missing
    /// bytes are padded with silence).
    ScoData {
        /// Link the voice belongs to.
        lt_addr: u8,
        /// Voice samples.
        data: Vec<u8>,
    },
    /// Enter sniff mode on a link (Enable_sniff_mode).
    Sniff {
        /// Link (slave's own on the slave side).
        lt_addr: u8,
        /// Sniff parameters.
        params: SniffParams,
    },
    /// Leave sniff mode.
    Unsniff {
        /// Link to return to active mode.
        lt_addr: u8,
    },
    /// Enter hold mode for `hold_slots` (Enable_hold_mode).
    Hold {
        /// Link to hold.
        lt_addr: u8,
        /// Duration of the hold in slots.
        hold_slots: u32,
    },
    /// Hold the slave link to a specific piconet master. Scatternet
    /// bridges keep several slave links whose LT_ADDRs may coincide;
    /// the master address is always unambiguous.
    HoldPiconet {
        /// Master of the piconet whose link is held.
        master: BdAddr,
        /// Duration of the hold in slots.
        hold_slots: u32,
    },
    /// Queue ACL user data on the slave link to a specific piconet
    /// master (the bridge-side uplink of a scatternet relay; plain
    /// [`LcCommand::AclData`] selects the link by LT_ADDR).
    AclDataTo {
        /// Master of the piconet the data goes up into.
        master: BdAddr,
        /// Payload bytes.
        data: Vec<u8>,
    },
    /// Park the slave (Enable_park_mode).
    Park {
        /// Link to park.
        lt_addr: u8,
        /// Beacon interval in slots.
        beacon_interval: u32,
    },
    /// Unpark a parked slave, restoring its LT_ADDR.
    Unpark {
        /// LT_ADDR to restore.
        lt_addr: u8,
    },
    /// Tear down a link (Enable_detach_reset).
    Detach {
        /// Link to detach.
        lt_addr: u8,
    },
    /// Change the link-supervision timeout (the LC half of
    /// `LMP_supervision_timeout`; applies to every link of this
    /// controller).
    SetSupervisionTimeout {
        /// New supervisionTO in slots (0 disables supervision).
        timeout_slots: u32,
    },
    /// Power the device off instantly (fault injection): every link,
    /// procedure and queued exchange is lost without any notification —
    /// peers discover the death through their own supervision timers.
    PowerOff,
}

/// Indications from the link controller to the layers above.
#[derive(Debug, Clone, PartialEq)]
pub enum LcEvent {
    /// An FHS response was received during inquiry.
    InquiryResult {
        /// Discovered device.
        addr: BdAddr,
        /// Its CLKN offset relative to ours (for paging).
        clk_offset: u32,
    },
    /// Inquiry ended (enough responses or timeout).
    InquiryComplete {
        /// Number of distinct devices discovered.
        responses: u8,
    },
    /// Page succeeded; the target is now our slave.
    PageComplete {
        /// The connected slave.
        addr: BdAddr,
        /// Its logical transport address.
        lt_addr: u8,
    },
    /// Page gave up (timeout).
    PageFailed {
        /// The device we failed to reach.
        addr: BdAddr,
    },
    /// We joined a piconet as a slave.
    Connected {
        /// The piconet master.
        master: BdAddr,
        /// Our logical transport address.
        lt_addr: u8,
    },
    /// ACL payload received (CRC-clean, deduplicated).
    AclReceived {
        /// Source/destination logical transport.
        lt_addr: u8,
        /// Logical link (user data fragment or LMP).
        llid: packet::Llid,
        /// Payload bytes.
        data: Vec<u8>,
    },
    /// The peer acknowledged our last ACL packet.
    AclDelivered {
        /// Link the acknowledgement arrived on.
        lt_addr: u8,
    },
    /// A voice packet arrived on an SCO link (unchecked payload).
    ScoReceived {
        /// Link the voice arrived on.
        lt_addr: u8,
        /// Voice bytes (fixed size per HV type).
        data: Vec<u8>,
    },
    /// A link changed between active/sniff/hold/park.
    ModeChanged {
        /// Affected link.
        lt_addr: u8,
        /// New mode.
        mode: LinkMode,
    },
    /// A link was detached.
    Detached {
        /// The link that was detached.
        lt_addr: u8,
    },
    /// The device's life phase changed (for power attribution).
    PhaseChanged {
        /// The new phase.
        phase: LifePhase,
    },
    /// The link's simulation fidelity tier changed (logged on the
    /// master of the affected piconet; see `docs/FIDELITY.md`).
    FidelityChanged {
        /// `true`: the link was promoted to the statistical tier;
        /// `false`: it was demoted back to bit-level simulation.
        promoted: bool,
    },
    /// A link died of supervision timeout: no valid reception for
    /// supervisionTO slots. The link state has been torn down (the
    /// LT_ADDR freed, buffers flushed into the dropped-byte counter);
    /// a [`LcEvent::Detached`] for the same link follows immediately.
    SupervisionTimeout {
        /// The link that timed out.
        lt_addr: u8,
    },
}

/// Actions the link controller asks the simulator to perform.
#[derive(Debug, Clone, PartialEq)]
pub enum LcAction {
    /// Transmit `bits` on `rf_channel` starting at `at`.
    Tx {
        /// Start of transmission (≥ now).
        at: SimTime,
        /// RF hop channel.
        rf_channel: u8,
        /// Exact air image.
        bits: BitVec,
    },
    /// Open a receive window (replaces any previous/pending window).
    RxWindow {
        /// Window opens (≥ now).
        from: SimTime,
        /// Window closes (`None`: until replaced/closed).
        until: Option<SimTime>,
        /// RF hop channel listened on.
        rf_channel: u8,
    },
    /// Close the receive window immediately (RF off).
    RxOff,
    /// Deliver an indication upward.
    Event(LcEvent),
}

/// A demodulated packet delivery from the channel.
#[derive(Debug, Clone)]
pub struct RxDelivery {
    /// The (noisy) bit image.
    pub bits: BitVec,
    /// Collision mask from the channel resolver, if any.
    pub collision_mask: Option<BitVec>,
    /// RF channel it arrived on.
    pub rf_channel: u8,
    /// Air time of the first bit.
    pub start: SimTime,
    /// Air time of the last bit.
    pub end: SimTime,
}

/// Procedure state of the controller (paper Fig. 4).
#[derive(Debug, Clone)]
pub(crate) enum ProcState {
    Standby,
    Inquiry(InquiryCtx),
    InquiryScan(InquiryScanCtx),
    Page(PageCtx),
    PageScan(PageScanCtx),
    /// In CONNECTION state (master and/or slave contexts are populated).
    Connection,
}

/// The link controller of one Bluetooth device.
///
/// # Examples
///
/// ```
/// use btsim_baseband::{BdAddr, ClkVal, Clock, LcCommand, LcConfig, LinkController};
/// use btsim_kernel::SimTime;
///
/// let mut lc = LinkController::new(
///     BdAddr::new(0, 0x12, 0x345678),
///     Clock::new(ClkVal::new(0)),
///     LcConfig::default(),
///     7,
/// );
/// let actions = lc.command(LcCommand::InquiryScan, SimTime::ZERO);
/// assert!(!actions.is_empty()); // opens the scan window
/// ```
#[derive(Debug, Clone)]
pub struct LinkController {
    pub(crate) cfg: LcConfig,
    pub(crate) addr: BdAddr,
    pub(crate) clock: Clock,
    pub(crate) rng: SimRng,
    pub(crate) state: ProcState,
    pub(crate) master: Option<MasterCtx>,
    /// Slave links, one per piconet this device is a slave in. A plain
    /// slave holds one; a scatternet bridge holds one per bridged
    /// piconet and time-multiplexes the radio between them via hold.
    pub(crate) slave_links: Vec<SlaveCtx>,
    pub(crate) acl_type: PacketType,
    pub(crate) t_poll: u32,
    /// AFH map in use for hops before any pending switch instant.
    pub(crate) afh: Option<hop::ChannelMap>,
    /// A scheduled map switch: hops for slots `>= .1` use map `.0`.
    pub(crate) afh_pending: Option<(hop::ChannelMap, u64)>,
    /// Per-channel reception scoring feeding the AFH proposal.
    pub(crate) assessment: ChannelAssessment,
    pub(crate) phase: LifePhase,
    /// Start tick of the current procedure (for train phase / timeout).
    pub(crate) proc_start_tick: u64,
    /// Ticks strictly before this instant are no-ops: the statistical
    /// tier has already simulated the link through `[.., ff_until)`
    /// and fast-forwards the controller past the gap. Cleared by any
    /// command or reception, which may arm earlier work.
    pub(crate) ff_until: SimTime,
    /// Whether the link this controller masters currently runs on the
    /// statistical tier (observability for the stability tracker).
    pub(crate) stat_promoted: bool,
    /// User (non-LMP) bytes dropped from transmit buffers by link
    /// teardown — detach, supervision timeout or power-off. Frames
    /// stranded mid-fragmentation are counted by their unsent bytes.
    pub(crate) dropped_tx_bytes: u64,
    /// Per-link packet encoder: cached access-code images + scratch
    /// buffer, so steady-state traffic builds air images allocation-lean.
    pub(crate) codec: packet::Codec,
}

impl LinkController {
    /// Creates a controller in standby.
    pub fn new(addr: BdAddr, clock: Clock, cfg: LcConfig, seed: u64) -> Self {
        let t_poll = cfg.t_poll_slots;
        let acl_type = cfg.default_acl;
        Self {
            cfg,
            addr,
            clock,
            rng: SimRng::new(seed),
            state: ProcState::Standby,
            master: None,
            slave_links: Vec::new(),
            acl_type,
            t_poll,
            afh: None,
            afh_pending: None,
            assessment: ChannelAssessment::new(),
            phase: LifePhase::Standby,
            proc_start_tick: 0,
            ff_until: SimTime::ZERO,
            stat_promoted: false,
            dropped_tx_bytes: 0,
            codec: packet::Codec::new(),
        }
    }

    /// The device's address.
    pub fn addr(&self) -> BdAddr {
        self.addr
    }

    /// Replaces the controller's RNG with a fresh stream seeded by
    /// `seed`, exactly as [`LinkController::new`] would. Campaign
    /// forking uses this to give each fork of a restored snapshot an
    /// independent — yet reproducible — randomness stream.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SimRng::new(seed);
    }

    /// The device's native clock value at `t`.
    pub fn clkn(&self, t: SimTime) -> ClkVal {
        self.clock.clkn_at(t)
    }

    /// Offsets the native clock by `half_slots` ticks from now on — the
    /// fault layer's discrete model of clock drift. Peers keep deriving
    /// the piconet clock from the stale offset, so their hop sequences
    /// and slot phases diverge and the link dies of supervision; a later
    /// re-page learns the post-jump offset from the fresh FHS.
    pub fn clock_jump(&mut self, half_slots: u32) {
        self.clock = Clock::new(self.clock.start_value().offset_by(half_slots));
    }

    /// Current life phase (for power attribution).
    pub fn phase(&self) -> LifePhase {
        self.phase
    }

    /// Digest of the controller's RNG position (see
    /// [`btsim_kernel::SimRng::fingerprint`]); the engine-equivalence
    /// harness uses it to prove an alternative engine made bit-identical
    /// random draws.
    pub fn rng_fingerprint(&self) -> u64 {
        self.rng.fingerprint()
    }

    /// Whether this controller currently masters a piconet.
    pub fn is_master(&self) -> bool {
        self.master.as_ref().is_some_and(|m| !m.slaves.is_empty())
    }

    /// Whether this controller is a slave in at least one piconet.
    pub fn is_slave(&self) -> bool {
        !self.slave_links.is_empty()
    }

    /// Total ACL bytes waiting in this controller's transmit path:
    /// queued user data plus the payload currently in flight, summed
    /// over every link (master slots and slave contexts alike). The
    /// metrics hub reports this as the device's buffer occupancy gauge.
    pub fn queued_tx_bytes(&self) -> usize {
        let in_flight = |l: &connection::LinkState| {
            l.tx.queued_bytes() + l.in_flight.as_ref().map_or(0, |(_, d)| d.len())
        };
        let master: usize = self
            .master
            .as_ref()
            .map_or(0, |m| m.slaves.iter().map(|s| in_flight(&s.link)).sum());
        master
            + self
                .slave_links
                .iter()
                .map(|s| in_flight(&s.link))
                .sum::<usize>()
    }

    /// User (non-LMP) bytes dropped from this controller's transmit
    /// buffers by link teardown — detach, supervision timeout or
    /// power-off. The metrics hub reports this per device and as an
    /// aggregate counter.
    pub fn dropped_tx_bytes(&self) -> u64 {
        self.dropped_tx_bytes
    }

    /// The link-supervision timeout in effect, in slots (0 = disabled).
    pub fn supervision_timeout_slots(&self) -> u32 {
        self.cfg.supervision_timeout_slots
    }

    /// Slave links as `(lt_addr, master address)` pairs, in join order
    /// (one entry per piconet this device is a slave in).
    pub fn slave_masters(&self) -> Vec<(u8, BdAddr)> {
        self.slave_links
            .iter()
            .map(|s| (s.lt_addr, s.master))
            .collect()
    }

    /// Half-slot tick: drive the current state.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<LcAction> {
        if now < self.ff_until {
            // The statistical tier already simulated this span.
            return Vec::new();
        }
        let mut out = Vec::new();
        match &mut self.state {
            ProcState::Standby => {}
            ProcState::Inquiry(_) => self.tick_inquiry(now, &mut out),
            ProcState::InquiryScan(_) => self.tick_inquiry_scan(now, &mut out),
            ProcState::Page(_) => self.tick_page(now, &mut out),
            ProcState::PageScan(_) => self.tick_page_scan(now, &mut out),
            ProcState::Connection => self.tick_connection(now, &mut out),
        }
        out
    }

    /// Packet delivery from the channel.
    pub fn on_rx(&mut self, rx: &RxDelivery, now: SimTime) -> Vec<LcAction> {
        self.ff_until = SimTime::ZERO; // a delivery may arm earlier work
        let mut out = Vec::new();
        match &mut self.state {
            ProcState::Standby => {}
            ProcState::Inquiry(_) => self.rx_inquiry(rx, now, &mut out),
            ProcState::InquiryScan(_) => self.rx_inquiry_scan(rx, now, &mut out),
            ProcState::Page(_) => self.rx_page(rx, now, &mut out),
            ProcState::PageScan(_) => self.rx_page_scan(rx, now, &mut out),
            ProcState::Connection => self.rx_connection(rx, now, &mut out),
        }
        out
    }

    /// Application / link-manager command.
    pub fn command(&mut self, cmd: LcCommand, now: SimTime) -> Vec<LcAction> {
        self.ff_until = SimTime::ZERO; // a command may arm earlier work
        let mut out = Vec::new();
        match cmd {
            LcCommand::Inquiry {
                num_responses,
                timeout_slots,
            } => self.start_inquiry(num_responses, timeout_slots, now, &mut out),
            LcCommand::InquiryScan => self.start_inquiry_scan(now, &mut out),
            LcCommand::Page {
                target,
                clke_offset,
                timeout_slots,
            } => self.start_page(target, clke_offset, timeout_slots, now, &mut out),
            LcCommand::PageScan => self.start_page_scan(now, &mut out),
            LcCommand::AbortProcedure => self.abort_procedure(now, &mut out),
            LcCommand::AclData { lt_addr, data } => {
                self.queue_payload(lt_addr, packet::Llid::Start, data)
            }
            LcCommand::Lmp { lt_addr, data } => {
                self.queue_payload(lt_addr, packet::Llid::Lmp, data)
            }
            LcCommand::SetAclType(t) => self.acl_type = t,
            LcCommand::SetTpoll(t) => self.t_poll = t.max(2),
            LcCommand::SetAfh(map) => {
                self.afh = Some(map);
                self.afh_pending = None;
            }
            LcCommand::SetAfhAt { map, at_slot } => {
                // A pending switch whose instant already passed is the
                // in-use map; fold it in before replacing.
                self.settle_afh(now.slots());
                self.afh_pending = Some((map, at_slot));
            }
            LcCommand::CancelAfhSwitch => {
                // An effective switch is folded in and kept; only a
                // still-future one is dropped.
                self.settle_afh(now.slots());
                self.afh_pending = None;
            }
            LcCommand::ScoSetup { lt_addr, params } => {
                self.cmd_sco_setup(lt_addr, params, now, &mut out)
            }
            LcCommand::ScoRemove { lt_addr } => self.cmd_sco_remove(lt_addr, now, &mut out),
            LcCommand::ScoData { lt_addr, data } => self.queue_sco(lt_addr, data),
            LcCommand::Sniff { lt_addr, params } => self.cmd_sniff(lt_addr, params, now, &mut out),
            LcCommand::Unsniff { lt_addr } => self.cmd_unsniff(lt_addr, now, &mut out),
            LcCommand::Hold {
                lt_addr,
                hold_slots,
            } => self.cmd_hold(lt_addr, hold_slots, now, &mut out),
            LcCommand::HoldPiconet { master, hold_slots } => {
                self.cmd_hold_piconet(master, hold_slots, now, &mut out)
            }
            LcCommand::AclDataTo { master, data } => self.queue_payload_to(master, data),
            LcCommand::Park {
                lt_addr,
                beacon_interval,
            } => self.cmd_park(lt_addr, beacon_interval, now, &mut out),
            LcCommand::Unpark { lt_addr } => self.cmd_unpark(lt_addr, now, &mut out),
            LcCommand::Detach { lt_addr } => self.cmd_detach(lt_addr, now, &mut out),
            LcCommand::SetSupervisionTimeout { timeout_slots } => {
                self.cfg.supervision_timeout_slots = timeout_slots;
            }
            LcCommand::PowerOff => self.cmd_power_off(&mut out),
        }
        out
    }

    // ----- shared helpers -------------------------------------------------

    /// Folds a pending AFH switch whose instant has passed into the
    /// in-use map. Called from command handlers only — never from the
    /// tick path, whose no-op ticks must leave the controller
    /// byte-identical (the wakeup-hint contract); the hop selectors
    /// instead consult [`LinkController::afh_map_at`], which applies the
    /// pending map purely by comparing slots.
    fn settle_afh(&mut self, now_slot: u64) {
        if let Some((map, at)) = self.afh_pending.take() {
            if at <= now_slot {
                self.afh = Some(map);
            } else {
                self.afh_pending = Some((map, at));
            }
        }
    }

    /// The AFH channel map in effect for a hop at piconet slot `slot`
    /// (`None`: all 79 channels, non-adaptive hopping). A scheduled
    /// switch applies to slots at or after its instant, so callers that
    /// pass each hop's own slot — as the connection tick/RX paths do —
    /// stay consistent across the switch even when the instant falls
    /// inside a TX/RX frame.
    pub fn afh_map_at(&self, slot: u64) -> Option<&hop::ChannelMap> {
        resolve_afh(self.afh.as_ref(), self.afh_pending.as_ref(), slot)
    }

    /// The scheduled AFH switch, if any: `(map, switch slot)`.
    pub fn afh_pending_switch(&self) -> Option<(&hop::ChannelMap, u64)> {
        self.afh_pending.as_ref().map(|(m, at)| (m, *at))
    }

    /// The controller's per-channel reception assessment (the AFH
    /// classification input; see [`ChannelAssessment`]).
    pub fn channel_assessment(&self) -> &ChannelAssessment {
        &self.assessment
    }

    /// Clears the channel assessment (start a fresh window, e.g. after
    /// a map switch so stale pre-switch evidence ages out).
    pub fn reset_channel_assessment(&mut self) {
        self.assessment.reset();
    }

    /// The instant up to which the statistical tier has already
    /// simulated this controller ([`SimTime::ZERO`] when not
    /// fast-forwarded). Ticks strictly before it are no-ops.
    pub fn ff_until(&self) -> SimTime {
        self.ff_until
    }

    /// Fast-forwards the controller to `until` (statistical tier only;
    /// the caller is responsible for having simulated the gap).
    pub fn set_ff_until(&mut self, until: SimTime) {
        self.ff_until = until;
    }

    /// Whether the mastered link currently runs on the statistical tier.
    pub fn stat_promoted(&self) -> bool {
        self.stat_promoted
    }

    /// Records a promotion/demotion decided by the stability tracker.
    pub fn set_stat_promoted(&mut self, promoted: bool) {
        self.stat_promoted = promoted;
    }

    pub(crate) fn set_phase(&mut self, phase: LifePhase, out: &mut Vec<LcAction>) {
        if self.phase != phase {
            self.phase = phase;
            out.push(LcAction::Event(LcEvent::PhaseChanged { phase }));
        }
    }

    /// Ticks elapsed since the current procedure started.
    pub(crate) fn proc_ticks(&self, now: SimTime) -> u64 {
        (now.ns() / SimDuration::HALF_SLOT.ns()).saturating_sub(self.proc_start_tick)
    }

    pub(crate) fn mark_proc_start(&mut self, now: SimTime) {
        self.proc_start_tick = now.ns() / SimDuration::HALF_SLOT.ns();
    }

    /// Current train offset (A or B), switching every `train_switch_slots`.
    pub(crate) fn train_kofs(&self, now: SimTime) -> u8 {
        let period_ticks = 2 * self.cfg.train_switch_slots as u64;
        if period_ticks == 0 || (self.proc_ticks(now) / period_ticks).is_multiple_of(2) {
            hop::KOFFSET_A
        } else {
            hop::KOFFSET_B
        }
    }

    /// Link keys for inquiry exchanges (GIAC, DCI UAP, fixed whitening).
    /// Inquiry FHS responses always carry the spec 2/3 FEC.
    pub(crate) fn giac_keys(&self) -> LinkKeys {
        LinkKeys::control(syncword::GIAC_LAP, DCI_UAP, self.cfg.sync_threshold, true)
    }

    /// Link keys for page exchanges with `target` (DAC, target's UAP).
    pub(crate) fn dac_keys(&self, target: BdAddr) -> LinkKeys {
        LinkKeys::control(
            target.lap(),
            target.uap(),
            self.cfg.sync_threshold,
            self.cfg.page_fhs_fec,
        )
    }

    /// Connected slaves as `(lt_addr, address)` pairs (master side).
    pub fn connected_slaves(&self) -> Vec<(u8, BdAddr)> {
        self.master
            .as_ref()
            .map(|m| m.slaves.iter().map(|s| (s.lt_addr, s.addr)).collect())
            .unwrap_or_default()
    }

    /// Returns to standby (procedures) or connection (if links exist).
    pub(crate) fn settle_state(&mut self, out: &mut Vec<LcAction>) {
        if self.is_master() || self.is_slave() {
            self.state = ProcState::Connection;
            self.set_phase(self.connection_phase(), out);
        } else {
            self.state = ProcState::Standby;
            self.set_phase(LifePhase::Standby, out);
        }
    }

    /// Index of the slave link a slave-side command with `lt_addr`
    /// targets: the link whose LT_ADDR matches *uniquely*, or —
    /// preserving the pre-scatternet "LT_ADDR is ignored on the slave
    /// side" behaviour — the sole link when there is exactly one.
    ///
    /// When several links share the LT_ADDR (each master assigns them
    /// independently, so a bridge's links can collide) the command is
    /// ambiguous and targets nothing: acting on the wrong piconet's
    /// link would silently desynchronise the bridge, whereas a dropped
    /// mode change merely costs the master some fruitless polling.
    /// Master-addressed commands ([`LcCommand::HoldPiconet`],
    /// [`LcCommand::AclDataTo`]) are never ambiguous.
    pub(crate) fn slave_cmd_index(&self, lt_addr: u8) -> Option<usize> {
        let mut matches = self
            .slave_links
            .iter()
            .enumerate()
            .filter(|(_, s)| s.lt_addr == lt_addr);
        match (matches.next(), matches.next()) {
            (Some((i, _)), None) => Some(i),
            (Some(_), Some(_)) => None, // colliding LT_ADDRs: ambiguous
            (None, _) if self.slave_links.len() == 1 => Some(0),
            _ => None,
        }
    }

    /// Index of the slave link into the piconet mastered by `master`.
    pub(crate) fn slave_index_of_master(&self, master: BdAddr) -> Option<usize> {
        self.slave_links.iter().position(|s| s.master == master)
    }

    fn queue_sco(&mut self, lt_addr: u8, data: Vec<u8>) {
        if let Some(m) = &mut self.master {
            if let Some(slot) = m.slot_mut(lt_addr) {
                slot.sco_out.extend(data);
                return;
            }
        }
        if let Some(i) = self.slave_cmd_index(lt_addr) {
            self.slave_links[i].sco_out.extend(data);
        }
    }

    fn queue_payload(&mut self, lt_addr: u8, llid: packet::Llid, data: Vec<u8>) {
        if let Some(m) = &mut self.master {
            if let Some(slot) = m.slot_mut(lt_addr) {
                slot.link.tx.push(llid, data);
                return;
            }
        }
        if let Some(i) = self.slave_cmd_index(lt_addr) {
            self.slave_links[i].link.tx.push(llid, data);
        }
    }

    fn queue_payload_to(&mut self, master: BdAddr, data: Vec<u8>) {
        if let Some(i) = self.slave_index_of_master(master) {
            self.slave_links[i].link.tx.push(packet::Llid::Start, data);
        }
    }

    pub(crate) fn peek_duration(&self) -> SimDuration {
        SimDuration::from_us(self.cfg.peek_us)
    }
}

/// The switch-instant rule, defined once: a scheduled switch `(map,
/// at)` governs hops for slots `>= at`; earlier slots keep `current`.
/// Both the public [`LinkController::afh_map_at`] accessor and the
/// tick/RX snapshot (`connection::AfhView`) resolve through this
/// function — master/slave hop synchronization depends on the two
/// never diverging.
pub(crate) fn resolve_afh<'a>(
    current: Option<&'a hop::ChannelMap>,
    pending: Option<&'a (hop::ChannelMap, u64)>,
    slot: u64,
) -> Option<&'a hop::ChannelMap> {
    match pending {
        Some((map, at)) if slot >= *at => Some(map),
        _ => current,
    }
}

/// Convenience: a transmit action for a packet built from keys.
pub(crate) fn tx_action(at: SimTime, rf_channel: u8, bits: BitVec) -> LcAction {
    LcAction::Tx {
        at,
        rf_channel,
        bits,
    }
}
