//! The statistical receive path: one analytic outcome draw per packet
//! instead of encode → medium → correlate → decode.
//!
//! [`stat_slot_pair`] advances a promoted master/slave pair through one
//! master-TX / slave-RX slot pair, replicating the bit-level
//! scheduler's observable behavior — ARQ state, event logs, channel
//! assessment, packet timing — while drawing the four-way packet
//! outcome (sync miss / HEC fail / CRC fail / clean) from the
//! closed-form [`ErrorModel`] instead of running the codecs.
//!
//! The stepper only ever batches the saturated-ACL shape it can prove
//! equivalent to the bit-level scheduler: a pure single-slave piconet
//! in `Connection` state, single-slot data packets, slave idle, no SCO
//! / sniff / hold / park, no LMP traffic, no pending AFH switch.
//! Anything else falls back to the bit-level path; the eligibility
//! split between [`LinkController::stat_master_attempt`] (no demotion
//! on failure) and [`LinkController::stat_master_stable`] (demotion)
//! is documented in `docs/FIDELITY.md`.
//!
//! # Pinned draw contract
//!
//! Exactly one [`btsim_kernel::SimRng::unit_f64`] variate is consumed
//! per *transmitted* packet, always — even at BER zero — drawn from
//! the **receiver's** link-controller RNG: the slave's RNG decides the
//! forward packet, the master's RNG decides the response, which only
//! exists (and therefore only draws) when the forward packet decoded
//! cleanly. Any non-clean outcome loses the whole packet: a sync miss
//! or HEC failure means the slave never sees a valid header (it stays
//! silent), and a payload-CRC failure makes the decode fail before the
//! response is built — exactly the bit-level codec's behavior.

use btsim_fidelity::{ErrorModel, PayloadCoding};
use btsim_kernel::{SimDuration, SimTime};

use crate::address::BdAddr;
use crate::hop;
use crate::packet::{self, Llid, PacketType};

use super::connection::{conn_channel_words, fit_type, LinkMode};
use super::{LcEvent, LinkController, ProcState};

/// Which end of the link a batched event belongs to; the engine maps
/// this back to a device id when logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatSide {
    /// The piconet master (the transmitting side of the forward slot).
    Master,
    /// The single active slave.
    Slave,
}

/// The slave's response inside a batched slot pair (always a NULL: the
/// slave is only eligible while it has nothing queued).
#[derive(Debug, Clone, Copy)]
pub struct StatRespReport {
    /// RF channel the response hopped to.
    pub rf_channel: u8,
    /// Air length of the response in bits.
    pub air_bits: usize,
    /// Whether the master decoded the response cleanly.
    pub clean: bool,
}

/// What one call to [`stat_slot_pair`] did, so the engine can mirror
/// the bit-level path's bookkeeping: medium transmission counters,
/// power-monitor TX/RX intervals, and logged events.
#[derive(Debug, Clone)]
pub struct StatPairReport {
    /// RF channel the forward packet hopped to.
    pub fwd_rf_channel: u8,
    /// Air length of the forward packet in bits.
    pub fwd_air_bits: usize,
    /// Whether the slave decoded the forward packet cleanly. When
    /// false the slave stayed silent and `resp` is `None`; the master
    /// still listened for `peek_us` from `resp_at`.
    pub fwd_clean: bool,
    /// Start of the response slot (forward slot start + one slot).
    pub resp_at: SimTime,
    /// The response, when the forward packet got through.
    pub resp: Option<StatRespReport>,
    /// Start of the next slot pair: the pair occupied `[start, end)`.
    pub end: SimTime,
}

impl LinkController {
    /// Whether `master_tick` at `now` would reach its unicast-data
    /// branch toward a lone active slave — the *attempt-level* half of
    /// statistical-tier eligibility. Returns the slave's address.
    ///
    /// A `None` here is not contention — the controller may simply sit
    /// between slots, wait out a response window, or have drained its
    /// queue — so the engine does **not** demote a promoted link on
    /// attempt failure; only [`LinkController::stat_master_stable`]
    /// turning false does that.
    pub fn stat_master_attempt(&self, now: SimTime) -> Option<BdAddr> {
        if !matches!(self.state, ProcState::Connection) || !self.slave_links.is_empty() {
            return None;
        }
        let m = self.master.as_ref()?;
        if m.slaves.len() != 1 {
            return None;
        }
        let clk = self.clkn(now);
        if !clk.is_slot_start() || !clk.is_master_tx_slot() {
            return None;
        }
        if now < m.busy_until {
            return None;
        }
        // A response window still running blocks the attempt; one that
        // already expired is cleared at the top of `master_tick` and
        // does not.
        if m.awaiting.is_some_and(|(_, until)| now < until) {
            return None;
        }
        let s = &m.slaves[0];
        if s.mode != LinkMode::Active
            || s.sco.is_some()
            || s.sniff.is_some()
            || s.sniff_ext_until_slot.is_some()
            || s.hold_until_slot.is_some()
            || s.poll_asap
            || s.newconn_deadline_slot.is_some()
            || !s.link.has_data()
        {
            return None;
        }
        Some(s.addr)
    }

    /// The *stability-level* half of the master-side eligibility: no
    /// upcoming AFH map switch and no LMP traffic on the link. When a
    /// promoted link sees this turn false, the engine demotes it to
    /// bit level on the very next slot.
    ///
    /// A scheduled switch whose instant is still ahead of `slot` is
    /// instability — hops inside a fast-forward window would straddle
    /// the remap. One whose instant has already passed is a settled
    /// map: `settle_afh` only folds it in on the next command (the
    /// tick path must not mutate state), but [`resolve_afh`] already
    /// serves the new map for every slot from the instant on, so the
    /// link may promote again.
    pub fn stat_master_stable(&self, slot: u64) -> bool {
        self.afh_pending.as_ref().is_none_or(|&(_, at)| at <= slot)
            && self
                .master
                .as_ref()
                .is_some_and(|m| m.slaves.len() == 1 && !m.slaves[0].link.has_lmp())
    }

    /// Whether this controller is a plain, idle, active slave of
    /// `master` — in `Connection` state with exactly that one link, no
    /// low-power mode, nothing queued to send, not resynchronising,
    /// past any busy window, and no *upcoming* AFH switch (one whose
    /// instant has passed is a settled map; see
    /// [`LinkController::stat_master_stable`]).
    pub fn stat_slave_ready(&self, master: BdAddr, now: SimTime) -> bool {
        if !matches!(self.state, ProcState::Connection)
            || self.master.as_ref().is_some_and(|m| !m.slaves.is_empty())
            || self.slave_links.len() != 1
            || self
                .afh_pending
                .as_ref()
                .is_some_and(|&(_, at)| at > now.slots())
        {
            return false;
        }
        let s = &self.slave_links[0];
        s.master == master
            && s.mode == LinkMode::Active
            && s.sco.is_none()
            && s.sniff.is_none()
            && s.sniff_ext_until_slot.is_none()
            && s.hold_until_slot.is_none()
            && s.newconn_deadline_slot.is_none()
            && !s.resync
            && !s.listening_full_slot
            && now >= s.busy_until
            && !s.link.has_data()
    }
}

/// Advances an eligible master/slave pair through one statistical slot
/// pair starting at `now` (a master-TX slot boundary on both clocks).
///
/// Returns `None` — with **no** state change and **no** RNG draw on
/// either side — when the attempt conditions do not hold, the next
/// fragment is an LMP PDU or would need a multi-slot packet, or the
/// pair would not finish by `horizon`. Otherwise it consumes the
/// fragment, steps both controllers' ARQ/assessment state exactly as
/// the bit-level `master_tick` → `slave_rx_one` → `master_rx` sequence
/// would, and reports what the engine must mirror.
///
/// `events` is a caller-owned scratch buffer: the function clears it,
/// then fills it with the events to log in chronological order, each
/// stamped with the instant the bit-level path would have delivered it
/// (air end plus the modem delay). Reusing one buffer across the whole
/// batch keeps the per-pair cost allocation-free.
///
/// Regardless of outcome the pair has a uniform cadence: the next pair
/// starts at `now + 2` slots (forward slot + response slot), because a
/// lost response leaves `awaiting` to expire exactly at the next
/// master-TX slot boundary, where `master_tick` retransmits.
pub fn stat_slot_pair(
    master: &mut LinkController,
    slave: &mut LinkController,
    model: &ErrorModel,
    now: SimTime,
    modem_delay: SimDuration,
    horizon: SimTime,
    events: &mut Vec<(SimTime, StatSide, LcEvent)>,
) -> Option<StatPairReport> {
    master.stat_master_attempt(now)?;
    events.clear();

    // Peek before mutating: bail without side effects when the pair
    // does not fit the horizon or the fragment is not batchable.
    let max_user = master.acl_type.max_user_bytes();
    let m = master.master.as_ref().expect("attempt checked");
    let (peek_llid, peek_len) = m.slaves[0].link.peek_outgoing(max_user)?;
    if peek_llid == Llid::Lmp {
        return None;
    }
    let ptype = fit_type(master.acl_type, peek_len);
    let n_slots = u64::from(ptype.slots());
    if n_slots != 1 {
        return None;
    }
    let end = now + SimDuration::from_slots(n_slots + 1);
    if end > horizon {
        return None;
    }

    let own = master.addr;
    let clk = master.clkn(now);
    let now_slot = now.slots();
    let afh = master.afh_view();
    let words = hop::ConnWords::new(own.hop_input());
    let fwd_ch = conn_channel_words(clk, &words, afh.for_slot(now_slot));
    let resp_clk = clk.offset_by(2 * n_slots as u32);
    let resp_ch = conn_channel_words(resp_clk, &words, afh.for_slot(now_slot + n_slots));
    let resp_at = now + SimDuration::from_slots(n_slots);
    let fhs_fec = master.cfg.page_fhs_fec;

    // --- Master transmit: mirror `master_tick`'s data branch. ---
    let m = master.master.as_mut().expect("attempt checked");
    let slot = &mut m.slaves[0];
    let lt_addr = slot.lt_addr;
    let (llid, data) = slot.link.next_outgoing(max_user).expect("peeked non-empty");
    debug_assert_eq!((llid, data.len()), (peek_llid, peek_len));
    debug_assert!(ptype.has_crc());
    let arqn_f = slot.link.take_arqn();
    let seqn_f = slot.link.seqn_out;
    slot.last_poll_slot = now_slot;
    m.busy_until = resp_at + SimDuration::SLOT;
    m.awaiting = Some((lt_addr, resp_at + SimDuration::SLOT));

    let fwd_air = packet::air_bits(ptype, data.len(), fhs_fec);
    let fwd_end = now + SimDuration::from_bits(fwd_air);

    // Forward outcome: the receiving slave's RNG draws.
    let framed = (ptype.payload_header_bytes() + data.len()) * 8 + 16;
    let coding = if ptype.fec23() {
        PayloadCoding::Fec23 {
            framed_bits: framed,
        }
    } else {
        PayloadCoding::Uncoded {
            framed_bits: framed,
        }
    };
    let fwd_outcome = model.profile(coding).draw(&mut slave.rng);
    let fwd_clean = fwd_outcome.is_clean();

    // The slave scores every delivery's channel (`rx_connection` notes
    // good only on a clean, collision-free decode).
    slave.assessment.note(fwd_ch, fwd_clean);

    let mut resp = None;
    if fwd_clean {
        // --- Slave receive + NULL response: mirror `slave_rx_one`. ---
        let s = &mut slave.slave_links[0];
        let deliver_at = fwd_end + modem_delay;
        s.last_rx_slot = deliver_at.slots();
        s.sup_hold_excuse_slot = None;
        if s.link.on_arqn(arqn_f) {
            events.push((
                deliver_at,
                StatSide::Slave,
                LcEvent::AclDelivered { lt_addr },
            ));
        }
        if s.link.on_rx_crc_packet(seqn_f) {
            events.push((
                deliver_at,
                StatSide::Slave,
                LcEvent::AclReceived {
                    lt_addr,
                    llid,
                    data,
                },
            ));
        }
        // The slave has nothing queued (readiness precondition), so it
        // answers with a 1-slot NULL carrying the ACK.
        let arqn_r = s.link.take_arqn();
        s.busy_until = resp_at + SimDuration::SLOT;
        let resp_air = packet::air_bits(PacketType::Null, 0, fhs_fec);
        let resp_end = resp_at + SimDuration::from_bits(resp_air);

        // Response outcome: the receiving master's RNG draws.
        let resp_outcome = model.profile(PayloadCoding::None).draw(&mut master.rng);
        let resp_clean = resp_outcome.is_clean();
        master.assessment.note(resp_ch, resp_clean);
        if resp_clean {
            // --- Master receive: mirror `master_rx`. ---
            let m = master.master.as_mut().expect("attempt checked");
            let slot = &mut m.slaves[0];
            if slot.link.on_arqn(arqn_r) {
                events.push((
                    resp_end + modem_delay,
                    StatSide::Master,
                    LcEvent::AclDelivered { lt_addr },
                ));
            }
            slot.poll_asap = false;
            slot.newconn_deadline_slot = None;
            slot.last_rx_slot = (resp_end + modem_delay).slots();
            slot.sup_hold_excuse_slot = None;
            m.awaiting = None;
        }
        resp = Some(StatRespReport {
            rf_channel: resp_ch,
            air_bits: resp_air,
            clean: resp_clean,
        });
    }

    Some(StatPairReport {
        fwd_rf_channel: fwd_ch,
        fwd_air_bits: fwd_air,
        fwd_clean,
        resp_at,
        resp,
        end,
    })
}
