//! The frequency hop selection box (spec v1.2, Baseband §2.6, 79-channel
//! system) — the paper's `HOP_FREQ` module.
//!
//! The selection box combines clock bits and 28 address bits through an
//! adder, an XOR stage, a 14-control-bit butterfly permutation (PERM5) and
//! a final modulo-79 addition whose output is mapped onto the interlaced
//! even/odd channel bank. Page and inquiry use a *train* variant of the
//! input X that sweeps 16 of 32 positions (the A or B train) twice per
//! slot; scans use the slowly changing CLKN₁₆₋₁₂; connections mix clock
//! bits into the control words so the whole 79-channel band is used.
//!
//! The butterfly wiring follows the structure of the spec figure; absolute
//! channel numbers may differ from conformance vectors (unavailable
//! offline), which leaves every statistical property — bijectivity in X,
//! train structure, band coverage — intact. See DESIGN.md §1.

use std::fmt;

use crate::clock::ClkVal;

/// Number of RF channels selected over.
pub const CHANNELS: u8 = 79;

/// Train offset constant for the A train (page/inquiry).
pub const KOFFSET_A: u8 = 24;
/// Train offset constant for the B train (page/inquiry).
pub const KOFFSET_B: u8 = 8;

/// Which hopping sequence to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopSequence {
    /// Page hopping (pager side), A or B train selected by `kofs`.
    Page {
        /// Train offset: [`KOFFSET_A`] or [`KOFFSET_B`].
        kofs: u8,
    },
    /// Page scan (paged device side).
    PageScan,
    /// Inquiry hopping (inquirer side), with train offset.
    Inquiry {
        /// Train offset: [`KOFFSET_A`] or [`KOFFSET_B`].
        kofs: u8,
    },
    /// Inquiry scan (discoverable device side).
    InquiryScan,
    /// Basic connection hopping (piconet in connection state).
    Connection,
}

/// The AFH channel map: which of the 79 RF channels a piconet may use
/// (spec v1.2 introduced adaptive frequency hopping to avoid fixed-band
/// interferers such as 802.11 networks).
///
/// At least [`MIN_AFH_CHANNELS`] channels must stay enabled.
#[derive(Clone, PartialEq, Eq)]
pub struct ChannelMap {
    used: [bool; CHANNELS as usize],
}

/// Minimum number of used channels the spec allows for AFH (Nmin = 20).
pub const MIN_AFH_CHANNELS: usize = 20;

/// A [`ChannelMap`] construction left fewer than [`MIN_AFH_CHANNELS`]
/// channels used — below the spec's Nmin = 20 floor the remapping
/// concentrates traffic too narrowly, so every construction path
/// rejects such maps up front rather than letting
/// [`hop_channel_afh`] run on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TooFewChannels {
    /// How many channels the rejected map would have used.
    pub used: usize,
}

impl fmt::Display for TooFewChannels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AFH map keeps {} channels; the spec minimum is {MIN_AFH_CHANNELS}",
            self.used
        )
    }
}

impl std::error::Error for TooFewChannels {}

/// Wire size of a channel map: 79 bits in 10 bytes, LSB first.
pub const CHANNEL_MAP_BYTES: usize = 10;

impl Default for ChannelMap {
    fn default() -> Self {
        Self::all()
    }
}

impl fmt::Debug for ChannelMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChannelMap[{} used]", self.used_count())
    }
}

impl ChannelMap {
    /// All 79 channels enabled (non-adaptive hopping).
    pub fn all() -> Self {
        Self {
            used: [true; CHANNELS as usize],
        }
    }

    /// Builds a map with the channels in `blocked` disabled.
    ///
    /// # Panics
    ///
    /// Panics if fewer than [`MIN_AFH_CHANNELS`] channels remain; use
    /// [`ChannelMap::try_blocking`] for a fallible construction.
    pub fn blocking<I: IntoIterator<Item = u8>>(blocked: I) -> Self {
        Self::try_blocking(blocked).expect("AFH needs at least 20 channels")
    }

    /// Builds a map with the channels in `blocked` disabled, rejecting
    /// maps thinner than the spec's Nmin = 20.
    pub fn try_blocking<I: IntoIterator<Item = u8>>(blocked: I) -> Result<Self, TooFewChannels> {
        let mut used = [true; CHANNELS as usize];
        for ch in blocked {
            if (ch as usize) < used.len() {
                used[ch as usize] = false;
            }
        }
        Self::try_from_used(used)
    }

    /// Builds a map directly from a used-channel array, rejecting maps
    /// thinner than the spec's Nmin = 20. This is the single guard every
    /// construction path funnels through, so [`hop_channel_afh`] can
    /// assume its map invariant.
    pub fn try_from_used(used: [bool; CHANNELS as usize]) -> Result<Self, TooFewChannels> {
        let count = used.iter().filter(|&&u| u).count();
        if count < MIN_AFH_CHANNELS {
            return Err(TooFewChannels { used: count });
        }
        Ok(Self { used })
    }

    /// Intersection of two maps (a channel is used when both use it),
    /// rejecting results thinner than the spec minimum. The master
    /// combines its own assessment with a slave's
    /// `LMP_channel_classification` report this way.
    pub fn intersect(&self, other: &ChannelMap) -> Result<Self, TooFewChannels> {
        let mut used = [false; CHANNELS as usize];
        for (ch, slot) in used.iter_mut().enumerate() {
            *slot = self.used[ch] && other.used[ch];
        }
        Self::try_from_used(used)
    }

    /// Serialises the map into the 10-byte wire format of `LMP_set_AFH`
    /// (bit `c` of byte `c / 8` is channel `c`; the 80th bit is zero).
    pub fn to_bytes(&self) -> [u8; CHANNEL_MAP_BYTES] {
        let mut out = [0u8; CHANNEL_MAP_BYTES];
        for (ch, &used) in self.used.iter().enumerate() {
            if used {
                out[ch / 8] |= 1 << (ch % 8);
            }
        }
        out
    }

    /// Parses the 10-byte wire format, rejecting maps with fewer than
    /// [`MIN_AFH_CHANNELS`] used channels (the wire-level guard: a
    /// corrupted or hostile map never reaches the hop kernel). The
    /// unused 80th bit is ignored.
    pub fn from_bytes(bytes: &[u8; CHANNEL_MAP_BYTES]) -> Result<Self, TooFewChannels> {
        let mut used = [false; CHANNELS as usize];
        for (ch, slot) in used.iter_mut().enumerate() {
            *slot = (bytes[ch / 8] >> (ch % 8)) & 1 == 1;
        }
        Self::try_from_used(used)
    }

    /// Whether `channel` is enabled.
    pub fn is_used(&self, channel: u8) -> bool {
        self.used.get(channel as usize).copied().unwrap_or(false)
    }

    /// Number of enabled channels.
    pub fn used_count(&self) -> usize {
        self.used.iter().filter(|&&u| u).count()
    }

    /// Remaps a selected channel onto the used set (spec §2.6: a hop
    /// landing on an unused channel is redirected deterministically into
    /// the used set, uniformly over it).
    pub fn remap(&self, channel: u8) -> u8 {
        if self.is_used(channel) {
            return channel;
        }
        let n = self.used_count().max(1);
        let k = channel as usize % n;
        self.used
            .iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .nth(k)
            .map(|(i, _)| i as u8)
            .unwrap_or(channel)
    }
}

/// One butterfly exchange: (control bit index, bit positions swapped).
const BUTTERFLIES: [(u8, (u8, u8)); 14] = [
    (13, (1, 2)),
    (12, (3, 4)),
    (11, (1, 3)),
    (10, (2, 4)),
    (9, (0, 3)),
    (8, (1, 4)),
    (7, (0, 2)),
    (6, (3, 4)),
    (5, (1, 3)),
    (4, (0, 4)),
    (3, (1, 2)),
    (2, (0, 3)),
    (1, (0, 1)),
    (0, (2, 4)),
];

/// Applies the PERM5 butterfly network to the 5-bit value `z` under the
/// 14-bit control word `p`.
fn perm5(z: u8, p: u16) -> u8 {
    let mut z = z & 0x1F;
    // Branch-free: the control bits are clock-derived and effectively
    // random, so conditional exchanges would mispredict half the time
    // on the per-slot hot path.
    for (ctl, (i, j)) in BUTTERFLIES {
        let swap = ((p >> ctl) as u8) & ((z >> i) ^ (z >> j)) & 1;
        z ^= (swap << i) | (swap << j);
    }
    z
}

/// The X input of the train sequences (page/inquiry):
/// `(CLK₁₆₋₁₂ + kofs + (CLK₄₋₂,₀ − CLK₁₆₋₁₂) mod 16) mod 32`.
fn train_x(clk: ClkVal, kofs: u8) -> u8 {
    let base = clk.bits(16, 12);
    let fast = (clk.bits(4, 2) << 1) | clk.bits(0, 0);
    let wander = (fast.wrapping_sub(base)) & 0x0F;
    ((base + kofs as u32 + wander) & 0x1F) as u8
}

/// Selects the RF channel (0..79) for the given sequence, clock value and
/// 28-bit address input (see [`crate::BdAddr::hop_input`]).
///
/// For page sequences `clk` is the pager's estimate CLKE of the paged
/// device's clock; for scans and inquiry it is the device's own CLKN; for
/// connections it is the piconet clock CLK.
///
/// # Examples
///
/// ```
/// use btsim_baseband::{hop, BdAddr, ClkVal};
///
/// let addr = BdAddr::new(0, 0x47, 0x2A96EF);
/// let ch = hop::hop_channel(
///     hop::HopSequence::Connection,
///     ClkVal::new(0x123456),
///     addr.hop_input(),
/// );
/// assert!(ch < hop::CHANNELS);
/// ```
pub fn hop_channel(seq: HopSequence, clk: ClkVal, addr28: u32) -> u8 {
    if matches!(seq, HopSequence::Connection) {
        return conn_channel_words(&ConnWords::new(addr28), clk);
    }
    let words = ConnWords::new(addr28);
    let (a, b, c, d, e) = (words.a, words.b, words.c, words.d, words.e);
    let f = 0u32;

    let x = match seq {
        // Y1 = 0 for the train sequences: the Y1 = 1 receive variant of
        // the spec selects the dedicated response frequencies, which this
        // model replaces by reusing the triggering packet's channel
        // (DESIGN.md §1), so only the transmit variant is ever computed.
        HopSequence::Page { kofs } | HopSequence::Inquiry { kofs } => train_x(clk, kofs),
        HopSequence::PageScan | HopSequence::InquiryScan => clk.bits(16, 12) as u8,
        HopSequence::Connection => unreachable!("handled above"),
    };

    let z1 = (x as u32 + a) & 0x1F;
    let z2 = z1 ^ b;
    // Control word: P0-4 = C (Y1 = 0), P5-13 = D.
    let p = (c as u16) | ((d as u16) << 5);
    let permuted = perm5(z2 as u8, p);
    let k = (permuted as u32 + e + f) % CHANNELS as u32;
    // Interlaced bank: even channels ascending, then odd channels.
    if k < 40 {
        (2 * k) as u8
    } else {
        (2 * (k - 40) + 1) as u8
    }
}

/// Address-derived control words of the §2.6 hop box, precomputed once
/// per address so per-slot connection hops only pay the clock-dependent
/// remainder ([`conn_channel_words`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnWords {
    a: u32,
    b: u32,
    c: u32,
    d: u32,
    e: u32,
}

impl ConnWords {
    /// Derives the control words from a 28-bit hop address input
    /// (see [`crate::BdAddr::hop_input`]).
    pub fn new(addr28: u32) -> Self {
        let a_bits = |hi: u32, lo: u32| (addr28 >> lo) & ((1 << (hi - lo + 1)) - 1);
        let c = {
            // a8, a6, a4, a2, a0 packed as C4..C0.
            let mut v = 0u32;
            for (k, bit) in [8u32, 6, 4, 2, 0].iter().enumerate() {
                v |= ((addr28 >> bit) & 1) << (4 - k);
            }
            v
        };
        let e = {
            // a13, a11, a9, a7, a5, a3, a1 packed as E6..E0.
            let mut v = 0u32;
            for (k, bit) in [13u32, 11, 9, 7, 5, 3, 1].iter().enumerate() {
                v |= ((addr28 >> bit) & 1) << (6 - k);
            }
            v
        };
        Self {
            a: a_bits(27, 23),
            b: a_bits(22, 19),
            c,
            d: a_bits(18, 10),
            e,
        }
    }
}

/// The connection-sequence hop for precomputed address words — the
/// per-slot half of [`hop_channel`]'s `Connection` arm.
pub fn conn_channel_words(w: &ConnWords, clk: ClkVal) -> u8 {
    let a = w.a ^ clk.bits(25, 21);
    let c = w.c ^ clk.bits(20, 16);
    let d = w.d ^ clk.bits(15, 7);
    let f = (16 * clk.bits(27, 7)) % CHANNELS as u32;
    let x = clk.bits(6, 2);
    let y1 = clk.bits(1, 1);

    let z1 = (x + a) & 0x1F;
    let z2 = z1 ^ w.b;
    // Control word: P0-4 = C ⊕ Y1 (bitwise), P5-13 = D.
    let c_y = if y1 == 1 { c ^ 0x1F } else { c };
    let p = (c_y as u16) | ((d as u16) << 5);
    let permuted = perm5(z2 as u8, p);
    let k = (permuted as u32 + w.e + f + 32 * y1) % CHANNELS as u32;
    // Interlaced bank: even channels ascending, then odd channels.
    if k < 40 {
        (2 * k) as u8
    } else {
        (2 * (k - 40) + 1) as u8
    }
}

/// Connection-state hop with AFH remapping applied.
///
/// Every [`ChannelMap`] construction path guarantees at least
/// [`MIN_AFH_CHANNELS`] used channels, so the remap can never
/// concentrate the sequence below the spec floor; the debug assertion
/// guards the invariant without taxing the hot hop-selection path in
/// release builds.
pub fn hop_channel_afh(clk: ClkVal, addr28: u32, map: &ChannelMap) -> u8 {
    debug_assert!(
        map.used_count() >= MIN_AFH_CHANNELS,
        "AFH map below the Nmin = 20 floor reached the hop kernel"
    );
    map.remap(hop_channel(HopSequence::Connection, clk, addr28))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::BdAddr;

    const GIAC28: u32 = 0x9E8B33; // GIAC with DCI UAP nibble 0.

    #[test]
    fn perm5_is_bijective_for_every_control_word() {
        // Exhaustive over a sample of control words; full 2^14 is cheap too.
        for p in 0..(1u16 << 14) {
            let mut seen = [false; 32];
            for z in 0..32u8 {
                let out = perm5(z, p);
                assert!(out < 32);
                assert!(!seen[out as usize], "collision p={p:#06x} z={z}");
                seen[out as usize] = true;
            }
        }
    }

    #[test]
    fn channel_always_in_band() {
        let addr = BdAddr::new(0, 0x5A, 0x7C3F19).hop_input();
        for t in 0..50_000u32 {
            let ch = hop_channel(HopSequence::Connection, ClkVal::new(t * 3 + 1), addr);
            assert!(ch < CHANNELS);
        }
    }

    #[test]
    fn x_sweep_is_injective_within_sequence() {
        // For fixed control inputs, the 32 X positions map to 32 distinct
        // channels (PERM5 bijective + constant offset mod 79).
        let mut seen = std::collections::HashSet::new();
        for x in 0..32u32 {
            // Sweep CLKN16-12 through all values with other bits fixed.
            let clk = ClkVal::new(x << 12);
            let ch = hop_channel(HopSequence::InquiryScan, clk, GIAC28);
            seen.insert(ch);
        }
        assert_eq!(seen.len(), 32);
    }

    #[test]
    fn train_covers_16_distinct_channels() {
        // Over one train period (16 slots = 32 ticks), the inquiry train
        // visits 16 distinct X values => 16 distinct channels.
        let mut seen = std::collections::HashSet::new();
        for tick in 0..32u32 {
            if ClkVal::new(tick).bit(1) {
                continue; // TX halves only
            }
            let ch = hop_channel(
                HopSequence::Inquiry { kofs: KOFFSET_A },
                ClkVal::new(tick),
                GIAC28,
            );
            seen.insert(ch);
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn a_and_b_trains_partition_the_32_window() {
        let chans = |kofs| {
            let mut s = std::collections::HashSet::new();
            for tick in 0..32u32 {
                if !ClkVal::new(tick).bit(1) {
                    s.insert(hop_channel(
                        HopSequence::Inquiry { kofs },
                        ClkVal::new(tick),
                        GIAC28,
                    ));
                }
            }
            s
        };
        let a = chans(KOFFSET_A);
        let b = chans(KOFFSET_B);
        assert_eq!(a.len(), 16);
        assert_eq!(b.len(), 16);
        assert!(a.is_disjoint(&b), "A and B trains must not overlap");
    }

    #[test]
    fn scan_channel_changes_every_2048_slots() {
        // CLKN16-12 is constant within a 1.28 s epoch.
        let c1 = hop_channel(HopSequence::InquiryScan, ClkVal::new(100), GIAC28);
        let c2 = hop_channel(HopSequence::InquiryScan, ClkVal::new(4000), GIAC28);
        assert_eq!(c1, c2);
        let c3 = hop_channel(
            HopSequence::InquiryScan,
            ClkVal::new(100 + (1 << 12)),
            GIAC28,
        );
        assert_ne!(c1, c3);
    }

    #[test]
    fn rx_slot_mirrors_tx_slot_in_trains() {
        // The X input repeats across a TX/RX slot pair: the listening
        // frequency of the response slot equals the preceding TX frequency
        // modulo the Y1 offset.
        for pair in 0..64u32 {
            let t_tx = ClkVal::new(pair * 4); // CLK1=0, CLK0=0
            let t_rx = ClkVal::new(pair * 4 + 2); // CLK1=1, CLK0=0
            assert_eq!(train_x(t_tx, KOFFSET_A), train_x(t_rx, KOFFSET_A));
            assert_eq!(
                train_x(ClkVal::new(pair * 4 + 1), KOFFSET_A),
                train_x(ClkVal::new(pair * 4 + 3), KOFFSET_A)
            );
        }
    }

    #[test]
    fn connection_covers_most_of_the_band() {
        let addr = BdAddr::new(0, 0x11, 0x35B7D9).hop_input();
        let mut seen = std::collections::HashSet::new();
        for tick in 0..(1u32 << 14) {
            seen.insert(hop_channel(
                HopSequence::Connection,
                ClkVal::new(tick),
                addr,
            ));
        }
        assert!(
            seen.len() >= 70,
            "connection hopping should span the band, got {}",
            seen.len()
        );
    }

    #[test]
    fn connection_distribution_is_roughly_uniform() {
        let addr = BdAddr::new(0, 0x23, 0x114477).hop_input();
        let mut counts = [0u32; CHANNELS as usize];
        let n = 79 * 400u32;
        for tick in 0..n {
            counts[hop_channel(HopSequence::Connection, ClkVal::new(tick), addr) as usize] += 1;
        }
        let mean = n as f64 / CHANNELS as f64;
        for (ch, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) < mean * 3.0,
                "channel {ch} over-represented: {c} (mean {mean})"
            );
        }
    }

    #[test]
    fn different_addresses_hop_differently() {
        let a1 = BdAddr::new(0, 0x01, 0x111111).hop_input();
        let a2 = BdAddr::new(0, 0x02, 0x222222).hop_input();
        let same = (0..1000u32)
            .filter(|&t| {
                hop_channel(HopSequence::Connection, ClkVal::new(t), a1)
                    == hop_channel(HopSequence::Connection, ClkVal::new(t), a2)
            })
            .count();
        assert!(same < 100, "sequences should rarely coincide: {same}/1000");
    }

    #[test]
    fn channel_map_blocking_and_remap() {
        let map = ChannelMap::blocking(29..=50);
        assert_eq!(map.used_count(), 79 - 22);
        assert!(!map.is_used(29));
        assert!(!map.is_used(50));
        assert!(map.is_used(28));
        // Remapped channels always land in the used set.
        for ch in 0..CHANNELS {
            assert!(map.is_used(map.remap(ch)), "remap({ch})");
        }
        // Used channels are untouched.
        assert_eq!(map.remap(10), 10);
    }

    #[test]
    fn afh_remap_is_roughly_uniform_over_used_channels() {
        let map = ChannelMap::blocking(29..=50);
        let addr = BdAddr::new(0, 0x31, 0x4D2E77).hop_input();
        let mut counts = [0u32; CHANNELS as usize];
        let n = 20_000u32;
        for t in 0..n {
            let ch = hop_channel_afh(ClkVal::new(t), addr, &map);
            assert!(map.is_used(ch));
            counts[ch as usize] += 1;
        }
        let mean = n as f64 / map.used_count() as f64;
        for (ch, &c) in counts.iter().enumerate() {
            if map.is_used(ch as u8) {
                assert!(
                    (c as f64) < mean * 4.0,
                    "channel {ch} over-represented: {c}"
                );
            } else {
                assert_eq!(c, 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "AFH needs at least")]
    fn channel_map_rejects_too_few_channels() {
        ChannelMap::blocking(0..70);
    }

    #[test]
    fn try_constructors_enforce_the_spec_floor() {
        // 79 − 59 = 20 used: exactly the floor, accepted.
        let at_floor = ChannelMap::try_blocking(0..59).expect("Nmin reached");
        assert_eq!(at_floor.used_count(), MIN_AFH_CHANNELS);
        // 79 − 60 = 19 used: one below, rejected.
        assert_eq!(
            ChannelMap::try_blocking(0..60),
            Err(TooFewChannels { used: 19 })
        );
        // Out-of-range blocked channels are ignored, not counted.
        let with_oob = ChannelMap::try_blocking([200u8, 250]).expect("no-op blocks");
        assert_eq!(with_oob.used_count(), CHANNELS as usize);
        assert_eq!(
            ChannelMap::try_from_used([false; CHANNELS as usize]),
            Err(TooFewChannels { used: 0 })
        );
    }

    #[test]
    fn channel_map_wire_roundtrip() {
        let map = ChannelMap::blocking(29..=50);
        let bytes = map.to_bytes();
        assert_eq!(ChannelMap::from_bytes(&bytes), Ok(map.clone()));
        // The 80th bit is ignored on parse and zero on encode.
        assert_eq!(bytes[9] & 0x80, 0);
        let mut with_high_bit = bytes;
        with_high_bit[9] |= 0x80;
        assert_eq!(ChannelMap::from_bytes(&with_high_bit), Ok(map));
        // A thin map is rejected at the wire.
        let thin = [0u8; 10];
        assert_eq!(
            ChannelMap::from_bytes(&thin),
            Err(TooFewChannels { used: 0 })
        );
        let mut nineteen = [0u8; 10];
        for ch in 0..19 {
            nineteen[ch / 8] |= 1 << (ch % 8);
        }
        assert_eq!(
            ChannelMap::from_bytes(&nineteen),
            Err(TooFewChannels { used: 19 })
        );
    }

    #[test]
    fn channel_map_intersect_guards_the_floor() {
        let a = ChannelMap::blocking(0..=29); // uses 30..79
        let b = ChannelMap::blocking(50..=78); // uses 0..50
        let both = a.intersect(&b).expect("30..50 has 20 channels");
        assert_eq!(both.used_count(), 20);
        assert!(both.is_used(30));
        assert!(both.is_used(49));
        assert!(!both.is_used(29));
        assert!(!both.is_used(50));
        let c = ChannelMap::blocking(49..=78); // uses 0..49
        assert_eq!(a.intersect(&c), Err(TooFewChannels { used: 19 }));
    }

    #[test]
    fn page_estimate_mid_train_rendezvous() {
        // With an exact clock estimate, the A-train (kofs=24) covers the
        // scanned X position mid-train: there exists a tick within one
        // train period where the pager transmits on the scanner's channel.
        let addr = BdAddr::new(0, 0x0C, 0x5A5A5A).hop_input();
        for epoch in [0u32, 1, 5, 17] {
            let scan_clk = ClkVal::new(epoch << 12);
            let scan_ch = hop_channel(HopSequence::PageScan, scan_clk, addr);
            let hit = (0..32u32).any(|tick| {
                let clk = ClkVal::new((epoch << 12) | tick);
                !clk.bit(1)
                    && hop_channel(HopSequence::Page { kofs: KOFFSET_A }, clk, addr) == scan_ch
            });
            assert!(hit, "epoch {epoch}: A-train must cover the scan channel");
        }
    }
}
