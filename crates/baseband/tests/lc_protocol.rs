//! Protocol-level tests of the link controller as a pure state machine:
//! a miniature harness ticks two controllers and carries their
//! transmissions directly, with no channel or kernel involved. This
//! validates the sans-IO contract the simulator builds on.

use btsim_baseband::{
    BdAddr, ClkVal, Clock, LcAction, LcCommand, LcConfig, LcEvent, LinkController, RxDelivery,
};
use btsim_kernel::{SimDuration, SimTime};

/// A scheduled transmission in flight between the two controllers.
#[derive(Debug, Clone)]
struct AirPacket {
    from: usize,
    at: SimTime,
    rf_channel: u8,
    bits: btsim_coding::BitVec,
}

/// Open receive window of one controller.
#[derive(Debug, Clone, Copy)]
struct Window {
    from: SimTime,
    until: Option<SimTime>,
    rf_channel: u8,
}

/// Minimal two-device harness: perfect channel, exact window semantics.
struct Harness {
    lcs: Vec<LinkController>,
    windows: Vec<Option<Window>>,
    pending_windows: Vec<Vec<Window>>,
    air: Vec<AirPacket>,
    events: Vec<(SimTime, usize, LcEvent)>,
    now: SimTime,
}

impl Harness {
    fn new(cfg: LcConfig, clkn: [u32; 2]) -> Self {
        let mk = |i: usize, clk: u32| {
            LinkController::new(
                BdAddr::new(0, 0x40 + i as u8, 0x123456 + i as u32 * 0x1111),
                Clock::new(ClkVal::new(clk)),
                cfg.clone(),
                99 + i as u64,
            )
        };
        Self {
            lcs: vec![mk(0, clkn[0]), mk(1, clkn[1])],
            windows: vec![None, None],
            pending_windows: vec![Vec::new(), Vec::new()],
            air: Vec::new(),
            events: Vec::new(),
            now: SimTime::ZERO,
        }
    }

    fn command(&mut self, dev: usize, cmd: LcCommand) {
        let now = self.now;
        let actions = self.lcs[dev].command(cmd, now);
        self.apply(dev, actions);
    }

    fn apply(&mut self, dev: usize, actions: Vec<LcAction>) {
        for a in actions {
            match a {
                LcAction::Tx {
                    at,
                    rf_channel,
                    bits,
                } => self.air.push(AirPacket {
                    from: dev,
                    at,
                    rf_channel,
                    bits,
                }),
                LcAction::RxWindow {
                    from,
                    until,
                    rf_channel,
                } => {
                    let w = Window {
                        from,
                        until,
                        rf_channel,
                    };
                    if from <= self.now {
                        self.windows[dev] = Some(w);
                    } else {
                        self.pending_windows[dev].push(w);
                    }
                }
                LcAction::RxOff => {
                    self.windows[dev] = None;
                    self.pending_windows[dev].clear();
                }
                LcAction::Event(e) => self.events.push((self.now, dev, e)),
            }
        }
    }

    /// Advances one half slot, delivering any due transmissions.
    fn half_slot(&mut self) {
        // Open pending windows due now.
        for dev in 0..self.lcs.len() {
            let due: Vec<Window> = {
                let p = &mut self.pending_windows[dev];
                let due = p.iter().filter(|w| w.from <= self.now).copied().collect();
                p.retain(|w| w.from > self.now);
                due
            };
            if let Some(w) = due.into_iter().last() {
                self.windows[dev] = Some(w);
            }
        }
        // Deliver transmissions ending within this half slot.
        let horizon = self.now + SimDuration::HALF_SLOT;
        let mut due: Vec<AirPacket> = Vec::new();
        self.air.retain(|p| {
            let end = p.at + SimDuration::from_bits(p.bits.len());
            if end <= horizon {
                due.push(p.clone());
                false
            } else {
                true
            }
        });
        due.sort_by_key(|p| p.at);
        for p in due {
            let end = p.at + SimDuration::from_bits(p.bits.len());
            for dev in 0..self.lcs.len() {
                if dev == p.from {
                    continue;
                }
                let Some(w) = self.windows[dev] else { continue };
                let open = w.from <= p.at && w.until.is_none_or(|u| u >= p.at);
                if open && w.rf_channel == p.rf_channel {
                    let rx = RxDelivery {
                        bits: p.bits.clone(),
                        collision_mask: None,
                        rf_channel: p.rf_channel,
                        start: p.at,
                        end,
                    };
                    let t = end + SimDuration::from_us(5);
                    let actions = self.lcs[dev].on_rx(&rx, t);
                    self.apply(dev, actions);
                }
            }
        }
        // Tick both controllers at the new instant.
        self.now = horizon;
        for dev in 0..self.lcs.len() {
            let now = self.now;
            let actions = self.lcs[dev].on_tick(now);
            self.apply(dev, actions);
        }
    }

    fn run_slots(&mut self, slots: u64) {
        for _ in 0..slots * 2 {
            self.half_slot();
        }
    }

    fn has_event(&self, dev: usize, pred: impl Fn(&LcEvent) -> bool) -> bool {
        self.events.iter().any(|(_, d, e)| *d == dev && pred(e))
    }
}

fn base_cfg() -> LcConfig {
    LcConfig {
        inquiry_backoff_max: 32,
        inquiry_rearm_backoff_max: 16,
        ..LcConfig::default()
    }
}

#[test]
fn full_page_handshake_at_action_level() {
    let mut h = Harness::new(base_cfg(), [0, 12345 * 4 + 1]);
    let target = h.lcs[1].addr();
    let offset = h.lcs[0]
        .clkn(SimTime::ZERO)
        .offset_to(h.lcs[1].clkn(SimTime::ZERO));
    h.command(1, LcCommand::PageScan);
    h.command(
        0,
        LcCommand::Page {
            target,
            clke_offset: offset,
            timeout_slots: 0,
        },
    );
    h.run_slots(64);
    assert!(
        h.has_event(0, |e| matches!(e, LcEvent::PageComplete { .. })),
        "master must complete the page: events {:?}",
        h.events
    );
    assert!(
        h.has_event(1, |e| matches!(e, LcEvent::Connected { .. })),
        "slave must reach CONNECTION"
    );
    assert!(h.lcs[0].is_master());
    assert!(h.lcs[1].is_slave());
}

#[test]
fn full_inquiry_handshake_at_action_level() {
    let mut h = Harness::new(base_cfg(), [0, 7777]);
    h.command(1, LcCommand::InquiryScan);
    h.command(
        0,
        LcCommand::Inquiry {
            num_responses: 1,
            timeout_slots: 0,
        },
    );
    // Backoff ≤ 32 slots and matching trains: a few hundred slots suffice.
    h.run_slots(1200);
    assert!(
        h.has_event(0, |e| matches!(e, LcEvent::InquiryResult { .. })),
        "inquirer must receive the FHS: events {:?}",
        h.events.len()
    );
    let (_, _, LcEvent::InquiryResult { addr, .. }) = h
        .events
        .iter()
        .find(|(_, d, e)| *d == 0 && matches!(e, LcEvent::InquiryResult { .. }))
        .unwrap()
    else {
        unreachable!()
    };
    assert_eq!(*addr, h.lcs[1].addr());
}

#[test]
fn inquiry_clock_offset_estimate_is_accurate() {
    let mut h = Harness::new(base_cfg(), [0, 31337]);
    h.command(1, LcCommand::InquiryScan);
    h.command(
        0,
        LcCommand::Inquiry {
            num_responses: 1,
            timeout_slots: 0,
        },
    );
    h.run_slots(1200);
    let estimate = h
        .events
        .iter()
        .find_map(|(_, d, e)| match e {
            LcEvent::InquiryResult { clk_offset, .. } if *d == 0 => Some(*clk_offset),
            _ => None,
        })
        .expect("discovery happened");
    let truth = h.lcs[0]
        .clkn(SimTime::ZERO)
        .offset_to(h.lcs[1].clkn(SimTime::ZERO));
    // CLK27-2 truncation allows up to 4 ticks of error.
    let err = (estimate as i64 - truth as i64).rem_euclid(1 << 28);
    let err = err.min((1 << 28) - err);
    assert!(err <= 4, "clock estimate off by {err} ticks");
}

#[test]
fn page_timeout_fires_and_returns_to_standby() {
    let mut h = Harness::new(base_cfg(), [0, 999]);
    let target = h.lcs[1].addr();
    // No scanner: the page must give up after its timeout.
    h.command(
        0,
        LcCommand::Page {
            target,
            clke_offset: 0,
            timeout_slots: 64,
        },
    );
    h.run_slots(80);
    assert!(h.has_event(0, |e| matches!(e, LcEvent::PageFailed { .. })));
    assert!(!h.lcs[0].is_master());
}

#[test]
fn inquiry_timeout_reports_partial_results() {
    let mut h = Harness::new(base_cfg(), [0, 55]);
    // Scanner never enabled: timeout with zero responses.
    h.command(
        0,
        LcCommand::Inquiry {
            num_responses: 1,
            timeout_slots: 128,
        },
    );
    h.run_slots(160);
    assert!(h.has_event(0, |e| matches!(
        e,
        LcEvent::InquiryComplete { responses: 0 }
    )));
}

#[test]
fn poll_exchange_continues_after_connection() {
    let mut h = Harness::new(base_cfg(), [40, 20001]);
    let target = h.lcs[1].addr();
    let offset = h.lcs[0]
        .clkn(SimTime::ZERO)
        .offset_to(h.lcs[1].clkn(SimTime::ZERO));
    h.command(1, LcCommand::PageScan);
    h.command(
        0,
        LcCommand::Page {
            target,
            clke_offset: offset,
            timeout_slots: 0,
        },
    );
    h.run_slots(40);
    assert!(h.lcs[0].is_master());
    // Queue data; it must arrive via the polling discipline.
    let lt = h.lcs[0].connected_slaves()[0].0;
    h.command(
        0,
        LcCommand::AclData {
            lt_addr: lt,
            data: vec![0xAB, 0xCD],
        },
    );
    h.run_slots(250);
    assert!(
        h.has_event(1, |e| matches!(
            e,
            LcEvent::AclReceived { data, .. } if data == &vec![0xAB, 0xCD]
        )),
        "slave must receive the queued payload"
    );
    // The master saw the acknowledgement.
    assert!(h.has_event(0, |e| matches!(e, LcEvent::AclDelivered { .. })));
}

#[test]
fn abort_procedure_stops_scanning() {
    let mut h = Harness::new(base_cfg(), [0, 1]);
    h.command(1, LcCommand::InquiryScan);
    assert!(h.windows[1].is_some(), "scan window must be open");
    h.command(1, LcCommand::AbortProcedure);
    assert!(h.windows[1].is_none(), "abort must close the receiver");
    h.run_slots(4);
    assert!(h.has_event(1, |e| matches!(
        e,
        LcEvent::PhaseChanged {
            phase: btsim_baseband::LifePhase::Standby
        }
    )));
}

#[test]
fn scan_channel_follows_clock_epochs() {
    // The inquiry-scan channel changes when CLKN16-12 changes (every
    // 2048 slots); the controller must re-tune its window.
    let mut h = Harness::new(base_cfg(), [(1 << 12) - 64, 0]);
    h.command(0, LcCommand::InquiryScan);
    let before = h.windows[0].expect("window open").rf_channel;
    // Cross the epoch boundary (32 slots = 64 ticks).
    h.run_slots(64);
    let after = h.windows[0].expect("window still open").rf_channel;
    assert_ne!(before, after, "scan channel must hop at the epoch boundary");
}
