//! Property-based tests of the baseband layer.

use btsim_baseband::{hop, packet, BdAddr, ClkVal, Clock, PacketType, CLK_WRAP};
use btsim_coding::syncword;
use btsim_kernel::SimTime;
use proptest::prelude::*;

fn arb_keys() -> impl Strategy<Value = packet::LinkKeys> {
    (any::<u32>(), any::<u8>(), 0u8..64, any::<bool>()).prop_map(|(lap, uap, whiten, fhs_fec)| {
        packet::LinkKeys {
            lap: lap & 0xFF_FFFF,
            uap,
            whiten,
            sync_threshold: syncword::DEFAULT_SYNC_THRESHOLD,
            fhs_fec,
        }
    })
}

fn arb_acl_type() -> impl Strategy<Value = PacketType> {
    prop::sample::select(vec![
        PacketType::Dm1,
        PacketType::Dh1,
        PacketType::Dm3,
        PacketType::Dh3,
        PacketType::Dm5,
        PacketType::Dh5,
        PacketType::Aux1,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn acl_packets_roundtrip(
        keys in arb_keys(),
        ptype in arb_acl_type(),
        lt_addr in 0u8..8,
        flow: bool,
        arqn: bool,
        seqn: bool,
        data in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let data = {
            let mut d = data;
            d.truncate(ptype.max_user_bytes());
            d
        };
        let header = packet::Header { lt_addr, ptype, flow, arqn, seqn };
        let payload = packet::Payload::Acl {
            llid: packet::Llid::Start,
            flow: true,
            data: data.clone(),
        };
        let air = packet::encode(&keys, &header, &payload);
        prop_assert_eq!(air.len(), packet::air_bits(ptype, data.len(), keys.fhs_fec));
        match packet::decode(&air, None, &keys) {
            Ok(packet::Decoded::Packet { header: h, payload: packet::Payload::Acl { data: got, .. } }) => {
                prop_assert_eq!(h.lt_addr, lt_addr);
                prop_assert_eq!(h.ptype, ptype);
                prop_assert_eq!(h.flow, flow);
                prop_assert_eq!(h.arqn, arqn);
                prop_assert_eq!(h.seqn, seqn);
                prop_assert_eq!(got, data);
            }
            other => prop_assert!(false, "unexpected decode: {:?}", other),
        }
    }

    #[test]
    fn fhs_packets_roundtrip(
        keys in arb_keys(),
        raw_addr: u64,
        class in 0u32..0x100_0000,
        lt_addr in 0u8..8,
        clk in 0u32..(1 << 26),
    ) {
        let fhs = packet::FhsPayload {
            addr: BdAddr::from_raw(raw_addr),
            class_of_device: class,
            lt_addr,
            clk27_2: clk,
            page_scan_mode: 0,
            sr: 1,
            sp: 0,
        };
        let header = packet::Header {
            lt_addr,
            ptype: PacketType::Fhs,
            flow: true,
            arqn: false,
            seqn: false,
        };
        let air = packet::encode(&keys, &header, &packet::Payload::Fhs(fhs));
        match packet::decode(&air, None, &keys) {
            Ok(packet::Decoded::Packet { payload: packet::Payload::Fhs(got), .. }) => {
                prop_assert_eq!(got, fhs);
            }
            other => prop_assert!(false, "unexpected decode: {:?}", other),
        }
    }

    #[test]
    fn corrupted_acl_payload_never_yields_wrong_bytes(
        keys in arb_keys(),
        data in prop::collection::vec(any::<u8>(), 1..17),
        flips in prop::collection::vec(0usize..366, 1..8),
    ) {
        // Whatever the corruption, a CRC-checked packet either fails to
        // decode or decodes to exactly the original payload (FEC repair).
        let header = packet::Header {
            lt_addr: 1,
            ptype: PacketType::Dm1,
            flow: true,
            arqn: false,
            seqn: false,
        };
        let payload = packet::Payload::Acl {
            llid: packet::Llid::Start,
            flow: true,
            data: data.clone(),
        };
        let mut air = packet::encode(&keys, &header, &payload);
        for f in flips {
            let idx = f % air.len();
            air.toggle(idx);
        }
        if let Ok(packet::Decoded::Packet {
            payload: packet::Payload::Acl { data: got, .. },
            ..
        }) = packet::decode(&air, None, &keys)
        {
            prop_assert_eq!(got, data, "CRC accepted corrupted bytes");
        }
    }

    #[test]
    fn hop_channel_always_in_band(clk: u32, addr: u32, kofs in prop::sample::select(vec![hop::KOFFSET_A, hop::KOFFSET_B])) {
        let clk = ClkVal::new(clk);
        let addr = addr & 0x0FFF_FFFF;
        for seq in [
            hop::HopSequence::Connection,
            hop::HopSequence::Page { kofs },
            hop::HopSequence::Inquiry { kofs },
            hop::HopSequence::PageScan,
            hop::HopSequence::InquiryScan,
        ] {
            prop_assert!(hop::hop_channel(seq, clk, addr) < hop::CHANNELS);
        }
    }

    #[test]
    fn page_train_always_covers_the_scan_channel(clk_hi in 0u32..(1 << 11), addr: u32) {
        // With an exact estimate, some tick within a train period pages
        // on the channel the target scans — the rendezvous guarantee the
        // whole page procedure rests on.
        let addr = addr & 0x0FFF_FFFF;
        let epoch = clk_hi << 12;
        let scan_ch = hop::hop_channel(hop::HopSequence::PageScan, ClkVal::new(epoch), addr);
        let hit = (0..32u32).any(|tick| {
            let clk = ClkVal::new(epoch | tick);
            hop::hop_channel(hop::HopSequence::Page { kofs: hop::KOFFSET_A }, clk, addr) == scan_ch
        });
        prop_assert!(hit, "A-train never covered the scan channel");
    }

    #[test]
    fn clock_offsets_compose(a: u32, b: u32, c: u32) {
        let (a, b, c) = (ClkVal::new(a), ClkVal::new(b), ClkVal::new(c));
        let ab = a.offset_to(b);
        let bc = b.offset_to(c);
        let ac = a.offset_to(c);
        prop_assert_eq!((ab + bc) % CLK_WRAP, ac);
        prop_assert_eq!(a.offset_by(ab), b);
    }

    #[test]
    fn clock_is_monotone_in_time(start: u32, t1 in 0u64..10_000_000, dt in 0u64..10_000_000) {
        let clock = Clock::new(ClkVal::new(start));
        let c1 = clock.clkn_at(SimTime::from_us(t1));
        let c2 = clock.clkn_at(SimTime::from_us(t1 + dt));
        let advanced = c1.offset_to(c2) as u64;
        // Ticks advanced equals elapsed half-slots.
        let expected = (t1 + dt) * 1000 / 312_500 - t1 * 1000 / 312_500;
        prop_assert_eq!(advanced, expected % (1 << 28));
    }

    #[test]
    fn whitening_seed_and_slot_helpers_consistent(v: u32) {
        let c = ClkVal::new(v);
        prop_assert_eq!(c.whitening_seed() as u32, (c.raw() >> 1) & 0x3F);
        prop_assert_eq!(c.slot(), c.raw() >> 1);
        prop_assert_eq!(c.is_slot_start(), c.raw() & 1 == 0);
        prop_assert_eq!(c.is_master_tx_slot(), c.raw() & 2 == 0);
    }

    #[test]
    fn fhs_clock_reconstruction_error_is_bounded(v: u32) {
        // Reconstructing a clock from CLK27-2 loses at most 3 ticks.
        let c = ClkVal::new(v);
        let rec = ClkVal::from_clk27_2(c.clk27_2());
        let err = rec.offset_to(c);
        prop_assert!(err <= 3, "error {} ticks", err);
    }
}

// The scatternet subsystem lets many piconets share the 79-channel
// medium; its inter-piconet collision experiment assumes the
// connection-state hop sequences of distinct piconets are
// de-correlated: the *ensemble* same-channel rate over random piconet
// pairs is ≈ 1/79 per slot. (Individual pairs are over-dispersed —
// the selection box is a shallow mix, not a PRF: addresses differing
// only in the final mod-79 addend E give constant-shifted, disjoint
// sequences, while pairs sharing most control words overlap several
// times chance — so the property is stated over an ensemble, exactly
// the quantity the Monte-Carlo collision experiment measures.)
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ensemble_hop_overlap_rate_is_one_in_79(
        addrs in prop::collection::vec(any::<u32>(), 96),
        offsets in prop::collection::vec(1u32..(1 << 28), 48),
        start in 0u32..(1 << 24),
    ) {
        let per_pair = 2_000u32;
        let mut pairs = 0u32;
        let mut same = 0u32;
        for (chunk, off) in addrs.chunks_exact(2).zip(&offsets) {
            let a1 = chunk[0] & 0x0FFF_FFFF;
            let a2 = chunk[1] & 0x0FFF_FFFF;
            if a1 == a2 {
                continue;
            }
            pairs += 1;
            same += (0..per_pair)
                .filter(|&k| {
                    let c1 = ClkVal::new(start.wrapping_add(2 * k));
                    let c2 = c1.offset_by(*off);
                    hop::hop_channel(hop::HopSequence::Connection, c1, a1)
                        == hop::hop_channel(hop::HopSequence::Connection, c2, a2)
                })
                .count() as u32;
        }
        prop_assume!(pairs >= 32);
        let rate = same as f64 / (pairs * per_pair) as f64;
        // Measured per-pair rate dispersion is σ ≈ 0.011; the mean of
        // ≥32 pairs has σ ≤ 0.002, so ±0.010 is a ≥5σ band around 1/79.
        prop_assert!(
            (rate - 1.0 / 79.0).abs() <= 0.010,
            "ensemble same-channel rate {rate:.5} not within 1/79 ± 0.010"
        );
    }

    #[test]
    fn shared_clock_ensemble_overlap_does_not_exceed_chance(
        addrs in prop::collection::vec(any::<u32>(), 96),
    ) {
        // Degenerate case: two piconets whose masters' clocks coincide
        // exactly. Pairwise anything can happen (0 to several times
        // chance); the ensemble must still not collide systematically
        // more than 1/79 or the collision experiment's analytic anchor
        // would be wrong.
        let per_pair = 2_000u32;
        let mut pairs = 0u32;
        let mut same = 0u32;
        for chunk in addrs.chunks_exact(2) {
            let a1 = chunk[0] & 0x0FFF_FFFF;
            let a2 = chunk[1] & 0x0FFF_FFFF;
            if a1 == a2 {
                continue;
            }
            pairs += 1;
            same += (0..per_pair)
                .filter(|&k| {
                    let clk = ClkVal::new(4 * k); // master TX slot starts
                    hop::hop_channel(hop::HopSequence::Connection, clk, a1)
                        == hop::hop_channel(hop::HopSequence::Connection, clk, a2)
                })
                .count() as u32;
        }
        prop_assume!(pairs >= 32);
        let rate = same as f64 / (pairs * per_pair) as f64;
        prop_assert!(
            rate <= 1.0 / 79.0 + 0.010,
            "ensemble same-channel rate {rate:.5} exceeds 1/79 + 0.010"
        );
    }
}

// The AFH channel map: every construction path enforces the spec's
// Nmin = 20 floor, the remap always lands in the used set, and the
// 10-byte LMP wire form roundtrips exactly.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn channel_map_floor_remap_and_wire_roundtrip(
        raw in prop::collection::vec(0u8..hop::CHANNELS, 0..70),
        clk in 0u32..(1 << 27),
        addr in any::<u32>(),
    ) {
        let blocked: std::collections::BTreeSet<u8> = raw.into_iter().collect();
        let remaining = hop::CHANNELS as usize - blocked.len();
        match hop::ChannelMap::try_blocking(blocked.iter().copied()) {
            Ok(map) => {
                // Construction succeeds exactly when the floor holds.
                prop_assert!(remaining >= hop::MIN_AFH_CHANNELS);
                prop_assert_eq!(map.used_count(), remaining);
                // Remap of any channel lands in the used set; used
                // channels are fixed points.
                for ch in 0..hop::CHANNELS {
                    let r = map.remap(ch);
                    prop_assert!(map.is_used(r), "remap({}) = {} unused", ch, r);
                    if map.is_used(ch) {
                        prop_assert_eq!(r, ch);
                    }
                }
                // The adaptive hop selector respects the map.
                let ch = hop::hop_channel_afh(ClkVal::new(clk), addr & 0x0FFF_FFFF, &map);
                prop_assert!(map.is_used(ch));
                // Wire roundtrip is exact, with the 80th bit clear.
                let bytes = map.to_bytes();
                prop_assert_eq!(bytes[9] & 0x80, 0);
                prop_assert_eq!(hop::ChannelMap::from_bytes(&bytes), Ok(map));
            }
            Err(e) => {
                prop_assert!(remaining < hop::MIN_AFH_CHANNELS);
                prop_assert_eq!(e.used, remaining);
            }
        }
    }
}
