//! Word-parallel ≡ bit-serial equivalence suite.
//!
//! The coding hot path (whitening, FEC 1/3, FEC 2/3, CRC-16, HEC, the
//! sync-word correlator and the word-level `BitVec` operations) was
//! rewritten to process 64-bit words and compile-time tables. This suite
//! retains the original bit-serial implementations as reference codecs
//! and proves the rewrites bit-exact over every length the baseband can
//! produce (1..=2880 air bits) and random clock seeds — the gate the
//! perf work rides on (see `docs/PERF.md`).

use btsim_coding::{crc, fec, hec, syncword, BitVec, Whitener};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Bit-serial reference codecs (the pre-rewrite implementations).
// ---------------------------------------------------------------------

/// Reference whitening: clock the x⁷+x⁴+1 LFSR one bit at a time.
struct RefWhitener {
    reg: u8,
}

impl RefWhitener {
    fn from_clk(clk6_1: u8) -> Self {
        Self {
            reg: 0x40 | (clk6_1 & 0x3F),
        }
    }

    fn next_bit(&mut self) -> bool {
        let out = (self.reg >> 6) & 1;
        let fb = out ^ ((self.reg >> 3) & 1);
        self.reg = ((self.reg << 1) | fb) & 0x7F;
        out == 1
    }

    fn apply(&mut self, bits: &BitVec) -> BitVec {
        BitVec::from_fn(bits.len(), |i| bits.get(i).unwrap() ^ self.next_bit())
    }
}

fn ref_fec13_encode(bits: &BitVec) -> BitVec {
    let mut out = BitVec::with_capacity(bits.len() * 3);
    for b in bits.iter() {
        out.push(b);
        out.push(b);
        out.push(b);
    }
    out
}

fn ref_fec13_decode(bits: &BitVec) -> (BitVec, usize) {
    assert_eq!(bits.len() % 3, 0);
    let mut out = BitVec::with_capacity(bits.len() / 3);
    let mut corrected = 0;
    for i in (0..bits.len()).step_by(3) {
        let votes = bits.get(i).unwrap() as u8
            + bits.get(i + 1).unwrap() as u8
            + bits.get(i + 2).unwrap() as u8;
        out.push(votes >= 2);
        if votes == 1 || votes == 2 {
            corrected += 1;
        }
    }
    (out, corrected)
}

/// Generator of the (15,10) code, D⁵ term included.
const FEC23_GEN: u32 = 0b110101;

fn ref_fec23_parity(block: u16) -> u8 {
    let mut v = (block as u32) << 5;
    for k in (5..15).rev() {
        if v & (1 << k) != 0 {
            v ^= FEC23_GEN << (k - 5);
        }
    }
    (v & 0x1F) as u8
}

fn ref_fec23_encode(bits: &BitVec) -> BitVec {
    let mut out = BitVec::with_capacity(bits.len().div_ceil(10) * 15);
    let mut i = 0;
    while i < bits.len() {
        let mut block = 0u16;
        for k in 0..10 {
            if bits.get(i + k) == Some(true) {
                block |= 1 << (9 - k);
            }
        }
        let parity = ref_fec23_parity(block);
        for k in 0..10 {
            out.push(block & (1 << (9 - k)) != 0);
        }
        for k in 0..5 {
            out.push(parity & (1 << (4 - k)) != 0);
        }
        i += 10;
    }
    out
}

fn ref_error_position(syndrome: u8) -> Option<usize> {
    for k in 0..15usize {
        let mut v = 1u32 << (14 - k);
        for j in (5..15).rev() {
            if v & (1 << j) != 0 {
                v ^= FEC23_GEN << (j - 5);
            }
        }
        if (v & 0x1F) as u8 == syndrome {
            return Some(k);
        }
    }
    None
}

/// Reference FEC 2/3 decode; returns (data, corrected, failed).
fn ref_fec23_decode(bits: &BitVec) -> (BitVec, usize, usize) {
    assert_eq!(bits.len() % 15, 0);
    let mut data = BitVec::with_capacity(bits.len() / 15 * 10);
    let mut corrected = 0;
    let mut failed = 0;
    for i in (0..bits.len()).step_by(15) {
        let mut block = 0u16;
        let mut parity = 0u8;
        for k in 0..10 {
            if bits.get(i + k).unwrap() {
                block |= 1 << (9 - k);
            }
        }
        for k in 0..5 {
            if bits.get(i + 10 + k).unwrap() {
                parity |= 1 << (4 - k);
            }
        }
        let syndrome = ref_fec23_parity(block) ^ parity;
        if syndrome != 0 {
            match ref_error_position(syndrome) {
                Some(pos) if pos < 10 => {
                    block ^= 1 << (9 - pos);
                    corrected += 1;
                }
                Some(_) => corrected += 1,
                None => failed += 1,
            }
        }
        for k in 0..10 {
            data.push(block & (1 << (9 - k)) != 0);
        }
    }
    (data, corrected, failed)
}

fn ref_crc16(uap: u8, bits: &BitVec) -> u16 {
    let mut reg = (uap as u16) << 8;
    for bit in bits.iter() {
        let fb = (reg >> 15) ^ (bit as u16);
        reg <<= 1;
        if fb & 1 == 1 {
            reg ^= 0x1021;
        }
    }
    reg
}

fn ref_hec(uap: u8, info: u16) -> u8 {
    let mut reg = uap;
    for i in 0..10 {
        let bit = ((info >> i) & 1) as u8;
        let fb = (reg >> 7) ^ bit;
        reg <<= 1;
        if fb & 1 == 1 {
            reg ^= 0b1010_0111;
        }
    }
    reg
}

fn ref_correlate(
    bits: &BitVec,
    offset: usize,
    mask: Option<&BitVec>,
    lap: u32,
    threshold: u8,
) -> (u8, bool) {
    let sync = syncword::sync_word(lap);
    let mut matches = 0u8;
    for i in 0..64 {
        let expected = (sync >> i) & 1 == 1;
        let collided = mask.and_then(|m| m.get(offset + i)).unwrap_or(false);
        if !collided && bits.get(offset + i) == Some(expected) {
            matches += 1;
        }
    }
    (matches, matches >= threshold)
}

// ---------------------------------------------------------------------
// Deterministic content generator (xorshift-style LCG).
// ---------------------------------------------------------------------

fn pattern(len: usize, seed: u64) -> BitVec {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    BitVec::from_fn(len, |_| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x & 1 == 1
    })
}

/// Every air-image length the baseband can produce: 1..=2880 bits
/// (a DH5 image is 2871 bits; 2880 adds margin to cover the FEC 2/3
/// padded grid).
const MAX_AIR_BITS: usize = 2880;

// ---------------------------------------------------------------------
// Exhaustive length sweeps.
// ---------------------------------------------------------------------

#[test]
fn whitening_equivalent_for_all_lengths() {
    for len in 1..=MAX_AIR_BITS {
        let clk = (len % 64) as u8;
        let data = pattern(len, len as u64);
        let mut fast = Whitener::from_clk(clk);
        let mut slow = RefWhitener::from_clk(clk);
        assert_eq!(fast.apply(&data), slow.apply(&data), "len {len}");
    }
}

#[test]
fn fec13_equivalent_for_all_lengths() {
    for len in 1..=MAX_AIR_BITS / 3 {
        let data = pattern(len, 31 + len as u64);
        let coded = fec::fec13_encode(&data);
        assert_eq!(coded, ref_fec13_encode(&data), "encode len {len}");
        // Corrupt a deterministic sprinkle of bits before decoding.
        let mut dirty = coded.clone();
        for i in (0..dirty.len()).step_by(7) {
            dirty.toggle(i);
        }
        let (d_fast, c_fast) = fec::fec13_decode(&dirty);
        let (d_ref, c_ref) = ref_fec13_decode(&dirty);
        assert_eq!(d_fast, d_ref, "decode len {len}");
        assert_eq!(c_fast, c_ref, "corrected len {len}");
    }
}

#[test]
fn fec23_equivalent_for_all_lengths() {
    for len in 1..=MAX_AIR_BITS / 2 {
        let data = pattern(len, 47 + len as u64);
        let coded = fec::fec23_encode(&data);
        assert_eq!(coded, ref_fec23_encode(&data), "encode len {len}");
        let mut dirty = coded.clone();
        for i in (0..dirty.len()).step_by(11) {
            dirty.toggle(i);
        }
        let fast = fec::fec23_decode(&dirty);
        let (d_ref, c_ref, f_ref) = ref_fec23_decode(&dirty);
        assert_eq!(fast.data, d_ref, "decode len {len}");
        assert_eq!(fast.corrected, c_ref, "corrected len {len}");
        assert_eq!(fast.failed, f_ref, "failed len {len}");
    }
}

#[test]
fn crc_equivalent_for_all_lengths() {
    for len in 1..=MAX_AIR_BITS {
        let data = pattern(len, 77 + len as u64);
        let uap = (len * 37) as u8;
        assert_eq!(
            crc::crc16_bits(uap, &data),
            ref_crc16(uap, &data),
            "len {len}"
        );
        assert_eq!(
            crc::crc16(uap, data.iter()),
            ref_crc16(uap, &data),
            "iterator form len {len}"
        );
    }
}

#[test]
fn hec_equivalent_exhaustively() {
    for uap in 0..=255u8 {
        for info in 0..1024u16 {
            assert_eq!(
                hec::hec(uap, info),
                ref_hec(uap, info),
                "{uap:#x}/{info:#x}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Randomized properties (content, seeds, masks, offsets).
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn whitening_equivalent_for_random_seeds_and_content(
        clk in 0u8..64,
        len in 1usize..=MAX_AIR_BITS,
        seed: u64,
    ) {
        let data = pattern(len, seed);
        let mut fast = Whitener::from_clk(clk);
        let mut slow = RefWhitener::from_clk(clk);
        // Split like the baseband: 18 header bits, then the payload,
        // whitened with one continuous stream.
        let head = len.min(18);
        let mut got = fast.apply(&data.slice(0, head));
        got.extend_bits(&fast.apply(&data.slice(head, len - head)));
        let mut want = slow.apply(&data.slice(0, head));
        want.extend_bits(&slow.apply(&data.slice(head, len - head)));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn fec_equivalent_for_random_content(len in 1usize..=960, seed: u64) {
        let data = pattern(len, seed);
        prop_assert_eq!(fec::fec13_encode(&data), ref_fec13_encode(&data));
        prop_assert_eq!(fec::fec23_encode(&data), ref_fec23_encode(&data));
        // Decode a randomly corrupted stream.
        let mut coded13 = fec::fec13_encode(&data);
        let mut coded23 = fec::fec23_encode(&data);
        let mut x = seed | 1;
        for _ in 0..8 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            coded13.toggle((x >> 33) as usize % coded13.len());
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            coded23.toggle((x >> 33) as usize % coded23.len());
        }
        let (d13, c13) = fec::fec13_decode(&coded13);
        let (rd13, rc13) = ref_fec13_decode(&coded13);
        prop_assert_eq!(d13, rd13);
        prop_assert_eq!(c13, rc13);
        let f23 = fec::fec23_decode(&coded23);
        let (rd23, rc23, rf23) = ref_fec23_decode(&coded23);
        prop_assert_eq!(f23.data, rd23);
        prop_assert_eq!(f23.corrected, rc23);
        prop_assert_eq!(f23.failed, rf23);
    }

    #[test]
    fn crc_strip_equivalent_for_random_content(
        len in 0usize..=2728,
        seed: u64,
        uap: u8,
    ) {
        let mut framed = pattern(len, seed);
        crc::append_crc(uap, &mut framed);
        prop_assert_eq!(crc::strip_crc(uap, &framed), Some(framed.slice(0, len)));
        let mut corrupt = framed.clone();
        corrupt.toggle((seed as usize) % corrupt.len());
        prop_assert_eq!(crc::strip_crc(uap, &corrupt), None);
    }

    #[test]
    fn correlate_equivalent_with_masks_and_truncation(
        lap in 0u32..0x100_0000,
        cut in 0usize..=72,
        mask_seed: u64,
        threshold in 0u8..=64,
    ) {
        let ac = syncword::access_code(lap, false);
        let bits = ac.slice(0, ac.len() - cut.min(ac.len() - 4));
        let mask = if mask_seed.is_multiple_of(3) {
            None
        } else {
            Some(pattern(bits.len(), mask_seed))
        };
        let got = syncword::correlate(&bits, 4, mask.as_ref(), lap, threshold);
        let (matches, detected) = ref_correlate(&bits, 4, mask.as_ref(), lap, threshold);
        prop_assert_eq!(got.matches, matches);
        prop_assert_eq!(got.detected, detected);
    }

    #[test]
    fn bitvec_word_ops_match_naive(
        len in 1usize..=512,
        start_frac in 0usize..100,
        seed: u64,
    ) {
        let v = pattern(len, seed);
        // slice ≡ from_fn over get.
        let start = start_frac * len / 100;
        let slen = len - start;
        let naive = BitVec::from_fn(slen, |i| v.get(start + i).unwrap());
        prop_assert_eq!(v.slice(start, slen), naive);
        // extend_bits ≡ pushing every bit.
        let mut a = v.clone();
        a.extend_bits(&v);
        let mut b = v.clone();
        for bit in v.iter() {
            b.push(bit);
        }
        prop_assert_eq!(a, b);
        // fill_range ≡ per-bit set; ones ≡ fill_range over everything.
        let lo = start.min(len - 1);
        let hi = len - (len - lo) / 3;
        let mut f = v.clone();
        f.fill_range(lo, hi);
        let mut g = v.clone();
        for i in lo..hi {
            g.set(i, true);
        }
        prop_assert_eq!(&f, &g);
        let mut all = v.clone();
        all.fill_range(0, len);
        prop_assert_eq!(all.count_ones(), len);
        prop_assert_eq!(all, BitVec::ones(len));
        // xor_words ≡ xor_in_place with an equal-length vector.
        let w = pattern(len, seed ^ 0xDEAD_BEEF);
        let mut x1 = v.clone();
        x1.xor_in_place(&w);
        let mut x2 = v.clone();
        let mut words = Vec::new();
        let mut i = 0;
        while i < len {
            let n = (len - i).min(64) as u32;
            words.push(w.bits_lsb(i, n));
            i += n as usize;
        }
        x2.xor_words(&words);
        prop_assert_eq!(x1, x2);
        // bits_lsb ≡ per-bit read at arbitrary offsets.
        let off = start;
        let n = (len - off).min(64) as u32;
        let mut want = 0u64;
        for i in 0..n as usize {
            if v.get(off + i) == Some(true) {
                want |= 1u64 << i;
            }
        }
        prop_assert_eq!(v.bits_lsb(off, n), want);
    }
}
