//! Property-based tests for the coding primitives.

use btsim_coding::{crc, fec, hec, syncword, BitVec, Whitener};
use proptest::prelude::*;

fn bitvec_strategy(max_bits: usize) -> impl Strategy<Value = BitVec> {
    prop::collection::vec(any::<bool>(), 1..max_bits).prop_map(|v| v.into_iter().collect())
}

proptest! {
    #[test]
    fn bitvec_bytes_roundtrip(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let v = BitVec::from_bytes_lsb(&bytes);
        prop_assert_eq!(v.to_bytes_lsb(), bytes);
    }

    #[test]
    fn bitvec_push_bits_roundtrip(value: u64, n in 0u32..=64) {
        let mut v = BitVec::new();
        v.push_bits_lsb(value, n);
        let masked = if n == 64 { value } else { value & ((1u64 << n) - 1) };
        prop_assert_eq!(v.bits_lsb(0, n), masked);
    }

    #[test]
    fn bitvec_hamming_symmetry(a in bitvec_strategy(256)) {
        let mut b = a.clone();
        let flips: Vec<usize> = (0..a.len()).step_by(3).collect();
        for &i in &flips {
            b.toggle(i);
        }
        prop_assert_eq!(a.hamming(&b), flips.len());
        prop_assert_eq!(b.hamming(&a), flips.len());
    }

    #[test]
    fn fec13_corrects_any_single_error_per_triple(data in bitvec_strategy(60), seed: u64) {
        let coded = fec::fec13_encode(&data);
        let mut corrupt = coded.clone();
        // Flip exactly one bit in each triple, position chosen per-triple.
        let mut x = seed;
        for t in 0..data.len() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            corrupt.toggle(t * 3 + (x >> 33) as usize % 3);
        }
        let (decoded, corrected) = fec::fec13_decode(&corrupt);
        prop_assert_eq!(decoded, data.clone());
        prop_assert_eq!(corrected, data.len());
    }

    #[test]
    fn fec23_roundtrip_with_single_error_per_block(
        blocks in 1usize..8,
        positions in prop::collection::vec(0usize..15, 8),
        data_seed: u64,
    ) {
        let data = BitVec::from_fn(blocks * 10, |i| (data_seed >> (i % 64)) & 1 == 1);
        let coded = fec::fec23_encode(&data);
        let mut corrupt = coded.clone();
        for (b, &pos) in positions.iter().enumerate().take(blocks) {
            corrupt.toggle(b * 15 + pos);
        }
        let out = fec::fec23_decode(&corrupt);
        prop_assert_eq!(out.data, data);
        prop_assert_eq!(out.corrected, blocks);
        prop_assert_eq!(out.failed, 0);
    }

    #[test]
    fn crc_detects_arbitrary_corruptions(
        msg in prop::collection::vec(any::<u8>(), 1..32),
        uap: u8,
        flips in prop::collection::vec(0usize..128, 1..6),
    ) {
        let mut bits = BitVec::from_bytes_lsb(&msg);
        crc::append_crc(uap, &mut bits);
        let mut corrupt = bits.clone();
        let mut any_flip = false;
        let mut seen = std::collections::HashSet::new();
        for f in flips {
            let idx = f % corrupt.len();
            if seen.insert(idx) {
                corrupt.toggle(idx);
                any_flip = !any_flip;
            }
        }
        // An odd number of distinct flips can never cancel out.
        if any_flip {
            prop_assert!(crc::strip_crc(uap, &corrupt).is_none());
        }
    }

    #[test]
    fn hec_roundtrips_for_all_inputs(uap: u8, info in 0u16..1024) {
        prop_assert!(hec::check(uap, info, hec::hec(uap, info)));
    }

    #[test]
    fn whitening_is_involution(data in bitvec_strategy(512), clk in 0u8..64) {
        let white = Whitener::from_clk(clk).whiten(&data);
        let back = Whitener::from_clk(clk).whiten(&white);
        prop_assert_eq!(back, data);
    }

    #[test]
    fn sync_words_pairwise_distance(a in 0u32..0x100_0000, b in 0u32..0x100_0000) {
        prop_assume!(a != b);
        let d = (syncword::sync_word(a) ^ syncword::sync_word(b)).count_ones();
        prop_assert!(d >= 14, "distance {} between {:06X} and {:06X}", d, a, b);
    }

    #[test]
    fn correlation_tolerates_threshold_errors(lap in 0u32..0x100_0000, n_err in 0usize..=10) {
        let ac = syncword::access_code(lap, false);
        let mut noisy = ac.clone();
        for i in 0..n_err {
            noisy.toggle(4 + i * 5);
        }
        let c = syncword::correlate(&noisy, 4, None, lap, syncword::DEFAULT_SYNC_THRESHOLD);
        prop_assert!(c.detected);
        prop_assert_eq!(c.matches as usize, 64 - n_err);
    }
}
