//! Forward error correction: the 1/3 repetition code and the 2/3
//! shortened-Hamming (15,10) code (Bluetooth spec v1.2, Baseband §7.4/§7.5).
//!
//! * **FEC 1/3** repeats every bit three times and majority-decodes;
//!   it protects the 18-bit packet header.
//! * **FEC 2/3** appends 5 parity bits to every 10 data bits using the
//!   generator g(D) = (D + 1)(D⁴ + D + 1) = D⁵ + D⁴ + D² + 1. The code
//!   corrects one error and detects two per 15-bit codeword; it protects
//!   DM and FHS payloads.
//!
//! Both codes run table-driven: encode triples 8 input bits to 24 coded
//! bits per lookup ([`trip_bits`]), decode majority-votes 4 triples per
//! lookup, and the (15,10) code keeps one parity lookup per block plus a
//! 32-entry syndrome → error-position table. Every table is built at
//! compile time from the bit-serial definitions, and the unit tests pin
//! the tables to those definitions.

use crate::BitVec;

/// Generator polynomial of the (15,10) code, including the D⁵ term.
const FEC23_GEN: u16 = 0b110101;

/// `TRIP[b]`: the 8 bits of `b` each repeated three times, LSB first —
/// input bit j occupies output bits 3j, 3j+1, 3j+2.
const fn build_trip() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut out = 0u32;
        let mut j = 0;
        while j < 8 {
            if b & (1 << j) != 0 {
                out |= 0b111 << (3 * j);
            }
            j += 1;
        }
        t[b] = out;
        b += 1;
    }
    t
}

const TRIP: [u32; 256] = build_trip();

/// `VOTE[chunk]`: majority vote of 4 received triples (12 coded bits,
/// LSB first) packed as (decoded nibble, triples needing correction).
/// An absent (zero-padded) triple votes 0 with no correction, so partial
/// chunks decode through the same table.
const fn build_vote() -> ([u8; 4096], [u8; 4096]) {
    let mut data = [0u8; 4096];
    let mut corr = [0u8; 4096];
    let mut c = 0usize;
    while c < 4096 {
        let mut d = 0u8;
        let mut k = 0u8;
        let mut t = 0;
        while t < 4 {
            let triple = ((c >> (3 * t)) & 0b111) as u32;
            let votes = triple.count_ones();
            if votes >= 2 {
                d |= 1 << t;
            }
            if votes == 1 || votes == 2 {
                k += 1;
            }
            t += 1;
        }
        data[c] = d;
        corr[c] = k;
        c += 1;
    }
    (data, corr)
}

const VOTE: ([u8; 4096], [u8; 4096]) = build_vote();

/// Repeats the `n <= 21` low bits of `value` three times each, LSB
/// first: input bit j lands on output bits 3j..3j+3.
pub fn trip_bits(value: u64, n: u32) -> u64 {
    assert!(n <= 21, "tripling more than 21 bits overflows 64");
    let value = value & ((1u64 << n) - 1);
    let mut out = 0u64;
    let mut i = 0;
    while 8 * i < n {
        out |= (TRIP[(value >> (8 * i)) as usize & 0xFF] as u64) << (24 * i);
        i += 1;
    }
    out
}

/// Encodes `bits` with the 1/3 repetition code (each bit sent three times).
pub fn fec13_encode(bits: &BitVec) -> BitVec {
    let mut out = BitVec::with_capacity(bits.len() * 3);
    fec13_encode_into(bits, &mut out);
    out
}

/// Appends the 1/3-repetition encoding of `bits` to `out` (8 input bits
/// per table step; avoids an intermediate allocation on the TX path).
pub fn fec13_encode_into(bits: &BitVec, out: &mut BitVec) {
    let mut i = 0;
    while i < bits.len() {
        let n = (bits.len() - i).min(8) as u32;
        out.push_bits_lsb(TRIP[bits.bits_lsb(i, n) as usize] as u64, 3 * n);
        i += n as usize;
    }
}

/// Majority-decodes a 1/3-repetition stream.
///
/// Returns the decoded bits and how many triples needed correction.
///
/// # Panics
///
/// Panics if `bits.len()` is not a multiple of 3.
pub fn fec13_decode(bits: &BitVec) -> (BitVec, usize) {
    assert_eq!(bits.len() % 3, 0, "FEC 1/3 stream length must be 3n");
    let mut out = BitVec::with_capacity(bits.len() / 3);
    let mut corrected = 0usize;
    let mut i = 0;
    while i < bits.len() {
        let n = (bits.len() - i).min(12) as u32;
        let chunk = bits.bits_lsb(i, n) as usize;
        out.push_bits_lsb(VOTE.0[chunk] as u64, n / 3);
        corrected += VOTE.1[chunk] as usize;
        i += n as usize;
    }
    (out, corrected)
}

/// Computes the 5 parity bits of one 10-bit data block, all in *spec
/// order* (first transmitted bit = highest power of D, matching the
/// serial encoder circuit). Kept `const` so the transmission-order
/// tables below are derived from the spec definition at compile time.
const fn fec23_parity(block: u16) -> u8 {
    // value = data << 5, then polynomial modulo g(D).
    let mut v = (block as u32) << 5;
    let mut k = 14;
    while k >= 5 {
        if v & (1 << k) != 0 {
            v ^= (FEC23_GEN as u32) << (k - 5);
        }
        k -= 1;
    }
    (v & 0x1F) as u8
}

/// Reverses the `n` low bits of `x`.
const fn rev_bits(x: u16, n: u32) -> u16 {
    let mut out = 0u16;
    let mut i = 0;
    while i < n {
        if x & (1 << i) != 0 {
            out |= 1 << (n - 1 - i);
        }
        i += 1;
    }
    out
}

/// `PARITY_T[d]`: the 5 parity bits in transmission order (LSB first)
/// for the 10 data bits `d` in transmission order. The (15,10) code is
/// systematic, so a codeword on the air is `d | (PARITY_T[d] << 10)`.
const fn build_parity_t() -> [u8; 1024] {
    let mut t = [0u8; 1024];
    let mut d = 0usize;
    while d < 1024 {
        let spec = fec23_parity(rev_bits(d as u16, 10));
        t[d] = rev_bits(spec as u16, 5) as u8;
        d += 1;
    }
    t
}

const PARITY_T: [u8; 1024] = build_parity_t();

/// `SYN_POS[s]`: transmitted bit position (0..15) of the single error
/// producing syndrome `s` (transmission order), or `NO_POS` for
/// multi-error patterns. A single error at data position k has syndrome
/// `PARITY_T[1 << k]`; at parity position 10+k it is `1 << k`.
const NO_POS: u8 = 0xFF;

const fn build_syn_pos() -> [u8; 32] {
    let mut t = [NO_POS; 32];
    let mut k = 0usize;
    while k < 10 {
        t[PARITY_T[1usize << k] as usize] = k as u8;
        k += 1;
    }
    while k < 15 {
        t[1usize << (k - 10)] = k as u8;
        k += 1;
    }
    t
}

const SYN_POS: [u8; 32] = build_syn_pos();

/// Encodes `bits` with the 2/3 FEC.
///
/// The input is zero-padded to a multiple of 10 bits, as the baseband does
/// for the final block; the receiver trims using the known payload length.
pub fn fec23_encode(bits: &BitVec) -> BitVec {
    let mut out = BitVec::with_capacity(bits.len().div_ceil(10) * 15);
    fec23_encode_into(bits, &mut out);
    out
}

/// Appends the 2/3 FEC encoding of `bits` to `out`, one parity lookup
/// per 10-bit block.
pub fn fec23_encode_into(bits: &BitVec, out: &mut BitVec) {
    let mut i = 0;
    while i < bits.len() {
        let d = bits.bits_lsb(i, 10); // zero-padded final block
        out.push_bits_lsb(d | ((PARITY_T[d as usize] as u64) << 10), 15);
        i += 10;
    }
}

/// Outcome of a 2/3 FEC decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fec23Decoded {
    /// Best-effort decoded data bits (10 per received codeword).
    pub data: BitVec,
    /// Codewords whose single-bit error was corrected.
    pub corrected: usize,
    /// Codewords with an uncorrectable error pattern (≥ 2 errors detected).
    pub failed: usize,
}

/// Decodes a 2/3 FEC stream, correcting one error per 15-bit codeword.
///
/// Uncorrectable codewords are passed through uncorrected and counted in
/// [`Fec23Decoded::failed`]; the payload CRC is expected to catch them.
///
/// # Panics
///
/// Panics if `bits.len()` is not a multiple of 15.
pub fn fec23_decode(bits: &BitVec) -> Fec23Decoded {
    assert_eq!(bits.len() % 15, 0, "FEC 2/3 stream length must be 15n");
    let mut data = BitVec::with_capacity(bits.len() / 15 * 10);
    let mut corrected = 0;
    let mut failed = 0;
    let mut i = 0;
    while i < bits.len() {
        let cw = bits.bits_lsb(i, 15);
        let mut d = (cw & 0x3FF) as u16;
        let syndrome = PARITY_T[d as usize] ^ (cw >> 10) as u8;
        if syndrome != 0 {
            match SYN_POS[syndrome as usize] {
                pos if pos < 10 => {
                    d ^= 1 << pos;
                    corrected += 1;
                }
                pos if pos != NO_POS => {
                    // Error in a parity bit: data is already correct.
                    corrected += 1;
                }
                _ => failed += 1,
            }
        }
        data.push_bits_lsb(d as u64, 10);
        i += 15;
    }
    Fec23Decoded {
        data,
        corrected,
        failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bits(len: usize) -> BitVec {
        BitVec::from_fn(len, |i| (i * 7 + 3) % 5 < 2)
    }

    /// Bit-serial reference encoders/decoders: the pre-table
    /// implementations, retained to pin the tables to the definitions.
    mod reference {
        use super::super::{fec23_parity, FEC23_GEN};
        use crate::BitVec;

        pub fn fec13_encode(bits: &BitVec) -> BitVec {
            let mut out = BitVec::with_capacity(bits.len() * 3);
            for b in bits.iter() {
                out.push(b);
                out.push(b);
                out.push(b);
            }
            out
        }

        pub fn fec13_decode(bits: &BitVec) -> (BitVec, usize) {
            assert_eq!(bits.len() % 3, 0);
            let mut out = BitVec::with_capacity(bits.len() / 3);
            let mut corrected = 0;
            for i in (0..bits.len()).step_by(3) {
                let votes = bits.get(i).unwrap() as u8
                    + bits.get(i + 1).unwrap() as u8
                    + bits.get(i + 2).unwrap() as u8;
                out.push(votes >= 2);
                if votes == 1 || votes == 2 {
                    corrected += 1;
                }
            }
            (out, corrected)
        }

        pub fn fec23_encode(bits: &BitVec) -> BitVec {
            let mut out = BitVec::with_capacity(bits.len().div_ceil(10) * 15);
            let mut i = 0;
            while i < bits.len() {
                let mut block = 0u16;
                for k in 0..10 {
                    if bits.get(i + k) == Some(true) {
                        block |= 1 << (9 - k);
                    }
                }
                let parity = fec23_parity(block);
                for k in 0..10 {
                    out.push(block & (1 << (9 - k)) != 0);
                }
                for k in 0..5 {
                    out.push(parity & (1 << (4 - k)) != 0);
                }
                i += 10;
            }
            out
        }

        pub fn error_position(syndrome: u8) -> Option<usize> {
            for k in 0..15usize {
                let mut v = 1u32 << (14 - k);
                for j in (5..15).rev() {
                    if v & (1 << j) != 0 {
                        v ^= (FEC23_GEN as u32) << (j - 5);
                    }
                }
                if (v & 0x1F) as u8 == syndrome {
                    return Some(k);
                }
            }
            None
        }

        pub fn fec23_decode(bits: &BitVec) -> super::super::Fec23Decoded {
            assert_eq!(bits.len() % 15, 0);
            let mut data = BitVec::with_capacity(bits.len() / 15 * 10);
            let mut corrected = 0;
            let mut failed = 0;
            for i in (0..bits.len()).step_by(15) {
                let mut block = 0u16;
                let mut parity = 0u8;
                for k in 0..10 {
                    if bits.get(i + k).unwrap() {
                        block |= 1 << (9 - k);
                    }
                }
                for k in 0..5 {
                    if bits.get(i + 10 + k).unwrap() {
                        parity |= 1 << (4 - k);
                    }
                }
                let syndrome = fec23_parity(block) ^ parity;
                if syndrome != 0 {
                    match error_position(syndrome) {
                        Some(pos) if pos < 10 => {
                            block ^= 1 << (9 - pos);
                            corrected += 1;
                        }
                        Some(_) => corrected += 1,
                        None => failed += 1,
                    }
                }
                for k in 0..10 {
                    data.push(block & (1 << (9 - k)) != 0);
                }
            }
            super::super::Fec23Decoded {
                data,
                corrected,
                failed,
            }
        }
    }

    #[test]
    fn tables_match_bit_serial_reference() {
        for len in [1usize, 2, 3, 9, 10, 13, 17, 18, 30, 100, 160, 333, 2744] {
            let data = BitVec::from_fn(len, |i| (i * 13 + len) % 7 < 3);
            assert_eq!(fec13_encode(&data), reference::fec13_encode(&data), "{len}");
            assert_eq!(fec23_encode(&data), reference::fec23_encode(&data), "{len}");
            let coded13 = fec13_encode(&data);
            assert_eq!(fec13_decode(&coded13), reference::fec13_decode(&coded13));
            // Corrupt a couple of bits so the decode paths diverge from
            // the trivial all-clean case.
            let mut dirty13 = coded13.clone();
            dirty13.toggle(0);
            dirty13.toggle(coded13.len() / 2);
            assert_eq!(fec13_decode(&dirty13), reference::fec13_decode(&dirty13));
            let coded23 = fec23_encode(&data);
            assert_eq!(fec23_decode(&coded23), reference::fec23_decode(&coded23));
            let mut dirty23 = coded23.clone();
            dirty23.toggle(1);
            dirty23.toggle(coded23.len() - 2);
            assert_eq!(fec23_decode(&dirty23), reference::fec23_decode(&dirty23));
        }
    }

    #[test]
    fn trip_bits_matches_table() {
        for n in 0..=21u32 {
            let v = 0x15_5555u64 & ((1 << n) - 1);
            let mut want = 0u64;
            for j in 0..n as usize {
                if v & (1 << j) != 0 {
                    want |= 0b111 << (3 * j);
                }
            }
            assert_eq!(trip_bits(v, n), want, "n {n}");
        }
    }

    #[test]
    fn fec13_roundtrip_clean() {
        let data = sample_bits(18);
        let coded = fec13_encode(&data);
        assert_eq!(coded.len(), 54);
        let (decoded, corrected) = fec13_decode(&coded);
        assert_eq!(decoded, data);
        assert_eq!(corrected, 0);
    }

    #[test]
    fn fec13_corrects_one_error_per_triple() {
        let data = sample_bits(18);
        let coded = fec13_encode(&data);
        for i in 0..coded.len() {
            let mut corrupt = coded.clone();
            corrupt.toggle(i);
            let (decoded, corrected) = fec13_decode(&corrupt);
            assert_eq!(decoded, data, "flip at {i}");
            assert_eq!(corrected, 1);
        }
    }

    #[test]
    fn fec13_two_errors_in_one_triple_corrupt_that_bit_only() {
        let data = sample_bits(6);
        let coded = fec13_encode(&data);
        let mut corrupt = coded.clone();
        corrupt.toggle(3);
        corrupt.toggle(4);
        let (decoded, _) = fec13_decode(&corrupt);
        assert_eq!(decoded.get(0), data.get(0));
        assert_ne!(decoded.get(1), data.get(1));
    }

    #[test]
    fn fec23_roundtrip_clean() {
        for len in [10usize, 20, 30, 160] {
            let data = sample_bits(len);
            let coded = fec23_encode(&data);
            assert_eq!(coded.len(), len / 10 * 15);
            let out = fec23_decode(&coded);
            assert_eq!(out.data, data);
            assert_eq!(out.corrected, 0);
            assert_eq!(out.failed, 0);
        }
    }

    #[test]
    fn fec23_pads_partial_blocks() {
        let data = sample_bits(13);
        let coded = fec23_encode(&data);
        assert_eq!(coded.len(), 30);
        let out = fec23_decode(&coded);
        assert_eq!(out.data.slice(0, 13), data);
    }

    #[test]
    fn fec23_corrects_every_single_bit_error() {
        let data = sample_bits(30);
        let coded = fec23_encode(&data);
        for i in 0..coded.len() {
            let mut corrupt = coded.clone();
            corrupt.toggle(i);
            let out = fec23_decode(&corrupt);
            assert_eq!(out.data, data, "flip at {i}");
            assert_eq!(out.corrected, 1, "flip at {i}");
            assert_eq!(out.failed, 0, "flip at {i}");
        }
    }

    #[test]
    fn fec23_flags_or_miscorrects_double_errors_without_panicking() {
        // dmin = 4: any 2-bit error is detected (failed) or, at worst for a
        // shortened code, corrected into a wrong codeword caught by CRC.
        let data = sample_bits(10);
        let coded = fec23_encode(&data);
        let mut detected = 0;
        let mut total = 0;
        for i in 0..15 {
            for j in (i + 1)..15 {
                let mut corrupt = coded.clone();
                corrupt.toggle(i);
                corrupt.toggle(j);
                let out = fec23_decode(&corrupt);
                total += 1;
                if out.failed == 1 {
                    detected += 1;
                } else {
                    // Miscorrection must not silently return the original.
                    assert_ne!(out.data, data, "flips at {i},{j}");
                }
            }
        }
        assert!(
            detected * 2 >= total,
            "most double errors should be flagged"
        );
    }

    #[test]
    fn syndrome_table_is_injective() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..15 {
            let mut corrupt = fec23_encode(&BitVec::zeros(10));
            corrupt.toggle(k);
            let mut block = 0u16;
            let mut parity = 0u8;
            for b in 0..10 {
                if corrupt.get(b).unwrap() {
                    block |= 1 << (9 - b);
                }
            }
            for b in 0..5 {
                if corrupt.get(10 + b).unwrap() {
                    parity |= 1 << (4 - b);
                }
            }
            let syndrome = fec23_parity(block) ^ parity;
            assert!(seen.insert(syndrome), "duplicate syndrome for {k}");
            assert_eq!(reference::error_position(syndrome), Some(k));
            // The transmission-order syndrome table agrees.
            let syn_t = rev_bits(syndrome as u16, 5) as usize;
            assert_eq!(SYN_POS[syn_t], k as u8);
        }
    }
}
