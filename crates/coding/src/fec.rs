//! Forward error correction: the 1/3 repetition code and the 2/3
//! shortened-Hamming (15,10) code (Bluetooth spec v1.2, Baseband §7.4/§7.5).
//!
//! * **FEC 1/3** repeats every bit three times and majority-decodes;
//!   it protects the 18-bit packet header.
//! * **FEC 2/3** appends 5 parity bits to every 10 data bits using the
//!   generator g(D) = (D + 1)(D⁴ + D + 1) = D⁵ + D⁴ + D² + 1. The code
//!   corrects one error and detects two per 15-bit codeword; it protects
//!   DM and FHS payloads.

use crate::BitVec;

/// Generator polynomial of the (15,10) code, including the D⁵ term.
const FEC23_GEN: u16 = 0b110101;

/// Encodes `bits` with the 1/3 repetition code (each bit sent three times).
pub fn fec13_encode(bits: &BitVec) -> BitVec {
    let mut out = BitVec::with_capacity(bits.len() * 3);
    for b in bits.iter() {
        out.push(b);
        out.push(b);
        out.push(b);
    }
    out
}

/// Majority-decodes a 1/3-repetition stream.
///
/// Returns the decoded bits and how many triples needed correction.
///
/// # Panics
///
/// Panics if `bits.len()` is not a multiple of 3.
pub fn fec13_decode(bits: &BitVec) -> (BitVec, usize) {
    assert_eq!(bits.len() % 3, 0, "FEC 1/3 stream length must be 3n");
    let mut out = BitVec::with_capacity(bits.len() / 3);
    let mut corrected = 0;
    for i in (0..bits.len()).step_by(3) {
        let votes = bits.get(i).unwrap() as u8
            + bits.get(i + 1).unwrap() as u8
            + bits.get(i + 2).unwrap() as u8;
        out.push(votes >= 2);
        if votes == 1 || votes == 2 {
            corrected += 1;
        }
    }
    (out, corrected)
}

/// Computes the 5 parity bits of one 10-bit data block.
///
/// The block is interpreted with its first transmitted bit as the highest
/// power of D, matching the serial encoder circuit of the spec.
fn fec23_parity(block: u16) -> u8 {
    // value = data << 5, then polynomial modulo g(D).
    let mut v = (block as u32) << 5;
    for k in (5..15).rev() {
        if v & (1 << k) != 0 {
            v ^= (FEC23_GEN as u32) << (k - 5);
        }
    }
    (v & 0x1F) as u8
}

/// Encodes `bits` with the 2/3 FEC.
///
/// The input is zero-padded to a multiple of 10 bits, as the baseband does
/// for the final block; the receiver trims using the known payload length.
pub fn fec23_encode(bits: &BitVec) -> BitVec {
    let mut out = BitVec::with_capacity(bits.len().div_ceil(10) * 15);
    let mut i = 0;
    while i < bits.len() {
        let mut block = 0u16;
        for k in 0..10 {
            // First transmitted bit = highest power of D.
            if bits.get(i + k) == Some(true) {
                block |= 1 << (9 - k);
            }
        }
        let parity = fec23_parity(block);
        for k in 0..10 {
            out.push(block & (1 << (9 - k)) != 0);
        }
        for k in 0..5 {
            out.push(parity & (1 << (4 - k)) != 0);
        }
        i += 10;
    }
    out
}

/// Outcome of a 2/3 FEC decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fec23Decoded {
    /// Best-effort decoded data bits (10 per received codeword).
    pub data: BitVec,
    /// Codewords whose single-bit error was corrected.
    pub corrected: usize,
    /// Codewords with an uncorrectable error pattern (≥ 2 errors detected).
    pub failed: usize,
}

/// Decodes a 2/3 FEC stream, correcting one error per 15-bit codeword.
///
/// Uncorrectable codewords are passed through uncorrected and counted in
/// [`Fec23Decoded::failed`]; the payload CRC is expected to catch them.
///
/// # Panics
///
/// Panics if `bits.len()` is not a multiple of 15.
pub fn fec23_decode(bits: &BitVec) -> Fec23Decoded {
    assert_eq!(bits.len() % 15, 0, "FEC 2/3 stream length must be 15n");
    let mut data = BitVec::with_capacity(bits.len() / 15 * 10);
    let mut corrected = 0;
    let mut failed = 0;
    for i in (0..bits.len()).step_by(15) {
        let mut block = 0u16;
        let mut parity = 0u8;
        for k in 0..10 {
            if bits.get(i + k).unwrap() {
                block |= 1 << (9 - k);
            }
        }
        for k in 0..5 {
            if bits.get(i + 10 + k).unwrap() {
                parity |= 1 << (4 - k);
            }
        }
        let syndrome = fec23_parity(block) ^ parity;
        if syndrome != 0 {
            match error_position(syndrome) {
                Some(pos) if pos < 10 => {
                    block ^= 1 << (9 - pos);
                    corrected += 1;
                }
                Some(_) => {
                    // Error in a parity bit: data is already correct.
                    corrected += 1;
                }
                None => failed += 1,
            }
        }
        for k in 0..10 {
            data.push(block & (1 << (9 - k)) != 0);
        }
    }
    Fec23Decoded {
        data,
        corrected,
        failed,
    }
}

/// Maps a nonzero syndrome to the transmitted bit position of a single
/// error (0..15, transmission order), or `None` for multi-error patterns.
fn error_position(syndrome: u8) -> Option<usize> {
    // Syndrome of a single error at transmitted position k equals
    // D^(14-k) mod g(D).
    for k in 0..15usize {
        let mut v = 1u32 << (14 - k);
        for j in (5..15).rev() {
            if v & (1 << j) != 0 {
                v ^= (FEC23_GEN as u32) << (j - 5);
            }
        }
        if (v & 0x1F) as u8 == syndrome {
            return Some(k);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bits(len: usize) -> BitVec {
        BitVec::from_fn(len, |i| (i * 7 + 3) % 5 < 2)
    }

    #[test]
    fn fec13_roundtrip_clean() {
        let data = sample_bits(18);
        let coded = fec13_encode(&data);
        assert_eq!(coded.len(), 54);
        let (decoded, corrected) = fec13_decode(&coded);
        assert_eq!(decoded, data);
        assert_eq!(corrected, 0);
    }

    #[test]
    fn fec13_corrects_one_error_per_triple() {
        let data = sample_bits(18);
        let coded = fec13_encode(&data);
        for i in 0..coded.len() {
            let mut corrupt = coded.clone();
            corrupt.toggle(i);
            let (decoded, corrected) = fec13_decode(&corrupt);
            assert_eq!(decoded, data, "flip at {i}");
            assert_eq!(corrected, 1);
        }
    }

    #[test]
    fn fec13_two_errors_in_one_triple_corrupt_that_bit_only() {
        let data = sample_bits(6);
        let coded = fec13_encode(&data);
        let mut corrupt = coded.clone();
        corrupt.toggle(3);
        corrupt.toggle(4);
        let (decoded, _) = fec13_decode(&corrupt);
        assert_eq!(decoded.get(0), data.get(0));
        assert_ne!(decoded.get(1), data.get(1));
    }

    #[test]
    fn fec23_roundtrip_clean() {
        for len in [10usize, 20, 30, 160] {
            let data = sample_bits(len);
            let coded = fec23_encode(&data);
            assert_eq!(coded.len(), len / 10 * 15);
            let out = fec23_decode(&coded);
            assert_eq!(out.data, data);
            assert_eq!(out.corrected, 0);
            assert_eq!(out.failed, 0);
        }
    }

    #[test]
    fn fec23_pads_partial_blocks() {
        let data = sample_bits(13);
        let coded = fec23_encode(&data);
        assert_eq!(coded.len(), 30);
        let out = fec23_decode(&coded);
        assert_eq!(out.data.slice(0, 13), data);
    }

    #[test]
    fn fec23_corrects_every_single_bit_error() {
        let data = sample_bits(30);
        let coded = fec23_encode(&data);
        for i in 0..coded.len() {
            let mut corrupt = coded.clone();
            corrupt.toggle(i);
            let out = fec23_decode(&corrupt);
            assert_eq!(out.data, data, "flip at {i}");
            assert_eq!(out.corrected, 1, "flip at {i}");
            assert_eq!(out.failed, 0, "flip at {i}");
        }
    }

    #[test]
    fn fec23_flags_or_miscorrects_double_errors_without_panicking() {
        // dmin = 4: any 2-bit error is detected (failed) or, at worst for a
        // shortened code, corrected into a wrong codeword caught by CRC.
        let data = sample_bits(10);
        let coded = fec23_encode(&data);
        let mut detected = 0;
        let mut total = 0;
        for i in 0..15 {
            for j in (i + 1)..15 {
                let mut corrupt = coded.clone();
                corrupt.toggle(i);
                corrupt.toggle(j);
                let out = fec23_decode(&corrupt);
                total += 1;
                if out.failed == 1 {
                    detected += 1;
                } else {
                    // Miscorrection must not silently return the original.
                    assert_ne!(out.data, data, "flips at {i},{j}");
                }
            }
        }
        assert!(
            detected * 2 >= total,
            "most double errors should be flagged"
        );
    }

    #[test]
    fn syndrome_table_is_injective() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..15 {
            let mut corrupt = fec23_encode(&BitVec::zeros(10));
            corrupt.toggle(k);
            let mut block = 0u16;
            let mut parity = 0u8;
            for b in 0..10 {
                if corrupt.get(b).unwrap() {
                    block |= 1 << (9 - b);
                }
            }
            for b in 0..5 {
                if corrupt.get(10 + b).unwrap() {
                    parity |= 1 << (4 - b);
                }
            }
            let syndrome = fec23_parity(block) ^ parity;
            assert!(seen.insert(syndrome), "duplicate syndrome for {k}");
            assert_eq!(error_position(syndrome), Some(k));
        }
    }
}
