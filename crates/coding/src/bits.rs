//! Packed bit vector used for over-the-air bit images.
//!
//! Bits are indexed in *transmission order*: index 0 is the first bit on
//! the air. Bluetooth transmits least-significant bits first, so helper
//! methods that exchange integers with the vector ([`BitVec::push_bits_lsb`],
//! [`BitVec::bits_lsb`]) treat the lowest integer bit as the earliest bit.

use std::fmt;

/// A growable, packed vector of bits.
///
/// # Examples
///
/// ```
/// use btsim_coding::BitVec;
///
/// let mut v = BitVec::new();
/// v.push_bits_lsb(0b1011, 4);
/// assert_eq!(v.len(), 4);
/// assert_eq!(v.get(0), Some(true));  // LSB first
/// assert_eq!(v.get(2), Some(false));
/// assert_eq!(v.bits_lsb(0, 4), 0b1011);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bit vector with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Creates a vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a vector of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut words = vec![!0u64; len.div_ceil(64)];
        let tail = len % 64;
        if tail != 0 {
            *words.last_mut().expect("len > 0 when tail > 0") &= (1u64 << tail) - 1;
        }
        Self { words, len }
    }

    /// Creates a vector of `len` bits produced by `f(index)`.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut v = Self::with_capacity(len);
        for i in 0..len {
            v.push(f(i));
        }
        v
    }

    /// Builds a vector from bytes, least-significant bit of `bytes[0]` first.
    pub fn from_bytes_lsb(bytes: &[u8]) -> Self {
        let mut v = Self::with_capacity(bytes.len() * 8);
        for chunk in bytes.chunks(8) {
            let mut w = 0u64;
            for (k, &b) in chunk.iter().enumerate() {
                w |= (b as u64) << (8 * k);
            }
            v.push_bits_lsb(w, 8 * chunk.len() as u32);
        }
        v
    }

    /// Packs the bits back into bytes (inverse of [`BitVec::from_bytes_lsb`]).
    ///
    /// The final byte is zero-padded if `len` is not a multiple of 8.
    pub fn to_bytes_lsb(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len.div_ceil(8));
        let mut i = 0;
        while i < self.len {
            let n = (self.len - i).min(8);
            out.push(self.bits_lsb(i, n as u32) as u8);
            i += 8;
        }
        out
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        let off = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << off;
        }
        self.len += 1;
    }

    /// Appends the `n` low bits of `value`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn push_bits_lsb(&mut self, value: u64, n: u32) {
        assert!(n <= 64, "cannot push more than 64 bits at once");
        if n == 0 {
            return;
        }
        let value = if n == 64 {
            value
        } else {
            value & ((1u64 << n) - 1)
        };
        let off = self.len % 64;
        if off == 0 {
            self.words.push(value);
        } else {
            *self.words.last_mut().expect("off > 0 implies a last word") |= value << off;
            if off + n as usize > 64 {
                self.words.push(value >> (64 - off));
            }
        }
        self.len += n as usize;
    }

    /// Appends bytes, least-significant bit of `bytes[0]` first — the
    /// append form of [`BitVec::from_bytes_lsb`], 8 bytes per step.
    pub fn push_bytes_lsb(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut w = 0u64;
            for (k, &b) in chunk.iter().enumerate() {
                w |= (b as u64) << (8 * k);
            }
            self.push_bits_lsb(w, 8 * chunk.len() as u32);
        }
    }

    /// Returns the bit at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<bool> {
        if index >= self.len {
            return None;
        }
        Some((self.words[index / 64] >> (index % 64)) & 1 == 1)
    }

    /// Sets the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set(&mut self, index: usize, bit: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let mask = 1u64 << (index % 64);
        if bit {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Flips the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn toggle(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index / 64] ^= 1u64 << (index % 64);
    }

    /// Reads `n <= 64` bits starting at `index`, returned LSB-first.
    ///
    /// Bits past the end read as zero.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn bits_lsb(&self, index: usize, n: u32) -> u64 {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        if n == 0 {
            return 0;
        }
        // Words hold no set bits at or past `len` (every mutator keeps
        // that invariant), so zero-filling past the end is automatic.
        let word = index / 64;
        let off = index % 64;
        let lo = self.words.get(word).copied().unwrap_or(0) >> off;
        let out = if off + n as usize > 64 {
            // n <= 64 and off + n > 64 imply off > 0, so 64 - off < 64.
            lo | (self.words.get(word + 1).copied().unwrap_or(0) << (64 - off))
        } else {
            lo
        };
        if n == 64 {
            out
        } else {
            out & ((1u64 << n) - 1)
        }
    }

    /// Appends every bit of `other` (word-wise, 64 bits at a step).
    pub fn extend_bits(&mut self, other: &BitVec) {
        let mut i = 0;
        while i < other.len {
            let n = (other.len - i).min(64) as u32;
            self.push_bits_lsb(other.bits_lsb(i, n), n);
            i += n as usize;
        }
    }

    /// Returns the sub-vector `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the vector length.
    pub fn slice(&self, start: usize, len: usize) -> BitVec {
        assert!(start + len <= self.len, "slice out of range");
        let mut v = BitVec::with_capacity(len);
        let mut i = 0;
        while i < len {
            let n = (len - i).min(64) as u32;
            v.push_bits_lsb(self.bits_lsb(start + i, n), n);
            i += n as usize;
        }
        v
    }

    /// Sets every bit in `[lo, hi)` in word-sized strokes.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > len`.
    pub fn fill_range(&mut self, lo: usize, hi: usize) {
        assert!(lo <= hi, "fill_range bounds reversed: {lo} > {hi}");
        assert!(
            hi <= self.len,
            "fill_range end {hi} out of range {}",
            self.len
        );
        if lo == hi {
            return;
        }
        let (wl, ol) = (lo / 64, lo % 64);
        let wh = hi / 64;
        let oh = hi % 64;
        if wl == wh {
            // Same word: hi - lo < 64 here (a full 64-bit span crosses).
            self.words[wl] |= ((1u64 << (hi - lo)) - 1) << ol;
        } else {
            self.words[wl] |= !0u64 << ol;
            for w in &mut self.words[wl + 1..wh] {
                *w = !0;
            }
            if oh != 0 {
                self.words[wh] |= (1u64 << oh) - 1;
            }
        }
    }

    /// XORs `words` into the vector word-by-word starting at bit 0.
    ///
    /// Stream bits at or past `len` are ignored (the tail word is
    /// masked), so a generator may hand over its last word unmasked.
    pub fn xor_words(&mut self, words: &[u64]) {
        let n = self.words.len().min(words.len());
        for (dst, src) in self.words[..n].iter_mut().zip(words) {
            *dst ^= src;
        }
        let tail = self.len % 64;
        if tail != 0 && n == self.words.len() {
            *self.words.last_mut().expect("n > 0") &= (1u64 << tail) - 1;
        }
    }

    /// Empties the vector, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Mutable word access for in-crate streaming XORs. Callers must
    /// keep bits at or past `len` zero.
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Iterates over the bits in transmission order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { v: self, i: 0 }
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        let mut total: usize = self.words.iter().map(|w| w.count_ones() as usize).sum();
        // Mask out any stale bits beyond len (none are ever set, but be safe).
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(&last) = self.words.last() {
                total -= (last & !((1u64 << tail) - 1)).count_ones() as usize;
            }
        }
        total
    }

    /// XORs `other` into `self` bit-by-bit.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_in_place(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "xor requires equal lengths");
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w ^= o;
        }
    }

    /// Hamming distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "hamming requires equal lengths");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }
}

impl btsim_kernel::Snap for BitVec {
    fn snap(&self, w: &mut btsim_kernel::SnapWriter) {
        w.put_usize(self.len);
        for &word in &self.words {
            w.put_u64(word);
        }
    }
    fn unsnap(r: &mut btsim_kernel::SnapReader<'_>) -> Result<Self, btsim_kernel::SnapshotError> {
        let len = r.take_usize()?;
        let n_words = len.div_ceil(64);
        if n_words > r.remaining() / 8 + 1 {
            return Err(r.malformed("bit vector length exceeds remaining bytes"));
        }
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(r.take_u64()?);
        }
        let tail = len % 64;
        if tail != 0 && words.last().is_some_and(|&w| w >> tail != 0) {
            return Err(r.malformed("bit vector has nonzero bits past its length"));
        }
        Ok(BitVec { words, len })
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; {}]", self.len, self)
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            f.write_str(if b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut v = BitVec::new();
        for b in iter {
            v.push(b);
        }
        v
    }
}

impl Extend<bool> for BitVec {
    fn extend<T: IntoIterator<Item = bool>>(&mut self, iter: T) {
        for b in iter {
            self.push(b);
        }
    }
}

/// Iterator over the bits of a [`BitVec`] in transmission order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    v: &'a BitVec,
    i: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let b = self.v.get(self.i)?;
        self.i += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.v.len - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snap_roundtrip_and_validation() {
        use btsim_kernel::{Snap, SnapReader, SnapWriter};
        let v: BitVec = (0..77).map(|i| i % 3 == 0).collect();
        let mut w = SnapWriter::new();
        v.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = BitVec::unsnap(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, v);
        // A dirty tail word (bits past `len`) must be rejected: every
        // BitVec invariant assumes those bits are zero.
        let mut dirty = bytes.clone();
        let last = dirty.len() - 1;
        dirty[last] |= 0x80;
        let mut r = SnapReader::new(&dirty);
        assert!(BitVec::unsnap(&mut r).is_err());
    }

    #[test]
    fn push_and_get_roundtrip() {
        let mut v = BitVec::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            v.push(b);
        }
        assert_eq!(v.len(), pattern.len());
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(v.get(i), Some(b), "bit {i}");
        }
        assert_eq!(v.get(pattern.len()), None);
    }

    #[test]
    fn push_bits_lsb_orders_lsb_first() {
        let mut v = BitVec::new();
        v.push_bits_lsb(0b0000_0001, 8);
        assert_eq!(v.get(0), Some(true));
        assert!(!(1..8).any(|i| v.get(i).unwrap()));
    }

    #[test]
    fn bits_lsb_reads_back() {
        let mut v = BitVec::new();
        v.push_bits_lsb(0xDEAD_BEEF, 32);
        v.push_bits_lsb(0x123, 12);
        assert_eq!(v.bits_lsb(0, 32), 0xDEAD_BEEF);
        assert_eq!(v.bits_lsb(32, 12), 0x123);
        // Reads past the end are zero-filled.
        assert_eq!(v.bits_lsb(40, 16), 0x1);
    }

    #[test]
    fn bytes_roundtrip() {
        let bytes = [0x00, 0xFF, 0xA5, 0x5A, 0x12];
        let v = BitVec::from_bytes_lsb(&bytes);
        assert_eq!(v.len(), 40);
        assert_eq!(v.to_bytes_lsb(), bytes);
    }

    #[test]
    fn set_and_toggle() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert_eq!(v.count_ones(), 3);
        v.toggle(64);
        v.toggle(65);
        assert_eq!(v.count_ones(), 3);
        assert_eq!(v.get(64), Some(false));
        assert_eq!(v.get(65), Some(true));
    }

    #[test]
    fn xor_and_hamming() {
        let a = BitVec::from_bytes_lsb(&[0b1010_1010, 0xFF]);
        let b = BitVec::from_bytes_lsb(&[0b0101_0101, 0xFF]);
        assert_eq!(a.hamming(&b), 8);
        let mut c = a.clone();
        c.xor_in_place(&b);
        assert_eq!(c.count_ones(), 8);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn slice_extracts_range() {
        let v = BitVec::from_bytes_lsb(&[0xF0, 0x0F]);
        let s = v.slice(4, 8);
        assert_eq!(s.len(), 8);
        assert_eq!(s.bits_lsb(0, 8), 0xFF);
    }

    #[test]
    fn display_is_transmission_order() {
        let mut v = BitVec::new();
        v.push_bits_lsb(0b0011, 4);
        assert_eq!(v.to_string(), "1100");
    }

    #[test]
    fn from_iterator_and_extend() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.to_string(), "101");
        let mut w = v.clone();
        w.extend([false, true]);
        assert_eq!(w.to_string(), "10101");
    }

    #[test]
    fn count_ones_across_word_boundary() {
        let v = BitVec::from_fn(200, |i| i % 3 == 0);
        assert_eq!(v.count_ones(), (0..200).filter(|i| i % 3 == 0).count());
    }
}
