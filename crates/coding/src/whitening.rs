//! Data whitening (scrambling) with the 7-bit LFSR x⁷ + x⁴ + 1.
//!
//! Header and payload bits are XORed with the LFSR output before FEC
//! encoding on transmit, and again after FEC decoding on receive
//! (Bluetooth spec v1.2, Baseband §7.2). The register is seeded from the
//! master clock bits CLK₆₋₁ with a 1 forced into the top position, so the
//! seed is never zero.
//!
//! The LFSR has maximal period 127, so its output is one fixed 127-bit
//! cycle entered at a seed-dependent position. The tables below hold that
//! cycle (doubled, so any 64-bit window is a contiguous read) plus the
//! position of every register state, letting [`Whitener::apply`] XOR the
//! stream in 64-bit words instead of clocking the register per bit.

use crate::BitVec;

/// Advances the Fibonacci LFSR for x⁷ + x⁴ + 1 by one bit: output is
/// bit 6, feedback is bit 6 ^ bit 3. This is the bit-serial reference
/// step; the word-parallel tables are built from it at compile time.
const fn lfsr_step(reg: u8) -> (u8, bool) {
    let out = (reg >> 6) & 1;
    let fb = out ^ ((reg >> 3) & 1);
    ((((reg << 1) | fb) & 0x7F), out == 1)
}

/// Length of the maximal-period output cycle.
const CYCLE: usize = 127;

/// (doubled 127-bit output cycle, state at each position, position of
/// each state). The cycle starts at state `0x40` (the seed of
/// `from_clk(0)`); positions of all 127 nonzero states are recorded.
const fn build_tables() -> ([u64; 4], [u8; CYCLE], [u8; 128]) {
    let mut doubled = [0u64; 4];
    let mut state_at = [0u8; CYCLE];
    let mut pos_of = [0u8; 128];
    let mut reg = 0x40u8;
    let mut i = 0;
    while i < CYCLE {
        state_at[i] = reg;
        pos_of[reg as usize] = i as u8;
        let (next, out) = lfsr_step(reg);
        if out {
            doubled[i / 64] |= 1u64 << (i % 64);
            let j = i + CYCLE;
            doubled[j / 64] |= 1u64 << (j % 64);
        }
        reg = next;
        i += 1;
    }
    (doubled, state_at, pos_of)
}

const TABLES: ([u64; 4], [u8; CYCLE], [u8; 128]) = build_tables();
/// The 127-bit output cycle stored twice back to back, so a 64-bit
/// window at any cycle position is two adjacent words.
const DOUBLED: [u64; 4] = TABLES.0;
/// Register state at each cycle position.
const STATE_AT: [u8; CYCLE] = TABLES.1;
/// Cycle position of each (nonzero) register state.
const POS_OF: [u8; 128] = TABLES.2;

/// 64 stream bits starting at cycle position `pos` (`pos < 127`),
/// LSB = the next bit produced.
fn stream_word(pos: usize) -> u64 {
    debug_assert!(pos < CYCLE);
    let w = pos / 64;
    let off = pos % 64;
    if off == 0 {
        DOUBLED[w]
    } else {
        (DOUBLED[w] >> off) | (DOUBLED[w + 1] << (64 - off))
    }
}

/// The whitening LFSR.
///
/// # Examples
///
/// ```
/// use btsim_coding::{BitVec, Whitener};
///
/// let data = BitVec::from_bytes_lsb(b"payload");
/// let white = Whitener::from_clk(0x2A).whiten(&data);
/// let back = Whitener::from_clk(0x2A).whiten(&white);
/// assert_eq!(back, data);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Whitener {
    reg: u8, // 7 bits, never zero
}

impl Whitener {
    /// Creates a whitener seeded from clock bits CLK₆₋₁.
    ///
    /// Only the low 6 bits of `clk6_1` are used; bit 6 of the register is
    /// forced to 1 per the spec, so the LFSR can never be stuck at zero.
    pub fn from_clk(clk6_1: u8) -> Self {
        Self {
            reg: 0x40 | (clk6_1 & 0x3F),
        }
    }

    /// Produces the next bit of the whitening sequence.
    pub fn next_bit(&mut self) -> bool {
        let (next, out) = lfsr_step(self.reg);
        self.reg = next;
        out
    }

    /// Produces the next `n <= 64` stream bits at once, LSB first.
    pub fn next_bits(&mut self, n: u32) -> u64 {
        assert!(n <= 64, "cannot draw more than 64 stream bits at once");
        let pos = POS_OF[self.reg as usize] as usize;
        let w = stream_word(pos);
        self.reg = STATE_AT[(pos + n as usize) % CYCLE];
        if n == 64 {
            w
        } else {
            w & ((1u64 << n) - 1)
        }
    }

    /// XORs the whitening sequence over `bits`, returning the result.
    ///
    /// Whitening is an involution: applying it twice with the same seed
    /// returns the original data.
    pub fn whiten(mut self, bits: &BitVec) -> BitVec {
        self.apply(bits)
    }

    /// XORs the next `bits.len()` sequence bits over `bits`, advancing the
    /// register so a later call continues the stream.
    ///
    /// The baseband whitens the 18 header bits and the payload with one
    /// continuous stream; use this method to process them in two steps.
    pub fn apply(&mut self, bits: &BitVec) -> BitVec {
        let mut out = bits.clone();
        self.xor_into(&mut out);
        out
    }

    /// XORs the next `out.len()` sequence bits into `out` in place,
    /// 64 bits per step, advancing the register past them.
    pub fn xor_into(&mut self, out: &mut BitVec) {
        let len = out.len();
        let start = POS_OF[self.reg as usize] as usize;
        let mut pos = start;
        let full = len / 64;
        let tail = len % 64;
        let words = out.words_mut();
        for w in words.iter_mut().take(full) {
            *w ^= stream_word(pos);
            pos = (pos + 64) % CYCLE;
        }
        if tail != 0 {
            words[full] ^= stream_word(pos) & ((1u64 << tail) - 1);
        }
        self.reg = STATE_AT[(start + len) % CYCLE];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-serial reference: the pre-word-parallel implementation.
    fn apply_serial(w: &mut Whitener, bits: &BitVec) -> BitVec {
        BitVec::from_fn(bits.len(), |i| bits.get(i).unwrap() ^ w.next_bit())
    }

    #[test]
    fn involution_for_all_seeds() {
        let data = BitVec::from_bytes_lsb(b"all seeds must invert");
        for clk in 0..64u8 {
            let w = Whitener::from_clk(clk).whiten(&data);
            let back = Whitener::from_clk(clk).whiten(&w);
            assert_eq!(back, data, "seed {clk}");
        }
    }

    #[test]
    fn word_parallel_matches_bit_serial_reference() {
        for clk in 0..64u8 {
            for len in [0usize, 1, 7, 63, 64, 65, 127, 128, 254, 300, 2744] {
                let data = BitVec::from_fn(len, |i| (i * 11 + clk as usize).is_multiple_of(3));
                let mut fast = Whitener::from_clk(clk);
                let mut slow = Whitener::from_clk(clk);
                assert_eq!(
                    fast.apply(&data),
                    apply_serial(&mut slow, &data),
                    "clk {clk} len {len}"
                );
                assert_eq!(fast, slow, "register desync: clk {clk} len {len}");
            }
        }
    }

    #[test]
    fn next_bits_matches_next_bit() {
        for clk in [0u8, 1, 31, 63] {
            for n in [0u32, 1, 7, 18, 63, 64] {
                let mut fast = Whitener::from_clk(clk);
                let mut slow = Whitener::from_clk(clk);
                let got = fast.next_bits(n);
                let mut want = 0u64;
                for i in 0..n {
                    if slow.next_bit() {
                        want |= 1 << i;
                    }
                }
                assert_eq!(got, want, "clk {clk} n {n}");
                assert_eq!(fast, slow);
            }
        }
    }

    #[test]
    fn sequence_has_maximal_period_127() {
        let mut w = Whitener::from_clk(0b010101);
        let start = w.reg;
        let mut period = 0usize;
        loop {
            w.next_bit();
            period += 1;
            if w.reg == start {
                break;
            }
            assert!(period <= 127, "period exceeds maximal length");
        }
        assert_eq!(period, 127);
    }

    #[test]
    fn register_never_reaches_zero() {
        let mut w = Whitener::from_clk(0);
        for _ in 0..256 {
            assert_ne!(w.reg, 0);
            w.next_bit();
        }
    }

    #[test]
    fn position_tables_are_consistent() {
        for (pos, &state) in STATE_AT.iter().enumerate().take(CYCLE) {
            assert_ne!(state, 0);
            assert_eq!(POS_OF[state as usize] as usize, pos);
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let data = BitVec::zeros(64);
        let a = Whitener::from_clk(1).whiten(&data);
        let b = Whitener::from_clk(2).whiten(&data);
        assert_ne!(a, b);
    }

    #[test]
    fn apply_continues_the_stream() {
        let data = BitVec::from_bytes_lsb(b"header+payload stream");
        let whole = Whitener::from_clk(9).whiten(&data);
        let mut w = Whitener::from_clk(9);
        let mut split = w.apply(&data.slice(0, 18));
        split.extend_bits(&w.apply(&data.slice(18, data.len() - 18)));
        assert_eq!(split, whole);
    }

    #[test]
    fn actually_scrambles() {
        let data = BitVec::zeros(128);
        let w = Whitener::from_clk(0b11011).whiten(&data);
        let ones = w.count_ones();
        assert!(
            (32..=96).contains(&ones),
            "whitened all-zero data should look balanced, got {ones} ones"
        );
    }
}
