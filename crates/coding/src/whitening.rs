//! Data whitening (scrambling) with the 7-bit LFSR x⁷ + x⁴ + 1.
//!
//! Header and payload bits are XORed with the LFSR output before FEC
//! encoding on transmit, and again after FEC decoding on receive
//! (Bluetooth spec v1.2, Baseband §7.2). The register is seeded from the
//! master clock bits CLK₆₋₁ with a 1 forced into the top position, so the
//! seed is never zero.

use crate::BitVec;

/// The whitening LFSR.
///
/// # Examples
///
/// ```
/// use btsim_coding::{BitVec, Whitener};
///
/// let data = BitVec::from_bytes_lsb(b"payload");
/// let white = Whitener::from_clk(0x2A).whiten(&data);
/// let back = Whitener::from_clk(0x2A).whiten(&white);
/// assert_eq!(back, data);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Whitener {
    reg: u8, // 7 bits
}

impl Whitener {
    /// Creates a whitener seeded from clock bits CLK₆₋₁.
    ///
    /// Only the low 6 bits of `clk6_1` are used; bit 6 of the register is
    /// forced to 1 per the spec, so the LFSR can never be stuck at zero.
    pub fn from_clk(clk6_1: u8) -> Self {
        Self {
            reg: 0x40 | (clk6_1 & 0x3F),
        }
    }

    /// Produces the next bit of the whitening sequence.
    pub fn next_bit(&mut self) -> bool {
        // Fibonacci LFSR for x^7 + x^4 + 1: output bit 6; feedback bit 6 ^ bit 3.
        let out = (self.reg >> 6) & 1;
        let fb = out ^ ((self.reg >> 3) & 1);
        self.reg = ((self.reg << 1) | fb) & 0x7F;
        out == 1
    }

    /// XORs the whitening sequence over `bits`, returning the result.
    ///
    /// Whitening is an involution: applying it twice with the same seed
    /// returns the original data.
    pub fn whiten(mut self, bits: &BitVec) -> BitVec {
        self.apply(bits)
    }

    /// XORs the next `bits.len()` sequence bits over `bits`, advancing the
    /// register so a later call continues the stream.
    ///
    /// The baseband whitens the 18 header bits and the payload with one
    /// continuous stream; use this method to process them in two steps.
    pub fn apply(&mut self, bits: &BitVec) -> BitVec {
        BitVec::from_fn(bits.len(), |i| bits.get(i).unwrap() ^ self.next_bit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn involution_for_all_seeds() {
        let data = BitVec::from_bytes_lsb(b"all seeds must invert");
        for clk in 0..64u8 {
            let w = Whitener::from_clk(clk).whiten(&data);
            let back = Whitener::from_clk(clk).whiten(&w);
            assert_eq!(back, data, "seed {clk}");
        }
    }

    #[test]
    fn sequence_has_maximal_period_127() {
        let mut w = Whitener::from_clk(0b010101);
        let start = w.reg;
        let mut period = 0usize;
        loop {
            w.next_bit();
            period += 1;
            if w.reg == start {
                break;
            }
            assert!(period <= 127, "period exceeds maximal length");
        }
        assert_eq!(period, 127);
    }

    #[test]
    fn register_never_reaches_zero() {
        let mut w = Whitener::from_clk(0);
        for _ in 0..256 {
            assert_ne!(w.reg, 0);
            w.next_bit();
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let data = BitVec::zeros(64);
        let a = Whitener::from_clk(1).whiten(&data);
        let b = Whitener::from_clk(2).whiten(&data);
        assert_ne!(a, b);
    }

    #[test]
    fn apply_continues_the_stream() {
        let data = BitVec::from_bytes_lsb(b"header+payload stream");
        let whole = Whitener::from_clk(9).whiten(&data);
        let mut w = Whitener::from_clk(9);
        let mut split = w.apply(&data.slice(0, 18));
        split.extend_bits(&w.apply(&data.slice(18, data.len() - 18)));
        assert_eq!(split, whole);
    }

    #[test]
    fn actually_scrambles() {
        let data = BitVec::zeros(128);
        let w = Whitener::from_clk(0b11011).whiten(&data);
        let ones = w.count_ones();
        assert!(
            (32..=96).contains(&ones),
            "whitened all-zero data should look balanced, got {ones} ones"
        );
    }
}
