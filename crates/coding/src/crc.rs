//! CRC-16 for payload integrity, as used by DM/DH/FHS payloads.
//!
//! The CRC-CCITT generator g(D) = D¹⁶ + D¹² + D⁵ + 1 is used with the
//! register preloaded with the UAP in its upper byte (Bluetooth spec v1.2,
//! Baseband §7.1.2). Bits are processed in transmission order.
//!
//! The hot path ([`crc16_bits`]) steps the register a byte at a time
//! through two compile-time tables; the bit-serial [`crc16`] iterator
//! form is retained as the defining reference and for callers that do
//! not hold a [`BitVec`].

use crate::BitVec;

/// CRC-CCITT polynomial without the D¹⁶ term.
const CRC_TAPS: u16 = 0x1021;

/// `CRC_TABLE[b]`: register after clocking the 8 bits of `b`, MSB
/// first, into a zero register.
const fn build_crc_table() -> [u16; 256] {
    let mut t = [0u16; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut reg = (b as u16) << 8;
        let mut k = 0;
        while k < 8 {
            reg = if reg & 0x8000 != 0 {
                (reg << 1) ^ CRC_TAPS
            } else {
                reg << 1
            };
            k += 1;
        }
        t[b] = reg;
        b += 1;
    }
    t
}

const CRC_TABLE: [u16; 256] = build_crc_table();

/// `REV8[b]`: the bits of `b` reversed. Transmission order feeds bytes
/// LSB first, while the table above clocks MSB first.
const fn build_rev8() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut out = 0u8;
        let mut i = 0;
        while i < 8 {
            if b & (1 << i) != 0 {
                out |= 1 << (7 - i);
            }
            i += 1;
        }
        t[b] = out;
        b += 1;
    }
    t
}

pub(crate) const REV8: [u8; 256] = build_rev8();

/// Computes the CRC-16 over `bits`, register preloaded with `uap << 8`.
///
/// # Examples
///
/// ```
/// use btsim_coding::{crc, BitVec};
///
/// let payload = BitVec::from_bytes_lsb(b"hello");
/// let c = crc::crc16(0x47, payload.iter());
/// assert!(crc::check(0x47, &payload, c));
/// ```
pub fn crc16(uap: u8, bits: impl IntoIterator<Item = bool>) -> u16 {
    let mut reg = (uap as u16) << 8;
    for bit in bits {
        let fb = (reg >> 15) ^ (bit as u16);
        reg <<= 1;
        if fb & 1 == 1 {
            reg ^= CRC_TAPS;
        }
    }
    reg
}

/// Computes the CRC-16 over the whole of `bits`, a byte per table step.
pub fn crc16_bits(uap: u8, bits: &BitVec) -> u16 {
    crc16_prefix(uap, bits, bits.len())
}

/// Byte-stepped CRC over the first `len` bits of `bits` (so a framed
/// payload can be checked without slicing it out first).
pub(crate) fn crc16_prefix(uap: u8, bits: &BitVec, len: usize) -> u16 {
    debug_assert!(len <= bits.len());
    let mut reg = (uap as u16) << 8;
    let mut i = 0;
    while i + 8 <= len {
        let byte = bits.bits_lsb(i, 8) as u8;
        reg = (reg << 8) ^ CRC_TABLE[((reg >> 8) as u8 ^ REV8[byte as usize]) as usize];
        i += 8;
    }
    while i < len {
        let fb = (reg >> 15) ^ (bits.get(i).unwrap() as u16);
        reg <<= 1;
        if fb & 1 == 1 {
            reg ^= CRC_TAPS;
        }
        i += 1;
    }
    reg
}

/// Verifies a received `(payload, crc)` pair.
pub fn check(uap: u8, payload: &BitVec, received: u16) -> bool {
    crc16_bits(uap, payload) == received
}

/// Appends the 16 CRC bits to `bits` in transmission order (LSB first).
pub fn append_crc(uap: u8, bits: &mut BitVec) {
    let c = crc16_bits(uap, bits);
    bits.push_bits_lsb(c as u64, 16);
}

/// Splits `bits` into payload and CRC and verifies them.
///
/// Returns the payload when the CRC matches, `None` otherwise (including
/// when `bits` is shorter than a CRC).
pub fn strip_crc(uap: u8, bits: &BitVec) -> Option<BitVec> {
    if bits.len() < 16 {
        return None;
    }
    let plen = bits.len() - 16;
    let rx_crc = bits.bits_lsb(plen, 16) as u16;
    (crc16_prefix(uap, bits, plen) == rx_crc).then(|| bits.slice(0, plen))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_stepped_crc_matches_bit_serial_reference() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 100, 333, 2728] {
            let bits = BitVec::from_fn(len, |i| (i * 5 + len) % 3 != 0);
            for uap in [0u8, 0x47, 0xFF] {
                assert_eq!(
                    crc16_bits(uap, &bits),
                    crc16(uap, bits.iter()),
                    "len {len} uap {uap:#x}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_via_append_and_strip() {
        let uap = 0x9E;
        for msg in [&b"x"[..], b"hello world", b"\x00\x00\x00", b"\xff\xff"] {
            let mut bits = BitVec::from_bytes_lsb(msg);
            append_crc(uap, &mut bits);
            let stripped = strip_crc(uap, &bits).expect("valid CRC");
            assert_eq!(stripped.to_bytes_lsb(), msg);
        }
    }

    #[test]
    fn detects_every_single_bit_error() {
        let uap = 0x12;
        let mut bits = BitVec::from_bytes_lsb(b"data under test");
        append_crc(uap, &mut bits);
        for i in 0..bits.len() {
            let mut corrupt = bits.clone();
            corrupt.toggle(i);
            assert!(strip_crc(uap, &corrupt).is_none(), "missed flip at {i}");
        }
    }

    #[test]
    fn detects_double_bit_errors() {
        let uap = 0x12;
        let mut bits = BitVec::from_bytes_lsb(b"ab");
        append_crc(uap, &mut bits);
        for i in 0..bits.len() {
            for j in (i + 1)..bits.len() {
                let mut corrupt = bits.clone();
                corrupt.toggle(i);
                corrupt.toggle(j);
                assert!(
                    strip_crc(uap, &corrupt).is_none(),
                    "missed flips at {i},{j}"
                );
            }
        }
    }

    #[test]
    fn detects_bursts_up_to_16() {
        let uap = 0x55;
        let mut bits = BitVec::from_bytes_lsb(b"burst error test vector");
        append_crc(uap, &mut bits);
        for burst_len in 2..=16usize {
            for start in (0..bits.len() - burst_len).step_by(7) {
                let mut corrupt = bits.clone();
                for k in 0..burst_len {
                    corrupt.toggle(start + k);
                }
                assert!(
                    strip_crc(uap, &corrupt).is_none(),
                    "missed burst len {burst_len} at {start}"
                );
            }
        }
    }

    #[test]
    fn wrong_uap_fails() {
        let mut bits = BitVec::from_bytes_lsb(b"uap matters");
        append_crc(0x47, &mut bits);
        assert!(strip_crc(0x48, &bits).is_none());
    }

    #[test]
    fn short_input_is_rejected() {
        let bits = BitVec::from_bytes_lsb(&[0xAB]);
        assert!(strip_crc(0, &bits).is_none());
    }
}
