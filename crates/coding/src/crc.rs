//! CRC-16 for payload integrity, as used by DM/DH/FHS payloads.
//!
//! The CRC-CCITT generator g(D) = D¹⁶ + D¹² + D⁵ + 1 is used with the
//! register preloaded with the UAP in its upper byte (Bluetooth spec v1.2,
//! Baseband §7.1.2). Bits are processed in transmission order.

use crate::BitVec;

/// CRC-CCITT polynomial without the D¹⁶ term.
const CRC_TAPS: u16 = 0x1021;

/// Computes the CRC-16 over `bits`, register preloaded with `uap << 8`.
///
/// # Examples
///
/// ```
/// use btsim_coding::{crc, BitVec};
///
/// let payload = BitVec::from_bytes_lsb(b"hello");
/// let c = crc::crc16(0x47, payload.iter());
/// assert!(crc::check(0x47, &payload, c));
/// ```
pub fn crc16(uap: u8, bits: impl IntoIterator<Item = bool>) -> u16 {
    let mut reg = (uap as u16) << 8;
    for bit in bits {
        let fb = (reg >> 15) ^ (bit as u16);
        reg <<= 1;
        if fb & 1 == 1 {
            reg ^= CRC_TAPS;
        }
    }
    reg
}

/// Verifies a received `(payload, crc)` pair.
pub fn check(uap: u8, payload: &BitVec, received: u16) -> bool {
    crc16(uap, payload.iter()) == received
}

/// Appends the 16 CRC bits to `bits` in transmission order (LSB first).
pub fn append_crc(uap: u8, bits: &mut BitVec) {
    let c = crc16(uap, bits.iter());
    bits.push_bits_lsb(c as u64, 16);
}

/// Splits `bits` into payload and CRC and verifies them.
///
/// Returns the payload when the CRC matches, `None` otherwise (including
/// when `bits` is shorter than a CRC).
pub fn strip_crc(uap: u8, bits: &BitVec) -> Option<BitVec> {
    if bits.len() < 16 {
        return None;
    }
    let payload = bits.slice(0, bits.len() - 16);
    let rx_crc = bits.bits_lsb(bits.len() - 16, 16) as u16;
    check(uap, &payload, rx_crc).then_some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_append_and_strip() {
        let uap = 0x9E;
        for msg in [&b"x"[..], b"hello world", b"\x00\x00\x00", b"\xff\xff"] {
            let mut bits = BitVec::from_bytes_lsb(msg);
            append_crc(uap, &mut bits);
            let stripped = strip_crc(uap, &bits).expect("valid CRC");
            assert_eq!(stripped.to_bytes_lsb(), msg);
        }
    }

    #[test]
    fn detects_every_single_bit_error() {
        let uap = 0x12;
        let mut bits = BitVec::from_bytes_lsb(b"data under test");
        append_crc(uap, &mut bits);
        for i in 0..bits.len() {
            let mut corrupt = bits.clone();
            corrupt.toggle(i);
            assert!(strip_crc(uap, &corrupt).is_none(), "missed flip at {i}");
        }
    }

    #[test]
    fn detects_double_bit_errors() {
        let uap = 0x12;
        let mut bits = BitVec::from_bytes_lsb(b"ab");
        append_crc(uap, &mut bits);
        for i in 0..bits.len() {
            for j in (i + 1)..bits.len() {
                let mut corrupt = bits.clone();
                corrupt.toggle(i);
                corrupt.toggle(j);
                assert!(
                    strip_crc(uap, &corrupt).is_none(),
                    "missed flips at {i},{j}"
                );
            }
        }
    }

    #[test]
    fn detects_bursts_up_to_16() {
        let uap = 0x55;
        let mut bits = BitVec::from_bytes_lsb(b"burst error test vector");
        append_crc(uap, &mut bits);
        for burst_len in 2..=16usize {
            for start in (0..bits.len() - burst_len).step_by(7) {
                let mut corrupt = bits.clone();
                for k in 0..burst_len {
                    corrupt.toggle(start + k);
                }
                assert!(
                    strip_crc(uap, &corrupt).is_none(),
                    "missed burst len {burst_len} at {start}"
                );
            }
        }
    }

    #[test]
    fn wrong_uap_fails() {
        let mut bits = BitVec::from_bytes_lsb(b"uap matters");
        append_crc(0x47, &mut bits);
        assert!(strip_crc(0x48, &bits).is_none());
    }

    #[test]
    fn short_input_is_rejected() {
        let bits = BitVec::from_bytes_lsb(&[0xAB]);
        assert!(strip_crc(0, &bits).is_none());
    }
}
