//! # btsim-coding
//!
//! Bit-level coding primitives of the Bluetooth baseband, used to build
//! exact over-the-air packet images for the `btsim` system-level simulator
//! (reproduction of Conti & Moretti, *System Level Analysis of the
//! Bluetooth Standard*, DATE 2005):
//!
//! * [`BitVec`] — packed bit vector in transmission order;
//! * [`hec`] — 8-bit header error check;
//! * [`crc`] — CRC-16 payload check;
//! * [`fec`] — 1/3 repetition and 2/3 (15,10) shortened-Hamming FEC;
//! * [`Whitener`] — x⁷+x⁴+1 data whitening;
//! * [`syncword`] — (64,30) BCH access-code sync words and correlation.
//!
//! # Examples
//!
//! Building and checking a DM-style payload:
//!
//! ```
//! use btsim_coding::{crc, fec, BitVec, Whitener};
//!
//! // payload + CRC, whiten, then 2/3 FEC — exactly the baseband TX chain.
//! let mut payload = BitVec::from_bytes_lsb(b"data");
//! crc::append_crc(0x47, &mut payload);
//! let white = Whitener::from_clk(13).whiten(&payload);
//! let air = fec::fec23_encode(&white);
//!
//! // Receive chain: FEC decode, de-whiten, CRC strip.
//! let decoded = fec::fec23_decode(&air);
//! let trimmed = decoded.data.slice(0, payload.len());
//! let dewhite = Whitener::from_clk(13).whiten(&trimmed);
//! let got = crc::strip_crc(0x47, &dewhite).expect("CRC must pass");
//! assert_eq!(got.to_bytes_lsb(), b"data");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
pub mod crc;
pub mod fec;
pub mod hec;
pub mod syncword;
mod whitening;

pub use bits::{BitVec, Iter};
pub use whitening::Whitener;
