//! Channel access codes and their 64-bit sync words.
//!
//! Every Bluetooth packet starts with an access code derived from a 24-bit
//! Lower Address Part (LAP): the device access code (DAC) of a paged
//! device, the channel access code (CAC) of a piconet master, or the
//! general/dedicated inquiry access codes (GIAC/DIAC). The 64-bit sync
//! word is a (64,30) expurgated BCH codeword, scrambled with a fixed PN
//! sequence so that even all-zero LAPs produce well-balanced words
//! (Bluetooth spec v1.2, Baseband §6.3.3).
//!
//! Bits are indexed in transmission order: parity first, then the LAP,
//! then the 6 appended Barker-extension bits.

use crate::BitVec;

/// The 64-bit scrambling PN sequence of the spec; `p0` is the most
/// significant bit of this constant.
pub const PN64: u64 = 0x8384_8D96_BBCC_54FC;

/// Generator polynomial of the (64,30) BCH code, degree 34.
pub const BCH_GEN: u64 = 0o260_534_236_651;

/// The general inquiry access code LAP shared by all Bluetooth devices.
pub const GIAC_LAP: u32 = 0x9E8B33;

/// First LAP reserved for dedicated inquiry access codes.
pub const DIAC_LAP_BASE: u32 = 0x9E8B00;

/// Default sliding-correlator threshold: a sync word is accepted when at
/// least this many of its 64 bits match (spec-suggested value 54, which
/// tolerates up to 10 channel errors).
pub const DEFAULT_SYNC_THRESHOLD: u8 = 54;

/// Returns bit `i` (0-based, transmission order) of the PN sequence.
fn pn_bit(i: usize) -> bool {
    debug_assert!(i < 64);
    (PN64 >> (63 - i)) & 1 == 1
}

/// Computes the 64-bit sync word of `lap`.
///
/// The returned word has bit 0 (LSB) as the first transmitted bit.
/// Only the low 24 bits of `lap` are used.
///
/// # Examples
///
/// ```
/// use btsim_coding::syncword;
///
/// let giac = syncword::sync_word(syncword::GIAC_LAP);
/// let dac = syncword::sync_word(0x000001);
/// assert_ne!(giac, dac);
/// ```
pub fn sync_word(lap: u32) -> u64 {
    let lap = lap & 0x00FF_FFFF;
    // 30 information bits x0..x29: the LAP a0..a23 then the 6-bit
    // extension selected by a23 (0 -> 001101, 1 -> 110010, LSB first).
    let ext: u32 = if lap & 0x80_0000 == 0 {
        0b101100
    } else {
        0b010011
    };
    let mut info = lap | (ext << 24); // bit i = x_i
                                      // Scramble the information bits with p34..p63 before encoding.
    for i in 0..30 {
        if pn_bit(34 + i) {
            info ^= 1 << i;
        }
    }
    // BCH encode: codeword c(D) = info(D)·D^34 + (info(D)·D^34 mod g(D)).
    // Coefficient of D^i lives at bit i; bit 0 is transmitted first.
    let mut v = (info as u64) << 34;
    for k in (34..64).rev() {
        if v & (1 << k) != 0 {
            v ^= BCH_GEN << (k - 34);
        }
    }
    let codeword = ((info as u64) << 34) | v;
    // Final scrambling of the whole word with p0..p63.
    let mut sync = codeword;
    for i in 0..64 {
        if pn_bit(i) {
            sync ^= 1 << i;
        }
    }
    sync
}

/// Extracts the 34 parity bits of a sync word (the FHS "parity" field).
pub fn parity_bits(sync: u64) -> u64 {
    sync & 0x3_FFFF_FFFF
}

/// Builds the access code bit image for `lap`.
///
/// The 4-bit preamble alternates and starts opposite to the first sync
/// bit; when a header follows (`with_trailer`), a 4-bit alternating
/// trailer extends the word, giving 72 bits instead of 68.
pub fn access_code(lap: u32, with_trailer: bool) -> BitVec {
    let sync = sync_word(lap);
    let first = sync & 1 == 1;
    let last = (sync >> 63) & 1 == 1;
    let mut bits = BitVec::with_capacity(72);
    // Preamble 0101 or 1010 (transmission order), ending opposite of first.
    for i in 0..4 {
        bits.push(if i % 2 == 0 { !first } else { first });
    }
    bits.push_bits_lsb(sync, 64);
    if with_trailer {
        for i in 0..4 {
            bits.push(if i % 2 == 0 { !last } else { last });
        }
    }
    bits
}

/// Length in bits of an ID packet (preamble + sync word, no trailer).
pub const ID_PACKET_BITS: usize = 68;

/// Result of correlating a received window against an expected sync word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Correlation {
    /// Number of matching bits out of 64.
    pub matches: u8,
    /// Whether the correlator fired (matches ≥ threshold).
    pub detected: bool,
}

/// Correlates 64 received bits (starting at `offset` in `bits`) against
/// the sync word of `lap`.
///
/// Bits missing past the end of `bits` count as mismatches, as does any
/// bit marked in `collision_mask` (a same-length mask of bits that were
/// driven by more than one transmitter; pass `None` when clean).
///
/// The comparison is one 64-bit XOR + popcount, not a per-bit scan.
pub fn correlate(
    bits: &BitVec,
    offset: usize,
    collision_mask: Option<&BitVec>,
    lap: u32,
    threshold: u8,
) -> Correlation {
    let sync = sync_word(lap);
    let avail = bits.len().saturating_sub(offset).min(64) as u32;
    let received = bits.bits_lsb(offset, 64);
    let collided = collision_mask.map_or(0, |m| m.bits_lsb(offset, 64));
    let window = if avail == 64 {
        !0u64
    } else {
        (1u64 << avail) - 1
    };
    let good = !(received ^ sync) & !collided & window;
    let matches = good.count_ones() as u8;
    Correlation {
        matches,
        detected: matches >= threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_word_is_deterministic_and_lap_dependent() {
        assert_eq!(sync_word(GIAC_LAP), sync_word(GIAC_LAP));
        assert_ne!(sync_word(0x000000), sync_word(0x000001));
        // Only the low 24 bits matter.
        assert_eq!(sync_word(0x12345678), sync_word(0x00345678));
    }

    #[test]
    fn distinct_laps_have_distance_at_least_14() {
        // dmin of the expurgated (64,30) BCH code is 14; scrambling with a
        // fixed PN preserves pairwise distance.
        let laps = [
            0x000000u32,
            0x000001,
            0x9E8B33,
            0x9E8B00,
            0xFFFFFF,
            0x123456,
            0x800000,
            0x7FFFFF,
        ];
        for (i, &a) in laps.iter().enumerate() {
            for &b in &laps[i + 1..] {
                let d = (sync_word(a) ^ sync_word(b)).count_ones();
                assert!(d >= 14, "distance {d} between {a:06X} and {b:06X}");
            }
        }
    }

    #[test]
    fn access_code_lengths() {
        assert_eq!(access_code(GIAC_LAP, false).len(), ID_PACKET_BITS);
        assert_eq!(access_code(GIAC_LAP, true).len(), 72);
    }

    #[test]
    fn preamble_alternates_and_ends_opposite_first_sync_bit() {
        for lap in [0x000000u32, 0x9E8B33, 0xFFFFFF, 0x2497AB] {
            let ac = access_code(lap, true);
            let sync_first = ac.get(4).unwrap();
            assert_eq!(ac.get(3).unwrap(), sync_first);
            assert_ne!(ac.get(2).unwrap(), ac.get(3).unwrap());
            assert_ne!(ac.get(0).unwrap(), ac.get(1).unwrap());
            // Trailer alternates starting opposite the last sync bit.
            let sync_last = ac.get(67).unwrap();
            assert_ne!(ac.get(68).unwrap(), sync_last);
        }
    }

    #[test]
    fn correlation_detects_clean_and_noisy_words() {
        let lap = 0x21043C;
        let ac = access_code(lap, false);
        let clean = correlate(&ac, 4, None, lap, DEFAULT_SYNC_THRESHOLD);
        assert_eq!(clean.matches, 64);
        assert!(clean.detected);

        // Up to 10 errors still detect at threshold 54.
        let mut noisy = ac.clone();
        for i in 0..10 {
            noisy.toggle(4 + i * 6);
        }
        let c = correlate(&noisy, 4, None, lap, DEFAULT_SYNC_THRESHOLD);
        assert_eq!(c.matches, 54);
        assert!(c.detected);

        // Eleven errors fall below the threshold.
        noisy.toggle(4 + 63);
        let c = correlate(&noisy, 4, None, lap, DEFAULT_SYNC_THRESHOLD);
        assert!(!c.detected);
    }

    #[test]
    fn correlation_rejects_foreign_lap() {
        let ac = access_code(0x111111, false);
        let c = correlate(&ac, 4, None, 0x222222, DEFAULT_SYNC_THRESHOLD);
        assert!(!c.detected, "foreign sync matched with {} bits", c.matches);
    }

    #[test]
    fn collision_mask_bits_count_as_errors() {
        let lap = 0x424242;
        let ac = access_code(lap, false);
        let mut mask = BitVec::zeros(ac.len());
        for i in 0..11 {
            mask.set(4 + i, true);
        }
        let c = correlate(&ac, 4, Some(&mask), lap, DEFAULT_SYNC_THRESHOLD);
        assert!(!c.detected);
        assert_eq!(c.matches, 53);
    }

    #[test]
    fn truncated_window_counts_missing_bits_as_mismatches() {
        let lap = 0x3A5F01;
        let ac = access_code(lap, false);
        let short = ac.slice(0, 40);
        let c = correlate(&short, 4, None, lap, DEFAULT_SYNC_THRESHOLD);
        assert!(!c.detected);
    }

    #[test]
    fn parity_field_is_34_bits() {
        let p = parity_bits(sync_word(GIAC_LAP));
        assert!(p <= 0x3_FFFF_FFFF);
    }

    #[test]
    fn sync_words_are_balanced() {
        // The PN scrambling should keep words roughly balanced even for
        // degenerate LAPs.
        for lap in [0x000000u32, 0xFFFFFF] {
            let ones = sync_word(lap).count_ones();
            assert!((16..=48).contains(&ones), "lap {lap:06X}: {ones} ones");
        }
    }
}
