//! Header Error Check: the 8-bit LFSR code protecting packet headers.
//!
//! The generator polynomial is g(D) = D⁸ + D⁷ + D⁵ + D² + D + 1 and the
//! shift register is preloaded with the UAP of the relevant device
//! (Bluetooth spec v1.2, Baseband §7.1.1). The ten header information bits
//! are clocked through in transmission order.

/// Feedback taps of g(D) = D⁸ + D⁷ + D⁵ + D² + D + 1 without the D⁸ term.
const HEC_TAPS: u8 = 0b1010_0111;

/// Bit-serial reference: clocks the ten info bits through the LFSR.
/// The LFSR update is linear over GF(2) in (register, input), so the
/// lookup tables below are exact by superposition; `const` so they are
/// derived from this definition at compile time.
const fn hec_serial(uap: u8, info: u16) -> u8 {
    let mut reg = uap;
    let mut i = 0;
    while i < 10 {
        let bit = ((info >> i) & 1) as u8;
        let fb = (reg >> 7) ^ bit;
        reg <<= 1;
        if fb & 1 == 1 {
            reg ^= HEC_TAPS;
        }
        i += 1;
    }
    reg
}

/// `UAP_ADV[u]`: the register after clocking ten zero bits from `u`.
const fn build_uap_adv() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut u = 0usize;
    while u < 256 {
        t[u] = hec_serial(u as u8, 0);
        u += 1;
    }
    t
}

/// `INFO_HEC[i]`: the HEC of info word `i` from a zero register.
const fn build_info_hec() -> [u8; 1024] {
    let mut t = [0u8; 1024];
    let mut i = 0usize;
    while i < 1024 {
        t[i] = hec_serial(0, i as u16);
        i += 1;
    }
    t
}

const UAP_ADV: [u8; 256] = build_uap_adv();
const INFO_HEC: [u8; 1024] = build_info_hec();

/// Computes the HEC of the ten header information bits.
///
/// `info` holds the bits LSB-first in transmission order; only the low ten
/// bits are used. The register is initialised with `uap`.
///
/// # Examples
///
/// ```
/// use btsim_coding::hec;
///
/// let h = hec::hec(0x47, 0b10_1100_0101);
/// assert!(hec::check(0x47, 0b10_1100_0101, h));
/// assert!(!hec::check(0x47, 0b10_1100_0100, h));
/// ```
pub fn hec(uap: u8, info: u16) -> u8 {
    UAP_ADV[uap as usize] ^ INFO_HEC[(info & 0x3FF) as usize]
}

/// Verifies a received `(info, hec)` pair against the expected `uap`.
pub fn check(uap: u8, info: u16, received_hec: u8) -> bool {
    hec(uap, info) == received_hec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_split_matches_bit_serial_reference() {
        for uap in 0..=255u8 {
            for info in [0u16, 1, 0x155, 0x2AA, 0x3FF, 0x123, 0x08C] {
                assert_eq!(hec(uap, info), hec_serial(uap, info), "{uap:#x}/{info:#x}");
            }
        }
        for info in 0..1024u16 {
            assert_eq!(hec(0x9E, info), hec_serial(0x9E, info), "{info:#x}");
        }
    }

    #[test]
    fn valid_pair_checks() {
        for info in [0u16, 1, 0x3FF, 0x155, 0x2AA] {
            for uap in [0u8, 0xFF, 0x47, 0x9E] {
                assert!(check(uap, info, hec(uap, info)));
            }
        }
    }

    #[test]
    fn detects_every_single_bit_error_in_info() {
        let uap = 0x31;
        let info = 0b01_1011_0010u16;
        let h = hec(uap, info);
        for i in 0..10 {
            assert!(!check(uap, info ^ (1 << i), h), "missed flip at {i}");
        }
    }

    #[test]
    fn detects_every_single_bit_error_in_hec() {
        let uap = 0x31;
        let info = 0b01_1011_0010u16;
        let h = hec(uap, info);
        for i in 0..8 {
            assert!(!check(uap, info, h ^ (1 << i)), "missed flip at {i}");
        }
    }

    #[test]
    fn detects_all_double_bit_errors() {
        // g(D) has (D+1) as a factor and degree 8, so all 1- and 2-bit
        // errors over the 18-bit block must be caught.
        let uap = 0x72;
        let info = 0b11_0101_1001u16;
        let h = hec(uap, info);
        for i in 0..18u32 {
            for j in (i + 1)..18 {
                let mut inf = info;
                let mut hh = h;
                for k in [i, j] {
                    if k < 10 {
                        inf ^= 1 << k;
                    } else {
                        hh ^= 1 << (k - 10);
                    }
                }
                assert!(!check(uap, inf, hh), "missed flips at {i},{j}");
            }
        }
    }

    #[test]
    fn depends_on_uap() {
        let info = 0b10_0110_1100u16;
        assert_ne!(hec(0x00, info), hec(0x01, info));
    }

    #[test]
    fn wrong_uap_rejects_most_headers() {
        // A receiver initialised with the wrong UAP should reject valid
        // headers: this is how devices filter foreign piconet traffic.
        let mut rejected = 0;
        for info in 0..1024u16 {
            let h = hec(0x47, info);
            if !check(0x48, info, h) {
                rejected += 1;
            }
        }
        assert_eq!(rejected, 1024, "HEC with wrong UAP must always differ");
    }
}
