//! Criterion bench of whole-system simulation speed — the counterpart of
//! the paper's performance paragraph (0.48 s simulated in 10′47″, i.e.
//! 747 simulated clock cycles per wall second on 2005 hardware).

use btsim_baseband::LcCommand;
use btsim_core::scenario::{
    connect_pair, paper_config, CreationConfig, CreationScenario, Scenario,
};
use btsim_core::SimBuilder;
use btsim_kernel::{SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

/// The paper's measurement: piconet creation with 3 slaves, 0.48 s of
/// simulated time.
fn bench_creation_048s(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_speed");
    group.sample_size(10);
    group.bench_function("creation_4dev_0.48s", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let scenario = CreationScenario::new(CreationConfig {
                n_slaves: 3,
                inquiry_timeout_slots: 768, // 0.48 s
                page_timeout_slots: 512,
                ..CreationConfig::default()
            });
            scenario.run(seed)
        })
    });
    group.finish();
}

/// Steady-state connection traffic: one second of polling + data.
fn bench_connection_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_speed");
    group.sample_size(10);
    group.bench_function("connection_1s_traffic", |b| {
        b.iter_batched(
            || {
                let mut builder = SimBuilder::new(42, paper_config());
                let m = builder.add_device("master");
                let s = builder.add_device("slave1");
                let mut sim = builder.build();
                let lt =
                    connect_pair(&mut sim, m, s, SimTime::from_us(30_000_000)).expect("connects");
                sim.command(m, LcCommand::SetTpoll(4));
                sim.command(
                    m,
                    LcCommand::AclData {
                        lt_addr: lt,
                        data: vec![0xAB; 50_000],
                    },
                );
                sim
            },
            |mut sim| {
                let end = sim.now() + SimDuration::from_slots(1600); // 1 s
                sim.run_until(end);
                sim
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(speed, bench_creation_048s, bench_connection_second);
criterion_main!(speed);
